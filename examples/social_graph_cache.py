#!/usr/bin/env python3
"""A social-graph edge cache on a KV-SSD — the paper's motivating workload.

Meta's production RocksDB traces (Cao et al., FAST '20 — the paper's [3])
show values that "nearly do not reach a hundred bytes on average": edge
records, counters, small serialized objects. This example builds exactly
that shape — follower edges with tiny payloads plus occasional profile
blobs — and shows why BandSlim exists: on a block-bound KV-SSD every tiny
edge write ships a 4 KiB page; with BandSlim it rides inside the NVMe
command itself.

Run:  python examples/social_graph_cache.py
"""

import numpy as np

from repro import KVStore, preset
from repro.units import fmt_bytes


def edge_key(src: int, dst: int) -> bytes:
    """16-byte edge key: (source id, destination id)."""
    return src.to_bytes(8, "big") + dst.to_bytes(8, "big")


def make_edges(n_users: int, n_edges: int, seed: int = 7):
    """Zipf-ish follower graph: a few celebrities, many small accounts."""
    rng = np.random.default_rng(seed)
    src = rng.zipf(1.3, size=n_edges) % n_users
    dst = rng.integers(0, n_users, size=n_edges)
    timestamps = rng.integers(1_600_000_000, 1_700_000_000, size=n_edges)
    # Last write wins on duplicate edges (same follower pair seen twice).
    edges = {
        edge_key(int(s), int(d)): b"w:%d;ts:%d" % (int(s + d) % 100, int(t))
        for s, d, t in zip(src, dst, timestamps)
    }
    return list(edges.items())


def run_store(name: str, edges, profiles) -> dict:
    store = KVStore.open(preset(name))
    for key, value in edges:
        store.put(key, value)
    for key, blob in profiles:
        store.put(key, blob)
    # Point-read a hot working set, as a cache would.
    for key, value in edges[: len(edges) // 10]:
        assert store.get(key) == value
    store.flush()
    return store.stats()


def main() -> None:
    n_edges = 3000
    edges = make_edges(n_users=500, n_edges=n_edges)
    # Occasional profile blobs (the rare large values of W(M)).
    rng = np.random.default_rng(13)
    profiles = [
        (b"prof:%08d" % i, rng.integers(0, 256, size=900, dtype=np.uint8).tobytes())
        for i in range(n_edges // 50)
    ]

    print(f"workload: {n_edges} edge writes (~20 B) + {len(profiles)} "
          "profile blobs (900 B) + 10% hot reads\n")

    results = {}
    for name in ("baseline", "backfill"):
        results[name] = run_store(name, edges, profiles)
        label = "state-of-the-art KV-SSD" if name == "baseline" else "BandSlim"
        stats = results[name]
        print(f"{label} ({name}):")
        print(f"  PCIe traffic      {fmt_bytes(stats['pcie.total_bytes'])}")
        print(f"  NAND page writes  {int(stats['nand.page_programs'])}")
        print(f"  simulated time    {stats['clock.now_us'] / 1e3:.1f} ms")
        print()

    base, band = results["baseline"], results["backfill"]
    traffic_cut = 1 - band["pcie.total_bytes"] / base["pcie.total_bytes"]
    nand_cut = 1 - band["nand.page_programs"] / base["nand.page_programs"]
    speedup = base["clock.now_us"] / band["clock.now_us"]
    print(f"BandSlim vs baseline: {traffic_cut:.1%} less PCIe traffic, "
          f"{nand_cut:.1%} fewer NAND page writes, {speedup:.1f}x faster")


if __name__ == "__main__":
    main()
