#!/usr/bin/env python3
"""Quickstart: open a simulated BandSlim KV-SSD and use it like a KV store.

Run:  python examples/quickstart.py
"""

from repro import KVStore, preset
from repro.units import fmt_bytes


def main() -> None:
    # A BandSlim device: adaptive value transfer + backfill packing.
    store = KVStore.open(preset("backfill"))

    # --- point operations ---------------------------------------------------
    latency_us = store.put(b"user:1001", b'{"name": "alice", "karma": 42}')
    print(f"PUT user:1001 took {latency_us:.1f} simulated us")

    print("GET user:1001 ->", store.get(b"user:1001").decode())

    store.put(b"user:1002", b'{"name": "bob"}')
    store.put(b"user:0999", b'{"name": "carol"}')
    store.delete(b"user:1002")
    print("user:1002 exists after delete?", store.exists(b"user:1002"))

    # Values are arbitrary sizes — the whole point of a KV-SSD.
    store.put(b"blob:big", b"\xab" * 10_000)
    assert store.get(b"blob:big") == b"\xab" * 10_000

    # --- range scan (SEEK / NEXT) ---------------------------------------------
    print("\nusers in key order:")
    for key, value in store.seek(b"user:"):
        if not key.startswith(b"user:"):
            break
        print(f"  {key.decode()} = {value.decode()}")

    # --- what happened underneath ----------------------------------------------
    store.flush()
    stats = store.stats()
    print("\ndevice counters:")
    print(f"  PCIe traffic:     {fmt_bytes(stats['pcie.total_bytes'])}")
    print(f"  MMIO (doorbells): {fmt_bytes(stats['pcie.mmio_bytes'])}")
    print(f"  NAND page writes: {int(stats['nand.page_programs'])}")
    print(f"  firmware memcpy:  {fmt_bytes(stats['controller.memcpy_bytes'])}")
    print(f"  simulated time:   {stats['clock.now_us']:.0f} us")


if __name__ == "__main__":
    main()
