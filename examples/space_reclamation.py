#!/usr/bin/env python3
"""Reclaim dead vLog space after overwrite churn (vLog garbage collection).

Key-value-separated stores strand old value bytes on every overwrite: the
LSM index moves on, the vLog page still holds the stale bytes. This example
churns a working set, watches the dead fraction climb, then runs the
WiscKey-style compactor and shows the flash coming back.

Run:  python examples/space_reclamation.py
"""

from repro import KVStore, preset
from repro.lsm.vlog_gc import VLogCompactor
from repro.units import fmt_bytes


def main() -> None:
    store = KVStore.open(
        preset("backfill", memtable_flush_bytes=4096, buffer_entries=16)
    )
    gc = VLogCompactor(store.device.lsm, store.device.policy,
                       store.device.buffer)

    # Churn: overwrite 60 keys five times over; only the last round is live.
    keys, rounds, size = 60, 5, 700
    for r in range(rounds):
        for i in range(keys):
            store.put(f"obj{i:04d}".encode(), bytes([r]) * size)
    store.flush()

    live = gc.live_bytes()
    written = keys * rounds * size
    print(f"wrote {fmt_bytes(written)} across {rounds} rounds; "
          f"{fmt_bytes(live)} still live ({live / written:.0%})")
    print(f"dead fraction of the flushed vLog region: {gc.dead_fraction():.0%}")
    mapped_before = store.device.ftl.mapped_pages

    report = gc.compact()
    print(f"\ncompaction: examined {report.pages_examined} logical pages, "
          f"moved {report.values_moved} live values "
          f"({fmt_bytes(report.bytes_moved)}), trimmed {report.pages_trimmed} "
          "pages for the FTL to reclaim")
    store.flush()
    print(f"FTL mapped pages: {mapped_before} -> {store.device.ftl.mapped_pages}")

    # Everything still reads back, of course.
    for i in range(keys):
        assert store.get(f"obj{i:04d}".encode()) == bytes([rounds - 1]) * size
    print("all live values verified intact after compaction")

    print(f"\nresidual dead fraction: {gc.dead_fraction():.0%} "
          "(fresh relocations are fully live)")


if __name__ == "__main__":
    main()
