#!/usr/bin/env python3
"""IoT time-series ingest: tiny sensor readings with range scans.

Sensor fleets write small fixed records at high rate — the pathological
case for page-unit transfer (a 24-byte reading shipping as 4 KiB is a 170×
amplification) — then dashboards scan them back in time order. This example
ingests readings keyed ``(sensor id, timestamp)``, compares packing
policies, and replays a dashboard range query through SEEK/NEXT.

Run:  python examples/iot_timeseries.py
"""

import struct

from repro import KVStore, preset
from repro.units import fmt_bytes


def reading_key(sensor: int, ts: int) -> bytes:
    """Big-endian (sensor, timestamp) so scans are time-ordered per sensor."""
    return struct.pack(">IQ", sensor, ts)


def reading_value(temp_c: float, humidity: float, battery: int) -> bytes:
    return struct.pack("<ffI", temp_c, humidity, battery)  # 12 bytes


def ingest(store: KVStore, n_sensors: int, samples: int) -> None:
    for ts in range(samples):
        for sensor in range(n_sensors):
            value = reading_value(
                temp_c=20.0 + (sensor * 7 + ts) % 15,
                humidity=40.0 + (sensor + ts * 3) % 30,
                battery=100 - (ts % 100),
            )
            store.put(reading_key(sensor, 1_700_000_000 + ts * 60), value)


def dashboard_scan(store: KVStore, sensor: int, limit: int):
    """Last-hour style range query for one sensor."""
    readings = []
    for key, value in store.seek(struct.pack(">I", sensor)):
        got_sensor, ts = struct.unpack(">IQ", key)
        if got_sensor != sensor or len(readings) >= limit:
            break
        temp, hum, batt = struct.unpack("<ffI", value)
        readings.append((ts, temp, hum, batt))
    return readings


def main() -> None:
    n_sensors, samples = 40, 50
    print(f"ingesting {n_sensors * samples} readings "
          f"({n_sensors} sensors x {samples} samples, 12 B each)\n")

    print(f"{'policy':<10} {'PCIe':>12} {'NAND writes':>12} "
          f"{'sim time ms':>12} {'space util':>11}")
    for name in ("block", "all", "backfill"):
        store = KVStore.open(preset(name))
        ingest(store, n_sensors, samples)
        store.flush()
        stats = store.stats()
        nand_pages = int(stats["nand.page_programs"])
        useful = n_sensors * samples * 12
        util = useful / (nand_pages * 16384) if nand_pages else 0.0
        print(f"{name:<10} {fmt_bytes(stats['pcie.total_bytes']):>12} "
              f"{nand_pages:>12} {stats['clock.now_us'] / 1e3:>12.1f} "
              f"{util:>10.1%}")

    print("\ndashboard: last 5 readings of sensor 7 (via SEEK/NEXT):")
    store = KVStore.open(preset("backfill"))
    ingest(store, n_sensors, samples)
    for ts, temp, hum, batt in dashboard_scan(store, sensor=7, limit=5):
        print(f"  ts={ts}  temp={temp:.1f}C  humidity={hum:.1f}%  battery={batt}%")


if __name__ == "__main__":
    main()
