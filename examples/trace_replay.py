#!/usr/bin/env python3
"""Record a workload trace once, replay it against every configuration.

Fair configuration comparisons need byte-identical inputs. This example
captures a mixed GET/PUT stream to a compressed ``.npz`` trace, then
replays the exact same requests against the paper's main configurations
and prints the side-by-side result.

Run:  python examples/trace_replay.py
"""

import os
import tempfile

from repro.sim.compare import compare_configs
from repro.sim.runner import run_workload
from repro.units import fmt_bytes
from repro.workloads.trace import Trace
from repro.workloads.workloads import workload_mixed


def main() -> None:
    workload = workload_mixed(2000, read_fraction=0.25, seed=99)
    trace = Trace.record(workload)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "mixed.npz")
        trace.save(path)
        size = os.path.getsize(path)
        print(f"recorded {trace.num_ops} requests "
              f"({fmt_bytes(trace.total_value_bytes)} of values) "
              f"-> {path} ({fmt_bytes(size)} compressed)\n")

        loaded = Trace.load(path)
        assert loaded == trace  # byte-exact replay guaranteed

        # Single replay, full metrics:
        result = run_workload("backfill", loaded)
        print(f"replay on backfill: {result.avg_response_us:.1f} us/op, "
              f"p99 {result.p99_response_us:.1f} us, "
              f"{result.throughput_kops:.1f} Kops/s\n")

        # The same trace across configurations (identical inputs by design):
        comparison = compare_configs(
            ["baseline", "adaptive", "all", "backfill"], loaded
        )
        print(comparison.format())


if __name__ == "__main__":
    main()
