#!/usr/bin/env python3
"""Calibrate adaptive-transfer thresholds, then tune α for your priorities.

BandSlim's adaptive transfer is configured from exploratory runs (§3.2):
sweep value sizes per transfer method, find where piggybacking stops paying
off (threshold₁) and where hybrid stops beating PRP (threshold₂), then scale
with α/β — α>1 favors traffic reduction, α=1 favors response time.

Run:  python examples/calibrate_and_tune.py
"""

from repro import preset
from repro.core.thresholds import ThresholdCalibrator
from repro.sim.runner import run_workload
from repro.units import fmt_bytes
from repro.workloads.workloads import workload_m


def main() -> None:
    print("calibrating (sweeping value sizes per transfer method)...")
    calibrator = ThresholdCalibrator(ops_per_point=100)
    result = calibrator.calibrate()

    print(f"\nderived threshold1 = {result.threshold1} B "
          "(largest size where piggyback beats PRP)")
    print(f"derived threshold2 = {result.threshold2} B "
          "(largest sub-page tail where hybrid beats PRP)")

    print("\nresponse curves (us):")
    print(f"{'size_B':>8} {'piggyback':>10} {'prp':>8}")
    prp = dict(result.curves["prp"])
    for size, piggy_us in result.curves["piggyback"]:
        marker = "  <- threshold1" if size == result.threshold1 else ""
        print(f"{size:>8} {piggy_us:>10.1f} {prp[size]:>8.1f}{marker}")

    # Apply the calibration, then sweep the alpha preference knob.
    config = result.apply(preset("adaptive"))
    print("\nalpha sweep on the real-world W(M) mix "
          "(alpha>1 trades response time for traffic):")
    print(f"{'alpha':>6} {'avg response us':>16} {'PCIe traffic':>14}")
    for alpha in (0.5, 1.0, 2.0, 4.0):
        r = run_workload(
            config.with_overrides(alpha=alpha),
            workload_m(2000, seed=1),
            nand_io_enabled=False,
        )
        print(f"{alpha:>6} {r.avg_response_us:>16.1f} "
              f"{fmt_bytes(r.pcie_total_bytes):>14}")


if __name__ == "__main__":
    main()
