#!/usr/bin/env python3
"""Manage a BandSlim device through standard NVMe admin commands.

The paper stresses NVMe compatibility "from device identification to device
management" (§1). This example exercises exactly that surface: IDENTIFY the
device and read its BandSlim capability block, retune the adaptive-transfer
thresholds at runtime with SET FEATURES, and read device statistics back
with GET LOG PAGE — all over simulated admin commands, not Python
introspection.

Run:  python examples/device_management.py
"""

from repro import KVSSD, preset
from repro.nvme.admin import FeatureId


def main() -> None:
    device = KVSSD.build(preset("adaptive"))
    driver = device.driver

    # --- IDENTIFY ------------------------------------------------------------
    fields, caps = driver.identify()
    print("IDENTIFY controller:")
    for key, value in fields.items():
        print(f"  {key:<9} {value}")
    print("capability block: "
          f"piggyback {caps.write_piggyback_capacity}B/"
          f"{caps.transfer_piggyback_capacity}B, "
          f"NAND page {caps.nand_page_size}B, "
          f"{caps.buffer_entries}-entry buffer, "
          f"policy={caps.packing_policy}")

    # --- a workload under the default thresholds ---------------------------------
    def burst(tag: str) -> None:
        for i in range(400):
            driver.put(f"{tag}{i:04d}".encode(), b"v" * 150)

    burst("a")
    baseline_traffic = device.link.meter.total_bytes
    print(f"\n400 PUTs of 150 B values, threshold1="
          f"{driver.get_feature(FeatureId.THRESHOLD1)} B "
          f"-> {baseline_traffic / 1024:.0f} KB on the link")

    # --- retune via SET FEATURES ----------------------------------------------
    # 150 B values currently go via page-unit DMA (150 > 91). Favor traffic:
    # raise alpha so 150 B piggybacks instead (alpha=2 -> threshold 182 B).
    driver.set_feature(FeatureId.ALPHA_MILLI, 2000)
    device.link.reset_metrics()
    burst("b")
    tuned_traffic = device.link.meter.total_bytes
    print(f"after SET FEATURES alpha=2.0 "
          f"-> {tuned_traffic / 1024:.0f} KB on the link "
          f"({1 - tuned_traffic / baseline_traffic:.0%} less)")

    # --- device statistics via GET LOG PAGE ----------------------------------------
    driver.flush()
    stats = driver.read_stats_log()
    print("\nGET LOG PAGE (vendor 0xC0) device statistics:")
    for name, value in stats.items():
        print(f"  {name:<22} {value}")


if __name__ == "__main__":
    main()
