#!/usr/bin/env python3
"""Power loss, mount-time recovery, and the durability contract.

The demo cuts power in the middle of a workload and walks the recovery:
a write acknowledged *and* flushed survives the crash byte-exactly; a
write acknowledged after the last FLUSH may be lost (its bytes sat in the
device's DRAM page buffer when the lights went out); torn pages are
detected by their OOB CRC and never served. The whole remount is traced,
so the OOB scan / manifest restore / replay phases show up as spans with
their simulated cost.

Run:  python examples/power_loss_demo.py
"""

from repro.core.config import BandSlimConfig
from repro.device.kvssd import KVSSD
from repro.errors import KeyNotFoundError, PowerLossError
from repro.faults import FaultPlan
from repro.sim.trace import Tracer
from repro.units import MIB

CFG = BandSlimConfig().with_overrides(
    crash_consistency=True,
    nand_capacity_bytes=64 * MIB,
    buffer_entries=8,  # small pool: NAND programs happen early and often
)


def value_of(i: int) -> bytes:
    return bytes([(i * 13 + j) % 256 for j in range(64)]) * 40  # 2560 B


def run_workload(device, flush_every=60, count=400):
    """PUTs with periodic NVMe FLUSH barriers, until power (maybe) dies."""
    flushed, unflushed = {}, {}
    try:
        for i in range(count):
            key = b"demo-%05d" % i
            device.driver.put(key, value_of(i))
            unflushed[key] = value_of(i)
            if (i + 1) % flush_every == 0:
                device.driver.nvme_flush()  # durability barrier
                flushed.update(unflushed)
                unflushed.clear()
    except PowerLossError as exc:
        print(f"  ** {exc}")
    return flushed, unflushed


def lookup(driver, key):
    try:
        return driver.get(key).value
    except KeyNotFoundError:
        return None


def main() -> None:
    # Pass 1 (no faults): learn how long the workload runs so we can aim
    # the cut at its middle. Determinism makes this exact.
    dry = KVSSD.build(CFG)
    run_workload(dry)
    cut_us = dry.clock.now_us * 0.55
    print(f"dry run took {dry.clock.now_us:,.0f} us simulated; "
          f"cutting power at {cut_us:,.0f} us\n")

    # Pass 2: same workload, but the lights go out mid-run.
    tracer = Tracer()
    device = KVSSD.build(
        CFG, fault_plan=FaultPlan(power_loss_at_us=(cut_us,)), tracer=tracer
    )
    print("running until the cut...")
    flushed, unflushed = run_workload(device)
    print(f"  acked before the cut: {len(flushed) + len(unflushed)} "
          f"({len(flushed)} flushed, {len(unflushed)} past the last FLUSH)")

    print("\nremounting (OOB scan -> manifest restore -> vLog replay)...")
    recovered = device.remount()
    rep = recovered.recovery
    print(f"  scanned {rep.pages_scanned} pages: {rep.torn_pages} torn "
          f"(retired), {rep.stale_pages} stale, {rep.mapped_lpns} mapped")
    print(f"  manifest generation {rep.manifest_gen}, "
          f"{rep.tables_restored} SSTables restored")
    print(f"  replayed {rep.entries_replayed} vLog directory entries, "
          f"discarded {rep.entries_discarded}")
    print(f"  recovery took {rep.recovery_us:,.0f} us simulated")

    print("\ntraced recovery spans:")
    for event in tracer.events:
        if event.category == "recovery":
            print(f"  {event.name:<18} {event.dur_us:>12,.1f} us  {event.args}")

    survived_flushed = sum(
        lookup(recovered.driver, k) == v for k, v in flushed.items()
    )
    lost, survived_tail = 0, 0
    for key, val in unflushed.items():
        got = lookup(recovered.driver, key)
        assert got in (None, val), "corruption would be a bug"
        if got is None:
            lost += 1
        else:
            survived_tail += 1
    print("\ndurability contract after the crash:")
    print(f"  flushed-and-acked : {survived_flushed}/{len(flushed)} "
          f"survived byte-exactly (must be all)")
    print(f"  acked, unflushed  : {survived_tail} survived via vLog replay, "
          f"{lost} lost with the DRAM buffer (both outcomes allowed)")
    assert survived_flushed == len(flushed)

    recovered.driver.put(b"phoenix", b"written after recovery")
    print(f"  post-recovery put : "
          f"{lookup(recovered.driver, b'phoenix').decode()!r}")


if __name__ == "__main__":
    main()
