#!/usr/bin/env python3
"""Explore how each packing policy lays values out in the vLog byte space.

Replays the paper's Figure 7 scenario — small piggybacked values A, B and D
around a DMA-transferred value C — against all four policies and prints the
resulting placements, then runs a mixed workload and tabulates the
fragmentation / memcpy / NAND trade-off each policy makes.

Run:  python examples/policy_explorer.py
"""

from repro import KVStore, preset
from repro.sim.runner import run_workload
from repro.units import fmt_bytes
from repro.workloads.workloads import workload_d

POLICIES = ("block", "all", "select", "backfill")


def figure7_scenario(policy_name: str):
    """A=37 B, B=37 B piggybacked; C=4K+512 via DMA; D=37 B piggybacked."""
    store = KVStore.open(preset(policy_name))
    requests = [
        (b"req:A", 37), (b"req:B", 37), (b"req:C", 4096 + 512), (b"req:D", 37),
    ]
    placements = []
    for key, size in requests:
        store.put(key, bytes(size))
        addr = store.device.lsm.get_address(key)
        offset = addr.lpn * store.device.vlog.page_size + addr.offset
        placements.append((key.decode()[-1], offset, size))
    return placements


def main() -> None:
    print("Figure 7 scenario: where does each value land? "
          "(absolute vLog byte offsets)\n")
    for name in POLICIES:
        placements = figure7_scenario(name)
        layout = "  ".join(f"{label}@{off}(+{size})" for label, off, size in placements)
        print(f"  {name:<9} {layout}")
    print("\n  reading Figure 7: under 'select', D lands after C "
          "(WP moved past the DMA value);")
    print("  under 'backfill', D lands at the original WP, backfilled "
          "behind C.\n")

    ops = 2500
    print(f"mixed workload W(D) ({ops} ops, sizes 8 B - 2 KiB, "
          "adaptive transfer):\n")
    print(f"{'policy':<9} {'resp us':>8} {'Kops/s':>7} {'NAND':>6} "
          f"{'frag bytes':>11} {'memcpy us/op':>13}")
    for name in POLICIES:
        r = run_workload(name, workload_d(ops, seed=5),
                         buffer_entries=64, dlt_capacity=64)
        policy_key = {
            "block": "block", "all": "all",
            "select": "selective", "backfill": "backfill",
        }[name]
        frag = int(r.snapshot.get(f"packing.{policy_key}.fragmentation_bytes", 0))
        print(f"{name:<9} {r.avg_response_us:>8.1f} {r.throughput_kops:>7.1f} "
              f"{r.nand_page_writes_with_flush:>6} {fmt_bytes(frag):>11} "
              f"{r.avg_memcpy_us:>13.2f}")

    print("\n  block: every value burns a 4 KiB slot  |  all: dense but "
          "memcpy-heavy")
    print("  select: no memcpy, gaps before DMA values  |  backfill: "
          "gaps reclaimed via the DLT")


if __name__ == "__main__":
    main()
