"""Fig 11: fine-grained value packing vs value size (§4.3).

Baseline / Piggyback / Packing / Piggy+Pack under the All Packing policy:
packing collapses NAND page writes for small values (98.1 % headline) and
cuts write response; piggy+pack adds a further slice below 64 B but
degrades from 128 B (serialized trailing commands).
"""

import pytest

from repro.bench.figures import fig11
from repro.bench.report import bench_ops as _bench_ops

from benchmarks.conftest import run_figure

OPS = _bench_ops(400)


def bench_fig11_packing_sweep(benchmark, emit):
    fig_a, fig_b = run_figure(benchmark, fig11, OPS)
    emit([fig_a, fig_b])

    nand = {r["value_B"]: r for r in fig_a.row_dicts()}
    resp = {r["value_B"]: r for r in fig_b.row_dicts()}

    # Headline: ~98 % fewer NAND writes at small sizes.
    for size in (4, 8, 16, 32):
        reduction = 1 - nand[size]["packing"] / nand[size]["baseline"]
        assert reduction > 0.95, size

    # Piggyback + block packing does NOT reduce NAND writes.
    assert nand[32]["piggyback"] == pytest.approx(nand[32]["baseline"], rel=0.1)

    # Packing cuts write response sharply at 32 B (paper: 67.6 %).
    assert resp[32]["packing"] < resp[32]["baseline"] * 0.5
    # Piggy+Pack adds a further small-value improvement...
    assert resp[32]["piggy+pack"] < resp[32]["packing"]
    # ...but collapses from 128 B onward.
    assert resp[2048]["piggy+pack"] > resp[2048]["packing"] * 2

    benchmark.extra_info["nand_reduction_32B_pct"] = round(
        100 * (1 - nand[32]["packing"] / nand[32]["baseline"]), 1
    )
