"""Fig 3: baseline PCIe traffic/response vs value size, and TAF (§2.4).

Regenerates both panels and asserts the paper's shape: traffic is constant
within each 4 KiB bucket and doubles at page boundaries; TAF halves as the
value size doubles, starting near 130 at 32 B.
"""

import pytest

from repro.bench.figures import fig3
from repro.bench.report import bench_ops as _bench_ops

from benchmarks.conftest import run_figure

OPS = _bench_ops(400)


def bench_fig3_traffic_and_taf(benchmark, emit):
    fig_a, fig_b = run_figure(benchmark, fig3, OPS)
    emit([fig_a, fig_b])

    traffic = fig_a.column("pcie_GB_at_1M_ops")
    sizes = fig_a.column("value_KiB")
    # Constant within buckets: 1-4 KiB identical; 5-8 KiB identical.
    assert traffic[0] == traffic[3]
    assert traffic[4] == traffic[7]
    # Doubling at the first page boundary.
    assert traffic[4] == pytest.approx(2 * traffic[3], rel=0.02)
    assert sizes[3] == 4 and sizes[4] == 5

    taf = dict(zip(fig_b.column("value_B"), fig_b.column("traffic_amplification_factor")))
    assert taf[32] == pytest.approx(130, rel=0.02)   # paper: 130.0
    assert taf[64] == pytest.approx(65, rel=0.03)    # paper: 65.0
    assert taf[1024] == pytest.approx(4.1, rel=0.05)  # paper: 4.1

    benchmark.extra_info["taf_32B"] = taf[32]
    benchmark.extra_info["traffic_GB_at_4KiB"] = traffic[3]
