"""Ablation: NAND page buffer pool size (§3.3.3 / Fig 12 W(C) discussion).

The paper attributes Backfill's W(C) degradation to "the constrained size
of the in-device NAND page buffer": DMA regions scatter ahead of the write
pointer, and a small pool forces entries out before their gaps can be
backfilled. This bench sweeps the pool size on large-value-dominant W(C)
and measures forced flushes and the response cost.
"""

from repro.bench.report import FigureResult, bench_ops as _bench_ops
from repro.sim.runner import run_workload
from repro.workloads.workloads import workload_c

OPS = _bench_ops(1200)
POOL_SIZES = (2, 8, 32, 128)


def _sweep_pool():
    rows = []
    for entries in POOL_SIZES:
        r = run_workload(
            "backfill", workload_c(OPS, seed=42),
            buffer_entries=entries, dlt_capacity=max(entries, 4),
        )
        snap = r.snapshot
        rows.append(
            [entries,
             int(snap["buffer.forced_flushes"]),
             int(snap["packing.backfill.fragmentation_bytes"]),
             r.nand_page_writes_with_flush,
             round(r.avg_response_us, 2)]
        )
    return FigureResult(
        figure_id="ablation_buffer_pool",
        title="Backfill vs NAND page buffer pool size on W(C)",
        columns=["pool_entries", "forced_flushes", "fragmentation_bytes",
                 "nand_writes", "avg_response_us"],
        rows=rows,
        notes=[
            f"{OPS} ops; small pools force-flush entries whose gaps were "
            "still backfillable — the paper's W(C) pathology",
        ],
    )


def bench_buffer_pool_pressure(benchmark, emit):
    fig = benchmark.pedantic(_sweep_pool, rounds=1, iterations=1)
    emit([fig])
    forced = dict(zip(fig.column("pool_entries"), fig.column("forced_flushes")))
    nand = dict(zip(fig.column("pool_entries"), fig.column("nand_writes")))
    # Tiny pools force-flush; big pools don't (within this run length).
    assert forced[2] > 0
    assert forced[2] >= forced[128]
    # More pool never costs more NAND writes.
    assert nand[128] <= nand[2]
    benchmark.extra_info["forced_flushes_pool2"] = forced[2]
