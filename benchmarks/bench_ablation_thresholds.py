"""Ablation: adaptive-transfer coefficients α/β (§3.2).

The paper lets users scale the calibrated thresholds — α·threshold₁ and
β·threshold₂ — to trade response time for PCIe traffic. This bench sweeps α
on the real-world W(M) mix and regenerates the calibration benchmark that
derives the thresholds in the first place.
"""

from repro.bench.report import FigureResult, bench_ops as _bench_ops
from repro.core.thresholds import ThresholdCalibrator
from repro.sim.runner import run_workload
from repro.units import MIB
from repro.workloads.workloads import workload_m

OPS = _bench_ops(1500)
ALPHAS = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)


def _sweep_alpha():
    rows = []
    for alpha in ALPHAS:
        r = run_workload(
            "adaptive", workload_m(OPS, seed=42),
            nand_io_enabled=False, alpha=alpha,
        )
        rows.append(
            [alpha, round(r.avg_response_us, 2),
             round(r.pcie_total_bytes / MIB, 2),
             round(r.traffic_amplification, 2)]
        )
    return FigureResult(
        figure_id="ablation_alpha",
        title="Adaptive transfer: alpha sweep on W(M) (traffic vs response)",
        columns=["alpha", "avg_response_us", "pcie_MB", "taf"],
        rows=rows,
        notes=[
            f"{OPS} ops, NAND disabled; threshold1=91 B baseline",
            "raising alpha shifts more values to piggybacking: traffic "
            "falls monotonically, response eventually rises (§3.2)",
        ],
    )


def bench_alpha_tradeoff(benchmark, emit):
    fig = benchmark.pedantic(_sweep_alpha, rounds=1, iterations=1)
    emit([fig])
    traffic = fig.column("pcie_MB")
    # Traffic monotonically non-increasing in alpha.
    assert all(a >= b for a, b in zip(traffic, traffic[1:]))
    # Large alpha piggybacks everything: response worse than alpha=1.
    by_alpha = dict(zip(fig.column("alpha"), fig.column("avg_response_us")))
    assert by_alpha[8.0] > by_alpha[1.0]
    benchmark.extra_info["traffic_MB_alpha1"] = by_alpha[1.0]


def _calibrate():
    calibrator = ThresholdCalibrator(ops_per_point=50)
    result = calibrator.calibrate()
    rows = [
        [size, round(dict(result.curves["piggyback"])[size], 2),
         round(dict(result.curves["prp"])[size], 2)]
        for size, _ in result.curves["piggyback"]
    ]
    return result, FigureResult(
        figure_id="ablation_calibration",
        title="Threshold calibration sweep (piggyback vs PRP response)",
        columns=["value_B", "piggyback_us", "prp_us"],
        rows=rows,
        notes=[
            f"derived threshold1={result.threshold1} B, "
            f"threshold2={result.threshold2} B",
            "threshold1 lands at the two-command capacity boundary (91 B); "
            "threshold2=0 because hybrid never beats PRP on response "
            "(paper Fig 9b)",
        ],
    )


def bench_threshold_calibration(benchmark, emit):
    result, fig = benchmark.pedantic(_calibrate, rounds=1, iterations=1)
    emit([fig])
    assert 36 <= result.threshold1 <= 91
    assert result.threshold2 == 0
    benchmark.extra_info["threshold1"] = result.threshold1


def _sweep_beta():
    """β scales threshold₂: sub-page tails at or below β·threshold₂ go
    hybrid (DMA head + piggybacked tail) instead of pure PRP."""
    from repro.workloads.workloads import workload_a

    size = 4096 + 32  # the paper's (4K+32)B example
    rows = []
    for beta in (0.5, 1.0, 2.0, 4.0):
        r = run_workload(
            "adaptive", workload_a(OPS, size, seed=42),
            nand_io_enabled=False, threshold2=56, beta=beta,
        )
        rows.append(
            [beta, round(r.avg_response_us, 2),
             round(r.pcie_total_bytes / MIB, 2)]
        )
    return FigureResult(
        figure_id="ablation_beta",
        title="Adaptive transfer: beta sweep on (4K+32)B values "
              "(threshold2=56B)",
        columns=["beta", "avg_response_us", "pcie_MB"],
        rows=rows,
        notes=[
            f"{OPS} ops, NAND disabled",
            "beta >= 1 engages hybrid for the 32 B tail: traffic drops by "
            "nearly a page per op, response rises slightly (Fig 9's trade)",
        ],
    )


def bench_beta_tradeoff(benchmark, emit):
    fig = benchmark.pedantic(_sweep_beta, rounds=1, iterations=1)
    emit([fig])
    rows = dict(zip(fig.column("beta"), zip(fig.column("avg_response_us"),
                                            fig.column("pcie_MB"))))
    # beta=0.5: 32 > 28 -> pure PRP (2 pages). beta>=1: hybrid (1 page).
    assert rows[1.0][1] < rows[0.5][1] * 0.6   # traffic drops ~45 %
    assert rows[1.0][0] > rows[0.5][0]          # response slightly worse
    assert rows[2.0] == rows[1.0] == rows[4.0]  # same decision past 1.0
    benchmark.extra_info["traffic_MB_beta1"] = rows[1.0][1]
