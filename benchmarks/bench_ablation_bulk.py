"""Ablation: BandSlim vs host-side batching (Dotori/KV-CSD style, §1).

The paper's introduction rejects host-side batching for two reasons:
volatile host buffers risk losing acknowledged writes on power failure,
and the device pays per-pair unpacking overhead. This bench runs the
comparison: per-pair adaptive transfer vs bulk PUT at several batch sizes
on the real-world W(M) mix, reporting traffic, response, *and* the
durability exposure the paper warns about.
"""

from repro.bench.report import FigureResult, bench_ops as _bench_ops
from repro.host.api import KVStore
from repro.host.batcher import HostBatcher
from repro.sim.runner import run_workload
from repro.units import MIB
from repro.workloads.workloads import workload_m

OPS = _bench_ops(1500)
BATCH_SIZES = (8, 32, 128)


def _run_batched(batch_pairs: int):
    from repro.core.config import preset

    store = KVStore.open(preset("all"))
    batcher = HostBatcher(store, batch_pairs=batch_pairs)
    workload = workload_m(OPS, seed=42)
    start = store.device.clock.now_us
    for request in workload.requests():
        batcher.put(request.key, request.value)
    max_exposure = batcher.max_exposure
    batcher.flush()
    elapsed = store.device.clock.now_us - start
    return {
        "avg_us": elapsed / OPS,
        "traffic_mb": store.device.link.meter.total_bytes / MIB,
        "exposure": max_exposure,
    }


def _comparison():
    bandslim = run_workload("backfill", workload_m(OPS, seed=42))
    rows = [
        ["bandslim (per-pair)", round(bandslim.elapsed_us / OPS, 2),
         round(bandslim.pcie_total_bytes / MIB, 3), 0],
    ]
    for batch in BATCH_SIZES:
        r = _run_batched(batch)
        rows.append(
            [f"bulk (batch={batch})", round(r["avg_us"], 2),
             round(r["traffic_mb"], 3), r["exposure"]]
        )
    return FigureResult(
        figure_id="ablation_bulk",
        title="BandSlim vs host-side batching on W(M)",
        columns=["approach", "us_per_op", "pcie_MB", "max_durability_exposure"],
        rows=rows,
        notes=[
            f"{OPS} ops; exposure = acknowledged writes in volatile host "
            "memory at the worst instant (§1's power-failure risk)",
            "bulk batching amortizes commands but pays per-pair unpacking "
            "and stakes `batch` writes on host power",
        ],
    )


def bench_bulk_vs_bandslim(benchmark, emit):
    fig = benchmark.pedantic(_comparison, rounds=1, iterations=1)
    emit([fig])
    rows = {r["approach"]: r for r in fig.row_dicts()}
    # BandSlim never exposes acknowledged writes; batching stakes the batch.
    assert rows["bandslim (per-pair)"]["max_durability_exposure"] == 0
    assert rows["bulk (batch=128)"]["max_durability_exposure"] == 128
    # Bigger batches amortize per-op time further (the §1 appeal)...
    assert (
        rows["bulk (batch=128)"]["us_per_op"]
        <= rows["bulk (batch=8)"]["us_per_op"]
    )
    benchmark.extra_info["bandslim_us_per_op"] = rows["bandslim (per-pair)"]["us_per_op"]
    benchmark.extra_info["bulk128_us_per_op"] = rows["bulk (batch=128)"]["us_per_op"]
