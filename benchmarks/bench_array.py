"""Array-layer benches: rebuild throttle, hot-shard skew, rolling remounts.

Beyond the paper: the BandSlim stack as one device of a replicated array
(see docs/array.md). Three questions a deployment cares about:

* **Throttle tradeoff** — ``rebuild_throttle`` interleaves keyspace copies
  between foreground ops; more copies per op drains the rebuild faster but
  stalls the foreground tail. The sweep makes the p99-vs-rebuild-rate
  curve visible, and the oracle must hold at every point.
* **Hot-shard skew** — a zipf-skewed keyspace concentrates load on the hot
  key's replica set; replication spreads reads, the ring spreads keys.
* **Rolling remounts** — the maintenance story: every device pulled and
  remounted in turn under live traffic, zero acked writes lost.
"""

from __future__ import annotations

import random

from repro.array import ArrayStore
from repro.array.scenario import run_device_loss, run_rolling_remounts
from repro.bench.report import FigureResult, bench_ops as _bench_ops
from repro.core.config import BandSlimConfig
from repro.sim.sweeprun import parallel_map
from repro.units import KIB, MIB

OPS = _bench_ops(400)
THROTTLES = (0.5, 2.0, 8.0, 32.0)


def _array_cfg(**overrides):
    base = dict(
        array_shards=3,
        replication_factor=2,
        write_quorum=1,
        nand_capacity_bytes=64 * MIB,
        buffer_entries=32,
        memtable_flush_bytes=16 * KIB,
        dlt_capacity=64,
    )
    base.update(overrides)
    return BandSlimConfig(**base)


def _throttle_point(throttle):
    """One sweep point — module-level so parallel_map can pickle it."""
    report = run_device_loss(
        ops=OPS, seed=17, kill_mode="failstop",
        rebuild_throttle=throttle,
    )
    assert report.ok, report.violations
    return [throttle,
            round(report.put_p99_us, 1),
            round(report.get_p99_us, 1),
            report.rebuild_copied,
            report.failovers]


def _throttle_sweep():
    # Points are independent runs: fan across cores when
    # REPRO_BENCH_WORKERS asks for it, serial (identical rows) otherwise.
    rows = parallel_map(_throttle_point, THROTTLES)
    return FigureResult(
        figure_id="array_throttle",
        title=f"Device-loss under live traffic ({OPS} ops, R=2): "
              f"foreground p99 vs rebuild throttle",
        columns=["copies_per_op", "put_p99_us", "get_p99_us",
                 "rebuild_copied", "failovers"],
        rows=rows,
        notes=[
            "copies run between foreground ops and are charged to the next "
            "op's latency: higher throttle = faster rebuild, fatter tail",
            "the durability oracle (acked => durable on >= quorum replicas) "
            "holds at every throttle",
        ],
    )


def _zipf_keys(rng, count, n_keys, exponent=1.1):
    keys = [b"hot%05d" % i for i in range(n_keys)]
    weights = [1.0 / (rank + 1) ** exponent for rank in range(n_keys)]
    return keys, rng.choices(keys, weights=weights, k=count)


def _skew_point(replication):
    """One skew sweep point — module-level for parallel_map."""
    r = _skew_run(replication)
    return [replication, round(r["max_over_mean"], 2),
            str(r["loads"]), round(r["put_p99_us"], 1)]


def _skew_run(replication):
    cfg = _array_cfg(replication_factor=replication)
    store = ArrayStore.build(config=cfg)
    rng = random.Random(23)
    _, picks = _zipf_keys(rng, OPS, max(16, OPS // 8))
    for i, key in enumerate(picks):
        if i % 4 == 3:
            try:
                store.get(key)
            except Exception:
                pass
        else:
            store.put(key, b"z" * 128)
    snap = store.snapshot()
    loads = [
        snap[f"shard{i}.driver.puts"] + snap[f"shard{i}.driver.gets"]
        for i in range(cfg.array_shards)
    ]
    mean = sum(loads) / len(loads)
    return {
        "max_over_mean": max(loads) / mean if mean else 0.0,
        "loads": [int(x) for x in loads],
        "put_p99_us": snap.get("array.put_latency_us.p99", 0.0),
    }


def _skew_sweep():
    rows = parallel_map(_skew_point, (1, 2, 3))
    return FigureResult(
        figure_id="array_skew",
        title=f"Hot-shard skew (zipf keys, {OPS} ops, 3 devices): "
              f"device load vs replication",
        columns=["replication", "max_load_over_mean", "per_device_ops",
                 "put_p99_us"],
        rows=rows,
        notes=[
            "zipf(1.1) key popularity; the consistent-hash ring spreads "
            "keys, replication spreads each hot key across R devices",
        ],
    )


def _rolling():
    report = run_rolling_remounts(ops_per_phase=max(40, OPS // 8), seed=29)
    assert report.ok, report.violations
    return FigureResult(
        figure_id="array_rolling",
        title="Rolling remounts: every device pulled + remounted in turn",
        columns=["metric", "value"],
        rows=[
            ["ops", report.ops],
            ["acked_puts", report.acked_puts],
            ["acked_deletes", report.acked_deletes],
            ["rebuild_copied", report.rebuild_copied],
            ["rebuild_skipped_live_won", report.rebuild_skipped],
            ["failovers", report.failovers],
            ["put_p99_us", round(report.put_p99_us, 1)],
            ["violations", len(report.violations)],
        ],
        notes=[
            "fail-stop pull, remount recovery from the device's own media, "
            "survivors stream the delta; the oracle holds end to end",
        ],
    )


def bench_rebuild_throttle(benchmark, emit):
    fig = benchmark.pedantic(_throttle_sweep, rounds=1, iterations=1)
    emit([fig])
    copied = dict(zip(fig.column("copies_per_op"), fig.column("rebuild_copied")))
    # A faster throttle must never rebuild *less* of the slice during the
    # same traffic window.
    assert copied[THROTTLES[-1]] >= copied[THROTTLES[0]]
    benchmark.extra_info["p99_at_max_throttle"] = fig.rows[-1][1]


def bench_hot_shard_skew(benchmark, emit):
    fig = benchmark.pedantic(_skew_sweep, rounds=1, iterations=1)
    emit([fig])
    ratios = dict(zip(fig.column("replication"), fig.column("max_load_over_mean")))
    # R=3 puts every key on every device: per-device load is exactly even.
    assert ratios[3] <= ratios[1] + 0.01
    benchmark.extra_info["skew_r1"] = ratios[1]


def bench_rolling_remounts(benchmark, emit):
    fig = benchmark.pedantic(_rolling, rounds=1, iterations=1)
    emit([fig])
    rows = dict(fig.rows)
    assert rows["violations"] == 0
    assert rows["rebuild_copied"] > 0
    benchmark.extra_info["rebuild_copied"] = rows["rebuild_copied"]
