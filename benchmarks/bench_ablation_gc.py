"""Ablation: garbage collection vs over-provisioning (FTL level).

The paper's append-mostly experiments never wrap the module, but the FTL
substrate must survive sustained overwrites. This bench drives the FTL
directly (the vLog's logical space is append-bounded by design — see
``repro.lsm.vlog_gc`` — so device-level wrap-around goes through SSTable
churn instead) and sweeps the GC reserve: more over-provisioning means
fewer, cheaper collections — the classic SSD trade.
"""

from repro.bench.report import FigureResult, bench_ops as _bench_ops
from repro.nand.flash import NandFlash
from repro.nand.ftl import PageMappedFTL
from repro.nand.gc import GreedyGarbageCollector
from repro.nand.geometry import NandGeometry
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.units import KIB

OPS_MULTIPLier = 3  # total writes = module pages x this
RESERVES = (2, 6, 12)


def _run(reserve_blocks: int):
    geo = NandGeometry(
        channels=2, ways_per_channel=2, blocks_per_way=8,
        pages_per_block=16, page_size=16 * KIB,
    )
    clock = SimClock()
    flash = NandFlash(geo, clock, LatencyModel())
    ftl = PageMappedFTL(flash, gc_reserve_blocks=reserve_blocks)
    gc = GreedyGarbageCollector(ftl, batch_blocks=2)
    ftl.set_gc(gc)
    working_set = geo.total_pages // 3  # 2/3 of each victim is garbage
    writes = geo.total_pages * OPS_MULTIPLier
    for i in range(writes):
        ftl.write(i % working_set, bytes([i % 256]))
    wear = ftl.wear_stats()
    return {
        "collections": gc.collections,
        "relocated": gc.pages_relocated,
        "erases": flash.block_erases,
        "wear_spread": wear["max_erases"] - wear["min_erases"],
        "us_per_write": clock.now_us / writes,
    }


def _sweep():
    rows = []
    for reserve in RESERVES:
        r = _run(reserve)
        rows.append(
            [reserve, r["collections"], r["relocated"], r["erases"],
             r["wear_spread"], round(r["us_per_write"], 1)]
        )
    return FigureResult(
        figure_id="ablation_gc",
        title="FTL garbage collection vs over-provisioning reserve",
        columns=["reserve_blocks", "gc_rounds", "pages_relocated",
                 "block_erases", "wear_spread", "us_per_write"],
        rows=rows,
        notes=[
            f"32-block module, working set = 1/3 of pages, "
            f"{OPS_MULTIPLier}x module capacity written",
            "larger reserves start GC earlier but each round is cheaper; "
            "greedy victim selection keeps relocations low when most of a "
            "block is overwritten garbage",
        ],
    )


def bench_gc_overprovisioning(benchmark, emit):
    fig = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit([fig])
    rows = {r["reserve_blocks"]: r for r in fig.row_dicts()}
    for reserve in RESERVES:
        assert rows[reserve]["gc_rounds"] > 0, reserve
        assert rows[reserve]["block_erases"] > 0
        # Integrity is asserted inside _run by construction (write model);
        # here: relocation stays a small share of total traffic.
        assert rows[reserve]["pages_relocated"] < rows[reserve]["block_erases"] * 16
    benchmark.extra_info["erases_reserve2"] = rows[2]["block_erases"]
