"""Ablation: the memcpy calibration knob behind the one known divergence.

EXPERIMENTS.md documents the single ordering this model does not reproduce:
the paper has Backfill ahead of All Packing on W(M); this model has All
slightly ahead. The deciding constant is the firmware memcpy rate — All
pays a copy per DMA value, Backfill pays NAND space instead. This bench
sweeps `memcpy_per_byte_us` and tabulates the verdict, locating the
crossover that separates this model's default (0.01 µs/B ≈ 100 MB/s) from
where the paper's FPGA apparently sits.
"""

from repro.bench.report import FigureResult, bench_ops as _bench_ops
from repro.sim.latency import LatencyModel
from repro.sim.runner import run_workload
from repro.workloads.workloads import workload_b, workload_m

OPS = _bench_ops(1200)
RATES = (0.005, 0.01, 0.02, 0.04, 0.08)
POOL = 8  # steady-state flushing (see bench_ablation_integrated)


def _sweep():
    rows = []
    for rate in RATES:
        latency = LatencyModel().with_overrides(memcpy_per_byte_us=rate)
        for wname, factory in (("W(B)", workload_b), ("W(M)", workload_m)):
            allp = run_workload("all", factory(OPS, seed=42), latency=latency,
                                buffer_entries=POOL, dlt_capacity=POOL)
            bf = run_workload("backfill", factory(OPS, seed=42), latency=latency,
                              buffer_entries=POOL, dlt_capacity=POOL)
            winner = "all" if allp.avg_response_us <= bf.avg_response_us else "backfill"
            rows.append(
                [rate, wname, round(allp.avg_response_us, 2),
                 round(bf.avg_response_us, 2), winner]
            )
    return FigureResult(
        figure_id="ablation_memcpy",
        title="All vs Backfill verdict across memcpy calibrations",
        columns=["memcpy_us_per_B", "workload", "all_us", "backfill_us",
                 "winner"],
        rows=rows,
        notes=[
            f"{OPS} ops, {POOL}-entry pool",
            "W(B) flips to Backfill from ~2x costlier copies (the 2 KiB "
            "values make All's memcpy bill material); W(M) never flips on "
            "this knob alone — its DMA values are small and rare, so All's "
            "copies stay cheap while Backfill's gaps persist. The paper's "
            "W(M) verdict therefore needs NAND-program overlap (free "
            "flushes at low rates), which this synchronous-flush model "
            "deliberately omits — see EXPERIMENTS.md",
        ],
    )


def bench_memcpy_crossover(benchmark, emit):
    fig = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit([fig])
    verdicts = {
        (r["memcpy_us_per_B"], r["workload"]): r["winner"]
        for r in fig.row_dicts()
    }
    # At the default calibration All wins everywhere.
    for wname in ("W(B)", "W(M)"):
        assert verdicts[(RATES[0], wname)] == "all", wname
    # W(B)'s crossover exists inside the sweep; W(M)'s does not — the
    # divergence there is structural, not a memcpy-calibration artifact.
    assert verdicts[(RATES[-1], "W(B)")] == "backfill"
    assert verdicts[(RATES[-1], "W(M)")] == "all"
    benchmark.extra_info["wb_crossover_rate"] = next(
        rate for rate in RATES if verdicts[(rate, "W(B)")] == "backfill"
    )
