"""Fig 8: Baseline vs Piggyback — traffic and response across value sizes.

The paper's headline experiment (§4.2): piggybacking cuts PCIe traffic by
up to 97.9 % for small values, halves response at ≤32 B, reaches parity at
64 B, and degrades from 128 B as trailing commands serialize.
"""

import pytest

from repro.bench.figures import fig8
from repro.bench.report import bench_ops as _bench_ops

from benchmarks.conftest import run_figure

OPS = _bench_ops(400)


def bench_fig8_transfer_comparison(benchmark, emit):
    (fig,) = run_figure(benchmark, fig8, OPS)
    emit([fig])
    rows = {r["value_B"]: r for r in fig.row_dicts()}

    # Headline: 97.9 % traffic reduction at 4-32 B.
    for size in (4, 8, 16, 32):
        reduction = 1 - rows[size]["piggy_traffic_GB_at_1M"] / rows[size]["base_traffic_GB_at_1M"]
        assert reduction == pytest.approx(0.979, abs=0.004), size

    # Response: ~half at 32 B, parity at 64 B, worse from 128 B.
    assert 0.4 < rows[32]["piggy_resp_us"] / rows[32]["base_resp_us"] < 0.6
    assert rows[64]["piggy_resp_us"] == pytest.approx(
        rows[64]["base_resp_us"], rel=0.1
    )
    assert rows[128]["piggy_resp_us"] > rows[128]["base_resp_us"] * 1.3

    # Traffic approaches baseline at 2 KiB and exceeds it at 4 KiB.
    assert rows[2048]["piggy_traffic_GB_at_1M"] < rows[2048]["base_traffic_GB_at_1M"]
    assert rows[4096]["piggy_traffic_GB_at_1M"] > rows[4096]["base_traffic_GB_at_1M"]

    benchmark.extra_info["reduction_32B_pct"] = round(
        100 * (1 - rows[32]["piggy_traffic_GB_at_1M"] / rows[32]["base_traffic_GB_at_1M"]), 2
    )
