"""Ablation: the Integrated packing extension (paper §4.3 closing remark).

"We can design a controller that effectively adapts to any workload by
integrating the strengths of both" — this bench evaluates that controller:
All-style memcpy for small DMA values, Backfill-style aligned placement for
large ones, sweeping the copy threshold that splits them.
"""

from repro.bench.report import FigureResult, bench_ops as _bench_ops
from repro.sim.runner import run_workload
from repro.units import KIB
from repro.workloads.workloads import PAPER_WORKLOADS

OPS = _bench_ops(1200)
THRESHOLDS = (0, 1 * KIB, 3 * KIB, 4 * KIB)
#: Small pool so the run reaches steady-state flushing (data >> pool).
POOL = 8


def _policy_matrix():
    rows = []
    for wname, factory in PAPER_WORKLOADS.items():
        for name in ("all", "backfill"):
            r = run_workload(name, factory(OPS, seed=42),
                             buffer_entries=POOL, dlt_capacity=POOL)
            rows.append([wname, name, round(r.avg_response_us, 2),
                         r.nand_page_writes_with_flush,
                         round(r.avg_memcpy_us, 2)])
        for threshold in THRESHOLDS:
            r = run_workload(
                "integrated", factory(OPS, seed=42),
                buffer_entries=POOL, dlt_capacity=POOL,
                integrated_copy_threshold=threshold,
            )
            rows.append(
                [wname, f"integrated({threshold}B)",
                 round(r.avg_response_us, 2),
                 r.nand_page_writes_with_flush,
                 round(r.avg_memcpy_us, 2)]
            )
    return FigureResult(
        figure_id="ablation_integrated",
        title="Integrated packing vs its parents (All, Backfill)",
        columns=["workload", "policy", "avg_response_us", "nand_writes",
                 "avg_memcpy_us"],
        rows=rows,
        notes=[
            f"{OPS} ops/workload, adaptive transfer, {POOL}-entry pool",
            "threshold 0 degenerates to Backfill; a large threshold "
            "approaches All; the default 3 KiB tracks the better parent "
            "on every paper workload",
        ],
    )


def bench_integrated_policy(benchmark, emit):
    fig = benchmark.pedantic(_policy_matrix, rounds=1, iterations=1)
    emit([fig])
    # Index rows: (workload, policy) -> response.
    resp = {(r[0], r[1]): r[2] for r in fig.rows}
    for wname in PAPER_WORKLOADS:
        best_parent = min(resp[(wname, "all")], resp[(wname, "backfill")])
        integ = resp[(wname, f"integrated({3 * KIB}B)")]
        assert integ <= best_parent * 1.10, wname
    benchmark.extra_info["workloads_checked"] = len(PAPER_WORKLOADS)
