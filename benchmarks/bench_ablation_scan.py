"""Ablation: range-scan locality — packing × read caching × readahead.

The underlying KV-SSD [22] exists for range queries (SEEK/NEXT), and
BandSlim's fine-grained packing quietly helps them: densely packed values
share NAND pages, so a scan with a device read cache keeps hitting the
same cached page, while the Block layout's one-value-per-4 KiB-slot
spreads the same data across many more pages (64 B values: ~256
values per 16 KiB page packed, vs 4 per page in Block slots).

With ``queue_depth > 1`` the host scan additionally *readaheads*: each
LIST batch of keys resolves through one pipelined ``get_many`` call, so
consecutive keys' reads overlap across ways and — packed — coalesce onto
shared page senses even without a cache. The paper never evaluates reads;
this ablation quantifies both bonuses.
"""

from repro.bench.report import FigureResult, bench_ops as _bench_ops
from repro.core.config import preset
from repro.host.api import KVStore

OPS = _bench_ops(800)
VALUE_SIZE = 64  # piggybacked under adaptive transfer -> dense packing
CACHE_PAGES = 8

POLICIES = ("block", "all", "backfill")


def _scan_run(policy: str, queue_depth: int = 1, cache_pages: int = CACHE_PAGES):
    store = KVStore.open(
        preset(policy, read_cache_pages=cache_pages, buffer_entries=8,
               dlt_capacity=8, queue_depth=queue_depth)
    )
    for i in range(OPS):
        store.put(f"key{i:06d}".encode(), bytes([i % 256]) * VALUE_SIZE)
    store.flush()
    before = store.stats()
    t0 = store.device.clock.now_us
    scanned = sum(1 for _ in store.scan())
    elapsed = store.device.clock.now_us - t0
    assert scanned == OPS
    after = store.stats()
    sensed = after["nand.page_reads"] - before["nand.page_reads"]
    coalesced = after.get("nand.coalesced_reads", 0.0) - before.get(
        "nand.coalesced_reads", 0.0
    )
    total = sensed + coalesced
    cache = store.device.ftl._cache
    return {
        "nand_reads_per_value": sensed / OPS,
        "us_per_value": elapsed / OPS,
        "coalesce_rate": coalesced / total if total else 0.0,
        "cache_hit_rate": cache.hit_rate if cache is not None else 0.0,
    }


def _sweep():
    rows = []
    for policy in POLICIES:
        r = _scan_run(policy)
        rows.append(
            [policy, round(r["nand_reads_per_value"], 3),
             round(r["cache_hit_rate"], 3), round(r["us_per_value"], 2)]
        )
    return FigureResult(
        figure_id="ablation_scan",
        title=f"Full scan of {OPS} x {VALUE_SIZE} B values "
              f"({CACHE_PAGES}-page read cache)",
        columns=["policy", "nand_reads_per_value", "cache_hit_rate",
                 "us_per_value"],
        rows=rows,
        notes=[
            "dense packing -> many values per NAND page -> scans hit the "
            "read cache; Block's 4 KiB slots quarter the density",
        ],
    )


def _readahead_sweep():
    rows = []
    for policy in POLICIES:
        for qd, cache_pages in ((1, 0), (8, 0), (8, CACHE_PAGES)):
            r = _scan_run(policy, queue_depth=qd, cache_pages=cache_pages)
            rows.append(
                [policy, qd, cache_pages,
                 round(r["us_per_value"], 2),
                 round(r["nand_reads_per_value"], 3),
                 round(r["coalesce_rate"], 3),
                 round(r["cache_hit_rate"], 3)]
            )
    return FigureResult(
        figure_id="ablation_scan_readahead",
        title=f"Scan readahead ({OPS} x {VALUE_SIZE} B values): "
              f"packing x queue depth x cache",
        columns=["policy", "queue_depth", "cache_pages", "us_per_value",
                 "nand_reads_per_value", "coalesce_rate", "cache_hit_rate"],
        rows=rows,
        notes=[
            "qd>1 resolves each LIST batch with one pipelined get_many: "
            "reads overlap across ways and coalesce on shared pages",
            "the cache and the coalescer are complementary: the cache "
            "spans batches, the coalescer spans in-flight commands",
        ],
    )


def bench_scan_locality(benchmark, emit):
    fig = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit([fig])
    reads = dict(zip(fig.column("policy"), fig.column("nand_reads_per_value")))
    # Packed layouts read far fewer NAND pages per scanned value.
    assert reads["all"] < reads["block"] / 5
    assert reads["backfill"] < reads["block"] / 5
    benchmark.extra_info["block_reads_per_value"] = reads["block"]
    benchmark.extra_info["packed_reads_per_value"] = reads["all"]


def bench_scan_readahead(benchmark, emit):
    fig = benchmark.pedantic(_readahead_sweep, rounds=1, iterations=1)
    emit([fig])
    by_key = {
        (row[0], row[1], row[2]): dict(zip(fig.columns, row))
        for row in fig.rows
    }
    for policy in POLICIES:
        serial = by_key[(policy, 1, 0)]
        piped = by_key[(policy, 8, 0)]
        # Readahead must cut per-value scan time without a cache, and
        # some of the win must come from coalesced senses.
        assert piped["us_per_value"] < serial["us_per_value"] / 2
        assert piped["coalesce_rate"] > 0.0
        assert serial["coalesce_rate"] == 0.0
    benchmark.extra_info["packed_readahead_speedup"] = round(
        by_key[("all", 1, 0)]["us_per_value"]
        / by_key[("all", 8, 0)]["us_per_value"],
        2,
    )


def _interface_comparison():
    """Host-driven scan (LIST + GET per key) vs device-side iterator."""
    from repro.pcie.metrics import TrafficCategory

    rows = []
    for label, scan in (("host LIST+GET", "scan"), ("device iterator", "device_scan")):
        store = KVStore.open(preset("backfill", buffer_entries=8, dlt_capacity=8))
        for i in range(OPS):
            store.put(f"key{i:06d}".encode(), bytes([i % 256]) * VALUE_SIZE)
        store.flush()
        meter = store.device.link.meter
        cmds_before = meter.transactions_for(TrafficCategory.SQ_ENTRY)
        t0 = store.device.clock.now_us
        scanned = sum(1 for _ in getattr(store, scan)())
        elapsed = store.device.clock.now_us - t0
        assert scanned == OPS
        commands = meter.transactions_for(TrafficCategory.SQ_ENTRY) - cmds_before
        rows.append([label, commands, round(elapsed / OPS, 2)])
    return FigureResult(
        figure_id="ablation_scan_interface",
        title=f"Scan interface: host-driven vs device-side iterator "
              f"({OPS} x {VALUE_SIZE} B values)",
        columns=["interface", "commands", "us_per_value"],
        rows=rows,
        notes=[
            "the device iterator ([22]'s SEEK/NEXT) resolves values in "
            "firmware and ships page-sized batches: one command per batch "
            "instead of LIST plus one GET round trip per key",
        ],
    )


def bench_scan_interface(benchmark, emit):
    fig = benchmark.pedantic(_interface_comparison, rounds=1, iterations=1)
    emit([fig])
    cmds = dict(zip(fig.column("interface"), fig.column("commands")))
    us = dict(zip(fig.column("interface"), fig.column("us_per_value")))
    assert cmds["device iterator"] < cmds["host LIST+GET"] / 10
    assert us["device iterator"] < us["host LIST+GET"]
    benchmark.extra_info["command_reduction"] = round(
        cmds["host LIST+GET"] / cmds["device iterator"], 1
    )
