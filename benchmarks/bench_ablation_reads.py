"""Ablation: the read path (GET) under fine-grained packing.

The paper evaluates writes only; a natural question for adopters is whether
byte-offset value placement costs anything on reads. It shouldn't — a value
at offset 74 of a 16 KiB page reads the same one page as a value at offset
0 — and this bench verifies that, sweeping value sizes and packing policies
on a read-heavy mixed workload.
"""

from repro.bench.report import FigureResult, bench_ops as _bench_ops
from repro.sim.runner import run_workload
from repro.workloads.workloads import workload_mixed

OPS = _bench_ops(1500)
POLICIES = ("block", "all", "backfill")


def _sweep():
    rows = []
    for policy in POLICIES:
        r = run_workload(
            policy, workload_mixed(OPS, read_fraction=0.5, seed=42),
            buffer_entries=16, dlt_capacity=16,
        )
        snap = r.snapshot
        gets = snap["driver.gets"]
        reads_per_get = snap["nand.page_reads"] / gets if gets else 0.0
        rows.append(
            [policy,
             round(snap["driver.get_latency_us.mean"], 2),
             round(reads_per_get, 2),
             round(snap["driver.put_latency_us.mean"], 2)]
        )
    return FigureResult(
        figure_id="ablation_reads",
        title="GET cost vs packing policy (50% reads, mixgraph sizes)",
        columns=["policy", "get_latency_us", "nand_reads_per_get",
                 "put_latency_us"],
        rows=rows,
        notes=[
            f"{OPS} ops, 50 % GETs of previously written keys",
            "fine-grained placement must not raise per-GET NAND reads: a "
            "byte-offset value still reads one page (plus index probes)",
        ],
    )


def bench_read_path(benchmark, emit):
    fig = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit([fig])
    reads = dict(zip(fig.column("policy"), fig.column("nand_reads_per_get")))
    gets = dict(zip(fig.column("policy"), fig.column("get_latency_us")))
    # Packed layouts must not read more NAND per GET than block layout.
    assert reads["all"] <= reads["block"] + 0.5
    assert reads["backfill"] <= reads["block"] + 0.5
    # And GET latency must not regress materially.
    assert gets["backfill"] <= gets["block"] * 1.2
    benchmark.extra_info["reads_per_get_backfill"] = reads["backfill"]
