"""Ablation: the read path (GET) under fine-grained packing.

The paper evaluates writes only; a natural question for adopters is whether
byte-offset value placement costs anything on reads. It shouldn't — a value
at offset 74 of a 16 KiB page reads the same one page as a value at offset
0 — and the serial sweep verifies that across packing policies.

The pipelined sweep then measures what packing *buys* reads: with
``get_many`` keeping a queue of GETs in flight, in-flight commands whose
values share a physical page coalesce onto one NAND sense (the packed
layouts put hundreds of 64 B values on a page; Block's 4 KiB slots cap it
at 4), so the densely packed layouts turn their space win into a read
bandwidth win. Coalesce and cache hit rates are reported beside latency.
"""

from repro.bench.report import FigureResult, bench_ops as _bench_ops
from repro.core.config import preset
from repro.device.kvssd import KVSSD
from repro.sim.runner import run_workload
from repro.workloads.workloads import workload_mixed

OPS = _bench_ops(1500)
POLICIES = ("block", "all", "backfill")
VALUE_SIZE = 64
CACHE_PAGES = 64


def _serial_sweep():
    rows = []
    for policy in POLICIES:
        r = run_workload(
            policy, workload_mixed(OPS, read_fraction=0.5, seed=42),
            buffer_entries=16, dlt_capacity=16,
        )
        snap = r.snapshot
        gets = snap["driver.gets"]
        reads_per_get = snap["nand.page_reads"] / gets if gets else 0.0
        rows.append(
            [policy,
             round(snap["driver.get_latency_us.mean"], 2),
             round(reads_per_get, 2),
             round(snap["driver.put_latency_us.mean"], 2)]
        )
    return FigureResult(
        figure_id="ablation_reads",
        title="GET cost vs packing policy (50% reads, mixgraph sizes)",
        columns=["policy", "get_latency_us", "nand_reads_per_get",
                 "put_latency_us"],
        rows=rows,
        notes=[
            f"{OPS} ops, 50 % GETs of previously written keys",
            "fine-grained placement must not raise per-GET NAND reads: a "
            "byte-offset value still reads one page (plus index probes)",
        ],
    )


def _pipelined_run(policy: str, queue_depth: int, cache_pages: int) -> dict:
    cfg = preset(
        policy,
        buffer_entries=16,
        dlt_capacity=16,
        queue_depth=queue_depth,
        read_cache_pages=cache_pages,
    )
    device = KVSSD.build(cfg)
    keys = [b"abl-%06d" % i for i in range(OPS)]
    pairs = [(key, bytes([i % 256]) * VALUE_SIZE) for i, key in enumerate(keys)]
    device.driver.put_many(pairs)
    device.driver.flush()
    before = device.snapshot()
    t0 = device.clock.now_us
    results = device.driver.get_many(keys, max_size=4096)
    elapsed = device.clock.now_us - t0
    assert all(r.ok for r in results)
    after = device.snapshot()
    sensed = after["nand.page_reads"] - before["nand.page_reads"]
    coalesced = after.get("nand.coalesced_reads", 0.0) - before.get(
        "nand.coalesced_reads", 0.0
    )
    total = sensed + coalesced
    cache = device.ftl._cache
    return {
        "us_per_get": elapsed / OPS,
        "nand_reads_per_get": sensed / OPS,
        "coalesce_rate": coalesced / total if total else 0.0,
        "cache_hit_rate": cache.hit_rate if cache is not None else 0.0,
    }


def _pipelined_sweep():
    rows = []
    for policy in POLICIES:
        for qd, cache_pages in ((1, 0), (8, 0), (8, CACHE_PAGES)):
            r = _pipelined_run(policy, qd, cache_pages)
            rows.append(
                [policy, qd, cache_pages,
                 round(r["us_per_get"], 2),
                 round(r["nand_reads_per_get"], 3),
                 round(r["coalesce_rate"], 3),
                 round(r["cache_hit_rate"], 3)]
            )
    return FigureResult(
        figure_id="ablation_reads_pipelined",
        title=f"Pipelined GETs ({OPS} x {VALUE_SIZE} B values): "
              f"packing x queue depth x cache",
        columns=["policy", "queue_depth", "cache_pages", "us_per_get",
                 "nand_reads_per_get", "coalesce_rate", "cache_hit_rate"],
        rows=rows,
        notes=[
            "qd>1 overlaps index probes and value reads across ways and "
            "coalesces in-flight reads of shared pages into one sense",
            "packed layouts coalesce value reads that Block's "
            "one-value-per-slot layout cannot",
        ],
    )


def bench_read_path(benchmark, emit):
    fig = benchmark.pedantic(_serial_sweep, rounds=1, iterations=1)
    emit([fig])
    reads = dict(zip(fig.column("policy"), fig.column("nand_reads_per_get")))
    gets = dict(zip(fig.column("policy"), fig.column("get_latency_us")))
    # Packed layouts must not read more NAND per GET than block layout.
    assert reads["all"] <= reads["block"] + 0.5
    assert reads["backfill"] <= reads["block"] + 0.5
    # And GET latency must not regress materially.
    assert gets["backfill"] <= gets["block"] * 1.2
    benchmark.extra_info["reads_per_get_backfill"] = reads["backfill"]


def bench_read_pipeline(benchmark, emit):
    fig = benchmark.pedantic(_pipelined_sweep, rounds=1, iterations=1)
    emit([fig])
    by_key = {
        (row[0], row[1], row[2]): dict(zip(fig.columns, row))
        for row in fig.rows
    }
    for policy in POLICIES:
        serial = by_key[(policy, 1, 0)]
        piped = by_key[(policy, 8, 0)]
        # Pipelining must cut per-GET time and coalesce some reads.
        assert piped["us_per_get"] < serial["us_per_get"] / 2
        assert piped["coalesce_rate"] > 0.0
        # The serial path books every read for real.
        assert serial["coalesce_rate"] == 0.0
    cached = by_key[("all", 8, CACHE_PAGES)]
    assert cached["cache_hit_rate"] > 0.5
    benchmark.extra_info["packed_coalesce_rate"] = by_key[("all", 8, 0)][
        "coalesce_rate"
    ]
    benchmark.extra_info["packed_pipeline_speedup"] = round(
        by_key[("all", 1, 0)]["us_per_get"]
        / by_key[("all", 8, 0)]["us_per_get"],
        2,
    )
