"""Ablation: fine- vs page-grained vLog addressing (§3.4).

Fine-grained packing needs byte-level value addresses, growing every
LSM-tree entry. The paper argues the memory cost is a reasonable trade for
the NAND-space utilization packing buys. This bench prices both sides:
index bits per entry vs NAND pages consumed for the same data.
"""

from repro.bench.report import FigureResult, bench_ops as _bench_ops
from repro.lsm.addressing import AddressingScheme
from repro.sim.runner import run_workload
from repro.units import KIB, TIB
from repro.workloads.workloads import workload_m

OPS = _bench_ops(1500)
PAGE_16K = 16 * KIB


def _bit_budget_table():
    rows = []
    for label, vlog_bytes in (("8 GiB", 8 << 30), ("128 GiB", 128 << 30),
                              ("1 TB (paper)", 1 * TIB)):
        pages = vlog_bytes // PAGE_16K
        page_bits = AddressingScheme.PAGE.entry_addr_bits(pages, PAGE_16K)
        fine_bits = AddressingScheme.FINE.entry_addr_bits(pages, PAGE_16K)
        rows.append([label, page_bits, fine_bits, fine_bits - page_bits])
    return FigureResult(
        figure_id="ablation_addressing_bits",
        title="LSM entry address bits: page-unit vs fine-grained (§3.4)",
        columns=["vlog_capacity", "page_scheme_bits", "fine_scheme_bits",
                 "extra_bits"],
        rows=rows,
        notes=["paper example: 1 TB/16 KiB -> 28 vs 40 bits per entry"],
    )


def _utilization_table():
    rows = []
    for name in ("block", "backfill"):
        r = run_workload(name, workload_m(OPS, seed=42), buffer_entries=64,
                         dlt_capacity=64)
        useful = r.value_bytes
        nand_bytes = r.nand_page_writes_with_flush * PAGE_16K
        rows.append(
            [name, useful, r.nand_page_writes_with_flush,
             round(useful / nand_bytes, 4) if nand_bytes else 0.0]
        )
    return FigureResult(
        figure_id="ablation_addressing_utilization",
        title="NAND space utilization bought by fine-grained addressing, W(M)",
        columns=["policy", "value_bytes", "nand_pages", "utilization"],
        rows=rows,
        notes=[
            f"{OPS} ops; utilization = useful value bytes / NAND bytes "
            "programmed for values+index",
        ],
    )


def bench_addressing_bit_budget(benchmark, emit):
    fig = benchmark.pedantic(_bit_budget_table, rounds=1, iterations=1)
    emit([fig])
    paper_row = fig.rows[-1]
    assert paper_row[1] == 28 and paper_row[2] == 40


def bench_addressing_buys_utilization(benchmark, emit):
    fig = benchmark.pedantic(_utilization_table, rounds=1, iterations=1)
    emit([fig])
    util = dict(zip(fig.column("policy"), fig.column("utilization")))
    # The 12 extra index bits buy an order of magnitude of NAND space.
    assert util["backfill"] > util["block"] * 5
    benchmark.extra_info["utilization_gain"] = round(
        util["backfill"] / util["block"], 1
    )
