"""Ablation: batched trailing-command submission (the §4.2 diagnosis).

The paper attributes Piggyback's collapse beyond 128 B to the testbed's
synchronous one-command-at-a-time passthrough ("no subsequent commands can
be sent until the controller signals completion. This results in
round-trip overhead"). This bench quantifies how much of the penalty a
batching driver recovers — and how much is irreducible (per-command SQE
fetch + firmware decode survive batching).
"""

from repro.bench.report import FigureResult, bench_ops as _bench_ops
from repro.sim.runner import run_workload
from repro.units import KIB
from repro.workloads.workloads import workload_a

OPS = _bench_ops(500)
SIZES = (32, 128, 512, 1 * KIB, 2 * KIB, 4 * KIB)


def _sweep():
    rows = []
    for size in SIZES:
        sync = run_workload("piggyback", workload_a(OPS, size, seed=42),
                            nand_io_enabled=False)
        batched = run_workload("piggyback", workload_a(OPS, size, seed=42),
                               nand_io_enabled=False, batched_submission=True)
        base = run_workload("baseline", workload_a(OPS, size, seed=42),
                            nand_io_enabled=False)
        rows.append(
            [size,
             round(base.avg_response_us, 1),
             round(sync.avg_response_us, 1),
             round(batched.avg_response_us, 1),
             round(sync.mmio_bytes / batched.mmio_bytes, 1)]
        )
    return FigureResult(
        figure_id="ablation_batching",
        title="Piggyback response: synchronous passthrough vs batched submission",
        columns=["value_B", "baseline_us", "piggy_sync_us", "piggy_batched_us",
                 "mmio_ratio"],
        rows=rows,
        notes=[
            f"{OPS} ops/point, NAND disabled",
            "batching removes per-command doorbells and completion handling; "
            "SQE fetch and firmware decode remain, so piggybacking still "
            "loses to PRP for page-scale values",
        ],
    )


def bench_batched_submission(benchmark, emit):
    fig = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit([fig])
    rows = {r["value_B"]: r for r in fig.row_dicts()}
    # Batching recovers a large slice of the large-value penalty...
    assert rows[2048]["piggy_batched_us"] < rows[2048]["piggy_sync_us"] * 0.65
    # ...but does not make piggybacking beat PRP at page scale.
    assert rows[4096]["piggy_batched_us"] > rows[4096]["baseline_us"]
    # Single-command sizes are untouched.
    assert rows[32]["piggy_batched_us"] == rows[32]["piggy_sync_us"]
    benchmark.extra_info["recovered_at_2KiB_pct"] = round(
        100 * (1 - rows[2048]["piggy_batched_us"] / rows[2048]["piggy_sync_us"]), 1
    )
