"""Fig 4: baseline NAND page writes/response vs value size, and WAF (§2.4)."""

import pytest

from repro.bench.figures import fig4
from repro.bench.report import bench_ops as _bench_ops

from benchmarks.conftest import run_figure

OPS = _bench_ops(400)


def bench_fig4_nand_and_waf(benchmark, emit):
    fig_a, fig_b = run_figure(benchmark, fig4, OPS)
    emit([fig_a, fig_b])

    nand = fig_a.column("nand_io_millions_at_1M_ops")
    resp = fig_a.column("avg_response_us")
    # NAND I/O steps at page boundaries: 4 KiB bucket vs 5-8 KiB bucket.
    assert nand[4] == pytest.approx(2 * nand[3], rel=0.1)
    # 16 KiB values: one NAND page program per op.
    assert nand[-1] == pytest.approx(1.0, rel=0.1)
    # Write responses NAND-dominated and increasing with page count.
    assert resp[-1] > resp[0] > 50

    waf = dict(zip(fig_b.column("value_B"), fig_b.column("write_amplification_factor")))
    assert waf[32] == pytest.approx(130, rel=0.10)   # paper: 129.9
    assert waf[1024] == pytest.approx(4.0, rel=0.15)  # paper: 4.0

    benchmark.extra_info["waf_32B"] = waf[32]
    benchmark.extra_info["nand_M_at_16KiB"] = nand[-1]
