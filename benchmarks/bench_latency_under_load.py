"""Latency-under-load bench: offered-RPS sweep through the KV service.

Drives the networked server (``repro.serve``) with the open-loop load
generator (``repro.loadgen``) across a grid of offered request rates and
records p50/p99/p999 latency, achieved throughput and SERVER_BUSY
rejections per rate, plus the detected saturation knee — vanilla
(``baseline``: page-granular PRP transfers) against the variant
(``backfill``: fine-grained piggyback + backfill packing), same seed,
same arrival schedule.

Everything is measured in *virtual* microseconds over the simulated
device, and the client runs one connection, so the whole table is
deterministic: the committed ``BENCH_latency_under_load.json`` is a
reviewable diff, not a noisy measurement. A second run of one sweep
point double-checks that before the file is written.

Usage::

    PYTHONPATH=src python benchmarks/bench_latency_under_load.py          # full
    PYTHONPATH=src python benchmarks/bench_latency_under_load.py --quick  # CI
    ... --out BENCH_latency_under_load.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.loadgen import run_loadtest, run_rps_sweep

FULL_RPS_POINTS = [2_000.0, 4_000.0, 8_000.0, 16_000.0, 32_000.0, 64_000.0]
QUICK_RPS_POINTS = [4_000.0, 16_000.0, 64_000.0]

#: vanilla-vs-variant pair: page-granular PRP transfer vs the paper's
#: piggyback + backfill packing stack.
CONFIGS = ["baseline", "backfill"]


def run_config_sweep(
    preset: str, rps_points: list[float], requests: int, seed: int
) -> dict:
    return run_rps_sweep(
        rps_points,
        preset,
        requests=requests,
        conns=1,
        seed=seed,
        num_keys=200,
        value_size=256,
        read_fraction=0.5,
    )


def check_determinism(preset: str, rps: float, requests: int, seed: int) -> bool:
    """Two identical runs must produce identical reports."""
    first = run_loadtest(
        preset, rps=rps, requests=requests, conns=1, seed=seed, num_keys=200
    )
    second = run_loadtest(
        preset, rps=rps, requests=requests, conns=1, seed=seed, num_keys=200
    )
    return first.to_dict() == second.to_dict()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true", help="small op counts for CI smoke"
    )
    parser.add_argument(
        "--out", default="BENCH_latency_under_load.json", help="output JSON path"
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    rps_points = QUICK_RPS_POINTS if args.quick else FULL_RPS_POINTS
    requests = 400 if args.quick else 1_500

    report = {
        # 2: rows carry retry accounting (retries/gave_up/deadline_exceeded).
        "schema": 2,
        "quick": args.quick,
        "seed": args.seed,
        "requests_per_point": requests,
        "process": "poisson",
        "configs": {},
    }
    for preset in CONFIGS:
        sweep = run_config_sweep(preset, rps_points, requests, args.seed)
        report["configs"][preset] = sweep
        print(f"{preset}: knee = "
              f"{'none' if sweep['knee_rps'] is None else '%.0f rps' % sweep['knee_rps']}")
        for row in sweep["rows"]:
            print(f"  rps {row['offered_rps']:>8.0f}: "
                  f"achieved {row['achieved_rps']:>9.1f}, "
                  f"p50 {row['p50_us']:>9.1f} us, "
                  f"p99 {row['p99_us']:>9.1f} us, "
                  f"p999 {row['p999_us']:>9.1f} us, "
                  f"busy {row['busy_rejected']}")

    status = 0
    total_protocol_errors = sum(
        row["protocol_errors"]
        for sweep in report["configs"].values()
        for row in sweep["rows"]
    )
    if total_protocol_errors:
        print(f"FAIL: {total_protocol_errors} protocol errors during the sweep")
        status = 1

    vanilla = report["configs"]["baseline"]
    variant = report["configs"]["backfill"]
    # The variant must not saturate earlier than vanilla: knee(backfill)
    # >= knee(baseline) (None = never saturated inside the swept range).
    v_knee, b_knee = vanilla["knee_rps"], variant["knee_rps"]
    report["knee_comparison"] = {"baseline": v_knee, "backfill": b_knee}
    if v_knee is not None and b_knee is not None and b_knee < v_knee:
        print(f"FAIL: variant knees earlier ({b_knee:.0f}) than "
              f"vanilla ({v_knee:.0f})")
        status = 1

    deterministic = check_determinism(
        "backfill", rps_points[0], requests, args.seed
    )
    report["deterministic"] = deterministic
    if not deterministic:
        print("FAIL: repeated sweep point produced a different report")
        status = 1

    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
