"""Latency-under-load bench: offered-RPS sweep through the KV service.

Drives the networked server (``repro.serve``) with the open-loop load
generator (``repro.loadgen``) across a grid of offered request rates and
records p50/p99/p999 latency, achieved throughput and SERVER_BUSY
rejections per rate, plus the detected saturation knee — vanilla
(``baseline``: page-granular PRP transfers) against the variant
(``backfill``: fine-grained piggyback + backfill packing), same seed,
same arrival schedule.

Schema 3 adds the **serving-mode** comparison: the same backfill store
behind a 4-shard array, served serially (one op at a time, scalar
virtual-time queue) versus batch-dispatched (``dispatch_batch=32``,
``server_qd=16``: doorbell-flushed groups through the drivers' pipelined
``put_many``/``get_many`` paths, per-shard QD-slot queueing model). The
bench asserts the batched knee sits far to the right of the serial knee
while low-load p50 stays honest.

Everything is measured in *virtual* microseconds over the simulated
device, and the client runs one connection, so the whole table is
deterministic: the committed ``BENCH_latency_under_load.json`` is a
reviewable diff, not a noisy measurement. Repeated sweep points
double-check that before the file is written.

Usage::

    PYTHONPATH=src python benchmarks/bench_latency_under_load.py          # full
    PYTHONPATH=src python benchmarks/bench_latency_under_load.py --quick  # CI
    ... --out BENCH_latency_under_load.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.loadgen import run_loadtest, run_rps_sweep
from repro.serve.server import ServerSettings

FULL_RPS_POINTS = [2_000.0, 4_000.0, 8_000.0, 16_000.0, 32_000.0, 64_000.0]
QUICK_RPS_POINTS = [4_000.0, 16_000.0, 64_000.0]

#: The serving-mode sweeps reach far past the serial knee so the batched
#: knee lands inside the swept range (first point shared with the serial
#: grid for the low-load p50 comparison).
FULL_MODE_POINTS = [2_000.0, 8_000.0, 32_000.0, 64_000.0, 128_000.0,
                    256_000.0]
QUICK_MODE_POINTS = [4_000.0, 64_000.0, 256_000.0]

#: vanilla-vs-variant pair: page-granular PRP transfer vs the paper's
#: piggyback + backfill packing stack.
CONFIGS = ["baseline", "backfill"]

#: Batched serving-path knobs (the 4x8 default NAND geometry has 32-way
#: internal parallelism per device; four shards multiply it again).
MODE_SHARDS = 4
MODE_DISPATCH_BATCH = 32
MODE_SERVER_QD = 16

#: Knee-shift floor enforced on the regenerated artefact: the batched
#: dispatcher must move the backfill knee at least this far right.
KNEE_FACTOR_FULL = 3.0
KNEE_FACTOR_QUICK = 2.0
#: Low-load p50 budget: batched must stay within 10 % of serial.
P50_BUDGET = 0.10


def run_config_sweep(
    preset: str, rps_points: list[float], requests: int, seed: int,
    array_shards: int = 1, settings: ServerSettings | None = None,
) -> dict:
    return run_rps_sweep(
        rps_points,
        preset,
        requests=requests,
        conns=1,
        seed=seed,
        num_keys=200,
        value_size=256,
        read_fraction=0.5,
        array_shards=array_shards,
        settings=settings,
        include_server_stats=True,
    )


def batched_settings() -> ServerSettings:
    return ServerSettings(
        dispatch_batch=MODE_DISPATCH_BATCH, server_qd=MODE_SERVER_QD
    )


def check_determinism(preset: str, rps: float, requests: int, seed: int,
                      array_shards: int = 1,
                      settings: ServerSettings | None = None) -> bool:
    """Two identical runs must produce identical reports."""
    kwargs = dict(rps=rps, requests=requests, conns=1, seed=seed,
                  num_keys=200, array_shards=array_shards, settings=settings)
    return run_loadtest(preset, **kwargs).to_dict() == \
        run_loadtest(preset, **kwargs).to_dict()


def _print_sweep(label: str, sweep: dict) -> None:
    knee = sweep["knee_rps"]
    print(f"{label}: knee = "
          f"{'none' if knee is None else '%.0f rps' % knee}")
    for row in sweep["rows"]:
        print(f"  rps {row['offered_rps']:>8.0f}: "
              f"achieved {row['achieved_rps']:>9.1f}, "
              f"p50 {row['p50_us']:>9.1f} us, "
              f"p99 {row['p99_us']:>9.1f} us, "
              f"p999 {row['p999_us']:>9.1f} us, "
              f"busy {row['busy_rejected']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true", help="small op counts for CI smoke"
    )
    parser.add_argument(
        "--out", default="BENCH_latency_under_load.json", help="output JSON path"
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    rps_points = QUICK_RPS_POINTS if args.quick else FULL_RPS_POINTS
    mode_points = QUICK_MODE_POINTS if args.quick else FULL_MODE_POINTS
    requests = 400 if args.quick else 1_500
    knee_factor = KNEE_FACTOR_QUICK if args.quick else KNEE_FACTOR_FULL

    report = {
        # 2: rows carry retry accounting (retries/gave_up/deadline_exceeded).
        # 3: rows carry populated server_stats; serving_modes section
        #    compares the serial and batch-dispatched serving paths.
        "schema": 3,
        "quick": args.quick,
        "seed": args.seed,
        "requests_per_point": requests,
        "process": "poisson",
        "configs": {},
    }
    for preset in CONFIGS:
        sweep = run_config_sweep(preset, rps_points, requests, args.seed)
        report["configs"][preset] = sweep
        _print_sweep(preset, sweep)

    # --- serving-mode comparison: serial vs batched dispatch ---------------
    serial_sweep = run_config_sweep(
        "backfill", mode_points, requests, args.seed,
        array_shards=MODE_SHARDS,
    )
    batched_sweep = run_config_sweep(
        "backfill", mode_points, requests, args.seed,
        array_shards=MODE_SHARDS, settings=batched_settings(),
    )
    _print_sweep(f"serial (backfill x{MODE_SHARDS})", serial_sweep)
    _print_sweep(
        f"batched (backfill x{MODE_SHARDS}, "
        f"db={MODE_DISPATCH_BATCH}, qd={MODE_SERVER_QD})", batched_sweep,
    )
    serial_knee = serial_sweep["knee_rps"]
    batched_knee = batched_sweep["knee_rps"]
    # A knee of None means the service never saturated inside the swept
    # range: score it as just past the last point (a lower bound).
    score = lambda knee: knee if knee is not None else 2.0 * mode_points[-1]  # noqa: E731
    knee_ratio = round(score(batched_knee) / score(serial_knee), 3)
    serial_p50 = serial_sweep["rows"][0]["p50_us"]
    batched_p50 = batched_sweep["rows"][0]["p50_us"]
    p50_delta = round((batched_p50 - serial_p50) / serial_p50, 4)
    report["serving_modes"] = {
        "settings": {
            "array_shards": MODE_SHARDS,
            "dispatch_batch": MODE_DISPATCH_BATCH,
            "server_qd": MODE_SERVER_QD,
        },
        "serial": serial_sweep,
        "batched": batched_sweep,
        "knee_shift": {
            "serial_knee_rps": serial_knee,
            "batched_knee_rps": batched_knee,
            "ratio": knee_ratio,
            "required_factor": knee_factor,
        },
        "low_load_p50": {
            "offered_rps": mode_points[0],
            "serial_p50_us": serial_p50,
            "batched_p50_us": batched_p50,
            "delta_fraction": p50_delta,
            "budget": P50_BUDGET,
        },
    }
    print(f"knee shift: serial {score(serial_knee):.0f} -> "
          f"batched {score(batched_knee):.0f} rps ({knee_ratio:.1f}x, "
          f"need >= {knee_factor:.0f}x)")
    print(f"low-load p50: serial {serial_p50:.1f} us, batched "
          f"{batched_p50:.1f} us ({p50_delta:+.1%}, budget {P50_BUDGET:.0%})")

    status = 0
    total_protocol_errors = sum(
        row["protocol_errors"]
        for sweep in report["configs"].values()
        for row in sweep["rows"]
    )
    if total_protocol_errors:
        print(f"FAIL: {total_protocol_errors} protocol errors during the sweep")
        status = 1
    empty_stats_rows = sum(
        1
        for sweep in report["configs"].values()
        for row in sweep["rows"]
        if not row["server_stats"]
    )
    if empty_stats_rows:
        print(f"FAIL: {empty_stats_rows} rows have empty server_stats")
        status = 1

    vanilla = report["configs"]["baseline"]
    variant = report["configs"]["backfill"]
    # The variant must not saturate earlier than vanilla: knee(backfill)
    # >= knee(baseline) (None = never saturated inside the swept range).
    v_knee, b_knee = vanilla["knee_rps"], variant["knee_rps"]
    report["knee_comparison"] = {"baseline": v_knee, "backfill": b_knee}
    if v_knee is not None and b_knee is not None and b_knee < v_knee:
        print(f"FAIL: variant knees earlier ({b_knee:.0f}) than "
              f"vanilla ({v_knee:.0f})")
        status = 1

    if serial_knee is None:
        print("FAIL: serial serving path never saturated — sweep range "
              "too short to measure the knee shift")
        status = 1
    elif knee_ratio < knee_factor:
        print(f"FAIL: batched knee moved only {knee_ratio:.1f}x "
              f"(need >= {knee_factor:.0f}x)")
        status = 1
    if batched_p50 > (1.0 + P50_BUDGET) * serial_p50:
        print(f"FAIL: batched low-load p50 {batched_p50:.1f} us exceeds "
              f"serial {serial_p50:.1f} us by more than {P50_BUDGET:.0%}")
        status = 1

    deterministic = check_determinism(
        "backfill", rps_points[0], requests, args.seed
    )
    report["deterministic"] = deterministic
    if not deterministic:
        print("FAIL: repeated sweep point produced a different report")
        status = 1
    batched_deterministic = check_determinism(
        "backfill", mode_points[-1], requests, args.seed,
        array_shards=MODE_SHARDS, settings=batched_settings(),
    )
    report["batched_deterministic"] = batched_deterministic
    if not batched_deterministic:
        print("FAIL: repeated batched sweep point produced a different report")
        status = 1

    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
