"""Fig 10: Baseline/Piggyback/Adaptive across W(B), W(C), W(D), W(M) (§4.2)."""

from repro.bench.figures import fig10
from repro.bench.report import bench_ops as _bench_ops

from benchmarks.conftest import run_figure

OPS = _bench_ops(1500)


def _by_config(fig):
    return {row[0]: dict(zip(fig.columns[1:], row[1:])) for row in fig.rows}


def bench_fig10_adaptive_transfer(benchmark, emit):
    fig_a, fig_b, fig_c, fig_d = run_figure(benchmark, fig10, OPS)
    emit([fig_a, fig_b, fig_c, fig_d])

    resp = _by_config(fig_a)
    thru = _by_config(fig_b)
    traffic = _by_config(fig_c)
    mmio = _by_config(fig_d)

    # Piggyback worst on B/C/D, drastically on large-value W(C)...
    assert resp["piggyback"]["W(C)"] > resp["baseline"]["W(C)"] * 2
    # ...but better than baseline on the real-world mix W(M) (§4.2).
    assert resp["piggyback"]["W(M)"] < resp["baseline"]["W(M)"]

    # Adaptive is best (or ties) on every workload.
    for w in ("W(B)", "W(C)", "W(D)", "W(M)"):
        assert resp["adaptive"] [w] <= resp["baseline"][w] * 1.02, w
        assert resp["adaptive"][w] <= resp["piggyback"][w] * 1.02, w
        assert thru["adaptive"][w] >= thru["baseline"][w] * 0.98, w

    # Traffic: piggyback reduces most on W(M) (~97.9 % in the paper);
    # adaptive trades a little traffic for throughput.
    wm_reduction = 1 - traffic["piggyback"]["W(M)"] / traffic["baseline"]["W(M)"]
    assert wm_reduction > 0.95
    assert (
        traffic["piggyback"]["W(M)"]
        < traffic["adaptive"]["W(M)"]
        < traffic["baseline"]["W(M)"]
    )

    # MMIO: baseline constant across workloads; piggyback scales with size.
    base_mmio = [mmio["baseline"][w] for w in ("W(B)", "W(C)", "W(D)", "W(M)")]
    assert max(base_mmio) - min(base_mmio) < 1e-6
    assert mmio["piggyback"]["W(C)"] > mmio["piggyback"]["W(M)"] * 5

    benchmark.extra_info["wm_piggyback_traffic_reduction_pct"] = round(
        100 * wm_reduction, 1
    )
    benchmark.extra_info["adaptive_wm_resp_us"] = resp["adaptive"]["W(M)"]
