"""Shared bench plumbing: results directory + table emission.

Each bench regenerates one paper table/figure via :mod:`repro.bench`, writes
the rendered table under ``benchmarks/results/`` and attaches headline
numbers to the pytest-benchmark ``extra_info`` so they appear in the
benchmark report.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.report import FigureResult, format_figure

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """Write FigureResults to disk and echo them to the terminal."""

    def _emit(results: list[FigureResult]) -> None:
        for result in results:
            path = os.path.join(results_dir, f"{result.figure_id}.txt")
            text = format_figure(result)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            print()
            print(text)

    return _emit


def run_figure(benchmark, fig_fn, ops: int):
    """Run one figure generator under the benchmark timer, once."""
    return benchmark.pedantic(fig_fn, kwargs={"ops": ops}, rounds=1, iterations=1)
