"""Throughput bench: channel/way scaling + simulator wall-clock speed.

Two measurements, both recorded in ``BENCH_throughput.json``:

1. **Scaling sweep** — sustained NAND-bound writes through the pipelined
   driver (:meth:`put_many`) across geometry × queue-depth combinations.
   Reports *simulated* ops/sec; the acceptance floor is >= 4x at 4x8/deep
   queue vs 1x1/QD1 (ISSUE 2).
2. **Trace replay** — a fixed mixed PUT/GET trace, materialized up front
   and dispatched through the batched ``put_many``/``get_many`` fast path
   (``batch_window=256``), measuring *wall-clock* simulator speed
   (simulated ops per wall second, best of N repeats). This is the number
   the CI smoke job gates: a fresh run failing to reach 70 % of the
   committed baseline's throughput fails the build. The serial per-op
   replay is recorded alongside as ``trace_replay_serial``, and a
   ``sweep_parallel`` section records the multiprocess sweep runner's
   wall-clock scaling (with a serial-identity check on the merged JSON).

Wall-clock numbers vary across machines, so the gate normalizes by a small
CPU calibration loop (pure-Python ops/sec measured in-process): what is
compared is ``wall_ops_per_sec / calibration_ops_per_sec``, a ratio that
tracks simulator efficiency rather than host speed.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_throughput.py --quick    # CI
    ... --out BENCH_throughput.json --baseline BENCH_throughput.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.core.config import preset
from repro.device.kvssd import KVSSD
from repro.sim.runner import run_workload
from repro.units import MIB
from repro.workloads.workloads import workload_mixed

#: (channels, ways_per_channel, queue_depth) combinations swept. Each row
#: is a distinct operating point: once the queue is deep enough to saturate
#: a geometry's way-level parallelism, deeper queues repeat the same number
#: (the old sweep's 2x4/qd8-vs-qd32 and 4x8/qd8 rows were duplicates), so
#: the sweep walks geometry and depth together instead.
FULL_SWEEP = [
    (1, 1, 1),
    (1, 1, 32),
    (2, 2, 8),
    (2, 4, 16),
    (4, 8, 32),
]
QUICK_SWEEP = [(1, 1, 1), (4, 8, 32)]


def _calibrate(loops: int = 1_000_000) -> float:
    """Pure-Python busy loop: host-speed yardstick for normalization.

    The loop count is sized so one repeat runs for tens of milliseconds —
    comparable to one replay measurement — so the yardstick reads the
    host's *sustained* speed rather than a turbo burst that the replay
    itself never sees.
    """
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        acc = 0
        for i in range(loops):
            acc += i & 7
        best = min(best, time.perf_counter() - t0)
    return loops / best


def run_scaling_sweep(ops: int, sweep) -> list[dict]:
    """Sustained page-size writes via put_many on each configuration."""
    rows = []
    for channels, ways, qd in sweep:
        cfg = preset(
            "baseline",
            nand_capacity_bytes=512 * MIB,
            nand_channels=channels,
            nand_ways=ways,
            queue_depth=qd,
        )
        device = KVSSD.build(config=cfg)
        page = device.geometry.page_size
        pairs = [
            (b"bench-%06d" % i, bytes([(i + j) % 256 for j in range(64)]) * (page // 64))
            for i in range(ops)
        ]
        wall0 = time.perf_counter()
        results = device.driver.put_many(pairs)
        device.driver.flush()
        wall = time.perf_counter() - wall0
        assert all(r.ok for r in results)
        elapsed_us = device.clock.now_us
        rows.append(
            {
                "channels": channels,
                "ways": ways,
                "queue_depth": qd,
                "ops": ops,
                "sim_elapsed_us": round(elapsed_us, 3),
                "sim_ops_per_sec": round(ops / (elapsed_us / 1e6), 1),
                "wall_seconds": round(wall, 4),
            }
        )
    base = rows[0]["sim_ops_per_sec"]
    for row in rows:
        row["speedup_vs_serial"] = round(row["sim_ops_per_sec"] / base, 2)
    return rows


def run_read_scaling_sweep(ops: int, sweep) -> list[dict]:
    """Pipelined-read scaling: GET-only and mixed rf=0.5, cache on/off.

    Values are small (64 B) and densely packed (preset ``all``), so the
    serial baseline is dominated by two dependent NAND reads per GET
    (SSTable index probe + value page) while the pipelined path overlaps
    them across ways and coalesces shared-page senses. Rows report
    *simulated* read throughput plus the coalesce and cache hit rates;
    speedups are computed within each (kind, cache) group against its
    1x1/QD1 row.
    """
    rows = []
    for cache_pages in (0, 256):
        for kind in ("get", "mixed"):
            for channels, ways, qd in sweep:
                cfg = preset(
                    "all",
                    nand_capacity_bytes=512 * MIB,
                    nand_channels=channels,
                    nand_ways=ways,
                    queue_depth=qd,
                    read_cache_pages=cache_pages,
                )
                device = KVSSD.build(config=cfg)
                keys = [b"rbench-%06d" % i for i in range(ops)]
                preload = [
                    (key, bytes([(i + j) % 256 for j in range(64)]))
                    for i, key in enumerate(keys)
                ]
                device.driver.put_many(preload)
                device.driver.flush()  # GETs must probe SSTables on NAND

                before = device.snapshot()
                read_us = 0.0
                wall0 = time.perf_counter()
                if kind == "get":
                    t0 = device.clock.now_us
                    results = device.driver.get_many(keys, max_size=4096)
                    read_us = device.clock.now_us - t0
                    assert all(r.ok for r in results)
                else:
                    # Mixed rf=0.5 in windows: a put burst of fresh keys,
                    # then a get burst over preloaded keys. Only the get
                    # windows count toward read throughput; at QD1 both
                    # bursts degenerate to the serial per-op loops, so
                    # rows are comparable across queue depths.
                    window = 32
                    for base in range(0, ops, window):
                        chunk = keys[base : base + window]
                        fresh = [
                            (b"mix-%06d" % (base + i), value)
                            for i, (_, value) in enumerate(
                                preload[base : base + window]
                            )
                        ]
                        device.driver.put_many(fresh)
                        t0 = device.clock.now_us
                        results = device.driver.get_many(chunk, max_size=4096)
                        read_us += device.clock.now_us - t0
                        assert all(r.ok for r in results)
                wall = time.perf_counter() - wall0
                after = device.snapshot()

                sensed = after["nand.page_reads"] - before["nand.page_reads"]
                coalesced = after.get("nand.coalesced_reads", 0.0) - before.get(
                    "nand.coalesced_reads", 0.0
                )
                total_reads = sensed + coalesced
                cache = device.ftl._cache
                rows.append(
                    {
                        "kind": kind,
                        "cache_pages": cache_pages,
                        "channels": channels,
                        "ways": ways,
                        "queue_depth": qd,
                        "ops": ops,
                        "read_sim_us": round(read_us, 3),
                        "read_us_per_op": round(read_us / ops, 3),
                        "read_ops_per_sec": round(ops / (read_us / 1e6), 1),
                        "coalesce_rate": round(coalesced / total_reads, 4)
                        if total_reads
                        else 0.0,
                        "cache_hit_rate": round(cache.hit_rate, 4)
                        if cache is not None
                        else 0.0,
                        "wall_seconds": round(wall, 4),
                    }
                )
    base_of = {
        (row["kind"], row["cache_pages"]): row["read_ops_per_sec"]
        for row in rows
        if (row["channels"], row["ways"], row["queue_depth"]) == (1, 1, 1)
    }
    for row in rows:
        base = base_of.get((row["kind"], row["cache_pages"]))
        row["read_speedup_vs_serial"] = (
            round(row["read_ops_per_sec"] / base, 2) if base else None
        )
    return rows


def run_trace_replay(
    ops: int, repeats: int = 5, batch_window: int | None = 256
) -> dict:
    """Wall-clock simulator speed on a fixed mixed trace.

    The request stream is *materialized* and the device is built before
    the timer starts — a trace replay reads a fixed request list against
    an existing device, so key mixing, value slicing and device
    construction are preparation, not simulation. With the default
    ``batch_window`` the replay dispatches through the batched
    ``put_many``/``get_many`` fast path (the headline ``trace_replay``
    number); ``batch_window=None`` keeps the per-op serial loop (recorded
    as ``trace_replay_serial``).
    """
    best_wall = float("inf")
    sim_elapsed_us = 0.0
    workload = workload_mixed(ops, read_fraction=0.5, seed=1).materialize()
    for _ in range(repeats):
        cfg = preset(
            "backfill",
            nand_capacity_bytes=256 * MIB,
            max_value_bytes=workload.max_value_bytes,
        )
        device = KVSSD.build(config=cfg)
        wall0 = time.perf_counter()
        result = run_workload(
            cfg,
            workload,
            device=device,
            batch_window=batch_window,
        )
        wall = time.perf_counter() - wall0
        best_wall = min(best_wall, wall)
        sim_elapsed_us = result.elapsed_us
    return {
        "workload": f"mixed({ops}, rf=0.5)",
        "ops": ops,
        "repeats": repeats,
        "batch_window": batch_window,
        "sim_elapsed_us": round(sim_elapsed_us, 3),
        "best_wall_seconds": round(best_wall, 4),
        "wall_ops_per_sec": round(ops / best_wall, 1),
    }


def run_sweep_parallel(ops: int, workers_list=(1, 2, 4)) -> dict:
    """Multiprocess sweep-runner scaling: wall seconds vs worker count.

    Runs one fixed (seeds x geometries x queue-depths) grid through
    :mod:`repro.sim.sweeprun` at each worker count and asserts the merged
    reports are identical modulo wall times.
    """
    from repro.sim.sweeprun import build_grid, run_sweep, strip_wall_fields

    grid = build_grid(
        seeds=[0, 1, 2, 3],
        geometries=[(1, 1), (2, 4)],
        queue_depths=[1, 32],
        workloads=["mixed"],
        ops=ops,
    )
    rows = []
    reference = None
    for workers in workers_list:
        report = run_sweep(grid, workers=workers)
        stripped = strip_wall_fields(report)
        if reference is None:
            reference = stripped
        merge_identical = stripped == reference
        rows.append(
            {
                "workers": workers,
                "wall_seconds": report["wall_seconds"],
                "speedup": round(rows[0]["wall_seconds"] / report["wall_seconds"], 2)
                if rows
                else 1.0,
                "merge_identical": merge_identical,
            }
        )
    return {
        "points": len(grid),
        "ops_per_point": ops,
        "workload": "mixed(rf=0.5)",
        # Wall speedups only mean anything relative to the cores available
        # on the recording host (a 1-core box can never show >1x).
        "host_cpu_count": os.cpu_count(),
        "rows": rows,
    }


def check_against_baseline(
    fresh: dict, baseline: dict, max_regression: float
) -> list[str]:
    """Compare calibration-normalized wall throughput; list failures."""
    problems = []
    try:
        base_norm = (
            baseline["trace_replay"]["wall_ops_per_sec"]
            / baseline["calibration_ops_per_sec"]
        )
    except (KeyError, TypeError, ZeroDivisionError):
        return [f"baseline file lacks comparable fields: {sorted(baseline)}"]
    fresh_norm = (
        fresh["trace_replay"]["wall_ops_per_sec"] / fresh["calibration_ops_per_sec"]
    )
    floor = base_norm * (1.0 - max_regression)
    if fresh_norm < floor:
        problems.append(
            f"simulator wall-clock throughput regressed: normalized "
            f"{fresh_norm:.4f} < floor {floor:.4f} "
            f"(baseline {base_norm:.4f}, allowed regression "
            f"{max_regression:.0%})"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true", help="small op counts for CI smoke"
    )
    parser.add_argument(
        "--out", default="BENCH_throughput.json", help="output JSON path"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed baseline JSON to gate wall-clock regressions against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="allowed fractional wall-clock regression vs baseline",
    )
    parser.add_argument(
        "--seed-ref",
        type=float,
        default=None,
        help="trace-replay ops/wall-sec of the pre-optimization tree, "
        "measured on this machine; records the wall-clock speedup",
    )
    parser.add_argument(
        "--profile",
        metavar="FILE",
        nargs="?",
        const="bench_throughput.prof",
        default=None,
        help="profile the trace replay with cProfile: dump stats to FILE "
        "(default bench_throughput.prof) and print the top functions",
    )
    args = parser.parse_args(argv)

    baseline = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        if baseline_path.exists():
            baseline = json.loads(baseline_path.read_text())
        else:
            print(f"note: baseline {baseline_path} missing; gate skipped")

    scaling_ops = 150 if args.quick else 600
    # The replay length is the same in both modes: the baseline gate
    # compares normalized replay throughput, and per-op cost at 400 ops is
    # dominated by device build amortization — not comparable to 2000.
    replay_ops = 2000
    sweep = QUICK_SWEEP if args.quick else FULL_SWEEP

    report = {
        "schema": 3,
        "quick": args.quick,
        "calibration_ops_per_sec": round(_calibrate(), 1),
        "scaling": run_scaling_sweep(scaling_ops, sweep),
        "read_scaling": run_read_scaling_sweep(scaling_ops, sweep),
    }
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        report["trace_replay"] = run_trace_replay(replay_ops)
        profiler.disable()
        profiler.dump_stats(args.profile)
        print(f"profile -> {args.profile}")
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
    else:
        report["trace_replay"] = run_trace_replay(replay_ops)
    report["trace_replay_serial"] = run_trace_replay(
        replay_ops, repeats=2, batch_window=None
    )
    report["sweep_parallel"] = run_sweep_parallel(
        150 if args.quick else 400,
        workers_list=(1, 2) if args.quick else (1, 2, 4),
    )
    if args.seed_ref:
        report["seed_comparison"] = {
            "seed_wall_ops_per_sec": args.seed_ref,
            "wall_speedup_vs_seed": round(
                report["trace_replay"]["wall_ops_per_sec"] / args.seed_ref, 3
            ),
            "note": "seed tree replayed on the same machine, same session",
        }

    peak = max(report["scaling"], key=lambda r: r["speedup_vs_serial"])
    print(f"calibration: {report['calibration_ops_per_sec']:,.0f} loop-ops/s")
    for row in report["scaling"]:
        print(
            f"  {row['channels']}x{row['ways']} qd={row['queue_depth']:>2}: "
            f"{row['sim_ops_per_sec']:>10,.0f} sim-ops/s "
            f"(x{row['speedup_vs_serial']:.2f}, wall {row['wall_seconds']:.2f}s)"
        )
    for row in report["read_scaling"]:
        print(
            f"  read[{row['kind']:>5}] cache={row['cache_pages']:>3} "
            f"{row['channels']}x{row['ways']} qd={row['queue_depth']:>2}: "
            f"{row['read_ops_per_sec']:>10,.0f} sim-reads/s "
            f"(x{row['read_speedup_vs_serial']:.2f}, "
            f"coalesce {row['coalesce_rate']:.0%}, "
            f"cache {row['cache_hit_rate']:.0%})"
        )
    replay = report["trace_replay"]
    print(
        f"trace replay (batched w{replay['batch_window']}): "
        f"{replay['wall_ops_per_sec']:,.0f} ops/wall-second "
        f"({replay['ops']} ops in {replay['best_wall_seconds']:.2f}s best-of-"
        f"{replay['repeats']})"
    )
    serial = report["trace_replay_serial"]
    print(
        f"trace replay (serial): {serial['wall_ops_per_sec']:,.0f} "
        f"ops/wall-second"
    )
    for row in report["sweep_parallel"]["rows"]:
        print(
            f"  sweep {report['sweep_parallel']['points']} points, "
            f"{row['workers']} worker(s): {row['wall_seconds']:.2f}s wall "
            f"(x{row['speedup']:.2f}, merge "
            f"{'identical' if row['merge_identical'] else 'DIVERGED'})"
        )

    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out_path}")

    status = 0
    if peak["speedup_vs_serial"] < 4.0:
        print(
            f"FAIL: peak parallel speedup x{peak['speedup_vs_serial']:.2f} "
            f"is below the 4x acceptance floor"
        )
        status = 1
    read_peak = max(
        (
            row
            for row in report["read_scaling"]
            if row["kind"] == "mixed" and row["cache_pages"] == 0
        ),
        key=lambda r: r["read_speedup_vs_serial"],
    )
    if read_peak["read_speedup_vs_serial"] < 4.0:
        print(
            f"FAIL: peak mixed read speedup "
            f"x{read_peak['read_speedup_vs_serial']:.2f} (cache off) is "
            f"below the 4x acceptance floor"
        )
        status = 1
    packed_peak = max(
        row["coalesce_rate"]
        for row in report["read_scaling"]
        if row["queue_depth"] > 1 and row["cache_pages"] == 0
    )
    if packed_peak <= 0.0:
        print("FAIL: packed layout showed no page-read coalescing")
        status = 1
    if not all(r["merge_identical"] for r in report["sweep_parallel"]["rows"]):
        print("FAIL: parallel sweep merge diverged from the serial run")
        status = 1
    if baseline is not None:
        problems = check_against_baseline(report, baseline, args.max_regression)
        for problem in problems:
            print(f"FAIL: {problem}")
        if problems:
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
