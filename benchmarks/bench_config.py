"""Tables 1 and 2: platform/host configuration (paper vs simulated)."""

from repro.bench.figures import table1, table2

def bench_table1_platform(benchmark, emit):
    results = benchmark.pedantic(table1, rounds=1, iterations=1)
    emit(results)
    row = results[0].row_dicts()[2]
    assert "PCIe Gen2" in row["this reproduction"]
    benchmark.extra_info["interconnect"] = row["this reproduction"]


def bench_table2_host(benchmark, emit):
    results = benchmark.pedantic(table2, rounds=1, iterations=1)
    emit(results)
    assert any("synchronous" in str(r) for r in results[0].rows)
