"""Fig 12: packing policies across workloads under adaptive transfer (§4.3)."""

from repro.bench.figures import fig12
from repro.bench.report import bench_ops as _bench_ops

from benchmarks.conftest import run_figure

OPS = _bench_ops(1500)


def _by_policy(fig):
    return {row[0]: dict(zip(fig.columns[1:], row[1:])) for row in fig.rows}


def bench_fig12_packing_policies(benchmark, emit):
    fig_a, fig_b, fig_c, fig_d = run_figure(benchmark, fig12, OPS)
    emit([fig_a, fig_b, fig_c, fig_d])

    resp = _by_policy(fig_a)
    nand = _by_policy(fig_c)
    memcpy = _by_policy(fig_d)
    workloads = ("W(B)", "W(C)", "W(D)", "W(M)")

    # Block is the worst policy on every workload.
    for w in workloads:
        for policy in ("all", "select", "backfill"):
            assert resp[policy][w] <= resp["block"][w] * 1.01, (policy, w)

    # Selective ≈ Block on large-value-dominant W(C) (page alignment).
    assert resp["select"]["W(C)"] > resp["block"]["W(C)"] * 0.8
    # All Packing optimal on W(C) and W(D).
    for w in ("W(C)", "W(D)"):
        assert resp["all"][w] <= resp["select"][w], w
        assert resp["all"][w] <= resp["backfill"][w] * 1.02, w

    # NAND counts: Block >> Select >= Backfill >= All.
    for w in workloads:
        assert nand["block"][w] > nand["select"][w], w
        assert nand["select"][w] >= nand["backfill"][w], w
        assert nand["backfill"][w] >= nand["all"][w] * 0.99, w

    # memcpy time: All pays the large-value copies; paper ordering M<B<D<C.
    assert (
        memcpy["all"]["W(M)"]
        < memcpy["all"]["W(B)"]
        < memcpy["all"]["W(D)"]
        < memcpy["all"]["W(C)"]
    )
    assert memcpy["all"]["W(C)"] > 5 * memcpy["select"]["W(C)"]

    benchmark.extra_info["all_wc_memcpy_us"] = memcpy["all"]["W(C)"]
    benchmark.extra_info["backfill_wb_resp_us"] = resp["backfill"]["W(B)"]
