"""Fig 9: hybrid transfer for 4 KiB + trailing-byte values (§4.2)."""

from repro.bench.figures import fig9
from repro.bench.report import bench_ops as _bench_ops

from benchmarks.conftest import run_figure

OPS = _bench_ops(200)


def bench_fig9_hybrid(benchmark, emit):
    fig_a, fig_b = run_figure(benchmark, fig9, OPS)
    emit([fig_a, fig_b])

    traffic = {r["trailing_B"]: r for r in fig_a.row_dicts()}
    resp = {r["trailing_B"]: r for r in fig_b.row_dicts()}

    # Hybrid is the traffic optimum for small-to-mid tails (paper: to ~2 KiB).
    for tail in (4, 32, 512, 1024):
        row = traffic[tail]
        assert row["hybrid_GB_at_1M"] < row["baseline_GB_at_1M"], tail
        assert row["hybrid_GB_at_1M"] < row["piggyback_GB_at_1M"], tail

    # Piggyback beats baseline on traffic only up to ~1 KiB tails.
    assert traffic[1024]["piggyback_GB_at_1M"] < traffic[1024]["baseline_GB_at_1M"]
    assert traffic[4096]["piggyback_GB_at_1M"] > traffic[4096]["baseline_GB_at_1M"]

    # Response: piggyback far worse; hybrid does not improve on baseline.
    for tail in (4, 64, 1024):
        assert resp[tail]["piggyback_us"] > resp[tail]["baseline_us"] * 3, tail
        assert resp[tail]["hybrid_us"] >= resp[tail]["baseline_us"] * 0.98, tail

    benchmark.extra_info["hybrid_traffic_GB_tail32"] = traffic[32]["hybrid_GB_at_1M"]
