"""Ablation: DMA Log Table capacity (§3.3.3).

The paper caps the DLT at the buffer-entry count (e.g. 512) and argues the
cost is ~4 KiB of device memory. This bench sweeps the capacity and measures
what it buys: bytes successfully backfilled, fragmentation abandoned via
forced evictions, and the DLT's own memory footprint.
"""

from repro.bench.report import FigureResult, bench_ops as _bench_ops
from repro.sim.runner import run_workload
from repro.workloads.workloads import workload_m

OPS = _bench_ops(2000)
CAPACITIES = (1, 4, 16, 64, 256)


def _sweep_capacity():
    rows = []
    for capacity in CAPACITIES:
        r = run_workload(
            "backfill", workload_m(OPS, seed=42),
            dlt_capacity=capacity, buffer_entries=256,
        )
        snap = r.snapshot
        rows.append(
            [capacity,
             int(snap["packing.backfill.backfill_bytes"]),
             int(snap["packing.backfill.fragmentation_bytes"]),
             r.nand_page_writes_with_flush,
             round(r.avg_response_us, 2)]
        )
    return FigureResult(
        figure_id="ablation_dlt",
        title="Backfill vs DLT capacity on W(M)",
        columns=["dlt_entries", "backfill_bytes", "fragmentation_bytes",
                 "nand_writes", "avg_response_us"],
        rows=rows,
        notes=[
            f"{OPS} ops; a larger DLT preserves more backfill opportunities "
            "(fewer forced evictions)",
            "paper: 512 entries cost <= 4 KiB of device DRAM",
        ],
    )


def bench_dlt_capacity(benchmark, emit):
    fig = benchmark.pedantic(_sweep_capacity, rounds=1, iterations=1)
    emit([fig])
    backfilled = fig.column("backfill_bytes")
    # More DLT capacity never backfills less.
    assert backfilled[-1] >= backfilled[0]
    nand = fig.column("nand_writes")
    assert nand[-1] <= nand[0]
    benchmark.extra_info["backfill_bytes_max_capacity"] = backfilled[-1]


def bench_dlt_memory_budget(benchmark):
    """The §3.3.3 space claim, computed exactly."""
    from repro.core.dlt import DMALogTable

    def compute():
        table = DMALogTable(capacity=512, nand_page_size=16 * 1024,
                            vlog_pages=2**26)
        return table.entry_bits(), table.table_bytes()

    bits, total = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert bits == 26 + 2 + 32
    assert total <= 4096
    benchmark.extra_info["dlt_bytes_512_entries"] = total
