"""Capture golden 1x1x1 numbers from the current model.

Run on the seed (pre-parallelism) tree to freeze the reference values the
QD=1 / 1-channel / 1-way regression test compares against byte-for-byte.

``--check`` regenerates the runs in memory and asserts they are
byte-identical to the frozen file instead of rewriting it — CI uses this
to prove a change left the seed behaviour untouched.
"""
from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.core.config import preset
from repro.device.kvssd import KVSSD
from repro.nand.geometry import NandGeometry
from repro.sim.runner import resolve_config
from repro.units import KIB, MIB
from repro.workloads.generator import RequestKind
from repro.workloads.workloads import workload_d, workload_mixed


def geometry_1x1(capacity_bytes: int) -> NandGeometry:
    base = NandGeometry(channels=1, ways_per_channel=1)
    per_way = capacity_bytes // base.total_ways
    return NandGeometry(
        channels=1,
        ways_per_channel=1,
        blocks_per_way=max(1, per_way // base.block_size),
        pages_per_block=base.pages_per_block,
        page_size=base.page_size,
    )


def drive(config_name: str, capacity_bytes: int, workload) -> dict:
    _, cfg = resolve_config(config_name, nand_capacity_bytes=capacity_bytes)
    device = KVSSD.build(config=cfg, geometry=geometry_1x1(capacity_bytes))
    driver = device.driver
    latencies: list[float] = []
    for request in workload.requests():
        t0 = device.clock.now_us
        if request.kind is RequestKind.PUT:
            driver.put(request.key, request.value)
        elif request.kind is RequestKind.GET:
            driver.get(request.key, max_size=workload.max_value_bytes)
        elif request.kind is RequestKind.DELETE:
            driver.delete(request.key)
        latencies.append(device.clock.now_us - t0)
    driver.flush()
    # seed_schema: the frozen goldens predate the richer snapshot keys
    # (histogram counts, stat spread, payload/h2d bytes); capture with the
    # seed's exact key set so old and new trees produce comparable files.
    snap = device.snapshot(seed_schema=True)
    return {
        "config": config_name,
        "capacity_bytes": capacity_bytes,
        "workload": workload.name,
        "latencies_us": latencies,
        "clock_now_us": device.clock.now_us,
        "pcie_total_bytes": device.link.meter.total_bytes,
        "mmio_bytes": device.link.meter.mmio_bytes,
        "nand_page_programs": snap.get("nand.page_programs", 0.0),
        "nand_bytes_programmed": snap.get("nand.bytes_programmed", 0.0),
        "snapshot": {k: v for k, v in sorted(snap.items())},
    }


def drive_gc_churn(capacity_bytes: int, ops: int, keys: int) -> dict:
    """Overwrite-heavy fillseq on a tiny module so GC + erases fire."""
    _, cfg = resolve_config(
        "baseline",
        nand_capacity_bytes=capacity_bytes,
        memtable_flush_bytes=2 * KIB,
    )
    device = KVSSD.build(config=cfg, geometry=geometry_1x1(capacity_bytes))
    driver = device.driver
    page = device.geometry.page_size
    latencies: list[float] = []
    for i in range(ops):
        key = b"churn-%05d" % (i % keys)
        value = bytes([(i * 7 + j) % 256 for j in range(64)]) * (page // 64)
        t0 = device.clock.now_us
        driver.put(key, value)
        latencies.append(device.clock.now_us - t0)
    driver.flush()
    snap = device.snapshot(seed_schema=True)
    return {
        "config": "baseline",
        "capacity_bytes": capacity_bytes,
        "workload": f"gc_churn({ops}x{keys})",
        "latencies_us": latencies,
        "clock_now_us": device.clock.now_us,
        "pcie_total_bytes": device.link.meter.total_bytes,
        "mmio_bytes": device.link.meter.mmio_bytes,
        "nand_page_programs": snap.get("nand.page_programs", 0.0),
        "nand_bytes_programmed": snap.get("nand.bytes_programmed", 0.0),
        "snapshot": {k: v for k, v in sorted(snap.items())},
    }


def drive_flash_direct() -> dict:
    """Standalone flash: program/read/erase cycles at 1x1, fixed order."""
    from repro.nand.flash import NandFlash
    from repro.sim.clock import SimClock
    from repro.sim.latency import LatencyModel

    geo = NandGeometry(
        channels=1, ways_per_channel=1, blocks_per_way=4, pages_per_block=8,
        page_size=2048,
    )
    clock = SimClock()
    flash = NandFlash(geo, clock, LatencyModel())
    marks: list[float] = []
    for block in range(3):
        first = geo.first_ppn_of_block(block)
        for page in range(geo.pages_per_block if block < 2 else 5):
            flash.program(first + page, bytes([block * 16 + page]) * 64)
            marks.append(clock.now_us)
    for ppn in (0, 5, 9, 17):
        flash.read(ppn)
        marks.append(clock.now_us)
    flash.erase_block(0)
    marks.append(clock.now_us)
    flash.program(0, b"again")
    marks.append(clock.now_us)
    flash.erase_block(1)
    marks.append(clock.now_us)
    return {
        "workload": "flash_direct",
        "clock_marks_us": marks,
        "clock_now_us": clock.now_us,
        "snapshot": {
            k: v
            for k, v in sorted(flash.metrics.snapshot(seed_schema=True).items())
        },
    }


def capture_runs() -> dict:
    return {
        "backfill_d": drive("backfill", 256 * MIB, workload_d(200, seed=7)),
        "baseline_mixed": drive(
            "baseline", 64 * MIB, workload_mixed(150, read_fraction=0.5, seed=3)
        ),
        "piggyback_d": drive("piggyback", 256 * MIB, workload_d(120, seed=11)),
        "gc_churn": drive_gc_churn(16 * MIB, ops=380, keys=80),
        "flash_direct": drive_flash_direct(),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "out", nargs="?", default="tests/data/seed_golden_1x1.json",
        help="golden file to write (or compare against with --check)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="assert the regenerated goldens match the frozen file "
             "byte-for-byte instead of rewriting it",
    )
    args = parser.parse_args()
    runs = capture_runs()
    encoded = json.dumps(runs, indent=1, sort_keys=True)
    out = Path(args.out)
    if args.check:
        frozen = out.read_text()
        if encoded != frozen:
            frozen_runs = json.loads(frozen)
            drifted = sorted(
                name
                for name in set(runs) | set(frozen_runs)
                if runs.get(name) != frozen_runs.get(name)
            )
            print(f"seed goldens DRIFTED from {out}: {', '.join(drifted)}")
            return 1
        print(f"seed goldens match {out} byte-for-byte "
              f"({len(runs)} runs, {len(encoded)} bytes)")
        return 0
    out.write_text(encoded)
    for name, run in runs.items():
        print(
            f"{name}: clock={run['clock_now_us']:.3f}us"
            f" pcie={run.get('pcie_total_bytes', 0)}"
            f" programs={run.get('nand_page_programs', 0)}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
