"""Validate a JSONL trace dump (CI smoke check).

Usage: python scripts/validate_trace.py trace.jsonl

Checks the schema contract documented in docs/observability.md:

* line 1 is a header with the expected schema version;
* every subsequent line is a well-formed ``event`` or ``op`` record;
* the header's event/op counts match the file contents;
* every op's phase durations sum to its ``latency_us``;
* every phase name belongs to the documented taxonomy.

Exits non-zero (with a message per violation) on any failure.
"""
from __future__ import annotations

import json
import sys

EXPECTED_VERSION = 1
PHASES = frozenset(
    (
        "doorbell",
        "sq_fetch",
        "dispatch",
        "dma",
        "nand",
        "memcpy",
        "cache",
        "completion",
        "backoff",
        "other",
    )
)
EVENT_KEYS = frozenset(("type", "ts_us", "dur_us", "cat", "name", "op", "res", "args"))
OP_KEYS = frozenset(
    (
        "type",
        "op",
        "kind",
        "start_us",
        "end_us",
        "latency_us",
        "commands",
        "status",
        "phases",
        "args",
    )
)
PHASE_SUM_TOLERANCE_US = 1e-6


def validate(path: str) -> list[str]:
    errors: list[str] = []
    with open(path, encoding="utf-8") as fp:
        lines = fp.read().splitlines()
    if not lines:
        return [f"{path}: empty file"]

    header = json.loads(lines[0])
    if header.get("type") != "header":
        errors.append(f"line 1: expected header, got {header.get('type')!r}")
    if header.get("version") != EXPECTED_VERSION:
        errors.append(
            f"line 1: schema version {header.get('version')!r}, "
            f"expected {EXPECTED_VERSION}"
        )

    events = ops = 0
    for lineno, raw in enumerate(lines[1:], start=2):
        try:
            obj = json.loads(raw)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: invalid JSON ({exc})")
            continue
        kind = obj.get("type")
        if kind == "event":
            events += 1
            extra = set(obj) - EVENT_KEYS
            if extra:
                errors.append(f"line {lineno}: unknown event keys {sorted(extra)}")
            for key in ("ts_us", "dur_us"):
                if not isinstance(obj.get(key), (int, float)):
                    errors.append(f"line {lineno}: event missing numeric {key}")
            if obj.get("dur_us", 0) < 0:
                errors.append(f"line {lineno}: negative event duration")
            if not obj.get("cat") or not obj.get("name"):
                errors.append(f"line {lineno}: event missing cat/name")
        elif kind == "op":
            ops += 1
            extra = set(obj) - OP_KEYS
            if extra:
                errors.append(f"line {lineno}: unknown op keys {sorted(extra)}")
            phases = obj.get("phases", {})
            bad = set(phases) - PHASES
            if bad:
                errors.append(f"line {lineno}: unknown phases {sorted(bad)}")
            latency = obj.get("latency_us")
            if not isinstance(latency, (int, float)):
                errors.append(f"line {lineno}: op missing latency_us")
            elif abs(sum(phases.values()) - latency) > PHASE_SUM_TOLERANCE_US:
                errors.append(
                    f"line {lineno}: op {obj.get('op')} phases sum to "
                    f"{sum(phases.values()):.6f} us, latency is {latency:.6f} us"
                )
        else:
            errors.append(f"line {lineno}: unknown line type {kind!r}")

    if header.get("events") != events:
        errors.append(
            f"header claims {header.get('events')} events, file has {events}"
        )
    if header.get("ops") != ops:
        errors.append(f"header claims {header.get('ops')} ops, file has {ops}")
    if ops == 0:
        errors.append("no op records: trace captured nothing")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    errors = validate(argv[0])
    if errors:
        for err in errors:
            print(f"FAIL {err}", file=sys.stderr)
        return 1
    print(f"OK {argv[0]}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
