"""Determinism gate for the pipelined read path (CI smoke check).

Usage: PYTHONPATH=src python scripts/check_read_determinism.py

Runs a seeded read-heavy workload — pipelined get_many batches (including
missing keys), exists_many probes, and a readahead scan — twice per
claim and asserts:

1. **traced == untraced**: attaching a Tracer must not move the simulated
   clock, change any returned value, or perturb a single metric.
2. **QD1 == serial**: get_many/exists_many at queue depth 1 must be
   clock- and metric-identical to the equivalent serial get/exists loop
   (the zero-cost guarantee backing the frozen seed goldens; the goldens
   themselves are checked by ``capture_seed_golden.py --check``).

Exits non-zero with a message per violation.
"""
from __future__ import annotations

import random
import sys

from repro.core.config import PRESETS
from repro.device.kvssd import KVSSD
from repro.host.api import KVStore
from repro.sim.trace import Tracer
from repro.units import MIB

SEED = 0x5EED
KEY_COUNT = 120


def _keys():
    return [b"det-%05d" % i for i in range(KEY_COUNT)]


def _value(i: int) -> bytes:
    rng = random.Random(SEED + i)
    return bytes(rng.randrange(256) for _ in range(64 + i % 192))


def _run_read_heavy(queue_depth: int, tracer=None):
    """The seeded workload; returns (device, observable outputs)."""
    config = PRESETS["all"].with_overrides(
        nand_capacity_bytes=64 * MIB,
        queue_depth=queue_depth,
        read_cache_pages=32,
    )
    device = KVSSD.build(config, tracer=tracer)
    driver = device.driver
    keys = _keys()
    outputs = []
    for i, key in enumerate(keys):
        driver.put(key, _value(i))
    driver.flush()
    rng = random.Random(SEED)
    for _ in range(4):
        batch = rng.sample(keys, 40) + [b"absent-%d" % rng.randrange(10)]
        outputs.append(
            [(r.status.name, r.value) for r in driver.get_many(batch)]
        )
    outputs.append(driver.exists_many(rng.sample(keys, 30) + [b"nope"]))
    outputs.append(list(KVStore(device).scan(limit=50)))
    return device, outputs


def _run_serial_loop():
    """Reference for claim 2: plain get/exists loops, no *_many calls."""
    config = PRESETS["all"].with_overrides(
        nand_capacity_bytes=64 * MIB, queue_depth=1, read_cache_pages=32
    )
    device = KVSSD.build(config)
    driver = device.driver
    keys = _keys()
    for i, key in enumerate(keys):
        driver.put(key, _value(i))
    driver.flush()
    for key in keys:
        driver.get(key)
    for key in keys[:30]:
        driver.exists(key)
    return device


def main() -> int:
    errors = []

    plain_dev, plain_out = _run_read_heavy(queue_depth=8)
    traced_dev, traced_out = _run_read_heavy(queue_depth=8, tracer=Tracer())
    if plain_dev.clock.now_us != traced_dev.clock.now_us:
        errors.append(
            f"tracer moved the clock: {plain_dev.clock.now_us} != "
            f"{traced_dev.clock.now_us}"
        )
    if plain_out != traced_out:
        errors.append("tracer changed returned values")
    if plain_dev.snapshot() != traced_dev.snapshot():
        errors.append("tracer perturbed the metric snapshot")

    loop_dev = _run_serial_loop()
    many_config = PRESETS["all"].with_overrides(
        nand_capacity_bytes=64 * MIB, queue_depth=1, read_cache_pages=32
    )
    many_dev = KVSSD.build(many_config)
    keys = _keys()
    for i, key in enumerate(keys):
        many_dev.driver.put(key, _value(i))
    many_dev.driver.flush()
    many_dev.driver.get_many(keys)
    many_dev.driver.exists_many(keys[:30])
    if loop_dev.clock.now_us != many_dev.clock.now_us:
        errors.append(
            f"QD1 get_many diverged from the serial loop: "
            f"{loop_dev.clock.now_us} != {many_dev.clock.now_us}"
        )
    if loop_dev.snapshot() != many_dev.snapshot():
        errors.append("QD1 get_many perturbed the metric snapshot")

    for error in errors:
        print(f"FAIL: {error}")
    if not errors:
        print(
            "read determinism OK: traced==untraced and QD1==serial "
            f"({KEY_COUNT} keys, seed {SEED:#x})"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
