"""Shared fixtures: clocks, latency models, small devices, tiny geometries."""

from __future__ import annotations

import pytest

from repro.core.config import BandSlimConfig, PackingPolicyKind, TransferMode
from repro.device.kvssd import KVSSD
from repro.nand.flash import NandFlash
from repro.nand.ftl import PageMappedFTL
from repro.nand.geometry import NandGeometry
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.units import KIB, MIB


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def latency() -> LatencyModel:
    return LatencyModel()


@pytest.fixture
def tiny_geometry() -> NandGeometry:
    """A deliberately small module so GC paths are reachable in tests."""
    return NandGeometry(
        channels=2,
        ways_per_channel=2,
        blocks_per_way=8,
        pages_per_block=8,
        page_size=16 * KIB,
    )


@pytest.fixture
def flash(tiny_geometry, clock, latency) -> NandFlash:
    return NandFlash(tiny_geometry, clock, latency)


@pytest.fixture
def ftl(flash) -> PageMappedFTL:
    return PageMappedFTL(flash, gc_reserve_blocks=2)


def small_config(**overrides) -> BandSlimConfig:
    """A config sized for fast tests (small pool, small NAND)."""
    defaults = dict(
        transfer_mode=TransferMode.ADAPTIVE,
        packing=PackingPolicyKind.BACKFILL,
        buffer_entries=8,
        dlt_capacity=8,
        scratch_bytes=256 * KIB,
        max_value_bytes=128 * KIB,
        nand_capacity_bytes=64 * MIB,
        memtable_flush_bytes=16 * KIB,
    )
    defaults.update(overrides)
    return BandSlimConfig(**defaults)


@pytest.fixture
def small_device() -> KVSSD:
    return KVSSD.build(config=small_config())


@pytest.fixture
def device_factory():
    """Factory fixture: build a small device with config overrides."""

    def build(**overrides) -> KVSSD:
        return KVSSD.build(config=small_config(**overrides))

    return build
