"""Satellite: trim + GC + crash interplay — no resurrection, no void reads."""

from repro.core.config import BandSlimConfig
from repro.device.kvssd import KVSSD
from repro.errors import KeyNotFoundError
from repro.lsm.vlog_gc import VLogCompactor
from repro.units import MIB

CRASH_CFG = BandSlimConfig().with_overrides(
    crash_consistency=True,
    nand_capacity_bytes=64 * MIB,
    buffer_entries=8,
)


def _get(driver, key):
    try:
        return driver.get(key).value
    except KeyNotFoundError:
        return None


def _churn(driver, rounds=6, keys=20, size=3000):
    """Overwrite the same keys repeatedly: most vLog bytes become dead."""
    live = {}
    for r in range(rounds):
        for i in range(keys):
            key = b"churn-%03d" % i
            value = bytes([(r * 31 + i + j) % 256 for j in range(64)]) * (
                size // 64
            )
            driver.put(key, value)
            live[key] = value
    return live


class TestDeferredTrim:
    def test_compactor_defers_trims_until_checkpoint(self):
        device = KVSSD.build(CRASH_CFG)
        live = _churn(device.driver)
        device.driver.nvme_flush()
        compactor = VLogCompactor(device.lsm, device.policy, device.buffer)
        report = compactor.compact()
        assert report.pages_trimmed > 0
        victims = [
            lpn
            for lpn in range(device.vlog.base_lpn, compactor.compacted_through_lpn)
            if device.ftl.is_mapped(lpn)
        ]
        # Crash-consistency mode: the reclaimed pages stay mapped (the
        # durable index still references them) until the next checkpoint.
        assert victims
        device.driver.nvme_flush()
        assert not any(device.ftl.is_mapped(lpn) for lpn in victims)
        for key, value in live.items():
            assert _get(device.driver, key) == value

    def test_crash_before_checkpoint_keeps_old_copies_readable(self):
        device = KVSSD.build(CRASH_CFG)
        live = _churn(device.driver)
        device.driver.nvme_flush()
        compactor = VLogCompactor(device.lsm, device.policy, device.buffer)
        assert compactor.compact().pages_trimmed > 0
        # Crash NOW: the relocations and trims were never checkpointed, so
        # recovery must serve every value from the pre-compaction copies —
        # which deferral kept mapped and therefore safe from GC erase.
        recovered = device.remount()
        for key, value in live.items():
            assert _get(recovered.driver, key) == value, key

    def test_trimmed_then_crashed_lpns_do_not_resurrect(self):
        device = KVSSD.build(CRASH_CFG)
        live = _churn(device.driver)
        device.driver.nvme_flush()
        compactor = VLogCompactor(device.lsm, device.policy, device.buffer)
        assert compactor.compact().pages_trimmed > 0
        cutoff = compactor.compacted_through_lpn
        device.driver.nvme_flush()  # trim becomes durable with the manifest
        # Unflushed tail work after the checkpoint, then crash.
        device.driver.put(b"tail", b"unflushed tail write")
        recovered = device.remount()
        # The durably reclaimed range must not come back from the scan,
        # even though its physical pages may still sit intact on flash.
        assert not any(
            recovered.ftl.is_mapped(lpn)
            for lpn in range(recovered.vlog.base_lpn, cutoff)
        )
        assert recovered.journal.vlog_trimmed_through == cutoff
        for key, value in live.items():
            assert _get(recovered.driver, key) == value, key


class TestFtlTrimGc:
    def test_trim_makes_pages_reclaimable_by_gc(self):
        device = KVSSD.build(CRASH_CFG)
        ftl = device.ftl
        page = device.geometry.page_size
        base = device.lsm.store.space.base_lpn
        lpns = list(range(base, base + 12))
        for lpn in lpns:
            ftl.write(lpn, bytes([lpn % 256]) * page)
        victim_ppns = [ftl.ppn_of(lpn) for lpn in lpns[:6]]
        for lpn in lpns[:6]:
            ftl.trim(lpn)
        # The trimmed pages' physical copies are invalid: GC may erase
        # their block without relocating them, and they back no LPN.
        for lpn, ppn in zip(lpns[:6], victim_ppns):
            assert not ftl.is_mapped(lpn)
            assert ftl.lpn_of(ppn) is None
        for lpn in lpns[6:]:
            assert ftl.is_mapped(lpn)
