"""Satellite: FLUSH after a pipelined burst reaps in NAND-finish order."""

from repro.core.config import BandSlimConfig
from repro.device.kvssd import KVSSD
from repro.units import MIB

# No injector: put_many only pipelines without one (the fault-retry
# protocol is synchronous); crash_consistency alone arms the journal.
PIPELINE_CFG = BandSlimConfig().with_overrides(
    crash_consistency=True,
    nand_capacity_bytes=64 * MIB,
    buffer_entries=8,
    queue_depth=8,
)


def _pairs(count, size=4000):
    return [
        (
            b"piped-%05d" % i,
            bytes([(i * 17 + j) % 256 for j in range(64)]) * (size // 64),
        )
        for i in range(count)
    ]


class TestFlushAfterPipeline:
    def test_flush_drains_pipelined_writes_to_durability(self):
        device = KVSSD.build(PIPELINE_CFG)
        pairs = _pairs(120)
        results = device.driver.put_many(pairs, queue_depth=8)
        assert all(r.ok for r in results)
        flush_result = device.driver.nvme_flush()
        assert flush_result.ok
        assert device.journal.manifest_gen == 1
        recovered = device.remount()
        # Everything acked before the FLUSH must be byte-exact after a
        # crash immediately following it.
        for key, value in pairs:
            assert recovered.driver.get(key).value == value, key

    def test_interleaved_bursts_and_flushes(self):
        device = KVSSD.build(PIPELINE_CFG)
        everything = []
        for burst in range(3):
            pairs = _pairs(40, size=2500 + burst * 700)
            pairs = [(b"b%d-" % burst + k, v) for k, v in pairs]
            device.driver.put_many(pairs, queue_depth=8)
            device.driver.nvme_flush()
            everything.extend(pairs)
        assert device.journal.manifest_gen == 3
        recovered = device.remount()
        for key, value in everything:
            assert recovered.driver.get(key).value == value, key

    def test_pipelined_and_sequential_flush_agree_on_content(self):
        piped = KVSSD.build(PIPELINE_CFG)
        seq = KVSSD.build(PIPELINE_CFG)
        pairs = _pairs(60)
        piped.driver.put_many(pairs, queue_depth=8)
        for key, value in pairs:
            seq.driver.put(key, value)
        piped.driver.nvme_flush()
        seq.driver.nvme_flush()
        rec_piped = piped.remount()
        rec_seq = seq.remount()
        for key, value in pairs:
            assert rec_piped.driver.get(key).value == value
            assert rec_seq.driver.get(key).value == value
