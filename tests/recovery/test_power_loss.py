"""Power-loss injection: cuts, torn pages, frozen device, RNG isolation."""

import pytest

from repro.core.config import BandSlimConfig
from repro.device.kvssd import KVSSD
from repro.errors import PowerLossError
from repro.faults import FaultInjector, FaultPlan
from repro.units import MIB

CRASH_CFG = BandSlimConfig().with_overrides(
    crash_consistency=True,
    nand_capacity_bytes=64 * MIB,
    buffer_entries=8,
)


def _fill(driver, count, tag=b"k", size=3000):
    acked = {}
    for i in range(count):
        key = tag + b"-%05d" % i
        value = bytes([(i * 13 + j) % 256 for j in range(64)]) * (size // 64)
        driver.put(key, value)
        acked[key] = value
    return acked


class TestScriptedCut:
    def test_cut_fires_and_freezes_the_device(self):
        plan = FaultPlan(power_loss_at_us=(5_000.0,))
        device = KVSSD.build(CRASH_CFG, fault_plan=plan)
        with pytest.raises(PowerLossError):
            _fill(device.driver, 500)
        assert device.injector.power_lost
        assert device.injector.last_cut_us >= 5_000.0
        # Frozen: every further command dies the same way until remount.
        with pytest.raises(PowerLossError):
            device.driver.put(b"after", b"the lights went out")
        snap = device.injector.metrics.snapshot()
        assert snap["faults.power_cuts"] == 1

    def test_cut_beyond_activity_never_fires(self):
        plan = FaultPlan(power_loss_at_us=(10**12,))
        device = KVSSD.build(CRASH_CFG, fault_plan=plan)
        _fill(device.driver, 20)
        assert not device.injector.power_lost

    def test_power_plan_implies_journal(self):
        cfg = BandSlimConfig().with_overrides(nand_capacity_bytes=64 * MIB)
        assert not cfg.crash_consistency
        device = KVSSD.build(cfg, fault_plan=FaultPlan(power_loss_at_us=(1.0,)))
        assert device.journal is not None


class TestTornPages:
    def test_cut_inside_a_program_window_tears_the_page(self):
        plan = FaultPlan(power_loss_per_program_p=1.0)
        device = KVSSD.build(CRASH_CFG, fault_plan=plan)
        page = device.geometry.page_size
        with pytest.raises(PowerLossError):
            # Overflow the 8-entry pool so a NAND program must happen.
            _fill(device.driver, 12, size=page)
        snap = device.injector.metrics.snapshot()
        assert snap["faults.torn_pages"] >= 1
        torn = [
            ppn
            for ppn in device.flash.programmed_ppns()
            if device.flash.page_oob(ppn) is not None
            and device.flash.page_oob(ppn).torn
        ]
        assert torn  # the interrupted program left a marked torn page


class TestRngIsolation:
    """Satellite: power knobs must never perturb seeded media-fault streams."""

    MEDIA_PLAN = FaultPlan(
        seed=1234,
        program_fail_p=0.3,
        program_fail_permanent_ratio=0.5,
        erase_fail_p=0.2,
        read_bitflip_base=1.0,
    )

    def _media_trace(self, injector: FaultInjector, power_noise: bool) -> list:
        trace = []
        for i in range(200):
            trace.append(injector.program_fault(block=i % 8))
            if power_noise:
                # Power draws between media draws: separate RNG stream, so
                # the media decisions below must be unaffected.
                injector.power_cut_during(float(i), float(i) + 0.5)
                injector.power_restore()
            trace.append(injector.erase_fault(block=i % 8))
            trace.append(injector.read_bitflips(block=i % 8, erase_count=i % 5))
        return trace

    def test_power_draws_do_not_shift_media_decisions(self):
        plain = self._media_trace(FaultInjector(self.MEDIA_PLAN), False)
        noisy_plan = FaultPlan(
            **{
                **self.MEDIA_PLAN.__dict__,
                "power_loss_per_program_p": 0.25,
            }
        )
        noisy = self._media_trace(FaultInjector(noisy_plan), True)
        assert plain == noisy

    def test_scheduled_cuts_do_not_shift_media_decisions(self):
        plain = self._media_trace(FaultInjector(self.MEDIA_PLAN), False)
        scheduled_plan = FaultPlan(
            **{
                **self.MEDIA_PLAN.__dict__,
                "power_loss_at_us": (50.0, 120.0),
            }
        )
        scheduled = self._media_trace(FaultInjector(scheduled_plan), True)
        assert plain == scheduled


class TestSnapshotHealthGauges:
    """Satellite: bad-block count and free-block low-water in snapshot()."""

    def test_gauges_present_in_default_snapshot(self):
        device = KVSSD.build(CRASH_CFG)
        _fill(device.driver, 30)
        snap = device.snapshot()
        assert snap["ftl.bad_blocks"] == 0.0
        assert snap["ftl.free_blocks"] >= 0.0
        assert snap["ftl.free_block_low_water"] <= snap["ftl.free_blocks"] + (
            device.geometry.total_ways  # active blocks left the free pool
        )
        assert snap["ftl.free_block_low_water"] >= 0.0

    def test_gauges_absent_from_seed_schema(self):
        device = KVSSD.build(BandSlimConfig())
        snap = device.snapshot(seed_schema=True)
        assert "ftl.bad_blocks" not in snap
        assert "ftl.free_blocks" not in snap
        assert "ftl.free_block_low_water" not in snap
