"""The crash-consistency checker harness itself."""

from repro.recovery.crashcheck import run_crashcheck


class TestCrashCheck:
    def test_small_run_has_zero_violations(self):
        report = run_crashcheck(ops=200, crash_points=4, seed=11)
        assert report.ok, report.violations
        assert report.cuts_fired >= 1
        assert report.dry_run_us > 0

    def test_deterministic_for_a_fixed_seed(self):
        a = run_crashcheck(ops=150, crash_points=3, seed=21)
        b = run_crashcheck(ops=150, crash_points=3, seed=21)
        assert a == b

    def test_different_seeds_sample_different_cuts(self):
        a = run_crashcheck(ops=150, crash_points=3, seed=1)
        b = run_crashcheck(ops=150, crash_points=3, seed=2)
        assert a.ok and b.ok
        # The workloads and cut samples differ, so the recovery footprints
        # should too (dry-run duration is a robust proxy).
        assert a.dry_run_us != b.dry_run_us

    def test_progress_callback_sees_every_cut(self):
        seen = []
        report = run_crashcheck(
            ops=120,
            crash_points=3,
            seed=5,
            progress=lambda done, total, rec, violations: seen.append(
                (done, total)
            ),
        )
        assert report.ok
        assert seen == [(1, 3), (2, 3), (3, 3)]
