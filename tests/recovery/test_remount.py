"""Mount-time recovery: OOB scan, manifest restore, vLog tail replay."""

import pytest

from repro.core.config import BandSlimConfig
from repro.device.kvssd import KVSSD
from repro.errors import KeyNotFoundError, PowerLossError
from repro.faults import FaultPlan
from repro.recovery.journal import RecoveryError
from repro.units import MIB

CRASH_CFG = BandSlimConfig().with_overrides(
    crash_consistency=True,
    nand_capacity_bytes=64 * MIB,
    buffer_entries=8,
)


def _value(i: int, size: int = 3000) -> bytes:
    return bytes([(i * 13 + j) % 256 for j in range(64)]) * (size // 64)


def _fill(driver, count, tag=b"k", size=3000):
    acked = {}
    for i in range(count):
        key = tag + b"-%05d" % i
        value = _value(i, size)
        driver.put(key, value)
        acked[key] = value
    return acked


def _get(driver, key):
    try:
        return driver.get(key).value
    except KeyNotFoundError:
        return None


class TestCleanRemount:
    def test_flush_then_remount_restores_everything(self):
        device = KVSSD.build(CRASH_CFG)
        written = _fill(device.driver, 120)
        device.driver.delete(b"k-%05d" % 0)
        del written[b"k-%05d" % 0]
        device.driver.nvme_flush()
        recovered = device.remount()
        for key, value in written.items():
            assert _get(recovered.driver, key) == value
        assert _get(recovered.driver, b"k-%05d" % 0) is None
        report = recovered.recovery
        assert report.torn_pages == 0
        assert report.manifest_gen == 1
        assert report.pages_scanned > 0
        assert report.mapped_lpns > 0

    def test_remount_books_simulated_time(self):
        device = KVSSD.build(CRASH_CFG)
        _fill(device.driver, 60)
        device.driver.nvme_flush()
        t0 = device.clock.now_us
        recovered = device.remount()
        assert recovered.recovery.recovery_us > 0
        assert recovered.clock.now_us == pytest.approx(
            t0 + recovered.recovery.recovery_us
        )

    def test_remount_requires_crash_consistency_mode(self):
        device = KVSSD.build(BandSlimConfig())
        with pytest.raises(RecoveryError):
            device.remount()

    def test_recovered_device_accepts_new_work(self):
        device = KVSSD.build(CRASH_CFG)
        _fill(device.driver, 40)
        device.driver.nvme_flush()
        recovered = device.remount()
        recovered.driver.put(b"fresh", b"post-recovery write")
        assert _get(recovered.driver, b"fresh") == b"post-recovery write"


class TestCrashRemount:
    def _run_until_cut(self, device, flush_every=50, count=400):
        """Drive puts with periodic flushes; returns (flushed, unflushed)."""
        driver = device.driver
        flushed = {}
        unflushed = {}
        try:
            for i in range(count):
                key = b"k-%05d" % i
                value = _value(i)
                driver.put(key, value)
                unflushed[key] = value
                if (i + 1) % flush_every == 0:
                    driver.nvme_flush()
                    flushed.update(unflushed)
                    unflushed = {}
        except PowerLossError:
            pass
        return flushed, unflushed

    def test_flushed_survives_unflushed_lost_or_durable(self):
        # Dry run without a cut to learn the timeline, then cut mid-run.
        dry = KVSSD.build(CRASH_CFG)
        self._run_until_cut(dry)
        cut = dry.clock.now_us * 0.6
        device = KVSSD.build(
            CRASH_CFG, fault_plan=FaultPlan(power_loss_at_us=(cut,))
        )
        flushed, unflushed = self._run_until_cut(device)
        assert device.injector.power_lost
        assert flushed  # the cut landed after at least one flush
        recovered = device.remount()
        for key, value in flushed.items():
            assert _get(recovered.driver, key) == value, key
        for key, value in unflushed.items():
            assert _get(recovered.driver, key) in (None, value), key

    def test_torn_pages_never_surface(self):
        device = KVSSD.build(
            CRASH_CFG,
            fault_plan=FaultPlan(seed=5, power_loss_per_program_p=0.08),
        )
        flushed, unflushed = self._run_until_cut(device)
        assert device.injector.power_lost
        recovered = device.remount()
        # Whatever was torn was retired during the scan: every readable
        # value is byte-exact, never a partial program.
        for key, value in {**flushed, **unflushed}.items():
            assert _get(recovered.driver, key) in (None, value), key
        for key, value in flushed.items():
            assert _get(recovered.driver, key) == value, key

    def test_chained_crash_and_clean_remounts(self):
        dry = KVSSD.build(CRASH_CFG)
        self._run_until_cut(dry, count=200)
        cut = dry.clock.now_us * 0.7
        device = KVSSD.build(
            CRASH_CFG, fault_plan=FaultPlan(power_loss_at_us=(cut,))
        )
        flushed, _ = self._run_until_cut(device, count=200)
        first = device.remount()
        gen_after_crash = first.journal.manifest_gen
        more = _fill(first.driver, 30, tag=b"life2")
        first.driver.nvme_flush()
        second = first.remount()
        assert second.journal.manifest_gen > gen_after_crash
        for key, value in {**flushed, **more}.items():
            assert _get(second.driver, key) == value, key
