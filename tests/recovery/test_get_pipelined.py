"""Satellite: pipelined reads under faults (the read twin of flush tests).

get_many must stay correct when the media misbehaves: with a fault
injector attached the driver falls back to the serial per-op retry
protocol (ECC read-retry, scrubbing), and a power cut mid-batch must
leave every value acked *before* the cut byte-identical to what a
remounted device returns.
"""

import pytest

from repro.core.config import BandSlimConfig
from repro.device.kvssd import KVSSD
from repro.errors import PowerLossError
from repro.faults import FaultPlan
from repro.units import MIB

PIPELINE_CFG = BandSlimConfig().with_overrides(
    crash_consistency=True,
    nand_capacity_bytes=64 * MIB,
    buffer_entries=8,
    queue_depth=8,
)

KEYS = [b"gp-%05d" % i for i in range(80)]


def _value(i: int) -> bytes:
    return bytes([(i * 13 + j) % 256 for j in range(64)]) * 40


def _loaded(fault_plan=None) -> KVSSD:
    device = KVSSD.build(PIPELINE_CFG, fault_plan=fault_plan)
    for i, key in enumerate(KEYS):
        device.driver.put(key, _value(i))
    device.driver.nvme_flush()
    return device


class TestGetManyUnderMediaFaults:
    def test_bitflips_are_corrected_across_a_batch(self):
        # Wear-style bit flips under the ECC limit: every GET must still
        # return exact bytes (the injector forces the serial fallback,
        # whose read-retry protocol corrects in place).
        device = _loaded(FaultPlan(seed=7, read_bitflip_base=2.0))
        results = device.driver.get_many(KEYS)
        assert [r.value for r in results] == [
            _value(i) for i in range(len(KEYS))
        ]
        snap = device.snapshot()
        assert snap["faults.bitflips_injected"] > 0

    def test_heavy_bitflips_trigger_retry_and_still_succeed(self):
        device = _loaded(
            FaultPlan(seed=11, read_bitflip_base=6.0, read_bitflip_per_erase=1.0)
        )
        results = device.driver.get_many(KEYS)
        assert all(r.ok for r in results)
        assert [r.value for r in results] == [
            _value(i) for i in range(len(KEYS))
        ]

    def test_injector_forces_serial_fallback(self):
        device = _loaded(FaultPlan(seed=3, read_bitflip_base=1.0))
        device.driver.get_many(KEYS)
        # The pipelined path never engages with an injector attached, so
        # the lazy coalesce counter must not exist.
        assert "nand.coalesced_reads" not in device.snapshot()


class TestGetManyAcrossPowerCut:
    def test_values_acked_before_cut_match_remounted_state(self):
        device = _loaded()
        cut_at = device.clock.now_us + 2_000.0
        plan = FaultPlan(power_loss_at_us=(cut_at,))
        # Arm a cut on the *running* device mid-read-burst: rebuild with
        # the same flash via a fresh injected twin is not possible, so we
        # instead run the batch on an injected device loaded identically.
        injected = KVSSD.build(PIPELINE_CFG, fault_plan=plan)
        for i, key in enumerate(KEYS):
            injected.driver.put(key, _value(i))
        injected.driver.nvme_flush()
        acked: dict[bytes, bytes] = {}
        try:
            for key in KEYS:
                result = injected.driver.get(key)
                acked[key] = result.value
        except PowerLossError:
            pass
        assert injected.injector.power_lost or len(acked) == len(KEYS)
        recovered = injected.remount()
        # Reads mutate nothing: every value acked before the lights went
        # out must be exactly what the remounted device serves.
        for key, value in acked.items():
            assert recovered.driver.get(key).value == value, key

    def test_pipelined_batch_after_remount_is_complete(self):
        device = _loaded()
        recovered = device.remount()
        results = recovered.driver.get_many(KEYS)
        assert [r.value for r in results] == [
            _value(i) for i in range(len(KEYS))
        ]

    def test_batch_on_frozen_device_raises_power_loss(self):
        plan = FaultPlan(power_loss_at_us=(1.0,))
        device = KVSSD.build(PIPELINE_CFG, fault_plan=plan)
        with pytest.raises(PowerLossError):
            device.driver.put(b"k", b"v" * 64)
        with pytest.raises(PowerLossError):
            device.driver.get_many([b"k"])
