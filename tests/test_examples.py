"""Smoke tests: every shipped example runs to completion."""

import io
import os
import runpy
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


def test_examples_present():
    """The deliverable requires a quickstart plus domain scenarios."""
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    out = io.StringIO()
    with redirect_stdout(out):
        runpy.run_path(os.path.join(EXAMPLES_DIR, script), run_name="__main__")
    assert out.getvalue().strip(), f"{script} produced no output"


def test_quickstart_output_mentions_counters():
    out = io.StringIO()
    with redirect_stdout(out):
        runpy.run_path(
            os.path.join(EXAMPLES_DIR, "quickstart.py"), run_name="__main__"
        )
    text = out.getvalue()
    assert "PCIe traffic" in text
    assert "NAND page writes" in text
