"""Tests for bench result formatting and the ops knob."""

import pytest

from repro.bench.report import (
    FigureResult,
    OPS_ENV_VAR,
    format_figure,
    write_results,
)
from repro.bench.report import bench_ops as ops_default  # aliased: pytest would collect 'bench_*' names


@pytest.fixture
def fig():
    return FigureResult(
        figure_id="figX",
        title="Demo",
        columns=["size", "value"],
        rows=[[32, 1.5], [64, 3.0]],
        notes=["a note"],
    )


class TestBenchOps:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(OPS_ENV_VAR, raising=False)
        assert ops_default(123) == 123

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(OPS_ENV_VAR, "777")
        assert ops_default(123) == 777

    def test_rejects_nonpositive(self, monkeypatch):
        monkeypatch.setenv(OPS_ENV_VAR, "0")
        with pytest.raises(ValueError):
            ops_default(123)


class TestFigureResult:
    def test_row_dicts(self, fig):
        assert fig.row_dicts() == [
            {"size": 32, "value": 1.5},
            {"size": 64, "value": 3.0},
        ]

    def test_column(self, fig):
        assert fig.column("size") == [32, 64]

    def test_column_unknown_raises(self, fig):
        with pytest.raises(ValueError):
            fig.column("nope")


class TestFormat:
    def test_contains_header_rows_notes(self, fig):
        text = format_figure(fig)
        assert "figX: Demo" in text
        assert "size" in text and "value" in text
        assert "32" in text and "3.000" in text
        assert "note: a note" in text

    def test_columns_aligned(self, fig):
        lines = format_figure(fig).splitlines()
        header, sep = lines[1], lines[2]
        assert len(header) == len(sep)

    def test_large_numbers_thousands_separated(self):
        f = FigureResult("f", "t", ["n"], [[1234567.0]])
        assert "1,234,567" in format_figure(f)


class TestWriteResults:
    def test_writes_one_file_per_figure(self, tmp_path, fig):
        other = FigureResult("figY", "Other", ["a"], [[1]])
        paths = write_results([fig, other], str(tmp_path))
        assert len(paths) == 2
        assert (tmp_path / "figX.txt").read_text().startswith("== figX")
        assert (tmp_path / "figY.txt").exists()
