"""Tests for the per-figure experiment definitions (at tiny op counts)."""

import pytest

from repro.bench.figures import (
    ALL_FIGURES,
    fig3,
    fig8,
    fig10,
    fig12,
    table1,
    table2,
)

TINY = 40  # ops per point — structure checks only


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert set(ALL_FIGURES) == {
            "table1", "table2", "fig3", "fig4", "fig8", "fig9",
            "fig10", "fig11", "fig12",
        }


class TestTables:
    def test_table1_structure(self):
        (result,) = table1()
        assert result.columns == ["component", "paper", "this reproduction"]
        assert len(result.rows) == 3

    def test_table2_structure(self):
        (result,) = table2()
        assert any("NVMe passthrough" in row[0] for row in result.rows)


class TestFigureStructure:
    def test_fig3_panels(self):
        fig_a, fig_b = fig3(TINY)
        assert fig_a.figure_id == "fig3a"
        assert len(fig_a.rows) == 16          # 1..16 KiB
        assert fig_b.figure_id == "fig3b"
        assert fig_b.column("value_B") == [32, 64, 128, 256, 512, 1024]

    def test_fig8_sweep_axis(self):
        (fig,) = fig8(TINY)
        assert fig.column("value_B")[0] == 4
        assert fig.column("value_B")[-1] == 4096
        assert len(fig.rows) == 11

    def test_fig10_matrix(self):
        panels = fig10(TINY)
        assert [p.figure_id for p in panels] == [
            "fig10a", "fig10b", "fig10c", "fig10d",
        ]
        for panel in panels:
            assert panel.columns == ["config", "W(B)", "W(C)", "W(D)", "W(M)"]
            assert [row[0] for row in panel.rows] == [
                "baseline", "piggyback", "adaptive",
            ]

    def test_fig12_matrix(self):
        panels = fig12(TINY)
        for panel in panels:
            assert [row[0] for row in panel.rows] == [
                "block", "all", "select", "backfill",
            ]

    def test_values_numeric(self):
        (fig,) = fig8(TINY)
        for row in fig.rows:
            assert all(isinstance(v, (int, float)) for v in row)

    def test_notes_mention_scale(self):
        fig_a, _ = fig3(TINY)
        assert any("1 M ops" in note for note in fig_a.notes)


class TestRemainingFigures:
    def test_fig4_panels(self):
        from repro.bench.figures import fig4

        fig_a, fig_b = fig4(TINY)
        assert fig_a.figure_id == "fig4a"
        assert len(fig_a.rows) == 16
        assert fig_b.figure_id == "fig4b"

    def test_fig9_panels(self):
        from repro.bench.figures import fig9

        fig_a, fig_b = fig9(TINY)
        assert fig_a.figure_id == "fig9a"
        assert fig_b.figure_id == "fig9b"
        assert fig_a.column("trailing_B")[0] == 4
        assert fig_a.column("trailing_B")[-1] == 4096

    def test_fig11_panels(self):
        from repro.bench.figures import fig11

        fig_a, fig_b = fig11(TINY)
        assert fig_a.columns == [
            "value_B", "baseline", "piggyback", "packing", "piggy+pack",
        ]
        assert len(fig_a.rows) == 11
        assert fig_b.figure_id == "fig11b"
