"""ArrayStore.put_many / get_many: equivalence with the serial paths.

The batched operations exist so the serving layer can hit the drivers'
pipelined submission paths; they must stay *semantically* identical to
looping ``put``/``get`` — same stored bytes, same replica placement,
same quorum verdicts, same degraded-mode failover — only the latency
accounting (overlapped, per-op in-batch latency) differs.
"""

import random

import pytest

from repro.array import ArrayStore
from repro.core.config import BandSlimConfig
from repro.errors import KeyNotFoundError, QuorumError
from repro.units import KIB, MIB


def _cfg(**overrides):
    base = dict(
        array_shards=3,
        replication_factor=2,
        write_quorum=1,
        nand_capacity_bytes=64 * MIB,
        buffer_entries=32,
        memtable_flush_bytes=16 * KIB,
        dlt_capacity=64,
    )
    base.update(overrides)
    return BandSlimConfig(**base)


def _pairs(rng, count, key_space=30):
    return [
        (b"mk%03d" % rng.randrange(key_space),
         bytes([rng.randrange(256)]) * rng.randrange(1, 96))
        for _ in range(count)
    ]


class TestPutMany:
    def test_matches_serial_puts(self):
        rng = random.Random(42)
        pairs = _pairs(rng, 60)
        serial = ArrayStore.build(config=_cfg())
        batched = ArrayStore.build(config=_cfg())
        for key, value in pairs:
            serial.put(key, value)
        outcomes = batched.put_many(pairs, queue_depth=8)
        assert len(outcomes) == len(pairs)
        assert all(isinstance(o, float) for o in outcomes)
        for key, _ in pairs:
            assert batched.get(key) == serial.get(key)

    def test_replica_placement_identical(self):
        pairs = _pairs(random.Random(7), 30)
        serial = ArrayStore.build(config=_cfg())
        batched = ArrayStore.build(config=_cfg())
        for key, value in pairs:
            serial.put(key, value)
        batched.put_many(pairs, queue_depth=4)
        for key in dict(pairs):
            assert batched.replicas_of(key) == serial.replicas_of(key)
            for index in batched.replicas_of(key):
                assert batched.devices[index].driver.exists(key) == \
                    serial.devices[index].driver.exists(key)

    def test_dead_replica_yields_quorum_error_per_op(self):
        store = ArrayStore.build(
            config=_cfg(replication_factor=2, write_quorum=2)
        )
        pairs = _pairs(random.Random(3), 20)
        store.kill_device(0)
        outcomes = store.put_many(pairs, queue_depth=4)
        for (key, _), outcome in zip(pairs, outcomes):
            if 0 in store.replicas_of(key):
                assert isinstance(outcome, QuorumError)
            else:
                assert isinstance(outcome, float)

    def test_empty_batch_is_a_noop(self):
        store = ArrayStore.build(config=_cfg())
        t0 = store.now_us
        assert store.put_many([]) == []
        assert store.now_us == t0


class TestGetMany:
    def test_matches_serial_gets(self):
        rng = random.Random(11)
        pairs = _pairs(rng, 50)
        store = ArrayStore.build(config=_cfg())
        store.put_many(pairs, queue_depth=8)
        latest = dict(pairs)
        keys = list(latest) + [b"missing0", b"missing1"]
        entries = store.get_many(keys, queue_depth=8)
        assert len(entries) == len(keys)
        for key, entry in zip(keys, entries):
            found, payload, latency = entry
            assert latency > 0
            if key in latest:
                assert found
                assert payload == latest[key]
            else:
                assert not found

    def test_failover_to_surviving_replica(self):
        store = ArrayStore.build(config=_cfg())
        pairs = _pairs(random.Random(5), 40)
        store.put_many(pairs, queue_depth=4)
        latest = dict(pairs)
        store.kill_device(1)
        entries = store.get_many(list(latest), queue_depth=4)
        for (key, value), entry in zip(latest.items(), entries):
            found, payload, _ = entry
            assert found, f"lost {key!r} after single-device death"
            assert payload == value
        assert store.snapshot()["array.failovers"] > 0

    def test_deleted_keys_report_not_found(self):
        store = ArrayStore.build(config=_cfg())
        store.put(b"gone", b"x")
        store.put(b"kept", b"y")
        store.delete(b"gone")
        entries = store.get_many([b"gone", b"kept"])
        assert entries[0][0] is False
        assert entries[1][:2] == (True, b"y")
        with pytest.raises(KeyNotFoundError):
            store.get(b"gone")

    def test_advances_host_clock_once_per_batch(self):
        store = ArrayStore.build(config=_cfg())
        pairs = _pairs(random.Random(9), 20)
        store.put_many(pairs, queue_depth=8)
        before = store.now_us
        store.get_many([key for key, _ in pairs], queue_depth=8)
        elapsed_batched = store.now_us - before
        serial = ArrayStore.build(config=_cfg())
        serial.put_many(pairs, queue_depth=8)
        before = serial.now_us
        for key, _ in pairs:
            serial.get(key)
        elapsed_serial = serial.now_us - before
        # Overlapped submission: the batch burns less virtual wall time
        # than op-at-a-time reads of the same keys.
        assert elapsed_batched < elapsed_serial
