"""Consistent-hash ring: determinism, balance, replica-set shape."""

import pytest

from repro.array.ring import HashRing
from repro.errors import ConfigError


class TestPlacement:
    def test_replicas_are_distinct_and_preference_ordered(self):
        ring = HashRing(5)
        for i in range(200):
            reps = ring.replicas(b"key-%d" % i, 3)
            assert len(reps) == 3
            assert len(set(reps)) == 3
            assert all(0 <= d < 5 for d in reps)
            assert reps[0] == ring.primary(b"key-%d" % i)

    def test_deterministic_across_instances(self):
        a = HashRing(4, vnodes=32)
        b = HashRing(4, vnodes=32)
        keys = [b"k%04d" % i for i in range(300)]
        assert [a.replicas(k, 2) for k in keys] == [
            b.replicas(k, 2) for k in keys
        ]

    def test_owns_matches_replicas(self):
        ring = HashRing(4)
        key = b"ownership-probe"
        reps = set(ring.replicas(key, 2))
        for dev in range(4):
            assert ring.owns(key, dev, 2) == (dev in reps)

    def test_load_is_roughly_uniform(self):
        ring = HashRing(4, vnodes=64)
        counts = [0, 0, 0, 0]
        n = 4000
        for i in range(n):
            counts[ring.primary(b"load-%06d" % i)] += 1
        # With 64 vnodes/device the primary share should be near n/4; allow
        # a generous band so the test never flakes on hash quirks.
        for c in counts:
            assert 0.5 * n / 4 < c < 1.7 * n / 4, counts

    def test_single_device_owns_everything(self):
        ring = HashRing(1, vnodes=8)
        assert ring.replicas(b"anything", 1) == (0,)


class TestValidation:
    def test_rejects_zero_devices_and_vnodes(self):
        with pytest.raises(ConfigError):
            HashRing(0)
        with pytest.raises(ConfigError):
            HashRing(2, vnodes=0)

    def test_rejects_impossible_replication(self):
        ring = HashRing(3)
        with pytest.raises(ConfigError):
            ring.replicas(b"k", 0)
        with pytest.raises(ConfigError):
            ring.replicas(b"k", 4)
