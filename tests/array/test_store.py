"""ArrayStore basics: routing, replication, quorum, snapshot rollup."""

import pytest

from repro.array import ArrayStore
from repro.array.codec import HEADER_BYTES, decode_value
from repro.core.config import BandSlimConfig
from repro.errors import (
    ConfigError,
    KeyNotFoundError,
    NVMeError,
    QuorumError,
)
from repro.units import KIB, MIB


def _cfg(**overrides):
    base = dict(
        array_shards=3,
        replication_factor=2,
        write_quorum=1,
        nand_capacity_bytes=64 * MIB,
        buffer_entries=32,
        memtable_flush_bytes=16 * KIB,
        dlt_capacity=64,
    )
    base.update(overrides)
    return BandSlimConfig(**base)


class TestConfigValidation:
    def test_replication_cannot_exceed_shards(self):
        with pytest.raises(ConfigError):
            BandSlimConfig(array_shards=2, replication_factor=3)

    def test_quorum_cannot_exceed_replication(self):
        with pytest.raises(ConfigError):
            BandSlimConfig(
                array_shards=3, replication_factor=2, write_quorum=3
            )

    def test_negative_throttle_rejected(self):
        with pytest.raises(ConfigError):
            BandSlimConfig(rebuild_throttle=-1.0)


class TestPointOps:
    def test_put_get_delete_roundtrip(self):
        store = ArrayStore.build(config=_cfg())
        store.put(b"alpha", b"one")
        store.put(b"beta", b"two")
        assert store.get(b"alpha") == b"one"
        assert store.exists(b"beta")
        store.delete(b"alpha")
        assert not store.exists(b"alpha")
        with pytest.raises(KeyNotFoundError):
            store.get(b"alpha")

    def test_overwrite_wins(self):
        store = ArrayStore.build(config=_cfg())
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"

    def test_empty_value_roundtrips(self):
        # The single-device driver rejects empty values; the array's
        # envelope header makes them representable.
        store = ArrayStore.build(config=_cfg())
        store.put(b"empty", b"")
        assert store.get(b"empty") == b""
        assert store.exists(b"empty")

    def test_value_lands_on_every_ring_replica(self):
        store = ArrayStore.build(config=_cfg())
        store.put(b"spread", b"copies")
        replicas = store.replicas_of(b"spread")
        assert len(replicas) == 2
        for index in replicas:
            result = store.devices[index].driver.get(b"spread")
            seq, tombstone, payload = decode_value(result.value)
            assert payload == b"copies"
            assert not tombstone

    def test_non_replicas_never_see_the_key(self):
        store = ArrayStore.build(config=_cfg())
        store.put(b"spread", b"copies")
        replicas = set(store.replicas_of(b"spread"))
        for shard in store.devices:
            if shard.index not in replicas:
                with pytest.raises(KeyNotFoundError):
                    shard.driver.get(b"spread")

    def test_key_and_value_validation(self):
        store = ArrayStore.build(config=_cfg())
        with pytest.raises(NVMeError):
            store.put(b"", b"v")
        with pytest.raises(NVMeError):
            store.put("not-bytes", b"v")
        with pytest.raises(NVMeError):
            store.put(b"k", "not-bytes")
        limit = _cfg().max_value_bytes - HEADER_BYTES
        store.put(b"max", b"x" * limit)
        with pytest.raises(NVMeError):
            store.put(b"too-big", b"x" * (limit + 1))

    def test_latency_advances_host_clock(self):
        store = ArrayStore.build(config=_cfg())
        assert store.now_us == 0.0
        latency = store.put(b"k", b"v")
        assert latency > 0
        assert store.now_us == pytest.approx(latency)


class TestQuorum:
    def test_write_quorum_two_needs_two_live_replicas(self):
        store = ArrayStore.build(
            config=_cfg(array_shards=2, replication_factor=2, write_quorum=2)
        )
        store.put(b"k", b"v")  # both up: fine
        store.kill_device(0)
        with pytest.raises(QuorumError):
            store.put(b"k", b"v2")
        snap = store.snapshot()
        assert snap["array.quorum_failures"] == 1

    def test_quorum_one_survives_single_death(self):
        store = ArrayStore.build(
            config=_cfg(array_shards=2, replication_factor=2, write_quorum=1)
        )
        store.kill_device(1)
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"

    def test_quorum_latency_is_quorum_th_fastest(self):
        # With Q=R=1 the latency equals the single replica ack; with Q=2
        # it is the slower of the two parallel acks — so Q=2 >= Q=1 for
        # the same op stream.
        lat1 = []
        lat2 = []
        for quorum, sink in ((1, lat1), (2, lat2)):
            store = ArrayStore.build(
                config=_cfg(
                    array_shards=2, replication_factor=2, write_quorum=quorum
                )
            )
            for i in range(10):
                sink.append(store.put(b"k%02d" % i, b"v" * 100))
        assert sum(lat2) >= sum(lat1)


class TestSnapshot:
    def test_per_shard_and_global_rollup(self):
        store = ArrayStore.build(config=_cfg())
        for i in range(12):
            store.put(b"s%03d" % i, b"v" * 64)
        snap = store.snapshot()
        # Per-shard prefixed views exist and include the health gauge.
        for i in range(3):
            assert snap[f"shard{i}.up"] == 1.0
            assert f"shard{i}.clock.now_us" in snap
        # Counter-like keys roll up as the sum across shards.
        per_shard = [snap[f"shard{i}.driver.puts"] for i in range(3)]
        assert snap["driver.puts"] == sum(per_shard)
        # R=2: every array put lands on two devices.
        assert snap["driver.puts"] == 24.0
        # Means are never summed into the global namespace.
        assert snap["clock.now_us"] == max(
            snap[f"shard{i}.clock.now_us"] for i in range(3)
        )
        assert snap["array.devices"] == 3.0
        assert snap["array.devices_up"] == 3.0
        assert snap["array.puts"] == 12.0

    def test_snapshot_reflects_degraded_state(self):
        store = ArrayStore.build(config=_cfg())
        store.kill_device(2)
        snap = store.snapshot()
        assert snap["shard2.up"] == 0.0
        assert snap["array.devices_up"] == 2.0
        assert snap["array.degraded_events"] == 1.0


class TestBuildValidation:
    def test_plan_list_longer_than_shards_rejected(self):
        from repro.faults.plan import FaultPlan

        with pytest.raises(ConfigError):
            ArrayStore.build(
                config=_cfg(array_shards=2, replication_factor=1),
                device_plans=[FaultPlan()] * 3,
            )


class TestTracing:
    def _events(self, store, tracer):
        return [(e.category, e.name) for e in tracer.events]

    def test_route_and_repair_spans_recorded(self):
        from repro.sim.trace import Tracer

        tracer = Tracer()
        store = ArrayStore.build(config=_cfg(), tracer=tracer)
        store.put(b"traced", b"payload")
        store.get(b"traced")
        names = self._events(store, tracer)
        assert ("array", "route") in names
        # Force a failover read so the repair span fires too.
        primary = store.replicas_of(b"traced")[0]
        store.devices[primary].missed.add(b"traced")
        assert store.get(b"traced") == b"payload"
        names = self._events(store, tracer)
        assert ("array", "repair") in names

    def test_rebuild_and_death_spans_recorded(self):
        from repro.sim.trace import Tracer

        tracer = Tracer()
        store = ArrayStore.build(config=_cfg(), tracer=tracer)
        for i in range(8):
            store.put(b"key%d" % i, b"v%d" % i)
        store.kill_device(0)
        store.start_rebuild(0)
        store.drain_rebuild()
        names = self._events(store, tracer)
        assert ("array", "device_down") in names
        assert ("array", "rebuild") in names
        rebuild = next(
            e for e in tracer.events
            if e.category == "array" and e.name == "rebuild"
        )
        assert rebuild.args["copied"] + rebuild.args["skipped"] >= 0
        assert rebuild.dur_us >= 0.0

    def test_untraced_store_records_nothing(self):
        store = ArrayStore.build(config=_cfg())
        store.put(b"quiet", b"v")
        assert store._tracer is None
