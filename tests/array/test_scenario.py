"""The deterministic fault scenarios and their durability oracle."""

import pytest

from repro.array.scenario import (
    run_device_loss,
    run_rolling_remounts,
)
from repro.errors import ConfigError


class TestDeviceLoss:
    def test_power_cut_scenario_passes_the_oracle(self):
        # The PR's acceptance scenario: R=2, one seeded power cut under
        # live mixed traffic, live rebuild, zero acked writes lost.
        report = run_device_loss(ops=300, seed=7)
        assert report.ok, report.violations
        assert report.kill_mode == "power"
        assert report.acked_puts > 0
        assert report.rebuild_copied > 0
        assert report.keys_checked > 0

    def test_failstop_scenario_passes_the_oracle(self):
        report = run_device_loss(ops=250, seed=13, kill_mode="failstop")
        assert report.ok, report.violations

    def test_remount_variant_passes_the_oracle(self):
        report = run_device_loss(ops=250, seed=11, remount=True)
        assert report.ok, report.violations

    def test_deterministic_for_a_fixed_seed(self):
        a = run_device_loss(ops=220, seed=42)
        b = run_device_loss(ops=220, seed=42)
        assert a.to_json_obj() == b.to_json_obj()

    def test_reads_failed_over_while_degraded(self):
        report = run_device_loss(ops=300, seed=7)
        assert report.failovers > 0

    def test_json_report_shape(self):
        import json

        report = run_device_loss(ops=150, seed=3)
        obj = report.to_json_obj()
        json.dumps(obj)  # must be serializable as-is
        assert obj["ok"] is True
        assert obj["violations"] == []
        assert obj["shards"] == 3

    def test_argument_validation(self):
        with pytest.raises(ConfigError):
            run_device_loss(ops=100, kill_mode="meteor")
        with pytest.raises(ConfigError):
            run_device_loss(ops=100, kill_at=90, rebuild_at=50)
        with pytest.raises(ConfigError):
            run_device_loss(ops=100, remount=True, kill_mode="failstop")


class TestRollingRemounts:
    def test_rolling_maintenance_never_loses_an_acked_write(self):
        report = run_rolling_remounts(ops_per_phase=60, seed=3)
        assert report.ok, report.violations
        assert report.rebuild_copied > 0
        assert report.acked_puts > 0
