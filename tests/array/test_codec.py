"""Replica value envelope: roundtrip, tombstones, malformed blobs."""

import pytest

from repro.array.codec import (
    FLAG_TOMBSTONE,
    HEADER_BYTES,
    decode_value,
    encode_value,
)
from repro.errors import ArrayError


class TestRoundtrip:
    def test_value_roundtrips(self):
        blob = encode_value(42, b"payload bytes")
        assert len(blob) == HEADER_BYTES + len(b"payload bytes")
        assert decode_value(blob) == (42, False, b"payload bytes")

    def test_empty_payload_is_legal(self):
        # The device rejects empty values; the envelope makes them non-empty.
        blob = encode_value(7, b"")
        assert len(blob) == HEADER_BYTES
        assert decode_value(blob) == (7, False, b"")

    def test_tombstone_carries_no_payload(self):
        blob = encode_value(9, b"ignored", tombstone=True)
        assert len(blob) == HEADER_BYTES
        seq, tombstone, payload = decode_value(blob)
        assert (seq, tombstone, payload) == (9, True, b"")
        assert blob[8] & FLAG_TOMBSTONE

    def test_seq_ordering_survives_encoding(self):
        older = decode_value(encode_value(10, b"old"))
        newer = decode_value(encode_value(11, b"new"))
        assert newer[0] > older[0]

    def test_large_seq(self):
        blob = encode_value(2**63, b"x")
        assert decode_value(blob)[0] == 2**63


class TestValidation:
    def test_negative_seq_rejected(self):
        with pytest.raises(ArrayError):
            encode_value(-1, b"x")

    def test_short_blob_rejected(self):
        with pytest.raises(ArrayError):
            decode_value(b"\x00" * (HEADER_BYTES - 1))
