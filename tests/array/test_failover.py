"""Failover reads, read-repair, power-cut death detection."""

import pytest

from repro.array import ArrayStore
from repro.array.codec import decode_value, encode_value
from repro.core.config import BandSlimConfig
from repro.errors import ArrayError, KeyNotFoundError
from repro.faults.plan import FaultPlan
from repro.units import KIB, MIB


def _cfg(**overrides):
    base = dict(
        array_shards=3,
        replication_factor=2,
        write_quorum=1,
        nand_capacity_bytes=64 * MIB,
        buffer_entries=32,
        memtable_flush_bytes=16 * KIB,
        dlt_capacity=64,
    )
    base.update(overrides)
    return BandSlimConfig(**base)


class TestFailover:
    def test_reads_survive_any_single_death(self):
        store = ArrayStore.build(config=_cfg())
        acked = {}
        for i in range(40):
            key = b"f%03d" % i
            value = b"v" * (16 + i)
            store.put(key, value)
            acked[key] = value
        store.kill_device(0)
        for key, value in acked.items():
            assert store.get(key) == value
        assert store.snapshot()["array.failovers"] > 0

    def test_no_replica_reachable_raises_array_error(self):
        store = ArrayStore.build(config=_cfg())
        store.put(b"gone", b"v")
        for index in store.replicas_of(b"gone"):
            store.kill_device(index)
        with pytest.raises(ArrayError):
            store.get(b"gone")

    def test_absent_key_stays_absent_under_failover(self):
        store = ArrayStore.build(config=_cfg())
        store.kill_device(1)
        with pytest.raises(KeyNotFoundError):
            store.get(b"never-written")

    def test_writes_during_outage_are_marked_missed(self):
        store = ArrayStore.build(
            config=_cfg(array_shards=2, replication_factor=2)
        )
        store.kill_device(1)
        store.put(b"during", b"outage")
        assert b"during" in store.devices[1].missed
        assert store.get(b"during") == b"outage"


class TestReadRepair:
    def _stale_replica(self, store, key, value):
        """Write ``key`` then plant an older version on one replica."""
        store.put(key, value)
        first, second = store.replicas_of(key)
        stale = encode_value(0, b"stale bytes")
        store.devices[second].driver.put(key, stale)
        return first, second

    def test_failover_read_repairs_the_stale_replica(self):
        store = ArrayStore.build(config=_cfg())
        first, second = self._stale_replica(store, b"rr", b"fresh")
        # Force the fan-out path: pretend the primary missed the key.
        store.devices[first].missed.add(b"rr")
        assert store.get(b"rr") == b"fresh"
        snap = store.snapshot()
        assert snap["array.read_repairs"] >= 1
        assert snap["array.repaired_replicas"] >= 1
        # The stale replica now holds the newest version.
        result = store.devices[second].driver.get(b"rr")
        assert decode_value(result.value)[2] == b"fresh"
        # The repaired read also cleared the missed marker.
        assert b"rr" not in store.devices[first].missed

    def test_newest_version_wins_even_from_secondary(self):
        store = ArrayStore.build(config=_cfg())
        store.put(b"nv", b"old")
        first, second = store.replicas_of(b"nv")
        # Plant a *newer* version only on the secondary (as if the primary
        # missed the latest write).
        newer = encode_value(store.last_seq + 10, b"newest")
        store.devices[second].driver.put(b"nv", newer)
        store.devices[first].missed.add(b"nv")
        assert store.get(b"nv") == b"newest"
        result = store.devices[first].driver.get(b"nv")
        assert decode_value(result.value)[2] == b"newest"

    def test_scrub_converges_all_replicas(self):
        store = ArrayStore.build(config=_cfg())
        for i in range(10):
            self._stale_replica(store, b"sc%02d" % i, b"good%02d" % i)
        repaired = store.scrub()
        assert repaired == 10
        for i in range(10):
            key = b"sc%02d" % i
            blobs = set()
            for index in store.replicas_of(key):
                blobs.add(store.devices[index].driver.get(key).value)
            assert len(blobs) == 1, f"replicas of {key!r} diverge"

    def test_tombstone_beats_older_value(self):
        store = ArrayStore.build(config=_cfg())
        store.put(b"dead", b"alive")
        store.delete(b"dead")
        first, second = store.replicas_of(b"dead")
        # Roll one replica back to the pre-delete value.
        store.devices[second].driver.put(
            b"dead", encode_value(1, b"alive")
        )
        store.devices[first].missed.add(b"dead")
        with pytest.raises(KeyNotFoundError):
            store.get(b"dead")
        # Repair replaced the resurrected value with the tombstone.
        result = store.devices[second].driver.get(b"dead")
        assert decode_value(result.value)[1] is True


class TestPowerCutDetection:
    def test_scripted_cut_marks_device_down_lazily(self):
        plans = [FaultPlan(power_loss_at_us=(1.0,)), None, None]
        store = ArrayStore.build(config=_cfg(), device_plans=plans)
        assert store.devices[0].up
        for i in range(30):
            store.put(b"p%03d" % i, b"v" * 32)
        # The first op that touched device 0 tripped the cut; the router
        # absorbed the PowerLossError and degraded the shard.
        assert not store.devices[0].up
        assert store.devices_up == 2
        assert store.snapshot()["array.degraded_events"] == 1.0
        # Every key is still readable through the survivors.
        for i in range(30):
            assert store.get(b"p%03d" % i) == b"v" * 32

    def test_probe_detects_pending_cut(self):
        plans = [None, FaultPlan(power_loss_at_us=(0.5,)), None]
        store = ArrayStore.build(config=_cfg(), device_plans=plans)
        assert not store.probe_device(1)
        assert not store.devices[1].up
        assert store.probe_device(0)
