"""Live rebuild: fresh-device and remount recovery under traffic."""

import pytest

from repro.array import ArrayStore, DeviceState
from repro.core.config import BandSlimConfig
from repro.errors import ArrayError
from repro.faults.plan import FaultPlan
from repro.units import KIB, MIB


def _cfg(**overrides):
    base = dict(
        array_shards=3,
        replication_factor=2,
        write_quorum=1,
        nand_capacity_bytes=64 * MIB,
        buffer_entries=32,
        memtable_flush_bytes=16 * KIB,
        dlt_capacity=64,
    )
    base.update(overrides)
    return BandSlimConfig(**base)


def _fill(store, count, tag=b"rb"):
    acked = {}
    for i in range(count):
        key = tag + b"%04d" % i
        value = bytes([(i + j) % 256 for j in range(48)])
        store.put(key, value)
        acked[key] = value
    return acked


class TestFreshDeviceRebuild:
    def test_kill_mid_burst_rebuild_restores_every_acked_key(self):
        store = ArrayStore.build(config=_cfg())
        acked = _fill(store, 30, tag=b"a")
        store.kill_device(0)
        acked.update(_fill(store, 30, tag=b"b"))  # degraded burst
        store.start_rebuild(0)
        acked.update(_fill(store, 30, tag=b"c"))  # burst during rebuild
        store.drain_rebuild()
        assert store.devices[0].state is DeviceState.UP
        assert not store.devices[0].missed
        # Every acked key readable, and device 0's slice is fully local
        # again (no failover needed: read its keys directly).
        for key, value in acked.items():
            assert store.get(key) == value
        for key in acked:
            if 0 in store.replicas_of(key):
                result = store.devices[0].driver.get(key)
                assert result.ok
        snap = store.snapshot()
        assert snap["array.rebuilds_completed"] == 1.0
        assert snap["array.rebuild_keys_copied"] > 0
        assert snap["array.rebuild_keys_unrecoverable"] == 0.0

    def test_live_write_during_rebuild_beats_the_copy(self):
        store = ArrayStore.build(config=_cfg(rebuild_throttle=0.0))
        _fill(store, 20)
        store.kill_device(0)
        store.start_rebuild(0)
        job = store.rebuild
        assert job is not None and not job.finished
        # Overwrite one pending key via live traffic before the copy runs;
        # the REBUILDING replica takes the write directly.
        victim_key = next(
            k for k in (b"rb%04d" % i for i in range(20))
            if 0 in store.replicas_of(k)
        )
        store.put(victim_key, b"live write wins")
        store.drain_rebuild()
        assert store.get(victim_key) == b"live write wins"
        result = store.devices[0].driver.get(victim_key)
        assert result.ok
        snap = store.snapshot()
        assert snap["array.rebuild_keys_skipped"] >= 1

    def test_throttle_zero_makes_no_foreground_progress(self):
        store = ArrayStore.build(config=_cfg(rebuild_throttle=0.0))
        _fill(store, 20)
        store.kill_device(0)
        store.start_rebuild(0)
        remaining = store.rebuild.remaining
        _fill(store, 10, tag=b"x")  # foreground ops pump nothing
        assert store.rebuild is not None
        assert store.rebuild.remaining >= remaining - 0  # untouched pending
        moved = store.pump_rebuild(4)
        assert moved == 4
        store.drain_rebuild()
        assert store.rebuild is None

    def test_throttle_drains_rebuild_under_foreground_load(self):
        store = ArrayStore.build(config=_cfg(rebuild_throttle=4.0))
        _fill(store, 24)
        store.kill_device(0)
        store.start_rebuild(0)
        # Enough foreground ops at 4 copies/op to finish the whole slice.
        _fill(store, 30, tag=b"y")
        assert store.rebuild is None
        assert store.devices[0].up

    def test_rebuild_stall_lands_on_foreground_latency(self):
        lat_quiet = []
        lat_rebuild = []
        for throttle, sink, rebuild in ((8.0, lat_quiet, False),
                                        (8.0, lat_rebuild, True)):
            store = ArrayStore.build(config=_cfg(rebuild_throttle=throttle))
            _fill(store, 30)
            if rebuild:
                store.kill_device(0)
                store.start_rebuild(0)
            for i in range(8):
                sink.append(store.put(b"fg%02d" % i, b"v" * 64))
        # Copies are charged to the next foreground op, so the rebuild run
        # must be strictly slower in aggregate.
        assert sum(lat_rebuild) > sum(lat_quiet)


class TestRemountRebuild:
    def test_remount_rebuild_after_power_cut(self):
        plans = [None, None, FaultPlan(power_loss_at_us=(100.0,))]
        store = ArrayStore.build(
            config=_cfg(crash_consistency=True), device_plans=plans
        )
        acked = _fill(store, 40)
        assert not store.probe_device(2)
        acked.update(_fill(store, 20, tag=b"deg"))
        store.start_rebuild(2, remount=True)
        store.drain_rebuild()
        assert store.devices[2].up
        assert store.devices[2].device.recovery is not None
        for key, value in acked.items():
            assert store.get(key) == value


class TestRebuildStateMachine:
    def test_rebuild_requires_a_down_device(self):
        store = ArrayStore.build(config=_cfg())
        with pytest.raises(ArrayError):
            store.start_rebuild(0)

    def test_only_one_rebuild_at_a_time(self):
        store = ArrayStore.build(config=_cfg(rebuild_throttle=0.0))
        _fill(store, 10)
        store.kill_device(0)
        store.kill_device(1)
        store.start_rebuild(0)
        with pytest.raises(ArrayError):
            store.start_rebuild(1)

    def test_cannot_kill_a_rebuilding_device(self):
        store = ArrayStore.build(config=_cfg(rebuild_throttle=0.0))
        _fill(store, 10)
        store.kill_device(0)
        store.start_rebuild(0)
        with pytest.raises(ArrayError):
            store.kill_device(0)

    def test_empty_slice_promotes_immediately(self):
        store = ArrayStore.build(config=_cfg())
        store.kill_device(1)  # nothing was ever written
        store.start_rebuild(1)
        assert store.rebuild is None
        assert store.devices[1].up
