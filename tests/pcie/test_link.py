"""Tests for the PCIe link: joint traffic accounting + clock advancement."""

import pytest

from repro.errors import ConfigError
from repro.pcie.link import PCIeLink, PCIeLinkConfig
from repro.pcie.metrics import TrafficCategory
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel


@pytest.fixture
def link():
    return PCIeLink(SimClock(), LatencyModel())


class TestLinkConfig:
    def test_defaults_match_table1(self):
        cfg = PCIeLinkConfig()
        assert cfg.generation == 2
        assert cfg.lanes == 8

    def test_raw_bandwidth_gen2_x8(self):
        assert PCIeLinkConfig().raw_gbps == pytest.approx(4.0)

    def test_rejects_unknown_generation(self):
        with pytest.raises(ConfigError):
            PCIeLinkConfig(generation=9)

    def test_rejects_bad_lanes(self):
        with pytest.raises(ConfigError):
            PCIeLinkConfig(lanes=3)


class TestCommandPlumbing:
    def test_submit_accounts_doorbell_and_sqe(self, link):
        link.submit_command()
        assert link.meter.bytes_for(TrafficCategory.DOORBELL) == 4
        assert link.meter.bytes_for(TrafficCategory.SQ_ENTRY) == 64

    def test_submit_advances_clock(self, link):
        link.submit_command()
        expected = link.latency.mmio_doorbell_us + link.latency.sq_fetch_us
        assert link.clock.now_us == pytest.approx(expected)

    def test_complete_accounts_cqe_and_doorbell(self, link):
        link.complete_command()
        assert link.meter.bytes_for(TrafficCategory.CQ_ENTRY) == 16
        assert link.meter.bytes_for(TrafficCategory.DOORBELL) == 4

    def test_per_command_overhead_is_88_bytes(self, link):
        """The overhead that makes TAF(32 B) ≈ 130 and the 97.9 % headline."""
        assert link.per_command_overhead_bytes == 88
        link.submit_command()
        link.complete_command()
        assert link.meter.total_bytes == 88


class TestDMA:
    def test_h2d_accounts_wire_bytes(self, link):
        link.dma_host_to_device(4096)
        assert link.meter.bytes_for(TrafficCategory.DMA_H2D) == 4096

    def test_h2d_advances_clock(self, link):
        link.dma_host_to_device(4096)
        assert link.clock.now_us == pytest.approx(link.latency.dma_us(4096))

    def test_zero_byte_dma_is_noop(self, link):
        link.dma_host_to_device(0)
        assert link.meter.total_bytes == 0
        assert link.clock.now_us == 0.0

    def test_d2h_direction(self, link):
        link.dma_device_to_host(8192)
        assert link.meter.bytes_for(TrafficCategory.DMA_D2H) == 8192
        assert link.meter.bytes_for(TrafficCategory.DMA_H2D) == 0

    def test_rejects_negative(self, link):
        with pytest.raises(ValueError):
            link.dma_host_to_device(-1)
        with pytest.raises(ValueError):
            link.dma_device_to_host(-1)

    def test_reset_metrics_keeps_clock(self, link):
        link.dma_host_to_device(4096)
        t = link.clock.now_us
        link.reset_metrics()
        assert link.meter.total_bytes == 0
        assert link.clock.now_us == t
