"""Tests for traffic categorization and amplification factors."""

import pytest

from repro.pcie.metrics import TrafficCategory, TrafficMeter, amplification_factor


class TestTrafficCategory:
    def test_only_doorbell_is_mmio(self):
        mmio = [c for c in TrafficCategory if c.is_mmio]
        assert mmio == [TrafficCategory.DOORBELL]

    def test_direction_classification(self):
        assert TrafficCategory.SQ_ENTRY.host_to_device
        assert TrafficCategory.DMA_H2D.host_to_device
        assert TrafficCategory.DOORBELL.host_to_device
        assert not TrafficCategory.CQ_ENTRY.host_to_device
        assert not TrafficCategory.DMA_D2H.host_to_device


class TestTrafficMeter:
    def test_starts_empty(self):
        assert TrafficMeter().total_bytes == 0

    def test_record_accumulates_bytes_and_transactions(self):
        m = TrafficMeter()
        m.record(TrafficCategory.DMA_H2D, 4096)
        m.record(TrafficCategory.DMA_H2D, 4096)
        assert m.bytes_for(TrafficCategory.DMA_H2D) == 8192
        assert m.transactions_for(TrafficCategory.DMA_H2D) == 2

    def test_total_spans_categories(self):
        m = TrafficMeter()
        m.record(TrafficCategory.SQ_ENTRY, 64)
        m.record(TrafficCategory.CQ_ENTRY, 16)
        m.record(TrafficCategory.DOORBELL, 4)
        assert m.total_bytes == 84

    def test_mmio_is_doorbell_only(self):
        m = TrafficMeter()
        m.record(TrafficCategory.DOORBELL, 4)
        m.record(TrafficCategory.SQ_ENTRY, 64)
        assert m.mmio_bytes == 4

    def test_payload_bytes_both_directions(self):
        m = TrafficMeter()
        m.record(TrafficCategory.DMA_H2D, 4096)
        m.record(TrafficCategory.DMA_D2H, 8192)
        m.record(TrafficCategory.SQ_ENTRY, 64)
        assert m.payload_bytes == 12288

    def test_zero_byte_transaction_counted(self):
        m = TrafficMeter()
        m.record(TrafficCategory.DOORBELL, 0)
        assert m.transactions_for(TrafficCategory.DOORBELL) == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TrafficMeter().record(TrafficCategory.DOORBELL, -1)

    def test_reset(self):
        m = TrafficMeter()
        m.record(TrafficCategory.DMA_H2D, 100)
        m.reset()
        assert m.total_bytes == 0

    def test_snapshot_has_totals(self):
        m = TrafficMeter()
        m.record(TrafficCategory.DOORBELL, 4)
        snap = m.snapshot()
        assert snap["pcie.total_bytes"] == 4.0
        assert snap["pcie.mmio_bytes"] == 4.0


class TestAmplificationFactor:
    def test_paper_taf_values(self):
        """Fig 3(b): a 32 B value shipping ~4 KiB amplifies ~130×."""
        per_op = 4096 + 88  # page DMA + command/completion/doorbells
        assert amplification_factor(per_op, 32) == pytest.approx(130.75)
        assert amplification_factor(per_op, 1024) == pytest.approx(4.09, abs=0.01)

    def test_identity_when_exact(self):
        assert amplification_factor(100, 100) == 1.0

    def test_rejects_zero_useful_bytes(self):
        with pytest.raises(ValueError):
            amplification_factor(100, 0)

    def test_rejects_negative_link_bytes(self):
        with pytest.raises(ValueError):
            amplification_factor(-1, 10)
