"""Tests for the db_bench-style frontend."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.dbbench import available_benchmarks, run_dbbench


class TestDBBench:
    def test_available_benchmarks(self):
        assert {"fillseq", "fillrandom", "mixgraph"} <= set(available_benchmarks())

    def test_fillseq_runs(self):
        report = run_dbbench("fillseq", num_ops=50, value_size=64)
        assert report.result.ops == 50
        assert report.result.pcie_total_bytes > 0

    def test_fillrandom_runs(self):
        report = run_dbbench("fillrandom", num_ops=50, value_size=64)
        assert report.result.ops == 50

    def test_mixgraph_runs(self):
        report = run_dbbench("mixgraph", num_ops=50)
        assert report.result.value_bytes > 0

    def test_report_format_contains_metrics(self):
        line = run_dbbench("fillseq", num_ops=20, value_size=32).format()
        assert "micros/op" in line
        assert "ops/sec" in line
        assert "nand writes" in line

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(WorkloadError):
            run_dbbench("fillfancy")

    def test_config_preset_accepted(self):
        report = run_dbbench("fillseq", num_ops=20, value_size=32, config="baseline")
        assert report.result.config_name == "baseline"
