"""Tests for mixed GET/PUT workloads (read-path exercise at scale)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim.runner import run_workload
from repro.workloads.distributions import FixedSize
from repro.workloads.generator import RequestKind, Workload
from repro.workloads.workloads import workload_mixed


class TestGeneration:
    def test_read_fraction_respected(self):
        w = Workload(name="m", num_ops=4000, size_dist=FixedSize(32),
                     seed=3, read_fraction=0.4)
        reads = sum(1 for r in w if r.kind is RequestKind.GET)
        assert reads / 4000 == pytest.approx(0.4, abs=0.03)

    def test_first_op_is_always_put(self):
        for seed in range(5):
            w = Workload(name="m", num_ops=10, size_dist=FixedSize(8),
                         seed=seed, read_fraction=0.9)
            assert next(iter(w)).kind is RequestKind.PUT

    def test_reads_target_previously_written_keys(self):
        w = Workload(name="m", num_ops=500, size_dist=FixedSize(8),
                     seed=1, read_fraction=0.5)
        written = set()
        for req in w:
            if req.kind is RequestKind.PUT:
                written.add(req.key)
            else:
                assert req.key in written

    def test_total_value_bytes_counts_puts_only(self):
        w = Workload(name="m", num_ops=1000, size_dist=FixedSize(100),
                     seed=2, read_fraction=0.3)
        assert w.total_value_bytes == w.put_count * 100
        assert w.put_count < 1000

    def test_zero_read_fraction_is_pure_put(self):
        w = Workload(name="m", num_ops=50, size_dist=FixedSize(8), seed=0)
        assert all(r.kind is RequestKind.PUT for r in w)
        assert w.put_count == 50

    def test_deterministic(self):
        a = Workload(name="m", num_ops=200, size_dist=FixedSize(8),
                     seed=9, read_fraction=0.5)
        b = Workload(name="m", num_ops=200, size_dist=FixedSize(8),
                     seed=9, read_fraction=0.5)
        assert [(r.kind, r.key) for r in a] == [(r.kind, r.key) for r in b]

    def test_bounds_validated(self):
        with pytest.raises(WorkloadError):
            Workload(name="m", num_ops=10, size_dist=FixedSize(8),
                     read_fraction=1.0)
        with pytest.raises(WorkloadError):
            Workload(name="m", num_ops=10, size_dist=FixedSize(8),
                     read_fraction=-0.1)

    def test_is_read_mask_exposed(self):
        w = workload_mixed(300, read_fraction=0.5, seed=4)
        assert w.is_read.dtype == np.bool_
        assert w.is_read.sum() > 0


class TestEndToEnd:
    def test_mixed_workload_through_device(self):
        r = run_workload("backfill", workload_mixed(400, read_fraction=0.3, seed=7))
        assert r.ops == 400
        assert float(r.snapshot["driver.gets"]) > 0
        assert float(r.snapshot["driver.puts"]) > 0
        # GETs moved payload back device->host.
        assert float(r.snapshot["pcie.dma_d2h.bytes"]) > 0

    def test_read_latency_tracked_separately(self):
        r = run_workload("adaptive", workload_mixed(300, read_fraction=0.5, seed=7))
        assert r.snapshot["driver.get_latency_us.mean"] > 0
        assert r.snapshot["driver.get_latency_us.count"] == float(
            r.snapshot["driver.gets"]
        )

    def test_percentiles_reported(self):
        r = run_workload("adaptive", workload_mixed(300, read_fraction=0.2, seed=7))
        assert r.p50_response_us > 0
        assert r.p99_response_us >= r.p50_response_us
