"""Tests for trace record/replay."""

import pytest

from repro.errors import WorkloadError
from repro.sim.runner import run_workload
from repro.workloads.generator import Request, RequestKind
from repro.workloads.trace import Trace
from repro.workloads.workloads import workload_b, workload_mixed


class TestRecord:
    def test_record_materializes_stream(self):
        w = workload_b(100, seed=3)
        trace = Trace.record(w)
        assert trace.num_ops == 100
        assert trace.name == w.name
        assert trace.total_value_bytes == w.total_value_bytes

    def test_record_preserves_exact_requests(self):
        w = workload_b(50, seed=3)
        trace = Trace.record(w)
        assert list(trace) == list(w.requests())

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            Trace.from_requests("empty", [])


class TestRoundtrip:
    def test_save_load_identity(self, tmp_path):
        w = workload_mixed(120, read_fraction=0.3, seed=5)
        trace = Trace.record(w)
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded == trace

    def test_mixed_kinds_survive(self, tmp_path):
        reqs = [
            Request(RequestKind.PUT, b"k1", b"v1"),
            Request(RequestKind.GET, b"k1"),
            Request(RequestKind.PUT, b"key-sixteen-by!", b"x" * 3000),
            Request(RequestKind.DELETE, b"k1"),
        ]
        trace = Trace.from_requests("hand", reqs)
        path = str(tmp_path / "t.npz")
        trace.save(path)
        loaded = Trace.load(path)
        assert list(loaded) == reqs

    def test_variable_key_lengths(self, tmp_path):
        reqs = [Request(RequestKind.PUT, bytes([65 + i]) * (i + 1), b"v")
                for i in range(8)]
        trace = Trace.from_requests("keys", reqs)
        path = str(tmp_path / "k.npz")
        trace.save(path)
        assert [r.key for r in Trace.load(path)] == [r.key for r in reqs]

    def test_version_check(self, tmp_path):
        import numpy as np

        w = workload_b(10, seed=1)
        trace = Trace.record(w)
        path = str(tmp_path / "v.npz")
        trace.save(path)
        data = dict(np.load(path))
        data["version"] = np.array([99], dtype=np.uint32)
        np.savez_compressed(path, **data)
        with pytest.raises(WorkloadError):
            Trace.load(path)


class TestReplayThroughRunner:
    def test_trace_replays_identically_to_source(self, tmp_path):
        w = workload_b(150, seed=11)
        trace = Trace.record(w)
        path = str(tmp_path / "replay.npz")
        trace.save(path)
        original = run_workload("adaptive", w)
        replayed = run_workload("adaptive", Trace.load(path))
        assert replayed.pcie_total_bytes == original.pcie_total_bytes
        assert replayed.nand_page_writes == original.nand_page_writes
        assert replayed.avg_response_us == pytest.approx(original.avg_response_us)

    def test_trace_usable_for_config_comparison(self, tmp_path):
        trace = Trace.record(workload_b(100, seed=2))
        a = run_workload("baseline", trace)
        b = run_workload("backfill", trace)
        assert a.value_bytes == b.value_bytes  # identical inputs, by design
        assert b.nand_page_writes_with_flush < a.nand_page_writes_with_flush
