"""Tests for value-size distributions, including the mixgraph GPD (§4.1)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.distributions import (
    FixedSize,
    MixGraphSizes,
    TwoPointSizes,
    UniformChoiceSizes,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestFixedSize:
    def test_all_same(self, rng):
        sizes = FixedSize(100).sample(rng, 1000)
        assert (sizes == 100).all()

    def test_max_size(self):
        assert FixedSize(64).max_size == 64

    def test_rejects_zero(self):
        with pytest.raises(WorkloadError):
            FixedSize(0)


class TestTwoPoint:
    def test_workload_b_ratio(self, rng):
        """W(B): 8 B vs 2 KiB at 9:1."""
        dist = TwoPointSizes(small=8, large=2048, small_fraction=0.9)
        sizes = dist.sample(rng, 50_000)
        assert set(np.unique(sizes)) == {8, 2048}
        small_frac = (sizes == 8).mean()
        assert small_frac == pytest.approx(0.9, abs=0.01)

    def test_workload_c_ratio(self, rng):
        dist = TwoPointSizes(small=8, large=2048, small_fraction=0.1)
        sizes = dist.sample(rng, 50_000)
        assert (sizes == 8).mean() == pytest.approx(0.1, abs=0.01)

    def test_max_size(self):
        assert TwoPointSizes(8, 2048, 0.5).max_size == 2048

    def test_validation(self):
        with pytest.raises(WorkloadError):
            TwoPointSizes(small=0, large=10, small_fraction=0.5)
        with pytest.raises(WorkloadError):
            TwoPointSizes(small=10, large=5, small_fraction=0.5)
        with pytest.raises(WorkloadError):
            TwoPointSizes(small=1, large=2, small_fraction=1.5)


class TestUniformChoice:
    def test_only_listed_sizes(self, rng):
        dist = UniformChoiceSizes((8, 16, 32))
        sizes = dist.sample(rng, 10_000)
        assert set(np.unique(sizes)) <= {8, 16, 32}

    def test_roughly_equal_ratio(self, rng):
        """W(D): each size with an equal ratio."""
        dist = UniformChoiceSizes((8, 16, 32, 64))
        sizes = dist.sample(rng, 40_000)
        for s in (8, 16, 32, 64):
            assert (sizes == s).mean() == pytest.approx(0.25, abs=0.02)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            UniformChoiceSizes(())
        with pytest.raises(WorkloadError):
            UniformChoiceSizes((0, 8))


class TestMixGraph:
    def test_seventy_percent_under_35_bytes(self, rng):
        """The paper's W(M) anchor: ~70 % of values below 35 B."""
        dist = MixGraphSizes()
        sizes = dist.sample(rng, 100_000)
        frac = (sizes < 35).mean()
        assert frac == pytest.approx(0.70, abs=0.04)

    def test_analytic_fraction_matches_empirical(self, rng):
        dist = MixGraphSizes()
        sizes = dist.sample(rng, 100_000)
        for threshold in (35, 100, 500):
            analytic = dist.fraction_below(threshold)
            empirical = (sizes < threshold).mean()
            assert empirical == pytest.approx(analytic, abs=0.03)

    def test_cap_enforced(self, rng):
        """W(M): maximum value size of 1 KiB."""
        sizes = MixGraphSizes().sample(rng, 100_000)
        assert sizes.max() <= 1024
        assert sizes.min() >= 1

    def test_heavy_tail_exists(self, rng):
        sizes = MixGraphSizes().sample(rng, 100_000)
        assert (sizes > 500).any()

    def test_validation(self):
        with pytest.raises(WorkloadError):
            MixGraphSizes(sigma=0)
        with pytest.raises(WorkloadError):
            MixGraphSizes(floor=0)
        with pytest.raises(WorkloadError):
            MixGraphSizes(floor=2000, cap=1024)

    def test_mean_size_helper(self, rng):
        dist = FixedSize(77)
        assert dist.mean_size(rng, 100) == 77.0
