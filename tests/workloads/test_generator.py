"""Tests for key generation (bijective mixer), values, request streams."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.distributions import FixedSize
from repro.workloads.generator import (
    KeySequence,
    Request,
    RequestKind,
    Workload,
    mix32,
    mix32_array,
)


class TestMix32:
    def test_bijective_on_sample(self):
        """§4.1 demands *unique* keys; the mixer must never collide."""
        seen = {mix32(i, seed=7) for i in range(100_000)}
        assert len(seen) == 100_000

    def test_seed_changes_mapping(self):
        assert mix32(1, seed=1) != mix32(1, seed=2)

    def test_deterministic(self):
        assert mix32(12345, seed=9) == mix32(12345, seed=9)

    def test_vectorized_matches_scalar(self):
        xs = np.arange(1000, dtype=np.uint32)
        vec = mix32_array(xs, seed=3)
        for i in (0, 1, 999):
            assert int(vec[i]) == mix32(i, seed=3)

    def test_output_range(self):
        assert 0 <= mix32(2**32 - 1, seed=0) < 2**32


class TestKeySequence:
    def test_sequential_keys_ordered(self):
        ks = KeySequence(hashed=False)
        keys = [ks.key(i) for i in range(100)]
        assert keys == sorted(keys)
        assert all(len(k) == 4 for k in keys)

    def test_hashed_keys_unique(self):
        ks = KeySequence(seed=11, hashed=True)
        keys = {ks.key(i) for i in range(10_000)}
        assert len(keys) == 10_000

    def test_hashed_keys_scrambled(self):
        ks = KeySequence(seed=11, hashed=True)
        keys = [ks.key(i) for i in range(100)]
        assert keys != sorted(keys)

    def test_keys_batch_matches_scalar(self):
        ks = KeySequence(seed=5)
        assert ks.keys(50) == [ks.key(i) for i in range(50)]

    def test_index_bounds(self):
        with pytest.raises(WorkloadError):
            KeySequence().key(-1)
        with pytest.raises(WorkloadError):
            KeySequence().key(2**32 + 1)


class TestWorkload:
    def test_request_stream_shape(self):
        w = Workload(name="t", num_ops=10, size_dist=FixedSize(32), seed=1)
        reqs = list(w.requests())
        assert len(reqs) == 10
        assert all(r.kind is RequestKind.PUT for r in reqs)
        assert all(len(r.value) == 32 for r in reqs)

    def test_total_value_bytes(self):
        w = Workload(name="t", num_ops=10, size_dist=FixedSize(32), seed=1)
        assert w.total_value_bytes == 320
        assert w.mean_value_bytes == 32.0
        assert w.max_value_bytes == 32

    def test_deterministic_per_seed(self):
        a = Workload(name="t", num_ops=5, size_dist=FixedSize(16), seed=9)
        b = Workload(name="t", num_ops=5, size_dist=FixedSize(16), seed=9)
        assert [r.key for r in a] == [r.key for r in b]
        assert [r.value for r in a] == [r.value for r in b]

    def test_different_seeds_differ(self):
        a = Workload(name="t", num_ops=5, size_dist=FixedSize(16), seed=1)
        b = Workload(name="t", num_ops=5, size_dist=FixedSize(16), seed=2)
        assert [r.key for r in a] != [r.key for r in b]

    def test_reiterable(self):
        w = Workload(name="t", num_ops=3, size_dist=FixedSize(8), seed=0)
        assert [r.key for r in w] == [r.key for r in w]

    def test_sequential_keys_mode(self):
        w = Workload(
            name="t", num_ops=10, size_dist=FixedSize(8), seed=0,
            sequential_keys=True,
        )
        keys = [r.key for r in w]
        assert keys == sorted(keys)

    def test_value_content_varies_by_index(self):
        w = Workload(name="t", num_ops=50, size_dist=FixedSize(64), seed=0)
        values = {w.value_for(i) for i in range(50)}
        assert len(values) > 40  # overwhelmingly distinct

    def test_rejects_zero_ops(self):
        with pytest.raises(WorkloadError):
            Workload(name="t", num_ops=0, size_dist=FixedSize(8))

    def test_request_value_size_property(self):
        r = Request(RequestKind.PUT, b"k", b"abc")
        assert r.value_size == 3
        assert Request(RequestKind.GET, b"k").value_size == 0
