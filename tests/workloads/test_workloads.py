"""Tests for the paper's five workload definitions (§4.1)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.workloads import (
    PAPER_WORKLOADS,
    WORKLOAD_D_SIZES,
    workload_a,
    workload_b,
    workload_c,
    workload_d,
    workload_m,
)


class TestWorkloadA:
    def test_fillseq_fixed_size_sequential(self):
        w = workload_a(100, value_size=512)
        keys = [r.key for r in w]
        assert keys == sorted(keys)
        assert all(r.value_size == 512 for r in w)

    def test_rejects_bad_size(self):
        with pytest.raises(WorkloadError):
            workload_a(10, value_size=0)


class TestWorkloadB:
    def test_nine_to_one_small_dominant(self):
        w = workload_b(20_000, seed=1)
        sizes = w.sizes
        assert set(np.unique(sizes)) == {8, 2048}
        assert (sizes == 8).mean() == pytest.approx(0.9, abs=0.02)

    def test_random_unique_keys(self):
        w = workload_b(5000, seed=1)
        keys = [r.key for r in w]
        assert len(set(keys)) == 5000
        assert keys != sorted(keys)


class TestWorkloadC:
    def test_ratio_reversed(self):
        """W(C) is W(B) "with the value size ratio reversed to 1:9"."""
        w = workload_c(20_000, seed=1)
        assert (w.sizes == 8).mean() == pytest.approx(0.1, abs=0.02)


class TestWorkloadD:
    def test_paper_size_set(self):
        assert WORKLOAD_D_SIZES == (8, 16, 32, 64, 128, 256, 512, 1024, 2048)

    def test_equal_ratio(self):
        w = workload_d(45_000, seed=1)
        for s in WORKLOAD_D_SIZES:
            assert (w.sizes == s).mean() == pytest.approx(1 / 9, abs=0.01)


class TestWorkloadM:
    def test_mixgraph_shape(self):
        w = workload_m(50_000, seed=1)
        assert w.sizes.max() <= 1024
        assert (w.sizes < 35).mean() == pytest.approx(0.70, abs=0.05)


class TestRegistry:
    def test_fig10_matrix_complete(self):
        assert set(PAPER_WORKLOADS) == {"W(B)", "W(C)", "W(D)", "W(M)"}

    def test_factories_accept_num_ops_and_seed(self):
        for factory in PAPER_WORKLOADS.values():
            w = factory(10, seed=3)
            assert w.num_ops == 10
