"""Fault-path timing: failed programs/erases still occupy the way.

Real NAND reports a program or erase failure only *after* the attempt, so
the die is busy for the full tPROG/tBERS either way. The timeline must
book failed operations exactly like successful ones — otherwise a fault-
heavy workload would look faster than a clean one.
"""

import pytest

from repro.errors import EraseFailedError, ProgramFailedError
from repro.faults import FaultInjector, FaultPlan, FaultSite, ScriptedFault
from repro.nand.flash import NandFlash
from repro.nand.geometry import NandGeometry
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.units import KIB


def two_way_geometry() -> NandGeometry:
    return NandGeometry(
        channels=1,
        ways_per_channel=2,
        blocks_per_way=4,
        pages_per_block=8,
        page_size=4 * KIB,
    )


def make_flash(*scripted) -> NandFlash:
    plan = FaultPlan(scripted=tuple(scripted))
    return NandFlash(
        two_way_geometry(), SimClock(), LatencyModel(), injector=FaultInjector(plan)
    )


class TestFailedProgramOccupancy:
    def test_failed_program_books_full_tprog_on_the_way(self):
        flash = make_flash(ScriptedFault(site=FaultSite.PROGRAM, nth=1))
        with pytest.raises(ProgramFailedError):
            flash.program(0, b"doomed")
        tprog = flash.latency.nand_program_us
        assert flash.timeline.way_busy_until_us[0] == tprog
        assert flash.timeline.way_busy_total_us[0] == tprog
        assert flash.clock.now_us == tprog

    def test_retry_after_failure_queues_behind_the_failed_attempt(self):
        """The FTL's retry on a fresh page cannot start until the die has
        finished reporting the failed attempt."""
        flash = make_flash(ScriptedFault(site=FaultSite.PROGRAM, nth=1))
        with pytest.raises(ProgramFailedError):
            flash.program(0, b"doomed")
        flash.program(1, b"retry")
        tprog = flash.latency.nand_program_us
        assert flash.timeline.way_busy_until_us[0] == 2 * tprog
        assert flash.timeline.way_busy_total_us[0] == 2 * tprog

    def test_failed_program_in_deferred_window_widens_the_horizon(self):
        """Pipelined commands see failed NAND work in their finish time."""
        flash = make_flash(ScriptedFault(site=FaultSite.PROGRAM, nth=1))
        flash.begin_deferred()
        with pytest.raises(ProgramFailedError):
            flash.program(0, b"doomed")
        horizon = flash.end_deferred()
        assert horizon == flash.latency.nand_program_us
        assert flash.clock.now_us == 0.0  # deferred: clock stayed put

    def test_sibling_way_stays_free_during_failed_program(self):
        flash = make_flash(ScriptedFault(site=FaultSite.PROGRAM, nth=1))
        with pytest.raises(ProgramFailedError):
            flash.program(0, b"doomed")
        assert flash.timeline.way_busy_until_us[1] == 0.0


class TestFailedEraseOccupancy:
    def test_failed_erase_books_full_tbers_on_the_way(self):
        flash = make_flash(ScriptedFault(site=FaultSite.ERASE, nth=1, block=0))
        with pytest.raises(EraseFailedError):
            flash.erase_block(0)
        tbers = flash.latency.nand_erase_us
        assert flash.timeline.way_busy_until_us[0] == tbers
        assert flash.timeline.way_busy_total_us[0] == tbers
        assert flash.clock.now_us == tbers
        # Erase moves no data: the channel bus never saw the failure.
        assert flash.timeline.channel_busy_until_us[0] == 0.0

    def test_program_after_failed_erase_waits_for_the_die(self):
        flash = make_flash(ScriptedFault(site=FaultSite.ERASE, nth=1, block=0))
        with pytest.raises(EraseFailedError):
            flash.erase_block(0)
        flash.program(0, b"data")
        expected = flash.latency.nand_erase_us + flash.latency.nand_program_us
        assert flash.clock.now_us == expected
