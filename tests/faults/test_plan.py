"""FaultPlan / ScriptedFault validation and the `enabled` contract."""

import pytest

from repro.errors import ConfigError
from repro.faults import FaultPlan, FaultSite, ScriptedFault


class TestFaultPlanValidation:
    def test_default_plan_is_disabled(self):
        assert not FaultPlan().enabled

    @pytest.mark.parametrize(
        "knob",
        [
            "program_fail_p",
            "erase_fail_p",
            "transfer_fault_p",
            "read_bitflip_base",
            "read_bitflip_per_erase",
        ],
    )
    def test_any_nonzero_knob_enables(self, knob):
        assert FaultPlan(**{knob: 0.01}).enabled

    def test_scripted_fault_enables(self):
        plan = FaultPlan(scripted=(ScriptedFault(site=FaultSite.PROGRAM),))
        assert plan.enabled

    def test_permanent_ratio_alone_does_not_enable(self):
        """The ratio only qualifies failures; without a failure probability
        the plan still cannot inject anything."""
        assert not FaultPlan(program_fail_permanent_ratio=1.0).enabled

    @pytest.mark.parametrize("p", [-0.1, 1.5])
    @pytest.mark.parametrize(
        "knob",
        [
            "program_fail_p",
            "program_fail_permanent_ratio",
            "erase_fail_p",
            "transfer_fault_p",
        ],
    )
    def test_probabilities_must_be_in_unit_interval(self, knob, p):
        with pytest.raises(ConfigError):
            FaultPlan(**{knob: p})

    @pytest.mark.parametrize("knob", ["read_bitflip_base", "read_bitflip_per_erase"])
    def test_bitflip_rates_must_be_non_negative(self, knob):
        with pytest.raises(ConfigError):
            FaultPlan(**{knob: -1.0})

    def test_scripted_list_coerced_to_tuple(self):
        plan = FaultPlan(scripted=[ScriptedFault(site=FaultSite.ERASE)])
        assert isinstance(plan.scripted, tuple)


class TestScriptedFaultValidation:
    def test_nth_must_be_positive(self):
        with pytest.raises(ConfigError):
            ScriptedFault(site=FaultSite.PROGRAM, nth=0)

    def test_block_must_be_non_negative(self):
        with pytest.raises(ConfigError):
            ScriptedFault(site=FaultSite.PROGRAM, block=-1)

    def test_read_fault_requires_bitflips(self):
        with pytest.raises(ConfigError):
            ScriptedFault(site=FaultSite.READ)

    def test_bitflips_only_valid_on_read(self):
        with pytest.raises(ConfigError):
            ScriptedFault(site=FaultSite.PROGRAM, bitflips=3)

    def test_permanent_only_valid_on_program(self):
        with pytest.raises(ConfigError):
            ScriptedFault(site=FaultSite.ERASE, permanent=True)

    def test_valid_forms_construct(self):
        ScriptedFault(site=FaultSite.PROGRAM, nth=5, block=3, permanent=True)
        ScriptedFault(site=FaultSite.READ, nth=2, bitflips=12)
        ScriptedFault(site=FaultSite.TRANSFER)
