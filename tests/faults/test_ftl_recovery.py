"""FTL media recovery: program retry, bad-block retirement, ECC + read-retry."""

import pytest

from repro.errors import BadBlockError, ReadUncorrectableError
from repro.faults import FaultInjector, FaultPlan, FaultSite, ScriptedFault
from repro.nand.flash import NandFlash
from repro.nand.ftl import PageMappedFTL
from repro.nand.geometry import NandGeometry
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.units import KIB


def one_way_geometry() -> NandGeometry:
    return NandGeometry(
        channels=1,
        ways_per_channel=1,
        blocks_per_way=8,
        pages_per_block=8,
        page_size=4 * KIB,
    )


def make_ftl(plan: FaultPlan, **ftl_kwargs) -> PageMappedFTL:
    flash = NandFlash(
        one_way_geometry(), SimClock(), LatencyModel(), injector=FaultInjector(plan)
    )
    return PageMappedFTL(flash, gc_reserve_blocks=2, **ftl_kwargs)


def page(tag: str) -> bytes:
    return tag.encode()


class TestProgramRecovery:
    def test_transient_failure_retries_on_next_page(self):
        ftl = make_ftl(FaultPlan(scripted=(ScriptedFault(site=FaultSite.PROGRAM),)))
        ftl.write(0, page("v0"))
        # PPN 0 burned by the transient failure; data landed on PPN 1.
        assert ftl.ppn_of(0) == 1
        assert ftl.read(0)[:2] == b"v0"
        assert ftl.metrics.counter("program_retries").value == 1
        assert ftl.bad_block_count == 0

    def test_permanent_failure_retires_block_and_relocates_valid_pages(self):
        # Pages 0-2 of block 0 hold live data; the 4th program (page 3 of
        # block 0) fails permanently, forcing retirement mid-write.
        plan = FaultPlan(
            scripted=(ScriptedFault(site=FaultSite.PROGRAM, nth=4, permanent=True),)
        )
        ftl = make_ftl(plan)
        for lpn in range(3):
            ftl.write(lpn, page(f"v{lpn}"))
        ftl.write(3, page("v3"))
        assert ftl.is_bad_block(0)
        assert ftl.bad_block_count == 1
        assert ftl.metrics.counter("bad_blocks_retired").value == 1
        assert ftl.metrics.counter("relocations").value == 3
        # Every logical page — relocated and new — reads back correctly,
        # and nothing lives in the retired block anymore.
        geo = ftl.flash.geometry
        for lpn in range(4):
            assert ftl.read(lpn)[:2] == f"v{lpn}".encode()
            assert geo.block_of(ftl.ppn_of(lpn)) != 0
        assert ftl.valid_pages_in_block(0) == 0
        assert 0 not in ftl.victim_candidates()

    def test_spare_pool_exhaustion_is_end_of_life(self):
        plan = FaultPlan(
            scripted=(
                ScriptedFault(site=FaultSite.PROGRAM, nth=1, permanent=True),
                ScriptedFault(site=FaultSite.PROGRAM, nth=2, permanent=True),
            )
        )
        ftl = make_ftl(plan, spare_blocks=1)
        with pytest.raises(BadBlockError):
            ftl.write(0, page("v0"))
        assert ftl.bad_block_count == 2

    def test_consecutive_transient_failures_exhaust_program_retries(self):
        plan = FaultPlan(program_fail_p=1.0)  # every program fails
        ftl = make_ftl(plan, program_retry_limit=2)
        with pytest.raises(BadBlockError):
            ftl.write(0, page("v0"))
        assert ftl.metrics.counter("program_retries").value == 3


class TestEccAndReadRetry:
    def test_flips_within_ecc_strength_are_corrected_in_place(self):
        plan = FaultPlan(
            scripted=(ScriptedFault(site=FaultSite.READ, nth=1, bitflips=3),)
        )
        ftl = make_ftl(plan, ecc_correctable_bits=8)
        ftl.write(0, page("v0"))
        old_ppn = ftl.ppn_of(0)
        assert ftl.read(0)[:2] == b"v0"
        assert ftl.metrics.counter("ecc_corrected_bits").value == 3
        assert ftl.metrics.counter("read_retries").value == 0
        assert ftl.ppn_of(0) == old_ppn  # corrected reads are not scrubbed

    def test_marginal_page_survives_via_retry_and_is_scrubbed(self):
        # First read: 20 flips, beyond ECC. The retry re-samples the
        # transient noise (no scripted fault the second time) and succeeds;
        # the page is then scrubbed to a fresh location.
        plan = FaultPlan(
            scripted=(ScriptedFault(site=FaultSite.READ, nth=1, bitflips=20),)
        )
        ftl = make_ftl(plan, ecc_correctable_bits=8)
        ftl.write(0, page("v0"))
        old_ppn = ftl.ppn_of(0)
        assert ftl.read(0)[:2] == b"v0"
        assert ftl.metrics.counter("read_retries").value == 1
        assert ftl.metrics.counter("reads_relocated").value == 1
        assert ftl.ppn_of(0) != old_ppn
        # The relocated copy reads clean.
        assert ftl.read(0)[:2] == b"v0"

    def test_persistent_flips_become_uncorrectable(self):
        plan = FaultPlan(seed=11, read_bitflip_base=50.0)
        ftl = make_ftl(plan, ecc_correctable_bits=8, read_retry_limit=3)
        ftl.write(0, page("v0"))
        with pytest.raises(ReadUncorrectableError) as exc_info:
            ftl.read(0)
        assert exc_info.value.bitflips > 8
        assert ftl.metrics.counter("read_retries").value == 3
        assert ftl.metrics.counter("uncorrectable_reads").value == 1


class TestEraseRecovery:
    def test_erase_failure_during_gc_retires_the_block(self):
        plan = FaultPlan(scripted=(ScriptedFault(site=FaultSite.ERASE, block=0),))
        ftl = make_ftl(plan)
        for lpn in range(8):  # fill block 0 completely
            ftl.write(lpn, page(f"v{lpn}"))
        free_before = ftl.free_block_count
        moved = ftl.relocate_block(0)
        assert moved == 8
        assert ftl.is_bad_block(0)
        assert ftl.metrics.counter("bad_blocks_retired").value == 1
        # The block never rejoins the free pool...
        assert ftl.free_block_count == free_before - 1  # block 1 went active
        # ...but every page it held had already moved and reads correctly.
        for lpn in range(8):
            assert ftl.read(lpn)[:2] == f"v{lpn}".encode()
