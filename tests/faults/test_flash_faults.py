"""NAND-level fault semantics: what a failed program/erase/read leaves behind."""

import pytest

from repro.errors import EraseFailedError, ProgramFailedError
from repro.faults import FaultInjector, FaultPlan, FaultSite, ScriptedFault
from repro.nand.flash import NandFlash
from repro.nand.geometry import NandGeometry
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.units import KIB


def one_way_geometry() -> NandGeometry:
    """Single way: PPNs allocate strictly sequentially, so tests can
    predict exactly which physical page each program lands on."""
    return NandGeometry(
        channels=1,
        ways_per_channel=1,
        blocks_per_way=8,
        pages_per_block=8,
        page_size=4 * KIB,
    )


def make_flash(*scripted, **plan_kwargs) -> NandFlash:
    plan = FaultPlan(scripted=tuple(scripted), **plan_kwargs)
    return NandFlash(
        one_way_geometry(), SimClock(), LatencyModel(), injector=FaultInjector(plan)
    )


class TestProgramFaults:
    def test_failed_program_consumes_page_and_charges_tprog(self):
        flash = make_flash(ScriptedFault(site=FaultSite.PROGRAM, nth=1))
        with pytest.raises(ProgramFailedError) as exc_info:
            flash.program(0, b"doomed")
        exc = exc_info.value
        assert (exc.ppn, exc.block, exc.permanent) == (0, 0, False)
        # Real NAND reports failure after tPROG, with the page burned:
        assert flash.clock.now_us == flash.latency.nand_program_us
        assert not flash.is_programmed(0)
        assert flash.pages_programmed_in_block(0) == 1
        assert flash.metrics.counter("program_failures").value == 1
        # The next in-order page is still programmable.
        flash.program(1, b"fine")
        assert flash.read(1)[:4] == b"fine"

    def test_permanent_flag_reaches_the_exception(self):
        flash = make_flash(
            ScriptedFault(site=FaultSite.PROGRAM, nth=1, permanent=True)
        )
        with pytest.raises(ProgramFailedError) as exc_info:
            flash.program(0, b"x")
        assert exc_info.value.permanent


class TestEraseFaults:
    def test_failed_erase_leaves_block_contents_intact(self):
        flash = make_flash(ScriptedFault(site=FaultSite.ERASE, nth=1, block=0))
        flash.program(0, b"survivor")
        with pytest.raises(EraseFailedError) as exc_info:
            flash.erase_block(0)
        assert exc_info.value.block == 0
        assert flash.is_programmed(0)
        assert flash.read(0)[:8] == b"survivor"
        assert flash.erase_count(0) == 0
        assert flash.metrics.counter("erase_failures").value == 1


class TestReadBitflips:
    def test_flips_reported_but_returned_bytes_stay_pristine(self):
        flash = make_flash(ScriptedFault(site=FaultSite.READ, nth=1, bitflips=5))
        flash.program(0, b"exact")
        data = flash.read(0)
        assert flash.last_read_bitflips == 5
        assert data[:5] == b"exact"  # ECC decision is the FTL's, not ours
        assert flash.metrics.counter("read_bitflips").value == 5
        # A clean re-read resets the per-read report.
        flash.read(0)
        assert flash.last_read_bitflips == 0
