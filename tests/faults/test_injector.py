"""FaultInjector: scripted schedules, seeded determinism, metrics."""

from repro.faults import FaultInjector, FaultPlan, FaultSite, ScriptedFault


def _decision_trace(injector: FaultInjector) -> list:
    """A fixed mixed-site call sequence, recorded decision by decision."""
    trace = []
    for i in range(200):
        trace.append(injector.program_fault(block=i % 8))
        trace.append(injector.erase_fault(block=i % 8))
        trace.append(injector.read_bitflips(block=i % 8, erase_count=i % 5))
        trace.append(injector.transfer_fault())
    return trace


class TestDeterminism:
    PLAN = FaultPlan(
        seed=1234,
        program_fail_p=0.3,
        program_fail_permanent_ratio=0.5,
        erase_fail_p=0.2,
        transfer_fault_p=0.1,
        read_bitflip_base=1.0,
    )

    def test_same_plan_same_decisions(self):
        a = _decision_trace(FaultInjector(self.PLAN))
        b = _decision_trace(FaultInjector(self.PLAN))
        assert a == b

    def test_different_seed_different_decisions(self):
        a = _decision_trace(FaultInjector(self.PLAN))
        b = _decision_trace(
            FaultInjector(FaultPlan(**{**self.PLAN.__dict__, "seed": 99}))
        )
        assert a != b

    def test_disabled_sites_never_draw(self):
        """Zero-probability sites return success without consuming RNG
        state, so adding calls at a disabled site cannot shift the faults
        injected at an enabled one."""
        plan = FaultPlan(seed=7, program_fail_p=0.5)
        plain = FaultInjector(plan)
        first = [plain.program_fault(0) for _ in range(50)]
        noisy = FaultInjector(plan)
        second = []
        for _ in range(50):
            noisy.erase_fault(0)       # disabled: must not consume RNG
            noisy.transfer_fault()     # disabled: must not consume RNG
            noisy.read_bitflips(0, 3)  # disabled: must not consume RNG
            second.append(noisy.program_fault(0))
        assert first == second


class TestScriptedSchedule:
    def test_nth_counts_across_all_blocks_when_block_is_none(self):
        inj = FaultInjector(
            FaultPlan(scripted=(ScriptedFault(site=FaultSite.PROGRAM, nth=2),))
        )
        assert inj.program_fault(block=5) is None
        assert inj.program_fault(block=3) == "transient"
        assert inj.program_fault(block=3) is None

    def test_nth_counts_per_block_when_block_given(self):
        inj = FaultInjector(
            FaultPlan(
                scripted=(ScriptedFault(site=FaultSite.PROGRAM, nth=2, block=7),)
            )
        )
        assert inj.program_fault(block=7) is None
        assert inj.program_fault(block=3) is None  # other block: not counted
        assert inj.program_fault(block=7) == "transient"

    def test_per_block_and_any_block_schedules_compose(self):
        inj = FaultInjector(
            FaultPlan(
                scripted=(
                    ScriptedFault(site=FaultSite.PROGRAM, nth=1, block=2),
                    ScriptedFault(site=FaultSite.PROGRAM, nth=3),
                )
            )
        )
        assert inj.program_fault(block=0) is None
        assert inj.program_fault(block=2) == "transient"  # 1st of block 2
        assert inj.program_fault(block=1) == "transient"  # 3rd anywhere

    def test_permanent_flag_propagates(self):
        inj = FaultInjector(
            FaultPlan(
                scripted=(
                    ScriptedFault(site=FaultSite.PROGRAM, nth=1, permanent=True),
                )
            )
        )
        assert inj.program_fault(block=0) == "permanent"

    def test_scripted_read_returns_exact_bitflips(self):
        inj = FaultInjector(
            FaultPlan(
                scripted=(ScriptedFault(site=FaultSite.READ, nth=2, bitflips=13),)
            )
        )
        assert inj.read_bitflips(block=0, erase_count=0) == 0
        assert inj.read_bitflips(block=0, erase_count=0) == 13

    def test_scripted_erase_and_transfer(self):
        inj = FaultInjector(
            FaultPlan(
                scripted=(
                    ScriptedFault(site=FaultSite.ERASE, nth=1, block=4),
                    ScriptedFault(site=FaultSite.TRANSFER, nth=2),
                )
            )
        )
        assert inj.erase_fault(block=3) is False
        assert inj.erase_fault(block=4) is True
        assert inj.transfer_fault() is False
        assert inj.transfer_fault() is True


class TestWearModel:
    def test_pristine_blocks_never_flip_without_base_rate(self):
        inj = FaultInjector(FaultPlan(read_bitflip_per_erase=2.0))
        assert all(
            inj.read_bitflips(block=0, erase_count=0) == 0 for _ in range(100)
        )

    def test_worn_blocks_flip(self):
        inj = FaultInjector(FaultPlan(seed=3, read_bitflip_per_erase=2.0))
        flips = [inj.read_bitflips(block=0, erase_count=50) for _ in range(20)]
        assert all(f > 0 for f in flips)  # Poisson(100) is never 0 in practice
        mean = sum(flips) / len(flips)
        assert 70 < mean < 130  # centred on per_erase * erase_count


class TestInjectorMetrics:
    def test_counters_reflect_injections(self):
        inj = FaultInjector(
            FaultPlan(
                scripted=(
                    ScriptedFault(site=FaultSite.PROGRAM, nth=1),
                    ScriptedFault(site=FaultSite.ERASE, nth=1),
                    ScriptedFault(site=FaultSite.READ, nth=1, bitflips=5),
                    ScriptedFault(site=FaultSite.READ, nth=2, bitflips=3),
                    ScriptedFault(site=FaultSite.TRANSFER, nth=1),
                )
            )
        )
        inj.program_fault(0)
        inj.erase_fault(0)
        inj.read_bitflips(0, 0)
        inj.read_bitflips(0, 0)
        inj.transfer_fault()
        snap = inj.metrics.snapshot()
        assert snap["faults.program_faults"] == 1
        assert snap["faults.erase_faults"] == 1
        assert snap["faults.read_bitflip_events"] == 2
        assert snap["faults.bitflips_injected"] == 8
        assert snap["faults.transfer_faults"] == 1
