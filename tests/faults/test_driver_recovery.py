"""Host-visible recovery: NVMe status mapping, driver retry/backoff/timeout."""

import pytest

from repro.device.kvssd import KVSSD
from repro.errors import CommandTimeoutError
from repro.faults import FaultPlan, FaultSite, ScriptedFault
from repro.nvme.opcodes import StatusCode

from tests.conftest import small_config


class TestStatusCodes:
    def test_retryable_statuses(self):
        assert StatusCode.MEDIA_ERROR.retryable
        assert StatusCode.DEVICE_BUSY.retryable
        assert not StatusCode.SUCCESS.retryable
        assert not StatusCode.INTERNAL_ERROR.retryable
        assert not StatusCode.KEY_NOT_FOUND.retryable


class TestTransferFaultRecovery:
    def test_transient_pcie_fault_is_retried_to_success(self):
        plan = FaultPlan(scripted=(ScriptedFault(site=FaultSite.TRANSFER),))
        d = KVSSD.build(config=small_config(), fault_plan=plan)
        value = bytes(range(256)) * 16  # 4 KiB: goes out via PRP DMA
        res = d.driver.put(b"key", value)
        assert res.ok
        assert d.driver.metrics.counter("retries").value == 1
        assert d.controller.metrics.counter("transfer_faults").value == 1
        assert d.driver.get(b"key").value == value

    def test_backoff_is_charged_to_the_simulated_clock(self):
        plan = FaultPlan(
            scripted=(
                ScriptedFault(site=FaultSite.TRANSFER, nth=1),
                ScriptedFault(site=FaultSite.TRANSFER, nth=2),
            )
        )
        d = KVSSD.build(config=small_config(), fault_plan=plan)
        res = d.driver.put(b"key", b"x" * 4096)
        assert res.ok
        assert d.driver.metrics.counter("retries").value == 2
        # Two backoffs at 50 then 100 simulated µs are part of the latency.
        assert res.latency_us > 150


class TestMediaErrorEscalation:
    def test_unrecoverable_read_surfaces_as_media_error_status(self):
        # Every read drowns in bit flips, so retrieve fails on all
        # attempts; the driver gives up with the device's status, never
        # with a raw exception.
        plan = FaultPlan(seed=5, read_bitflip_base=64.0)
        d = KVSSD.build(config=small_config(), fault_plan=plan)
        res = d.driver.put(b"key", b"x" * 64)
        assert res.ok  # buffered write: no NAND read involved
        d.driver.flush()  # force the value down to NAND
        got = d.driver.get(b"key")
        assert got.status is StatusCode.MEDIA_ERROR
        assert got.value is None
        limit = d.config.op_retry_limit
        assert d.driver.metrics.counter("retries").value == limit
        assert d.driver.metrics.counter("failed_ops").value == 1
        assert d.controller.metrics.counter("media_errors").value == limit + 1

    def test_device_end_of_life_is_internal_error_and_not_retried(self):
        # Every NAND program fails permanently: the first buffer flush
        # retires blocks until recovery dead-ends in BadBlockError, which
        # must reach the host as non-retryable INTERNAL_ERROR.
        plan = FaultPlan(
            program_fail_p=1.0, program_fail_permanent_ratio=1.0
        )
        d = KVSSD.build(config=small_config(), fault_plan=plan)
        res = None
        for i in range(200):
            res = d.driver.put(f"k{i:03d}".encode(), b"v" * 600)
            if not res.ok:
                break
        assert res is not None and not res.ok
        assert res.status is StatusCode.INTERNAL_ERROR
        assert d.controller.metrics.counter("internal_errors").value >= 1
        assert d.driver.metrics.counter("retries").value == 0


class TestCommandTimeout:
    def test_timeout_exhausts_retries_then_raises(self):
        # An impossible deadline: every command round trip times out, and
        # after op_retry_limit backoffs the driver gives up loudly.
        d = KVSSD.build(config=small_config(command_timeout_us=0.001))
        start = d.clock.now_us
        with pytest.raises(CommandTimeoutError):
            d.driver.put(b"key", b"x" * 64)
        limit = d.config.op_retry_limit
        assert d.driver.metrics.counter("timeouts").value == limit + 1
        assert d.driver.metrics.counter("retries").value == limit
        assert d.driver.metrics.counter("failed_ops").value == 1
        # Backoffs (50+100+200+400 µs) ran on the simulated clock.
        assert d.clock.now_us - start > 750

    def test_generous_timeout_changes_nothing(self):
        d = KVSSD.build(config=small_config(command_timeout_us=10_000_000))
        assert d.driver.put(b"key", b"x" * 500).ok
        assert d.driver.get(b"key").value == b"x" * 500
        assert d.driver.metrics.counter("timeouts").value == 0
        assert d.driver.metrics.counter("retries").value == 0

    def test_abandoned_put_leaves_no_pending_state(self):
        # A piggybacked multi-command PUT that keeps timing out must not
        # leave a half-assembled value on the device: flush would trip
        # over it otherwise.
        d = KVSSD.build(
            config=small_config(command_timeout_us=0.001)
        )
        with pytest.raises(CommandTimeoutError):
            d.driver.put(b"key", b"x" * 64)  # piggyback-sized
        assert d.controller._pending == {}
