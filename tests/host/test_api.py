"""Tests for the user-level KV API: PUT/GET/SEEK/NEXT (§2.1)."""

import pytest

from repro.errors import KeyNotFoundError, NVMeError
from repro.host.api import KVStore

from tests.conftest import small_config


@pytest.fixture
def store():
    return KVStore.open(small_config())


class TestPointOps:
    def test_put_get(self, store):
        store.put(b"user:1", b"alice")
        assert store.get(b"user:1") == b"alice"

    def test_put_returns_latency(self, store):
        assert store.put(b"k", b"v") > 0

    def test_overwrite(self, store):
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"

    def test_get_missing_raises(self, store):
        with pytest.raises(KeyNotFoundError):
            store.get(b"ghost")

    def test_delete(self, store):
        store.put(b"k", b"v")
        store.delete(b"k")
        assert not store.exists(b"k")

    def test_exists(self, store):
        assert not store.exists(b"k")
        store.put(b"k", b"v")
        assert store.exists(b"k")

    def test_key_type_checked(self, store):
        with pytest.raises(NVMeError):
            store.put("string-key", b"v")  # type: ignore[arg-type]

    def test_key_length_checked(self, store):
        with pytest.raises(NVMeError):
            store.put(b"", b"v")
        with pytest.raises(NVMeError):
            store.put(b"x" * 17, b"v")

    def test_variable_value_sizes(self, store):
        """The KV interface's whole point: arbitrary-size values."""
        for size in (1, 35, 91, 100, 2048, 4096, 5000, 16384):
            key = f"s{size}".encode()
            value = bytes(i % 256 for i in range(size))
            store.put(key, value)
            assert store.get(key) == value


class TestIterator:
    def test_seek_next_in_order(self, store):
        for k in (b"cherry", b"apple", b"banana"):
            store.put(k, b"fruit:" + k)
        it = store.seek(b"a")
        assert it.next() == (b"apple", b"fruit:apple")
        assert it.next() == (b"banana", b"fruit:banana")
        assert it.next() == (b"cherry", b"fruit:cherry")
        assert it.next() is None

    def test_seek_mid_range(self, store):
        for k in (b"aa", b"bb", b"cc"):
            store.put(k, b"v")
        it = store.seek(b"b")
        assert it.next()[0] == b"bb"

    def test_iterator_protocol(self, store):
        for i in range(5):
            store.put(f"k{i}".encode(), b"v")
        keys = [k for k, _ in store.seek(b"")]
        assert keys == [f"k{i}".encode() for i in range(5)]

    def test_scan_with_limit(self, store):
        for i in range(10):
            store.put(f"k{i}".encode(), b"v")
        assert len(list(store.scan(limit=4))) == 4

    def test_scan_beyond_batch_size(self, store):
        """More keys than one LIST batch: iterator must refill."""
        for i in range(80):
            store.put(f"key{i:03d}".encode(), str(i).encode())
        pairs = list(store.scan())
        assert len(pairs) == 80
        assert [k for k, _ in pairs] == sorted(k for k, _ in pairs)

    def test_empty_store_scan(self, store):
        assert list(store.scan()) == []


class TestLifecycle:
    def test_flush_then_read(self, store):
        store.put(b"k", b"persisted")
        store.flush()
        assert store.get(b"k") == b"persisted"

    def test_stats_exposed(self, store):
        store.put(b"k", b"v")
        stats = store.stats()
        assert stats["driver.puts"] == 1.0

    def test_open_with_defaults(self):
        s = KVStore.open()
        s.put(b"k", b"v")
        assert s.get(b"k") == b"v"


class TestIteratorUnderMutation:
    def test_delete_between_list_and_get_is_skipped(self, store):
        """A key deleted mid-scan must be skipped, not crash the iterator."""
        for k in (b"aa", b"bb", b"cc"):
            store.put(k, b"v:" + k)
        it = store.seek(b"")
        first = it.next()
        assert first[0] == b"aa"
        # The iterator has b"bb" pending in its batch; delete it now.
        store.delete(b"bb")
        rest = [pair[0] for pair in iter(lambda: it.next(), None)]
        assert rest == [b"cc"]

    def test_keys_inserted_behind_cursor_not_revisited(self, store):
        for k in (b"m1", b"m2"):
            store.put(k, b"v")
        it = store.seek(b"")
        assert it.next()[0] == b"m1"
        store.put(b"a-early", b"v")  # sorts before the cursor
        remaining = [pair[0] for pair in iter(lambda: it.next(), None)]
        assert b"a-early" not in remaining


class TestMemTableBounded:
    def test_memtable_memory_stays_constant_under_load(self, store):
        """§3.4: "even though the size of MemTable increases, it remains
        constant due to LSM-tree flushes and resets"."""
        limit = store.device.lsm.config.memtable_flush_bytes
        peak = 0
        for i in range(800):
            store.put(f"k{i:05d}".encode(), b"v" * 16)
            peak = max(peak, store.device.lsm.memtable.approx_bytes)
        # Bounded by the flush threshold plus one entry of slack.
        assert peak <= limit + 64


class TestMaxLengthKeyScan:
    def test_scan_with_16_byte_keys_across_batches(self, store):
        """Batch resume must survive maximum-length keys (a resume key of
        last+\\x00 would overflow the 16-byte wire field)."""
        keys = [bytes([0x40 + i]) * 16 for i in range(40)]  # > one batch
        for k in keys:
            store.put(k, b"v:" + k[:4])
        scanned = [k for k, _ in store.scan()]
        assert scanned == sorted(keys)

    def test_seek_starting_at_max_length_key(self, store):
        k = b"\xff" * 16
        store.put(k, b"last")
        it = store.seek(k)
        assert it.next() == (k, b"last")
        assert it.next() is None


class TestCompactVlog:
    def test_compact_vlog_convenience(self, store):
        for r in range(4):
            for i in range(30):
                store.put(f"k{i:03d}".encode(), bytes([r]) * 500)
        store.flush()
        report = store.compact_vlog(dead_threshold=0.3)
        assert report.did_work
        for i in range(30):
            assert store.get(f"k{i:03d}".encode()) == bytes([3]) * 500

    def test_below_threshold_is_noop(self, store):
        # 200 piggybacked 64 B values pack densely: the flushed region is
        # mostly live, so a high threshold must decline to compact.
        for i in range(200):
            store.put(f"k{i:03d}".encode(), bytes([i % 256]) * 64)
        store.flush()
        report = store.compact_vlog(dead_threshold=0.99)
        assert not report.did_work
