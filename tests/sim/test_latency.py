"""Tests for the latency model and its calibration-critical properties."""

import pytest

from repro.errors import ConfigError
from repro.sim.latency import DEFAULT_LATENCY, LatencyModel
from repro.units import KIB, MEM_PAGE_SIZE


class TestConstruction:
    def test_defaults_are_positive(self):
        m = LatencyModel()
        assert m.cmd_round_trip_us > 0
        assert m.nand_program_us > 0

    def test_rejects_negative_constant(self):
        with pytest.raises(ConfigError):
            LatencyModel(nand_program_us=-1.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            LatencyModel().nand_program_us = 5.0  # type: ignore[misc]

    def test_with_overrides(self):
        m = LatencyModel().with_overrides(nand_program_us=123.0)
        assert m.nand_program_us == 123.0
        assert m.nand_read_us == LatencyModel().nand_read_us


class TestDerivedCosts:
    def test_round_trip_is_sum_of_parts(self):
        m = LatencyModel()
        expected = (
            m.mmio_doorbell_us + m.sq_fetch_us + m.cmd_process_us + m.completion_us
        )
        assert m.cmd_round_trip_us == pytest.approx(expected)

    def test_dma_zero_bytes_is_free(self):
        assert LatencyModel().dma_us(0) == 0.0

    def test_dma_has_setup_cost(self):
        m = LatencyModel()
        assert m.dma_us(1) > m.dma_per_byte_us

    def test_dma_scales_linearly_past_setup(self):
        m = LatencyModel()
        delta = m.dma_us(8192) - m.dma_us(4096)
        assert delta == pytest.approx(4096 * m.dma_per_byte_us)

    def test_dma_pages_matches_bytes(self):
        m = LatencyModel()
        assert m.dma_pages_us(2) == pytest.approx(m.dma_us(2 * MEM_PAGE_SIZE))

    def test_dma_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyModel().dma_us(-1)
        with pytest.raises(ValueError):
            LatencyModel().dma_pages_us(-1)

    def test_memcpy_zero_is_free(self):
        assert LatencyModel().memcpy_us(0) == 0.0

    def test_memcpy_scales(self):
        m = LatencyModel()
        assert m.memcpy_us(2000) > m.memcpy_us(1000) > 0

    def test_memcpy_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyModel().memcpy_us(-5)


class TestPaperCalibration:
    """The crossover structure the default constants must reproduce (Fig 8)."""

    def test_piggyback_single_command_is_about_half_baseline(self):
        """≤35 B: one round trip vs round trip + one 4 KiB page DMA."""
        m = DEFAULT_LATENCY
        piggy = m.cmd_round_trip_us
        baseline = m.cmd_round_trip_us + m.dma_pages_us(1)
        assert 0.4 < piggy / baseline < 0.6

    def test_two_commands_near_parity_with_baseline(self):
        """36–91 B: two round trips ≈ baseline ("almost identical" at 64 B)."""
        m = DEFAULT_LATENCY
        piggy = 2 * m.cmd_round_trip_us
        baseline = m.cmd_round_trip_us + m.dma_pages_us(1)
        assert abs(piggy - baseline) / baseline < 0.15

    def test_three_commands_clearly_worse(self):
        """≥128 B: trailing-command accumulation degrades piggybacking."""
        m = DEFAULT_LATENCY
        piggy = 3 * m.cmd_round_trip_us
        baseline = m.cmd_round_trip_us + m.dma_pages_us(1)
        assert piggy > baseline * 1.3

    def test_nand_program_dominates_transfer(self):
        """§2.4: write responses are ~10× transfer responses."""
        m = DEFAULT_LATENCY
        transfer = m.cmd_round_trip_us + m.dma_pages_us(4)
        assert m.nand_program_us > 5 * transfer

    def test_memcpy_of_2k_value_visible_but_below_page_program(self):
        """Fig 12(d): All-Packing's 2 KiB copies cost ~10–30 µs."""
        m = DEFAULT_LATENCY
        cost = m.memcpy_us(2 * KIB)
        assert 5.0 < cost < m.nand_program_us
