"""Tests for counters, running stats, histograms and metric sets."""

import math

import pytest

from repro.sim.stats import Counter, Histogram, MetricSet, RunningStat


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_add_default_one(self):
        c = Counter("c")
        c.add()
        assert c.value == 1

    def test_add_amount(self):
        c = Counter("c")
        c.add(41)
        c.add(1)
        assert c.value == 42

    def test_add_returns_new_value(self):
        assert Counter("c").add(7) == 7

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").add(-1)

    def test_reset(self):
        c = Counter("c")
        c.add(5)
        c.reset()
        assert c.value == 0


class TestRunningStat:
    def test_empty_stat_reads_zero(self):
        s = RunningStat("s")
        assert s.count == 0
        assert s.mean == 0.0
        assert s.min == 0.0
        assert s.max == 0.0

    def test_mean(self):
        s = RunningStat("s")
        s.record_many([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)

    def test_total(self):
        s = RunningStat("s")
        s.record_many([1.5, 2.5])
        assert s.total == pytest.approx(4.0)

    def test_min_max(self):
        s = RunningStat("s")
        s.record_many([5.0, -1.0, 3.0])
        assert s.min == -1.0
        assert s.max == 5.0

    def test_variance_matches_closed_form(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        s = RunningStat("s")
        s.record_many(values)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert s.variance == pytest.approx(var)
        assert s.stdev == pytest.approx(math.sqrt(var))

    def test_variance_of_single_sample_is_zero(self):
        s = RunningStat("s")
        s.record(3.0)
        assert s.variance == 0.0

    def test_reset(self):
        s = RunningStat("s")
        s.record(10.0)
        s.reset()
        assert s.count == 0
        assert s.mean == 0.0

    def test_merge_matches_sequential(self):
        a, b, ref = RunningStat("a"), RunningStat("b"), RunningStat("ref")
        xs, ys = [1.0, 2.0, 3.0], [10.0, 20.0]
        a.record_many(xs)
        b.record_many(ys)
        ref.record_many(xs + ys)
        a.merge(b)
        assert a.count == ref.count
        assert a.mean == pytest.approx(ref.mean)
        assert a.variance == pytest.approx(ref.variance)
        assert a.min == ref.min
        assert a.max == ref.max

    def test_merge_with_empty_is_identity(self):
        a, b = RunningStat("a"), RunningStat("b")
        a.record_many([1.0, 2.0])
        a.merge(b)
        assert a.count == 2
        b.merge(a)
        assert b.count == 2
        assert b.mean == pytest.approx(1.5)

    def test_merge_propagates_min_max_total(self):
        a, b = RunningStat("a"), RunningStat("b")
        a.record_many([3.0, 7.0])
        b.record_many([-2.0, 11.0])
        a.merge(b)
        assert a.min == -2.0
        assert a.max == 11.0
        assert a.total == pytest.approx(19.0)

    def test_merge_into_empty_copies_min_max_total(self):
        a, b = RunningStat("a"), RunningStat("b")
        b.record_many([4.0, 6.0])
        a.merge(b)
        assert a.min == 4.0
        assert a.max == 6.0
        assert a.total == pytest.approx(10.0)


class TestHistogram:
    def test_requires_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", [])

    def test_rejects_duplicate_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", [1.0, 1.0])

    def test_bucket_assignment(self):
        h = Histogram("h", [10, 100, 1000])
        for v in (5, 10, 50, 500, 5000):
            h.record(v)
        counts = dict(h.bucket_counts())
        assert counts[10.0] == 2  # 5 and 10
        assert counts[100.0] == 1
        assert counts[1000.0] == 1
        assert counts[math.inf] == 1

    def test_exponential_factory(self):
        h = Histogram.exponential("h", start=1, factor=2, count=4)
        assert [e for e, _ in h.bucket_counts()][:-1] == [1, 2, 4, 8]

    def test_exponential_rejects_bad_args(self):
        with pytest.raises(ValueError):
            Histogram.exponential("h", start=0)
        with pytest.raises(ValueError):
            Histogram.exponential("h", factor=1.0)

    def test_percentile_empty_is_zero(self):
        assert Histogram("h", [1, 2]).percentile(50) == 0.0

    def test_percentile_bounds(self):
        h = Histogram("h", [10, 20, 30])
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_percentile_monotonic(self):
        h = Histogram.exponential("h")
        for v in range(1, 200):
            h.record(float(v))
        assert h.percentile(50) <= h.percentile(90) <= h.percentile(99)

    def test_percentile_roughly_correct(self):
        h = Histogram("h", list(range(1, 101)))
        for v in range(1, 101):
            h.record(float(v))
        assert h.percentile(50) == pytest.approx(50, abs=2)
        assert h.percentile(99) == pytest.approx(99, abs=2)

    def test_reset(self):
        h = Histogram("h", [10])
        h.record(1)
        h.reset()
        assert h.count == 0
        assert h.max == 0.0

    def test_max_tracks_largest_sample(self):
        h = Histogram("h", [1, 2, 4])
        assert h.max == 0.0
        h.record(0.5)
        h.record(3.0)
        assert h.max == 3.0

    def test_overflow_percentile_reports_observed_max(self):
        # The ISSUE repro: 99 samples at 100 us and one at 0.5 us against
        # edges [1, 2, 4]. The p99 rank lands in the overflow bucket; the
        # seed clamped it to the top edge (4.0 us), underreporting the tail
        # by 25x. The fix reports the largest observed sample.
        h = Histogram("h", [1, 2, 4])
        for _ in range(99):
            h.record(100.0)
        h.record(0.5)
        assert h.percentile(99) >= 100.0
        assert h.percentile(50) >= 100.0

    def test_overflow_without_samples_above_edges_uses_top_edge(self):
        # All samples within range: overflow rank is unreachable, and a
        # p=100 query can never exceed the largest observed sample (the
        # seed interpolated to the nominal top edge, 20.0).
        h = Histogram("h", [10, 20])
        h.record(15.0)
        assert h.percentile(100) == pytest.approx(15.0)
        assert h.percentile(100, seed_interpolation=True) == pytest.approx(20.0)

    def test_percentile_interpolates_past_empty_bins(self):
        # An empty bin between populated ones must not satisfy the rank
        # (the seed's cnt==0 path could return an edge uninterpolated).
        h = Histogram("h", [10, 20, 30, 40])
        for _ in range(2):
            h.record(5.0)
        for _ in range(2):
            h.record(35.0)
        # p75 -> rank 3, first bin holds 2, bins (10,20] and (20,30] empty,
        # rank lands in (30,40] -> interpolate from 30 up to the observed
        # max (35), not the nominal edge (40): 30 + 0.5 * (35 - 30).
        assert h.percentile(75) == pytest.approx(32.5)

    def test_first_bucket_interpolation_anchors_at_observed_min(self):
        # ISSUE 8 repro 1: edges [100, 200], ten samples of 99.0. The seed
        # anchored the first bin at 0.0 and reported p50 = 50.0 — half the
        # smallest sample ever seen. The fix anchors at the observed min.
        h = Histogram("h", [100, 200])
        for _ in range(10):
            h.record(99.0)
        assert h.percentile(50) == pytest.approx(99.0)
        assert h.min <= h.percentile(50) <= h.max
        # The seed-golden compatibility path keeps the old answer.
        assert h.percentile(50, seed_interpolation=True) == pytest.approx(50.0)

    def test_in_bucket_interpolation_clamps_to_observed_max(self):
        # ISSUE 8 repro 2: edges [1, 2, 4], samples {0.5, 3.0}. The seed
        # interpolated p100 to the bin's top edge (4.0), above every
        # observed sample; the fix clamps to the observed max (3.0).
        h = Histogram("h", [1, 2, 4])
        h.record(0.5)
        h.record(3.0)
        assert h.percentile(100) == pytest.approx(3.0)
        assert h.min <= h.percentile(100) <= h.max
        assert h.percentile(100, seed_interpolation=True) == pytest.approx(4.0)

    def test_min_tracks_smallest_sample(self):
        h = Histogram("h", [1, 2, 4])
        assert h.min == 0.0
        h.record(3.0)
        h.record(0.5)
        assert h.min == 0.5
        h.reset()
        assert h.min == 0.0

    def test_merge_matches_recording_together(self):
        a = Histogram("a", [1, 2, 4, 8])
        b = Histogram("b", [1, 2, 4, 8])
        ref = Histogram("ref", [1, 2, 4, 8])
        xs, ys = [0.5, 3.0, 100.0], [1.5, 1.7, 6.0]
        for x in xs:
            a.record(x)
            ref.record(x)
        for y in ys:
            b.record(y)
            ref.record(y)
        a.merge(b)
        assert a.count == ref.count
        assert a.bucket_counts() == ref.bucket_counts()
        assert a.min == ref.min
        assert a.max == ref.max
        for p in (10, 50, 90, 99, 100):
            assert a.percentile(p) == ref.percentile(p)

    def test_merge_with_empty_is_identity(self):
        a, b = Histogram("a", [1, 2]), Histogram("b", [1, 2])
        a.record(1.5)
        a.merge(b)
        assert a.count == 1
        assert a.max == 1.5
        b.merge(a)
        assert b.count == 1
        assert b.min == 1.5

    def test_merge_rejects_mismatched_edges(self):
        a, b = Histogram("a", [1, 2]), Histogram("b", [1, 3])
        with pytest.raises(ValueError):
            a.merge(b)

    def test_state_roundtrip(self):
        h = Histogram("h", [1, 2, 4])
        for v in (0.5, 3.0, 9.0):
            h.record(v)
        clone = Histogram.from_state(h.state())
        assert clone.name == h.name
        assert clone.bucket_counts() == h.bucket_counts()
        assert clone.min == h.min
        assert clone.max == h.max
        assert clone.percentile(99) == h.percentile(99)

    def test_empty_state_roundtrip(self):
        clone = Histogram.from_state(Histogram("h", [1, 2]).state())
        assert clone.count == 0
        assert clone.percentile(50) == 0.0
        clone.record(1.5)
        assert clone.min == clone.max == 1.5


class TestMetricSet:
    def test_counter_get_or_create(self):
        m = MetricSet("ns")
        c1 = m.counter("x")
        c2 = m.counter("x")
        assert c1 is c2
        assert c1.name == "ns.x"

    def test_stat_get_or_create(self):
        m = MetricSet()
        s = m.stat("lat")
        assert m.stat("lat") is s
        assert s.name == "lat"

    def test_snapshot_includes_counters_and_stats(self):
        m = MetricSet("dev")
        m.counter("events").add(3)
        m.stat("lat").record(5.0)
        snap = m.snapshot()
        assert snap["dev.events"] == 3.0
        assert snap["dev.lat.mean"] == 5.0
        assert snap["dev.lat.count"] == 1.0

    def test_snapshot_includes_histogram_percentiles(self):
        m = MetricSet()
        h = m.histogram("lat")
        h.record(4.0)
        snap = m.snapshot()
        assert "lat.p50" in snap
        assert "lat.p99" in snap

    def test_reset_clears_everything(self):
        m = MetricSet()
        m.counter("c").add(2)
        m.stat("s").record(1.0)
        m.reset()
        assert m.counter("c").value == 0
        assert m.stat("s").count == 0

    def test_snapshot_skips_never_recorded_histograms(self):
        # A p50 of 0.0 for a histogram that saw no samples conflates
        # "no data" with "zero latency"; empty histograms are omitted.
        m = MetricSet("dev")
        m.histogram("get_latency_us")
        h = m.histogram("put_latency_us")
        h.record(12.0)
        snap = m.snapshot()
        assert "dev.get_latency_us.p50" not in snap
        assert "dev.get_latency_us.p99" not in snap
        assert snap["dev.put_latency_us.count"] == 1.0
        assert "dev.put_latency_us.p50" in snap

    def test_snapshot_reports_stat_spread(self):
        m = MetricSet()
        s = m.stat("lat")
        s.record_many([1.0, 3.0])
        snap = m.snapshot()
        assert snap["lat.min"] == 1.0
        assert snap["lat.max"] == 3.0
        assert snap["lat.stdev"] == pytest.approx(s.stdev)

    def test_snapshot_omits_spread_for_empty_stats(self):
        m = MetricSet()
        m.stat("lat")
        snap = m.snapshot()
        assert snap["lat.count"] == 0.0
        assert "lat.min" not in snap
        assert "lat.stdev" not in snap

    def test_merge_folds_counters_stats_histograms(self):
        a, b = MetricSet("dev"), MetricSet("dev")
        a.counter("ops").add(3)
        b.counter("ops").add(4)
        b.counter("only_b").add(1)
        a.stat("lat").record_many([1.0, 2.0])
        b.stat("lat").record_many([3.0])
        a.histogram("h", [1, 2]).record(1.5)
        b.histogram("h", [1, 2]).record(0.5)
        a.merge(b)
        snap = a.snapshot()
        assert snap["dev.ops"] == 7.0
        assert snap["dev.only_b"] == 1.0
        assert snap["dev.lat.count"] == 3.0
        assert snap["dev.lat.mean"] == pytest.approx(2.0)
        assert a.histogram("h").count == 2
        assert a.histogram("h").min == 0.5

    def test_merge_into_empty_set_is_copy(self):
        src, dst = MetricSet("m"), MetricSet("m")
        src.counter("c").add(2)
        src.stat("s").record(5.0)
        src.histogram("h", [10]).record(3.0)
        dst.merge(src)
        assert dst.snapshot() == src.snapshot()

    def test_seed_schema_reproduces_legacy_keys(self):
        # The frozen goldens were captured with the seed's key set:
        # mean/count/total only for stats, p50/p99 always (0.0 when empty).
        m = MetricSet("dev")
        m.stat("lat").record(5.0)
        m.histogram("empty_hist")
        snap = m.snapshot(seed_schema=True)
        assert "dev.lat.min" not in snap
        assert "dev.lat.stdev" not in snap
        assert snap["dev.empty_hist.p50"] == 0.0
        assert snap["dev.empty_hist.p99"] == 0.0
        assert "dev.empty_hist.count" not in snap
