"""Tests for the simulated clock and stopwatch."""

import pytest

from repro.sim.clock import SimClock, Stopwatch


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_us == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now_us == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_accumulates(self):
        clk = SimClock()
        clk.advance(1.5)
        clk.advance(2.5)
        assert clk.now_us == 4.0

    def test_advance_returns_new_time(self):
        clk = SimClock()
        assert clk.advance(3.0) == 3.0

    def test_zero_advance_allowed(self):
        clk = SimClock()
        clk.advance(0.0)
        assert clk.now_us == 0.0

    def test_time_never_rewinds(self):
        clk = SimClock()
        with pytest.raises(ValueError):
            clk.advance(-0.1)

    def test_seconds_view(self):
        clk = SimClock()
        clk.advance(2_000_000)
        assert clk.now_s == pytest.approx(2.0)

    def test_reset(self):
        clk = SimClock()
        clk.advance(10)
        clk.reset()
        assert clk.now_us == 0.0

    def test_reset_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().reset(-5)


class TestStopwatch:
    def test_elapsed_tracks_clock(self):
        clk = SimClock()
        sw = clk.stopwatch()
        clk.advance(7.0)
        assert sw.elapsed_us() == 7.0

    def test_restart_returns_lap(self):
        clk = SimClock()
        sw = clk.stopwatch()
        clk.advance(3.0)
        assert sw.restart() == 3.0
        clk.advance(2.0)
        assert sw.elapsed_us() == 2.0

    def test_anchored_at_creation(self):
        clk = SimClock()
        clk.advance(5.0)
        sw = Stopwatch(clk)
        assert sw.start_us == 5.0
        assert sw.elapsed_us() == 0.0
