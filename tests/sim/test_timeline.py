"""NandTimeline: busy-until booking rules and timing invariants.

The timeline is the whole parallel-timing engine (docs/parallel-timing.md),
so these tests pin down its contract precisely: where operations start when
resources are free vs contended, which resource each op kind occupies, and
the global invariants (monotone horizons, per-way busy time bounded by
elapsed virtual time) that the pipelined driver relies on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NandError
from repro.nand.geometry import NandGeometry
from repro.sim.timeline import NandTimeline


def small_geometry(channels: int = 2, ways: int = 2) -> NandGeometry:
    return NandGeometry(
        channels=channels,
        ways_per_channel=ways,
        blocks_per_way=4,
        pages_per_block=8,
        page_size=2048,
    )


class TestAddressing:
    def test_way_of_ppn_walks_ways_in_ppn_order(self):
        geo = small_geometry()
        tl = NandTimeline(geo)
        pages_per_way = geo.pages_per_block * geo.blocks_per_way
        assert tl.way_of_ppn(0) == 0
        assert tl.way_of_ppn(pages_per_way - 1) == 0
        assert tl.way_of_ppn(pages_per_way) == 1
        assert tl.way_of_ppn(geo.total_pages - 1) == geo.total_ways - 1

    def test_way_of_block_matches_way_of_first_ppn(self):
        geo = small_geometry()
        tl = NandTimeline(geo)
        for block in range(geo.total_blocks):
            ppn = geo.first_ppn_of_block(block)
            assert tl.way_of_block(block) == tl.way_of_ppn(ppn)


class TestProgramBooking:
    def test_idle_program_starts_at_issue_time(self):
        tl = NandTimeline(small_geometry())
        start, end = tl.book_program(0, issue_us=10.0, total_us=400.0, xfer_us=25.0)
        assert (start, end) == (10.0, 410.0)
        assert tl.way_busy_until_us[0] == 410.0
        assert tl.channel_busy_until_us[0] == 35.0  # bus held for xfer only

    def test_same_way_serializes(self):
        tl = NandTimeline(small_geometry())
        tl.book_program(0, 0.0, 400.0, 25.0)
        start, end = tl.book_program(0, 0.0, 400.0, 25.0)
        assert (start, end) == (400.0, 800.0)

    def test_sibling_ways_overlap_except_bus_transfer(self):
        """Two ways on one channel: cell programs overlap, transfers queue."""
        tl = NandTimeline(small_geometry())
        tl.book_program(0, 0.0, 400.0, 25.0)
        start, end = tl.book_program(1, 0.0, 400.0, 25.0)
        # Way 1 is free but the shared bus is busy until 25.0.
        assert (start, end) == (25.0, 425.0)
        assert tl.frontier_us == 425.0  # not 800: the programs overlapped

    def test_distinct_channels_fully_overlap(self):
        geo = small_geometry()
        tl = NandTimeline(geo)
        tl.book_program(0, 0.0, 400.0, 25.0)
        other = geo.ways_per_channel  # first way of channel 1
        start, end = tl.book_program(other, 0.0, 400.0, 25.0)
        assert (start, end) == (0.0, 400.0)

    def test_n_programs_across_n_ways_finish_in_one_tprog_plus_xfers(self):
        """The headline overlap: N ways absorb N programs almost in parallel,
        limited only by the serialized channel transfers."""
        geo = small_geometry(channels=1, ways=4)
        tl = NandTimeline(geo)
        for way in range(4):
            tl.book_program(way, 0.0, 400.0, 25.0)
        assert tl.frontier_us == 3 * 25.0 + 400.0  # last xfer starts at 75

    def test_busy_total_accumulates_full_duration(self):
        tl = NandTimeline(small_geometry())
        tl.book_program(0, 0.0, 400.0, 25.0)
        tl.book_program(0, 0.0, 400.0, 25.0)
        assert tl.way_busy_total_us[0] == 800.0


class TestReadBooking:
    def test_idle_read_spans_sense_plus_transfer(self):
        tl = NandTimeline(small_geometry())
        start, end = tl.book_read(0, 10.0, total_us=80.0, xfer_us=25.0)
        assert (start, end) == (10.0, 90.0)
        assert tl.channel_busy_until_us[0] == 90.0
        assert tl.way_busy_until_us[0] == 90.0

    def test_busy_bus_stretches_way_occupancy(self):
        """Sense proceeds, but the data-out transfer waits for the bus —
        the way stays occupied until its register drains."""
        tl = NandTimeline(small_geometry(channels=1, ways=2))
        tl.book_program(0, 0.0, 400.0, 100.0)  # bus busy until 100
        start, end = tl.book_read(1, 0.0, total_us=80.0, xfer_us=25.0)
        assert start == 0.0
        assert end == 125.0  # sense done at 55, transfer waits for 100
        assert tl.way_busy_until_us[1] == 125.0
        assert tl.way_busy_total_us[1] == 125.0

    def test_transfer_longer_than_total_is_rejected(self):
        tl = NandTimeline(small_geometry())
        with pytest.raises(NandError):
            tl.book_read(0, 0.0, total_us=10.0, xfer_us=25.0)


class TestEraseBooking:
    def test_erase_occupies_way_only(self):
        tl = NandTimeline(small_geometry())
        start, end = tl.book_erase(0, 5.0, total_us=3000.0)
        assert (start, end) == (5.0, 3005.0)
        assert tl.way_busy_until_us[0] == 3005.0
        assert tl.channel_busy_until_us[0] == 0.0  # no bus traffic

    def test_erases_on_distinct_ways_overlap(self):
        tl = NandTimeline(small_geometry())
        tl.book_erase(0, 0.0, 3000.0)
        tl.book_erase(1, 0.0, 3000.0)
        tl.book_erase(2, 0.0, 3000.0)
        assert tl.frontier_us == 3000.0


class TestReset:
    def test_reset_forgets_all_bookings(self):
        tl = NandTimeline(small_geometry())
        tl.book_program(0, 0.0, 400.0, 25.0)
        tl.book_erase(1, 0.0, 3000.0)
        tl.reset()
        assert tl.frontier_us == 0.0
        assert tl.channel_busy_until_us == [0.0, 0.0]
        assert tl.way_busy_total_us == [0.0] * 4


# --- invariants under arbitrary op sequences --------------------------------

_OPS = st.lists(
    st.tuples(
        st.sampled_from(["program", "read", "erase"]),
        st.integers(min_value=0, max_value=3),  # way
        st.floats(min_value=0.0, max_value=50.0),  # issue-time increment
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=80, deadline=None)
@given(ops=_OPS)
def test_busy_horizons_are_monotone_and_starts_respect_issue(ops):
    """Booking never moves a resource horizon backwards, and no operation
    starts before it was issued — reordered completions upstream cannot
    manufacture time travel down here."""
    tl = NandTimeline(small_geometry())
    now = 0.0
    for kind, way, dt in ops:
        now += dt
        before_ways = list(tl.way_busy_until_us)
        before_channels = list(tl.channel_busy_until_us)
        if kind == "program":
            start, end = tl.book_program(way, now, 400.0, 25.0)
        elif kind == "read":
            start, end = tl.book_read(way, now, 80.0, 25.0)
        else:
            start, end = tl.book_erase(way, now, 3000.0)
        assert start >= now
        assert end > start
        for w, prev in enumerate(before_ways):
            assert tl.way_busy_until_us[w] >= prev
        for c, prev in enumerate(before_channels):
            assert tl.channel_busy_until_us[c] >= prev


@settings(max_examples=80, deadline=None)
@given(ops=_OPS)
def test_per_way_busy_time_never_exceeds_elapsed_virtual_time(ops):
    """A single die cannot be busy for longer than the span of virtual time
    it existed in: sum of its busy intervals <= drain time - first issue.
    (The satellite invariant; a double-booked way would violate it.)"""
    tl = NandTimeline(small_geometry())
    now = 0.0
    for kind, way, dt in ops:
        now += dt
        if kind == "program":
            tl.book_program(way, now, 400.0, 25.0)
        elif kind == "read":
            tl.book_read(way, now, 80.0, 25.0)
        else:
            tl.book_erase(way, now, 3000.0)
    elapsed = tl.frontier_us  # virtual time starts at 0
    for way, busy in enumerate(tl.way_busy_total_us):
        assert busy <= elapsed + 1e-9, f"way {way} busy {busy} > elapsed {elapsed}"
    for frac in tl.way_utilization(elapsed):
        assert 0.0 <= frac <= 1.0 + 1e-12
