"""QD=1 / 1-channel / 1-way equivalence: byte-identical to the seed model.

The parallel timing engine (docs/parallel-timing.md) promises that the
degenerate configuration — one channel, one way, queue depth 1 — reproduces
the pre-parallelism simulator *exactly*: every per-request latency, every
PCIe byte, every NAND program count. ``tests/data/seed_golden_1x1.json``
was captured from the seed tree by ``scripts/capture_seed_golden.py``;
this test re-runs the same scenarios on the current tree and compares
every recorded number for equality (no tolerances — the guarantee is
"identical", not "close").
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_PATH = REPO_ROOT / "tests" / "data" / "seed_golden_1x1.json"
CAPTURE_PATH = REPO_ROOT / "scripts" / "capture_seed_golden.py"


def _load_capture_module():
    spec = importlib.util.spec_from_file_location("capture_seed_golden", CAPTURE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def capture():
    return _load_capture_module()


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def assert_run_identical(fresh: dict, frozen: dict) -> None:
    """Every scalar, every latency, every snapshot entry: exactly equal."""
    assert fresh.keys() == frozen.keys()
    for key in frozen:
        if key in ("latencies_us", "clock_marks_us"):
            assert len(fresh[key]) == len(frozen[key])
            for i, (got, want) in enumerate(zip(fresh[key], frozen[key])):
                assert got == want, f"{key}[{i}]: {got} != {want}"
        elif key == "snapshot":
            assert fresh[key] == frozen[key], _snapshot_delta(
                fresh[key], frozen[key]
            )
        else:
            assert fresh[key] == frozen[key], f"{key}: {fresh[key]} != {frozen[key]}"


def _snapshot_delta(fresh: dict, frozen: dict) -> str:
    diffs = [
        f"{name}: {fresh.get(name)} != {frozen.get(name)}"
        for name in sorted(set(fresh) | set(frozen))
        if fresh.get(name) != frozen.get(name)
    ]
    return "snapshot mismatch: " + "; ".join(diffs[:10])


def test_golden_file_exists_and_covers_all_scenarios(golden):
    assert set(golden) == {
        "backfill_d",
        "baseline_mixed",
        "piggyback_d",
        "gc_churn",
        "flash_direct",
    }


def test_backfill_workload_d_identical(capture, golden):
    from repro.units import MIB
    from repro.workloads.workloads import workload_d

    fresh = capture.drive("backfill", 256 * MIB, workload_d(200, seed=7))
    assert_run_identical(fresh, golden["backfill_d"])


def test_baseline_mixed_identical(capture, golden):
    from repro.units import MIB
    from repro.workloads.workloads import workload_mixed

    fresh = capture.drive(
        "baseline", 64 * MIB, workload_mixed(150, read_fraction=0.5, seed=3)
    )
    assert_run_identical(fresh, golden["baseline_mixed"])


def test_piggyback_workload_d_identical(capture, golden):
    from repro.units import MIB
    from repro.workloads.workloads import workload_d

    fresh = capture.drive("piggyback", 256 * MIB, workload_d(120, seed=11))
    assert_run_identical(fresh, golden["piggyback_d"])


def test_gc_churn_with_erases_identical(capture, golden):
    from repro.units import MIB

    fresh = capture.drive_gc_churn(16 * MIB, ops=380, keys=80)
    assert_run_identical(fresh, golden["gc_churn"])


def test_flash_direct_program_read_erase_identical(capture, golden):
    fresh = capture.drive_flash_direct()
    assert_run_identical(fresh, golden["flash_direct"])
