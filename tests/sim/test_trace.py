"""Unit tests for the per-command tracer (repro.sim.trace)."""

import io
import json

import pytest

from repro.sim.trace import (
    PHASES,
    TRACE_SCHEMA_VERSION,
    OpTrace,
    Tracer,
    format_phase_table,
)


class _Clock:
    """Minimal stand-in for SimClock: just a now_us the tests can set."""

    def __init__(self, now_us: float = 0.0) -> None:
        self.now_us = now_us


def _tracer(now_us: float = 0.0, **kwargs) -> Tracer:
    return Tracer(clock=_Clock(now_us), **kwargs)


class TestOpLifecycle:
    def test_begin_op_assigns_sequential_ids_and_sets_current(self):
        t = _tracer()
        a = t.begin_op("put", value_size=100)
        b = t.begin_op("get")
        assert (a, b) == (0, 1)
        assert t.current_op == b
        assert t.open_ops == 2

    def test_end_op_records_other_remainder(self):
        t = _tracer(now_us=10.0)
        op_id = t.begin_op("put")
        t.span("pcie", "dma_h2d", 10.0, 13.0, phase="dma")
        op = t.end_op(op_id, status="SUCCESS", latency_us=5.0)
        assert op.phases["dma"] == pytest.approx(3.0)
        assert op.phases["other"] == pytest.approx(2.0)
        assert sum(op.phases.values()) == pytest.approx(op.latency_us)
        assert t.open_ops == 0
        assert t.current_op is None

    def test_end_op_skips_negligible_other(self):
        t = _tracer()
        op_id = t.begin_op("put")
        t.span("nand", "program", 0.0, 4.0, phase="nand")
        op = t.end_op(op_id, status="SUCCESS", latency_us=4.0)
        assert "other" not in op.phases

    def test_pipelined_overlap_yields_negative_other(self):
        # Overlapped device work can attribute more phase time than the
        # op's wall latency; 'other' absorbs the (negative) difference so
        # the sum identity still holds.
        t = _tracer()
        op_id = t.begin_op("put")
        t.span("nand", "program", 0.0, 8.0, phase="nand")
        op = t.end_op(op_id, status="SUCCESS", latency_us=5.0)
        assert op.phases["other"] == pytest.approx(-3.0)
        assert sum(op.phases.values()) == pytest.approx(5.0)

    def test_phase_us_overrides_span_duration(self):
        # A deferred NAND booking spans its timeline window but charges
        # only the clock time the issuing op actually spent.
        t = _tracer()
        op_id = t.begin_op("put")
        t.span("nand", "program", 100.0, 180.0, phase="nand", phase_us=0.0)
        op = t.end_op(op_id, status="SUCCESS", latency_us=2.0)
        assert "nand" not in op.phases
        assert op.phases["other"] == pytest.approx(2.0)
        assert t.events[0].dur_us == pytest.approx(80.0)

    def test_end_op_keeps_kind_args_and_commands(self):
        t = _tracer(now_us=7.0)
        op_id = t.begin_op("put", value_size=64, method="piggyback")
        op = t.end_op(op_id, status="SUCCESS", latency_us=3.0, commands=2)
        assert op.kind == "put"
        assert op.commands == 2
        assert op.start_us == 7.0
        assert op.end_us == pytest.approx(10.0)
        assert op.args == {"value_size": 64, "method": "piggyback"}


class TestRecording:
    def test_span_tags_current_op(self):
        t = _tracer()
        op_id = t.begin_op("put")
        t.span("pcie", "doorbell", 0.0, 0.1, phase="doorbell")
        assert t.events[0].op_id == op_id

    def test_span_outside_any_op_has_no_op_id(self):
        t = _tracer()
        t.span("nand", "flush_program", 0.0, 100.0, phase="nand")
        assert t.events[0].op_id is None

    def test_instant_is_zero_duration_at_clock_now(self):
        t = _tracer(now_us=42.5)
        t.instant("queue", "sq_submit", resource="sq1", occupancy=3)
        ev = t.events[0]
        assert ev.ts_us == 42.5
        assert ev.dur_us == 0.0
        assert ev.resource == "sq1"
        assert ev.args == {"occupancy": 3}

    def test_add_phase_does_not_emit_event(self):
        t = _tracer()
        op_id = t.begin_op("get")
        t.add_phase("completion", 1.5)
        assert t.events == []
        op = t.end_op(op_id, status="SUCCESS", latency_us=1.5)
        assert op.phases == {"completion": 1.5}

    def test_max_events_cap_counts_drops_but_keeps_phases(self):
        t = _tracer(max_events=1)
        op_id = t.begin_op("put")
        t.span("pcie", "dma_h2d", 0.0, 1.0, phase="dma")
        t.span("nand", "program", 1.0, 3.0, phase="nand")
        assert len(t.events) == 1
        assert t.dropped_events == 1
        op = t.end_op(op_id, status="SUCCESS", latency_us=3.0)
        # Phase attribution survives the event drop.
        assert op.phases["nand"] == pytest.approx(2.0)

    def test_reset_clears_state(self):
        t = _tracer(max_events=1)
        t.begin_op("put")
        t.span("a", "b", 0.0, 1.0)
        t.span("a", "c", 1.0, 2.0)
        t.reset()
        assert t.events == []
        assert t.ops == []
        assert t.open_ops == 0
        assert t.dropped_events == 0
        assert t.current_op is None


class TestExporters:
    def _populated(self) -> Tracer:
        t = _tracer()
        op_id = t.begin_op("put", value_size=10)
        t.span("pcie", "dma_h2d", 0.0, 2.0, phase="dma", bytes=128)
        t.span("nand", "program", 2.0, 6.0, phase="nand", resource="way0")
        t.end_op(op_id, status="SUCCESS", latency_us=6.0)
        return t

    def test_jsonl_header_events_then_ops(self):
        t = self._populated()
        buf = io.StringIO()
        t.write_jsonl(buf)
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert lines[0]["type"] == "header"
        assert lines[0]["version"] == TRACE_SCHEMA_VERSION
        assert lines[0]["events"] == 2
        assert lines[0]["ops"] == 1
        assert [ln["type"] for ln in lines[1:]] == ["event", "event", "op"]
        event = lines[1]
        assert event["cat"] == "pcie"
        assert event["name"] == "dma_h2d"
        assert event["args"] == {"bytes": 128}
        op = lines[3]
        assert op["kind"] == "put"
        assert op["latency_us"] == pytest.approx(6.0)
        assert sum(op["phases"].values()) == pytest.approx(op["latency_us"])

    def test_jsonl_to_path(self, tmp_path):
        t = self._populated()
        path = tmp_path / "trace.jsonl"
        t.write_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + 2 + 1

    def test_chrome_trace_lanes_and_metadata(self):
        t = self._populated()
        doc = t.chrome_trace()
        events = doc["traceEvents"]
        ops = [e for e in events if e.get("cat") == "op"]
        assert len(ops) == 1
        assert ops[0]["ph"] == "X"
        assert ops[0]["tid"] == 0
        names = {
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        }
        # ops lane, pcie category lane, way0 resource lane.
        assert {"ops", "pcie", "way0"} <= names

    def test_report_totals_and_per_kind_means(self):
        t = self._populated()
        report = t.report()
        assert report["trace.events"] == 2.0
        assert report["trace.ops"] == 1.0
        assert report["trace.open_ops"] == 0.0
        assert report["trace.put.count"] == 1.0
        assert report["trace.put.latency_us.mean"] == pytest.approx(6.0)
        assert report["trace.put.phase.dma.mean_us"] == pytest.approx(2.0)
        assert report["trace.put.phase.nand.mean_us"] == pytest.approx(4.0)
        assert report["trace.events.pcie"] == 1.0
        assert report["trace.events.nand"] == 1.0


class TestFormatPhaseTable:
    def test_table_shows_phases_and_totals(self):
        ops = [
            OpTrace(
                op_id=0,
                kind="put",
                start_us=0.0,
                end_us=5.0,
                latency_us=5.0,
                commands=1,
                status="SUCCESS",
                phases={"dma": 2.0, "nand": 3.0},
            )
        ]
        table = format_phase_table(ops)
        assert "put (us)" in table
        assert "dma" in table
        assert "nand" in table
        assert "total" in table
        # Phases with no time anywhere are not rendered as rows.
        assert "backoff" not in table

    def test_phase_order_is_fig12_taxonomy(self):
        assert PHASES[0] == "doorbell"
        assert PHASES[-1] == "other"
        assert "nand" in PHASES and "memcpy" in PHASES
