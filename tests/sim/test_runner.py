"""Tests for the experiment runner that backs every bench."""

import pytest

from repro.core.config import BandSlimConfig
from repro.errors import ConfigError
from repro.sim.runner import resolve_config, run_workload
from repro.workloads.workloads import workload_a, workload_b


class TestResolveConfig:
    def test_preset_name(self):
        name, cfg = resolve_config("baseline")
        assert name == "baseline"
        assert cfg.transfer_mode.value == "baseline"

    def test_config_object_passthrough(self):
        cfg = BandSlimConfig()
        name, out = resolve_config(cfg)
        assert out == cfg
        assert "/" in name

    def test_overrides_applied(self):
        _, cfg = resolve_config("baseline", nand_io_enabled=False)
        assert not cfg.nand_io_enabled

    def test_bad_type_rejected(self):
        with pytest.raises(ConfigError):
            resolve_config(42)  # type: ignore[arg-type]


class TestRunWorkload:
    def test_result_fields_populated(self):
        r = run_workload("adaptive", workload_a(100, 64))
        assert r.ops == 100
        assert r.value_bytes == 6400
        assert r.elapsed_us > 0
        assert r.avg_response_us > 0
        assert r.pcie_total_bytes > 0
        assert r.throughput_kops > 0

    def test_taf_matches_paper_for_baseline_32b(self):
        """Fig 3(b): baseline TAF at 32 B ≈ 130."""
        r = run_workload("baseline", workload_a(200, 32), nand_io_enabled=False)
        assert r.traffic_amplification == pytest.approx(130.75, rel=0.01)

    def test_waf_tracks_nand_bytes(self):
        r = run_workload("baseline", workload_a(500, 2048))
        assert r.write_amplification > 1.0

    def test_nand_counts_split_by_flush(self):
        r = run_workload("backfill", workload_b(300, seed=2))
        assert r.nand_page_writes_with_flush >= r.nand_page_writes

    def test_deterministic_across_runs(self):
        a = run_workload("adaptive", workload_b(200, seed=5))
        b = run_workload("adaptive", workload_b(200, seed=5))
        assert a.pcie_total_bytes == b.pcie_total_bytes
        assert a.avg_response_us == b.avg_response_us
        assert a.nand_page_writes == b.nand_page_writes

    def test_scaling_helpers_linear(self):
        r = run_workload("baseline", workload_a(100, 64))
        assert r.scaled_pcie_bytes(1000) == pytest.approx(10 * r.pcie_total_bytes)
        assert r.scaled_nand_writes(1000) == pytest.approx(10 * r.nand_page_writes)

    def test_max_value_auto_extended(self):
        """Values beyond the config cap (but within scratch) still run."""
        from repro.workloads.distributions import FixedSize
        from repro.workloads.generator import Workload

        w = Workload(name="big", num_ops=3, size_dist=FixedSize(200_000), seed=0)
        cfg = BandSlimConfig(scratch_bytes=1 << 20, max_value_bytes=1 << 16)
        r = run_workload(cfg, w)
        assert r.ops == 3

    def test_values_beyond_scratch_rejected(self):
        from repro.workloads.distributions import FixedSize
        from repro.workloads.generator import Workload

        w = Workload(name="huge", num_ops=2, size_dist=FixedSize(300_000), seed=0)
        cfg = BandSlimConfig(scratch_bytes=1 << 18, max_value_bytes=1 << 17)
        with pytest.raises(ConfigError):
            run_workload(cfg, w)

    def test_snapshot_attached(self):
        r = run_workload("adaptive", workload_a(50, 64))
        assert "nand.page_programs" in r.snapshot


class TestDeviceReuse:
    def test_runner_accepts_prebuilt_device(self):
        """Multi-phase experiments run several workloads on one device."""
        from repro.device.kvssd import KVSSD
        from repro.core.config import preset

        device = KVSSD.build(config=preset("backfill"))
        from repro.workloads.workloads import workload_b

        first = run_workload("backfill", workload_b(100, seed=1), device=device,
                             flush_at_end=False)
        second = run_workload("backfill", workload_b(100, seed=2), device=device)
        # Same device accumulated both phases' traffic.
        assert device.driver.metrics.counter("puts").value == 200
        assert second.elapsed_us > 0
        assert first.ops == second.ops == 100

    def test_latency_override_propagates(self):
        from repro.sim.latency import LatencyModel
        from repro.workloads.workloads import workload_a

        slow = LatencyModel().with_overrides(nand_program_us=4000.0)
        fast = run_workload("baseline", workload_a(100, 16 * 1024))
        sluggish = run_workload("baseline", workload_a(100, 16 * 1024), latency=slow)
        assert sluggish.avg_response_us > fast.avg_response_us * 5
