"""Tests for the A/B comparison helper."""

import pytest

from repro.errors import ConfigError
from repro.sim.compare import compare_configs
from repro.workloads.workloads import workload_b, workload_m


class TestCompareConfigs:
    def test_identical_inputs_across_configs(self):
        c = compare_configs(["baseline", "backfill"], workload_b(200, seed=1))
        assert c.results[0].value_bytes == c.results[1].value_bytes
        assert c.config_names == ("baseline", "backfill")

    def test_reduction_math(self):
        c = compare_configs(["baseline", "piggyback"],
                            workload_m(300, seed=1), nand_io_enabled=False)
        red = c.reduction(lambda r: r.pcie_total_bytes, 1)
        manual = 1 - c.results[1].pcie_total_bytes / c.results[0].pcie_total_bytes
        assert red == pytest.approx(manual)
        assert red > 0.9  # the paper's W(M) headline zone

    def test_single_config_allowed(self):
        c = compare_configs(["adaptive"], workload_b(100, seed=1))
        assert len(c.results) == 1

    def test_empty_configs_rejected(self):
        with pytest.raises(ConfigError):
            compare_configs([], workload_b(50, seed=1))

    def test_format_contains_all_columns_and_summary(self):
        c = compare_configs(["baseline", "backfill"], workload_m(200, seed=1))
        text = c.format()
        assert "baseline" in text and "backfill" in text
        assert "avg response" in text
        assert "NAND page writes" in text
        assert "vs baseline" in text

    def test_reduction_of_zero_baseline_is_zero(self):
        c = compare_configs(["baseline"], workload_b(50, seed=1),
                            nand_io_enabled=False)
        assert c.reduction(lambda r: r.nand_page_writes, 0) == 0.0


class TestCompareCLI:
    def test_compare_subcommand(self, capsys):
        from repro.cli import main

        assert main(["compare", "--workload", "W(B)",
                     "--configs", "baseline,all", "--num", "150"]) == 0
        out = capsys.readouterr().out
        assert "all vs baseline" in out

    def test_unknown_config_rejected(self, capsys):
        from repro.cli import main

        assert main(["compare", "--configs", "baseline,warp"]) == 2

    def test_unknown_workload_rejected(self, capsys):
        from repro.cli import main

        assert main(["compare", "--workload", "W(Q)"]) == 2
