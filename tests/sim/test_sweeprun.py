"""Tests for the multiprocess sweep runner (repro.sim.sweeprun)."""

import pytest

from repro.errors import ConfigError
from repro.sim.sweeprun import (
    SweepPoint,
    build_grid,
    build_workload,
    parallel_map,
    run_point,
    run_sweep,
    strip_wall_fields,
)


class TestGrid:
    def test_cross_product_sorted_by_key(self):
        grid = build_grid(
            seeds=[1, 0],
            geometries=[(2, 4), (1, 1)],
            queue_depths=[32, 1],
            workloads=["mixed"],
            ops=10,
        )
        assert len(grid) == 8
        assert [p.key for p in grid] == sorted(p.key for p in grid)

    def test_points_are_picklable(self):
        import pickle

        point = SweepPoint(
            workload="mixed", config="backfill", channels=1, ways=1,
            queue_depth=4, seed=0, ops=10,
        )
        assert pickle.loads(pickle.dumps(point)) == point

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError):
            build_workload("nonesuch", ops=10, seed=0)

    def test_paper_workload_letter_resolves(self):
        assert build_workload("C", ops=10, seed=0).num_ops == 10


class TestDeterministicMerge:
    def test_parallel_merge_identical_to_serial(self):
        grid = build_grid(
            seeds=[0, 1],
            geometries=[(1, 1)],
            queue_depths=[1, 8],
            workloads=["mixed"],
            ops=60,
        )
        serial = run_sweep(grid, workers=1)
        parallel = run_sweep(grid, workers=2)
        assert strip_wall_fields(serial) == strip_wall_fields(parallel)
        assert parallel["workers"] == 2
        assert parallel["point_count"] == len(grid)

    def test_aggregate_merges_percentiles_across_points(self):
        from repro.sim.stats import Histogram

        grid = build_grid(
            seeds=[0, 1],
            geometries=[(1, 1)],
            queue_depths=[1],
            workloads=["mixed"],
            ops=50,
        )
        report = run_sweep(grid, workers=1)
        agg = report["aggregate"]
        assert "put_latency_us" in agg
        merged = agg["put_latency_us"]
        # Merged count equals the sum over per-point histogram states, and
        # the merged percentiles equal recording every point's samples into
        # one histogram (bucket-wise Histogram.merge).
        ref = None
        for row in report["points"]:
            hist = Histogram.from_state(row["latency_hists"]["put_latency_us"])
            if ref is None:
                ref = hist
            else:
                ref.merge(hist)
        assert merged["count"] == ref.count
        assert merged["p99_us"] == round(ref.percentile(99), 4)
        assert merged["min_us"] <= merged["p50_us"] <= merged["p99_us"]
        assert merged["p999_us"] <= merged["max_us"]

    def test_point_row_carries_grid_coordinates(self):
        point = SweepPoint(
            workload="mixed", config="backfill", channels=2, ways=2,
            queue_depth=4, seed=3, ops=40,
        )
        row = run_point(point)
        assert row["seed"] == 3 and row["channels"] == 2
        assert row["throughput_kops"] > 0
        assert row["wall_seconds"] >= 0


class TestParallelMap:
    def test_serial_fallback_preserves_order(self):
        assert parallel_map(abs, [-3, 2, -1], workers=1) == [3, 2, 1]

    def test_worker_count_capped_by_items(self):
        # 2 items, 8 workers: must not hang or error.
        assert parallel_map(abs, [-5, 4], workers=8) == [5, 4]
