"""Equivalence and pooling tests for the fused batched event core.

The fused engine (``repro.sim.engine``) promises *bit-identical* behaviour
to the generic pipelined driver loops: same simulated-clock floats, same
``OpResult`` lists, same metric snapshot. These tests hold it to that on
randomized operation sequences (the property the seed goldens pin for one
fixed trace, generalized), and pin the slot-pooling and plan-memo rules
the fast path relies on.
"""

import random

import pytest

from repro.core.config import preset
from repro.core.transfer import TransferMethod, TransferPlanner
from repro.device.kvssd import KVSSD
from repro.units import KIB, MIB


def _build(name, **overrides):
    overrides.setdefault("nand_capacity_bytes", 64 * MIB)
    return KVSSD.build(config=preset(name, **overrides))


def _random_script(seed, ops):
    """Randomized interleaved put_many/get_many batches.

    Mixes batch sizes, value sizes (sub-fragment through multi-page),
    queue depths, repeated keys (overwrites) and missing keys, so the
    fused engine's PUT/GET arms, drain interleavings and completion
    ordering all get exercised.
    """
    rng = random.Random(seed)
    sizes = (20, 91, 120, 300, 1 * KIB, 2 * KIB, 5 * KIB)
    script = []
    known = []
    remaining = ops
    while remaining > 0:
        n = min(remaining, rng.randint(1, 24))
        remaining -= n
        qd = rng.choice((2, 4, 32))
        if known and rng.random() < 0.4:
            keys = [rng.choice(known) for _ in range(n)]
            if rng.random() < 0.3:
                keys[rng.randrange(n)] = b"missing-%04x" % rng.getrandbits(16)
            script.append(("get", keys, qd))
        else:
            pairs = []
            for _ in range(n):
                key = b"k%06d" % rng.getrandbits(20)
                pairs.append((key, rng.randbytes(rng.choice(sizes))))
                known.append(key)
            script.append(("put", pairs, qd))
    return script


def _replay(device, script):
    out = []
    for kind, payload, qd in script:
        if kind == "put":
            out.append(device.driver.put_many(payload, queue_depth=qd))
        else:
            out.append(device.driver.get_many(payload, queue_depth=qd))
    return out


def _assert_equivalent(config_name, seed, ops=150, **overrides):
    fused = _build(config_name, **overrides)
    generic = _build(config_name, **overrides)
    generic.driver._fused_enabled = False

    script = _random_script(seed, ops)
    fused_results = _replay(fused, script)
    generic_results = _replay(generic, script)

    # Exact float equality, not approx: the fused path must apply the
    # same arithmetic in the same order.
    assert fused.clock.now_us == generic.clock.now_us
    assert fused_results == generic_results
    assert fused.snapshot() == generic.snapshot()
    # The fused path actually ran (the comparison wasn't fallback vs
    # fallback).
    assert fused.driver._engine is not None
    assert generic.driver._engine is None


class TestFusedEquivalence:
    @pytest.mark.parametrize(
        "config_name", ["baseline", "piggyback", "all", "backfill", "integrated"]
    )
    def test_matches_generic_pipeline(self, config_name):
        # str hash() is per-process randomized; derive a stable seed.
        _assert_equivalent(config_name, seed=0xBA7C + sum(config_name.encode()))

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_generic_across_seeds(self, seed):
        _assert_equivalent("backfill", seed=seed)

    def test_matches_generic_when_dma_wraps_entry_ring(self):
        """Page-size values stream direct DMA through the buffer's entry
        ring; once placements wrap it, wire pages are no longer contiguous
        in DRAM (the bench scaling-sweep regime that first caught this)."""
        fused = _build("baseline", buffer_entries=16, queue_depth=8)
        generic = _build("baseline", buffer_entries=16, queue_depth=8)
        generic.driver._fused_enabled = False
        page = fused.geometry.page_size
        pairs = [(b"wrap-%04d" % i, bytes([i % 256]) * page) for i in range(48)]
        fused_results = fused.driver.put_many(pairs)
        assert fused_results == generic.driver.put_many(pairs)
        assert fused.clock.now_us == generic.clock.now_us
        assert fused.snapshot() == generic.snapshot()
        assert fused.driver._engine is not None

    def test_matches_generic_under_gc_pressure(self):
        # Small capacity + mapping cache on: GC and cache invalidation
        # fire inside batches and must stay in lockstep.
        _assert_equivalent(
            "backfill",
            seed=77,
            ops=260,
            nand_capacity_bytes=24 * MIB,
            read_cache_pages=64,
        )


class TestSlotPooling:
    def test_pool_reuse_leaks_no_state(self):
        """Dissimilar back-to-back batches through one driver equal fresh
        per-script runs: reused slots carry nothing over."""
        script = [
            ("put", [(b"a%03d" % i, b"x" * (40 + 97 * i)) for i in range(30)], 32),
            ("put", [(b"b%03d" % i, b"y" * 2048) for i in range(3)], 4),
            ("get", [b"a%03d" % i for i in range(30)] + [b"nope"], 8),
            ("put", [(b"a%03d" % i, b"z" * 5000) for i in range(5)], 2),
            ("get", [b"b001", b"a002", b"a004"], 32),
        ]
        reused = _build("backfill")
        reused_results = _replay(reused, script)

        generic = _build("backfill")
        generic.driver._fused_enabled = False
        assert reused_results == _replay(generic, script)
        assert reused.clock.now_us == generic.clock.now_us
        assert reused.snapshot() == generic.snapshot()

    def test_pool_sized_by_largest_batch(self):
        device = _build("backfill")
        _replay(device, [("put", [(b"k%d" % i, b"v" * 64) for i in range(17)], 4)])
        engine = device.driver._engine
        assert len(engine._put_pool) == 17
        # Smaller and equal batches reuse the pool without growing it.
        _replay(device, [
            ("put", [(b"j%d" % i, b"w" * 256) for i in range(5)], 4),
            ("put", [(b"l%d" % i, b"u" * 30) for i in range(17)], 8),
        ])
        assert len(engine._put_pool) == 17
        _replay(device, [("get", [b"k1", b"k2"], 4)])
        assert len(engine._get_pool) == 2


class TestPlanMemo:
    def test_config_swap_drops_cached_plans(self):
        planner = TransferPlanner(preset("piggyback"))
        assert planner.plan(2048).method is TransferMethod.PIGGYBACK
        planner.config = preset("baseline")
        assert planner.plan(2048).method is TransferMethod.PRP

    def test_repeated_sizes_hit_the_memo(self):
        planner = TransferPlanner(preset("backfill"))
        assert planner.plan(300) is planner.plan(300)


class TestFallbacks:
    def test_tracer_disables_fused_path(self):
        from repro.sim.trace import Tracer

        device = KVSSD.build(
            config=preset("backfill", nand_capacity_bytes=64 * MIB),
            tracer=Tracer(),
        )
        device.driver.put_many([(b"k", b"v" * 100)], queue_depth=4)
        assert device.driver._engine is None

    def test_disabled_flag_forces_generic(self):
        device = _build("backfill")
        device.driver._fused_enabled = False
        device.driver.put_many([(b"k", b"v" * 100)], queue_depth=4)
        assert device.driver._engine is None
