"""Tentpole: channel-parallel pipelined GETs with page-read coalescing.

Covers the read-side twin of the put_many pipeline: result equivalence
with the serial path, QD1 byte-identity (the zero-cost guarantee),
coalescing under packed layouts, traced==untraced determinism, batch
statuses, exists_many, and the scan readahead cursor.
"""

from repro.core.config import PRESETS
from repro.device.kvssd import KVSSD
from repro.host.api import KVStore
from repro.nand.geometry import NandGeometry
from repro.sim.timeline import NandTimeline, ReadCoalescer
from repro.sim.trace import Tracer
from repro.units import KIB, MIB

KEYS = [b"rp-%05d" % i for i in range(96)]


def _value(key: bytes) -> bytes:
    return bytes((key[-1] + j) % 256 for j in range(64)) + key


def _loaded(config, tracer=None) -> KVSSD:
    device = KVSSD.build(config, tracer=tracer)
    for key in KEYS:
        device.driver.put(key, _value(key))
    device.driver.flush()  # spill the MemTable: GETs must touch NAND
    return device


def _packed_cfg(**overrides):
    merged = dict(nand_capacity_bytes=64 * MIB, queue_depth=8)
    merged.update(overrides)
    return PRESETS["all"].with_overrides(**merged)


class TestGetMany:
    def test_pipelined_values_match_serial_device(self):
        piped = _loaded(_packed_cfg())
        serial = _loaded(_packed_cfg(queue_depth=1))
        results = piped.driver.get_many(KEYS)
        assert [r.value for r in results] == [
            serial.driver.get(k).value for k in KEYS
        ]
        assert all(r.ok for r in results)

    def test_qd1_fallback_is_clock_and_metric_identical_to_serial_gets(self):
        a = _loaded(_packed_cfg(queue_depth=1))
        b = _loaded(_packed_cfg(queue_depth=1))
        for key in KEYS:
            a.driver.get(key)
        b.driver.get_many(KEYS)
        assert a.clock.now_us == b.clock.now_us
        assert a.snapshot() == b.snapshot()

    def test_pipelining_beats_serial_wall_clock(self):
        piped = _loaded(_packed_cfg())
        serial = _loaded(_packed_cfg(queue_depth=1))
        t0 = piped.clock.now_us
        piped.driver.get_many(KEYS)
        piped_us = piped.clock.now_us - t0
        t0 = serial.clock.now_us
        for key in KEYS:
            serial.driver.get(key)
        serial_us = serial.clock.now_us - t0
        # 4x8 ways and shared-page coalescing: well past the 4x floor.
        assert serial_us / piped_us > 4.0

    def test_packed_layout_coalesces_shared_page_reads(self):
        device = _loaded(_packed_cfg())
        device.driver.get_many(KEYS)
        snap = device.snapshot()
        # 96 x 70 B values pack ~58 to a 4 KiB page: most value reads
        # must ride an in-flight sense of the same page.
        assert snap["nand.coalesced_reads"] > 0
        assert snap["nand.coalesced_reads"] > snap["nand.page_reads"] / 2

    def test_serial_path_never_creates_coalesce_counter(self):
        # The lazy counter must not exist after serial GETs — its absence
        # is the zero-cost guarantee the seed goldens depend on.
        device = _loaded(_packed_cfg(queue_depth=1))
        for key in KEYS:
            device.driver.get(key)
        assert "nand.coalesced_reads" not in device.snapshot()

    def test_traced_equals_untraced(self):
        plain = _loaded(_packed_cfg())
        traced = _loaded(_packed_cfg(), tracer=Tracer())
        r_plain = plain.driver.get_many(KEYS)
        r_traced = traced.driver.get_many(KEYS)
        assert [r.value for r in r_plain] == [r.value for r in r_traced]
        assert plain.clock.now_us == traced.clock.now_us

    def test_missing_keys_yield_not_found_slots_without_aborting(self):
        device = _loaded(_packed_cfg())
        batch = [b"absent-1", KEYS[0], b"absent-2", KEYS[1]]
        results = device.driver.get_many(batch)
        assert [r.status.name for r in results] == [
            "KEY_NOT_FOUND", "SUCCESS", "KEY_NOT_FOUND", "SUCCESS",
        ]
        assert results[0].value is None and results[2].value is None
        assert results[1].value == _value(KEYS[0])
        assert results[3].value == _value(KEYS[1])

    def test_results_are_in_submission_order(self):
        device = _loaded(_packed_cfg())
        shuffled = KEYS[::-3] + KEYS[1::2]
        results = device.driver.get_many(shuffled)
        assert [r.value for r in results] == [_value(k) for k in shuffled]

    def test_explicit_queue_depth_override(self):
        device = _loaded(_packed_cfg(queue_depth=1))
        results = device.driver.get_many(KEYS[:16], queue_depth=16)
        assert [r.value for r in results] == [_value(k) for k in KEYS[:16]]


class TestExistsMany:
    def test_matches_serial_exists(self):
        device = _loaded(_packed_cfg())
        probe = [KEYS[0], b"absent", KEYS[5], b"also-absent", KEYS[-1]]
        assert device.driver.exists_many(probe) == [
            True, False, True, False, True,
        ]

    def test_qd1_fallback_matches_serial_clock(self):
        a = _loaded(_packed_cfg(queue_depth=1))
        b = _loaded(_packed_cfg(queue_depth=1))
        probe = KEYS[:24] + [b"absent"]
        r_a = [a.driver.exists(k) for k in probe]
        r_b = b.driver.exists_many(probe)
        assert r_a == r_b
        assert a.clock.now_us == b.clock.now_us


class TestScanReadahead:
    def test_scan_readahead_yields_same_pairs_as_qd1_scan(self):
        piped = KVStore(_loaded(_packed_cfg()))
        serial = KVStore(_loaded(_packed_cfg(queue_depth=1)))
        assert list(piped.scan()) == list(serial.scan())

    def test_scan_readahead_is_faster(self):
        piped = KVStore(_loaded(_packed_cfg()))
        serial = KVStore(_loaded(_packed_cfg(queue_depth=1)))
        t0 = piped.device.clock.now_us
        n_piped = len(list(piped.scan()))
        piped_us = piped.device.clock.now_us - t0
        t0 = serial.device.clock.now_us
        n_serial = len(list(serial.scan()))
        serial_us = serial.device.clock.now_us - t0
        assert n_piped == n_serial == len(KEYS)
        assert serial_us / piped_us > 3.0

    def test_scan_readahead_respects_limit_and_start_key(self):
        store = KVStore(_loaded(_packed_cfg()))
        pairs = list(store.scan(start_key=KEYS[10], limit=7))
        assert [k for k, _ in pairs] == KEYS[10:17]
        assert all(v == _value(k) for k, v in pairs)

    def test_scan_readahead_skips_keys_deleted_mid_scan(self):
        store = KVStore(_loaded(_packed_cfg()))
        store.delete(KEYS[3])
        store.delete(KEYS[40])
        expect = [k for k in KEYS if k not in (KEYS[3], KEYS[40])]
        assert [k for k, _ in store.scan()] == expect

    def test_forced_off_matches_kviterator(self):
        store = KVStore(_loaded(_packed_cfg()))
        assert list(store.scan(readahead=False)) == [
            (k, _value(k)) for k in KEYS
        ]


class TestReadCoalescerUnit:
    def test_book_read_serializes_same_way_and_shares_nothing_alone(self):
        geometry = NandGeometry(
            channels=2, ways_per_channel=2, blocks_per_way=8,
            pages_per_block=8, page_size=16 * KIB,
        )
        timeline = NandTimeline(geometry)
        s0, e0 = timeline.book_read(0, 0.0, 105.0, 25.0)
        assert (s0, e0) == (0.0, 105.0)
        # A second read on the same way waits for the die.
        s1, e1 = timeline.book_read(0, 0.0, 105.0, 25.0)
        assert (s1, e1) == (105.0, 210.0)
        # Another way of the same channel senses concurrently but queues
        # its data-out transfer behind the shared bus.
        s2, e2 = timeline.book_read(1, 0.0, 105.0, 25.0)
        assert s2 == 0.0
        assert e2 == 235.0

    def test_coalesce_rate_accounting(self):
        coal = ReadCoalescer()
        assert coal.coalesce_rate == 0.0
        coal.sensed = 3
        coal.coalesced = 9
        assert coal.coalesce_rate == 0.75
