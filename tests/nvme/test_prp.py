"""Tests for PRP construction and device-side resolution."""

import pytest

from repro.errors import NVMeError
from repro.memory.host import HostMemory
from repro.nvme.prp import PRP_ENTRY_SIZE, build_prp, resolve_prp
from repro.pcie.link import PCIeLink
from repro.pcie.metrics import TrafficCategory
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.units import MEM_PAGE_SIZE


@pytest.fixture
def host_mem():
    return HostMemory()


@pytest.fixture
def link():
    return PCIeLink(SimClock(), LatencyModel())


class TestBuildPRP:
    def test_single_page(self, host_mem):
        buf = host_mem.stage_value(b"x" * 100)
        prp = build_prp(host_mem, buf)
        assert prp.n_pages == 1
        assert prp.prp1 == buf.pages[0].addr
        assert prp.prp2 == 0
        assert not prp.uses_list

    def test_two_pages(self, host_mem):
        buf = host_mem.stage_value(b"x" * 5000)
        prp = build_prp(host_mem, buf)
        assert prp.n_pages == 2
        assert prp.prp2 == buf.pages[1].addr
        assert not prp.uses_list

    def test_three_pages_uses_list(self, host_mem):
        buf = host_mem.stage_value(b"x" * 9000)
        prp = build_prp(host_mem, buf)
        assert prp.uses_list
        assert prp.prp2 == prp.list_page.addr

    def test_list_page_contains_packed_addresses(self, host_mem):
        buf = host_mem.stage_value(b"x" * (MEM_PAGE_SIZE * 4))
        prp = build_prp(host_mem, buf)
        import struct

        entries = [
            struct.unpack_from("<Q", prp.list_page.data, i * PRP_ENTRY_SIZE)[0]
            for i in range(3)
        ]
        assert entries == [p.addr for p in buf.pages[1:]]

    def test_rejects_empty_buffer(self, host_mem):
        buf = host_mem.alloc_buffer(0)
        with pytest.raises(NVMeError):
            build_prp(host_mem, buf)


class TestResolvePRP:
    def _roundtrip(self, host_mem, link, nbytes):
        value = bytes((i * 7) % 256 for i in range(nbytes))
        buf = host_mem.stage_value(value)
        prp = build_prp(host_mem, buf)
        resolved = resolve_prp(host_mem, link, prp.prp1, prp.prp2, nbytes)
        assert resolved.tobytes() == value
        return prp

    def test_single_page_roundtrip(self, host_mem, link):
        self._roundtrip(host_mem, link, 32)

    def test_two_page_roundtrip(self, host_mem, link):
        self._roundtrip(host_mem, link, 4096 + 32)

    def test_list_roundtrip(self, host_mem, link):
        self._roundtrip(host_mem, link, 3 * MEM_PAGE_SIZE + 5)

    def test_list_fetch_charged_to_link(self, host_mem, link):
        """The controller fetching the PRP list is extra wire traffic."""
        before = link.meter.bytes_for(TrafficCategory.SQ_ENTRY)
        self._roundtrip(host_mem, link, 4 * MEM_PAGE_SIZE)
        fetched = link.meter.bytes_for(TrafficCategory.SQ_ENTRY) - before
        assert fetched == 3 * PRP_ENTRY_SIZE

    def test_no_list_fetch_for_two_pages(self, host_mem, link):
        before = link.meter.bytes_for(TrafficCategory.SQ_ENTRY)
        self._roundtrip(host_mem, link, 2 * MEM_PAGE_SIZE)
        assert link.meter.bytes_for(TrafficCategory.SQ_ENTRY) == before

    def test_rejects_missing_prp2(self, host_mem, link):
        buf = host_mem.stage_value(b"x" * 5000)
        prp = build_prp(host_mem, buf)
        with pytest.raises(NVMeError):
            resolve_prp(host_mem, link, prp.prp1, 0, 5000)

    def test_rejects_nonpositive_length(self, host_mem, link):
        with pytest.raises(NVMeError):
            resolve_prp(host_mem, link, 0, 0, 0)
