"""Tests for the admin command set: IDENTIFY and GET/SET FEATURES."""

import pytest

from repro.errors import NVMeError
from repro.nvme.admin import (
    BandSlimCapabilities,
    FeatureId,
    IDENTIFY_DATA_SIZE,
    VENDOR_ID,
    build_identify_data,
    identify_vendor_fields,
    parse_identify_data,
)


@pytest.fixture
def caps():
    return BandSlimCapabilities(
        write_piggyback_capacity=35,
        transfer_piggyback_capacity=56,
        nand_page_size=16384,
        buffer_entries=512,
        dlt_capacity=512,
        transfer_mode="adaptive",
        packing_policy="backfill",
        threshold1=91,
        threshold2=0,
    )


class TestIdentifyData:
    def test_structure_size(self, caps):
        assert len(build_identify_data(caps)) == IDENTIFY_DATA_SIZE

    def test_capability_roundtrip(self, caps):
        data = build_identify_data(caps)
        assert parse_identify_data(data) == caps

    def test_standard_fields(self, caps):
        fields = identify_vendor_fields(build_identify_data(caps))
        assert fields["vid"] == f"{VENDOR_ID:#06x}"
        assert "BANDSLIM" in fields["serial"]
        assert "BandSlim" in fields["model"]

    def test_parse_rejects_short_data(self):
        with pytest.raises(NVMeError):
            parse_identify_data(b"\x00" * 100)

    def test_parse_rejects_missing_magic(self, caps):
        data = bytearray(build_identify_data(caps))
        data[3072:3076] = b"XXXX"
        with pytest.raises(NVMeError):
            parse_identify_data(bytes(data))


class TestAdminThroughDevice:
    def test_identify_over_the_wire(self, small_device):
        fields, caps = small_device.driver.identify()
        assert caps.write_piggyback_capacity == 35
        assert caps.transfer_piggyback_capacity == 56
        assert caps.packing_policy == "backfill"
        assert "BANDSLIM" in fields["serial"]

    def test_identify_moves_real_dma_traffic(self, small_device):
        from repro.pcie.metrics import TrafficCategory

        before = small_device.link.meter.bytes_for(TrafficCategory.DMA_D2H)
        small_device.driver.identify()
        moved = small_device.link.meter.bytes_for(TrafficCategory.DMA_D2H) - before
        assert moved == IDENTIFY_DATA_SIZE

    def test_get_features_reads_thresholds(self, small_device):
        d = small_device
        assert d.driver.get_feature(FeatureId.THRESHOLD1) == d.config.threshold1
        assert d.driver.get_feature(FeatureId.THRESHOLD2) == d.config.threshold2
        assert d.driver.get_feature(FeatureId.ALPHA_MILLI) == 1000

    def test_set_feature_updates_both_sides(self, small_device):
        d = small_device
        d.driver.set_feature(FeatureId.THRESHOLD1, 128)
        assert d.controller.config.threshold1 == 128
        assert d.driver.config.threshold1 == 128
        assert d.driver.planner.config.threshold1 == 128
        assert d.driver.get_feature(FeatureId.THRESHOLD1) == 128

    def test_set_alpha_changes_adaptive_decisions(self, small_device):
        """Runtime management actually changes transfer behavior."""
        from repro.core.transfer import TransferMethod

        d = small_device
        assert d.driver.planner.plan(150).method is TransferMethod.PRP
        d.driver.set_feature(FeatureId.ALPHA_MILLI, 2000)  # alpha = 2.0
        assert d.driver.planner.plan(150).method is TransferMethod.PIGGYBACK

    def test_set_invalid_alpha_rejected(self, small_device):
        with pytest.raises(NVMeError):
            small_device.driver.set_feature(FeatureId.ALPHA_MILLI, 0)

    def test_identify_after_set_reflects_new_thresholds(self, small_device):
        d = small_device
        d.driver.set_feature(FeatureId.THRESHOLD2, 56)
        _, caps = d.driver.identify()
        assert caps.threshold2 == 56

    def test_io_path_unaffected_by_admin(self, small_device):
        d = small_device
        d.driver.identify()
        d.driver.put(b"k", b"v" * 100)
        assert d.driver.get(b"k").value == b"v" * 100


class TestStatsLogPage:
    def test_log_page_roundtrip_pure(self):
        from repro.nvme.admin import STATS_LOG_FIELDS, build_stats_log, parse_stats_log

        values = {name: i * 7 for i, name in enumerate(STATS_LOG_FIELDS)}
        assert parse_stats_log(build_stats_log(values)) == values

    def test_log_page_over_the_wire(self, small_device):
        d = small_device
        d.driver.put(b"k1", b"v" * 5000)
        d.driver.flush()
        stats = d.driver.read_stats_log()
        assert stats["nand_page_programs"] == d.flash.page_programs
        assert stats["commands_processed"] >= 1
        assert stats["buffer_flushes"] >= 1

    def test_log_page_counts_grow(self, small_device):
        d = small_device
        before = d.driver.read_stats_log()
        for i in range(20):
            d.driver.put(f"k{i}".encode(), b"x" * 2048)
        after = d.driver.read_stats_log()
        assert after["commands_processed"] > before["commands_processed"]

    def test_unknown_log_id_rejected(self, small_device):
        from repro.errors import NVMeError
        from repro.nvme.admin import build_get_log_page_command
        from repro.nvme.prp import build_prp

        d = small_device
        buf = d.host_mem.alloc_buffer(4096)
        prp = build_prp(d.host_mem, buf)
        cmd = build_get_log_page_command(d.driver._cid(), prp.prp1, prp.prp2,
                                         log_id=0x55)
        cqe = d.driver._admin_roundtrip(cmd)
        assert not cqe.ok
