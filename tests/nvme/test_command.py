"""Tests for the 64-byte command encoding and piggyback field layout."""

import pytest

from repro.errors import CommandFieldError
from repro.nvme.command import (
    MAX_KEY_BYTES,
    NVMeCommand,
    WRITE_PIGGYBACK_RANGES,
    pack_transfer_piggyback,
    pack_write_piggyback,
    transfer_piggyback_capacity,
    unpack_transfer_piggyback,
    unpack_write_piggyback,
    write_piggyback_capacity,
)
from repro.nvme.opcodes import CommandFlags, KVOpcode


class TestRawLayout:
    def test_fresh_command_is_64_zero_bytes(self):
        cmd = NVMeCommand()
        assert len(cmd.raw) == 64
        assert bytes(cmd.raw) == b"\x00" * 64

    def test_rejects_wrong_size(self):
        with pytest.raises(CommandFieldError):
            NVMeCommand(b"\x00" * 63)

    def test_dword_roundtrip(self):
        cmd = NVMeCommand()
        cmd.set_dword(10, 0xDEADBEEF)
        assert cmd.get_dword(10) == 0xDEADBEEF

    def test_dword_little_endian(self):
        cmd = NVMeCommand()
        cmd.set_dword(1, 0x01020304)
        assert cmd.get_bytes(4, 4) == b"\x04\x03\x02\x01"

    def test_dword_index_bounds(self):
        cmd = NVMeCommand()
        with pytest.raises(CommandFieldError):
            cmd.get_dword(16)
        with pytest.raises(CommandFieldError):
            cmd.set_dword(-1, 0)

    def test_dword_value_bounds(self):
        with pytest.raises(CommandFieldError):
            NVMeCommand().set_dword(0, 2**32)

    def test_byte_range_bounds(self):
        cmd = NVMeCommand()
        with pytest.raises(CommandFieldError):
            cmd.set_bytes(60, b"12345")
        with pytest.raises(CommandFieldError):
            cmd.get_bytes(-1, 2)


class TestTypedFields:
    def test_opcode_roundtrip(self):
        cmd = NVMeCommand()
        cmd.opcode = KVOpcode.BANDSLIM_WRITE
        assert cmd.opcode is KVOpcode.BANDSLIM_WRITE
        assert cmd.raw[0] == 0x81

    def test_unknown_opcode_raises(self):
        cmd = NVMeCommand()
        cmd.raw[0] = 0x77
        with pytest.raises(CommandFieldError):
            _ = cmd.opcode

    def test_flags_roundtrip(self):
        cmd = NVMeCommand()
        cmd.flags = CommandFlags.PIGGYBACK | CommandFlags.FINAL
        assert cmd.flags & CommandFlags.PIGGYBACK
        assert cmd.flags & CommandFlags.FINAL
        assert not cmd.flags & CommandFlags.HYBRID

    def test_cid_roundtrip(self):
        cmd = NVMeCommand()
        cmd.cid = 0xBEEF
        assert cmd.cid == 0xBEEF

    def test_cid_bounds(self):
        with pytest.raises(CommandFieldError):
            NVMeCommand().cid = 2**16

    def test_nsid(self):
        cmd = NVMeCommand()
        cmd.nsid = 3
        assert cmd.nsid == 3

    def test_value_size_in_dword10(self):
        cmd = NVMeCommand()
        cmd.value_size = 2048
        assert cmd.get_dword(10) == 2048

    def test_prp_fields(self):
        cmd = NVMeCommand()
        cmd.prp1 = 0x1_0000_0000
        cmd.prp2 = 0x1_0000_1000
        assert cmd.prp1 == 0x1_0000_0000
        assert cmd.prp2 == 0x1_0000_1000


class TestKeyField:
    def test_short_key_roundtrip(self):
        cmd = NVMeCommand()
        cmd.key = b"usr1"
        assert cmd.key == b"usr1"
        assert cmd.key_size == 4

    def test_key_spans_both_dword_areas(self):
        """Keys >8 B use dwords 2–3 plus dwords 14–15 (Figure 6)."""
        cmd = NVMeCommand()
        key = bytes(range(1, 17))  # 16 bytes
        cmd.key = key
        assert cmd.key == key
        assert cmd.get_bytes(8, 8) == key[:8]
        assert cmd.get_bytes(56, 8) == key[8:]

    def test_key_size_field_at_byte_44(self):
        cmd = NVMeCommand()
        cmd.key = b"abcd"
        assert cmd.raw[44] == 4

    def test_key_rewrite_clears_old_bytes(self):
        cmd = NVMeCommand()
        cmd.key = bytes(range(1, 17))
        cmd.key = b"ab"
        assert cmd.key == b"ab"

    def test_key_length_bounds(self):
        cmd = NVMeCommand()
        with pytest.raises(CommandFieldError):
            cmd.key = b""
        with pytest.raises(CommandFieldError):
            cmd.key = b"x" * (MAX_KEY_BYTES + 1)


class TestPiggybackAreas:
    def test_write_capacity_is_35_bytes(self):
        """§3.2: dwords 4–9 (24) + dword11 spare (3) + dwords 12–13 (8)."""
        assert write_piggyback_capacity() == 35

    def test_transfer_capacity_is_56_bytes(self):
        """§3.2: everything except dwords 0–1."""
        assert transfer_piggyback_capacity() == 56

    def test_write_ranges_do_not_touch_reserved_fields(self):
        """Piggyback must avoid opcode/cid, nsid, key, valueSize, keySize."""
        protected = set(range(0, 8)) | set(range(8, 16)) | set(range(40, 45)) | set(
            range(56, 64)
        )
        for offset, length in WRITE_PIGGYBACK_RANGES:
            for b in range(offset, offset + length):
                assert b not in protected, f"byte {b} collides with a kept field"

    def test_write_piggyback_roundtrip_full(self):
        cmd = NVMeCommand()
        fragment = bytes(range(35))
        pack_write_piggyback(cmd, fragment)
        assert unpack_write_piggyback(cmd, 35) == fragment

    def test_write_piggyback_roundtrip_partial(self):
        cmd = NVMeCommand()
        pack_write_piggyback(cmd, b"hello")
        assert unpack_write_piggyback(cmd, 5) == b"hello"

    def test_write_piggyback_overflow_rejected(self):
        with pytest.raises(CommandFieldError):
            pack_write_piggyback(NVMeCommand(), bytes(36))

    def test_write_unpack_overflow_rejected(self):
        with pytest.raises(CommandFieldError):
            unpack_write_piggyback(NVMeCommand(), 36)

    def test_write_piggyback_preserves_key_and_sizes(self):
        cmd = NVMeCommand()
        cmd.key = b"k" * 16
        cmd.value_size = 999
        pack_write_piggyback(cmd, bytes(range(35)))
        assert cmd.key == b"k" * 16
        assert cmd.value_size == 999

    def test_transfer_piggyback_roundtrip(self):
        cmd = NVMeCommand()
        fragment = bytes(range(56))
        pack_transfer_piggyback(cmd, fragment)
        assert unpack_transfer_piggyback(cmd, 56) == fragment

    def test_transfer_piggyback_preserves_dword0_and_1(self):
        cmd = NVMeCommand()
        cmd.opcode = KVOpcode.BANDSLIM_TRANSFER
        cmd.cid = 42
        cmd.nsid = 1
        pack_transfer_piggyback(cmd, b"\xff" * 56)
        assert cmd.opcode is KVOpcode.BANDSLIM_TRANSFER
        assert cmd.cid == 42
        assert cmd.nsid == 1

    def test_transfer_overflow_rejected(self):
        with pytest.raises(CommandFieldError):
            pack_transfer_piggyback(NVMeCommand(), bytes(57))


class TestEquality:
    def test_equal_raw_equal_commands(self):
        a, b = NVMeCommand(), NVMeCommand()
        a.cid = b.cid = 9
        assert a == b

    def test_repr_mentions_opcode(self):
        cmd = NVMeCommand()
        cmd.opcode = KVOpcode.KV_STORE
        assert "KV_STORE" in repr(cmd)
