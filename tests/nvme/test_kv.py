"""Round-trip tests for KV command builders and parsers (driver ⇄ controller)."""

import pytest

from repro.errors import CommandFieldError, NVMeError
from repro.memory.host import HostMemory
from repro.nvme.kv import (
    TRANSFER_PIGGYBACK_CAPACITY,
    WRITE_PIGGYBACK_CAPACITY,
    build_delete_command,
    build_exist_command,
    build_list_command,
    build_retrieve_command,
    build_store_command,
    build_transfer_command,
    build_write_command,
    parse_retrieve_command,
    parse_store_command,
    parse_transfer_command,
    parse_write_command,
)
from repro.nvme.opcodes import KVOpcode
from repro.nvme.prp import build_prp


@pytest.fixture
def host_mem():
    return HostMemory()


def make_prp(host_mem, nbytes):
    return build_prp(host_mem, host_mem.stage_value(b"x" * nbytes))


class TestStoreCommand:
    def test_roundtrip(self, host_mem):
        prp = make_prp(host_mem, 2048)
        cmd = build_store_command(7, b"key1", 2048, prp)
        parsed = parse_store_command(cmd)
        assert parsed.cid == 7
        assert parsed.key == b"key1"
        assert parsed.value_size == 2048
        assert parsed.prp1 == prp.prp1

    def test_two_page_prp(self, host_mem):
        prp = make_prp(host_mem, 5000)
        cmd = build_store_command(1, b"k", 5000, prp)
        parsed = parse_store_command(cmd)
        assert parsed.prp2 == prp.prp2 != 0

    def test_rejects_zero_value_size(self, host_mem):
        prp = make_prp(host_mem, 16)
        with pytest.raises(NVMeError):
            build_store_command(1, b"k", 0, prp)

    def test_parse_rejects_wrong_opcode(self, host_mem):
        prp = make_prp(host_mem, 16)
        cmd = build_retrieve_command(1, b"k", 16, prp)
        with pytest.raises(NVMeError):
            parse_store_command(cmd)


class TestWriteCommand:
    def test_pure_inline_roundtrip(self):
        value = bytes(range(30))
        cmd = build_write_command(3, b"kk", 30, inline=value, final=True)
        parsed = parse_write_command(cmd)
        assert parsed.inline == value
        assert parsed.final
        assert not parsed.hybrid
        assert parsed.expected_trailing_bytes == 0

    def test_inline_with_trailing(self):
        inline = bytes(range(WRITE_PIGGYBACK_CAPACITY))
        cmd = build_write_command(3, b"kk", 100, inline=inline, final=False)
        parsed = parse_write_command(cmd)
        assert parsed.inline == inline
        assert parsed.expected_trailing_bytes == 100 - WRITE_PIGGYBACK_CAPACITY

    def test_inline_capacity_enforced(self):
        with pytest.raises(CommandFieldError):
            build_write_command(1, b"k", 100, inline=bytes(36))

    def test_hybrid_roundtrip(self, host_mem):
        prp = make_prp(host_mem, 4096)
        cmd = build_write_command(4, b"hy", 4096 + 32, prp=prp, final=False)
        parsed = parse_write_command(cmd)
        assert parsed.hybrid
        assert parsed.prp1 == prp.prp1
        assert parsed.inline == b""
        assert parsed.expected_trailing_bytes == 32

    def test_inline_and_prp_mutually_exclusive(self, host_mem):
        """The piggyback area overlays the PRP fields (Figure 6a)."""
        prp = make_prp(host_mem, 4096)
        with pytest.raises(NVMeError):
            build_write_command(1, b"k", 5000, inline=b"x", prp=prp)

    def test_rejects_zero_value(self):
        with pytest.raises(NVMeError):
            build_write_command(1, b"k", 0, inline=b"")

    def test_inline_truncated_to_value_size_on_parse(self):
        """A 10-byte value piggybacks 10 bytes, not 35."""
        cmd = build_write_command(1, b"k", 10, inline=b"0123456789", final=True)
        assert parse_write_command(cmd).inline == b"0123456789"


class TestTransferCommand:
    def test_roundtrip_full_fragment(self):
        fragment = bytes(range(TRANSFER_PIGGYBACK_CAPACITY))
        cmd = build_transfer_command(9, fragment, final=True)
        parsed = parse_transfer_command(cmd)
        assert parsed.cid == 9
        assert parsed.final
        assert parsed.area == fragment

    def test_partial_fragment_prefix(self):
        cmd = build_transfer_command(9, b"tail", final=True)
        parsed = parse_transfer_command(cmd)
        assert parsed.area[:4] == b"tail"

    def test_nonfinal(self):
        cmd = build_transfer_command(9, b"x" * 56, final=False)
        assert not parse_transfer_command(cmd).final

    def test_rejects_empty_fragment(self):
        with pytest.raises(NVMeError):
            build_transfer_command(1, b"", final=True)

    def test_rejects_oversized_fragment(self):
        with pytest.raises(CommandFieldError):
            build_transfer_command(1, bytes(57), final=True)

    def test_parse_rejects_wrong_opcode(self):
        cmd = build_write_command(1, b"k", 5, inline=b"xxxxx", final=True)
        with pytest.raises(NVMeError):
            parse_transfer_command(cmd)


class TestRetrieveCommand:
    def test_roundtrip(self, host_mem):
        prp = make_prp(host_mem, 4096)
        cmd = build_retrieve_command(5, b"key", 4096, prp)
        parsed = parse_retrieve_command(cmd)
        assert parsed.cid == 5
        assert parsed.key == b"key"
        assert parsed.buffer_size == 4096

    def test_rejects_zero_buffer(self, host_mem):
        prp = make_prp(host_mem, 16)
        with pytest.raises(NVMeError):
            build_retrieve_command(1, b"k", 0, prp)


class TestOtherCommands:
    def test_delete(self):
        cmd = build_delete_command(2, b"gone")
        assert cmd.opcode is KVOpcode.KV_DELETE
        assert cmd.key == b"gone"

    def test_exist(self):
        cmd = build_exist_command(2, b"here")
        assert cmd.opcode is KVOpcode.KV_EXIST
        assert cmd.key == b"here"

    def test_list(self, host_mem):
        prp = make_prp(host_mem, 4096)
        cmd = build_list_command(2, b"aa", 10, prp)
        assert cmd.opcode is KVOpcode.KV_LIST
        assert cmd.key == b"aa"
        assert cmd.value_size == 10

    def test_list_rejects_zero_max(self, host_mem):
        prp = make_prp(host_mem, 16)
        with pytest.raises(NVMeError):
            build_list_command(2, b"aa", 0, prp)


class TestWireOnlyContract:
    """The parser sees nothing but the 64 bytes the builder produced."""

    def test_serialization_boundary(self):
        original = build_write_command(11, b"wire", 20, inline=b"x" * 20, final=True)
        from repro.nvme.command import NVMeCommand

        rebuilt = NVMeCommand(bytes(original.raw))
        parsed = parse_write_command(rebuilt)
        assert parsed.key == b"wire"
        assert parsed.inline == b"x" * 20
