"""Tests for device-side iterators (ITER_OPEN/NEXT/CLOSE, after [22])."""

import pytest

from repro.errors import NVMeError
from repro.nvme.iterator import pack_batch, unpack_batch

from tests.conftest import small_config


@pytest.fixture
def store():
    from repro.host.api import KVStore

    return KVStore.open(small_config(memtable_flush_bytes=2048))


class TestBatchCodec:
    def test_roundtrip(self):
        pairs = [(b"k1", b"v1"), (b"key2", b"x" * 500)]
        blob, taken = pack_batch(pairs, 4096)
        assert taken == 2
        assert unpack_batch(blob) == pairs

    def test_capacity_respected(self):
        pairs = [(b"k", b"v" * 100)] * 10
        blob, taken = pack_batch(pairs, 250)
        assert taken == 2  # 4 + 2*(1+1+4+100) = 216; third would be 322
        assert len(blob) <= 250

    def test_empty_batch(self):
        blob, taken = pack_batch([], 4096)
        assert taken == 0
        assert unpack_batch(blob) == []

    def test_truncated_detected(self):
        blob, _ = pack_batch([(b"k", b"value")], 4096)
        with pytest.raises(NVMeError):
            unpack_batch(blob[:-1])


class TestDeviceIterator:
    def test_open_next_close_lifecycle(self, store):
        for k in (b"cc", b"aa", b"bb"):
            store.put(k, b"v:" + k)
        it = store.driver.iter_open(b"")
        pairs, exhausted = store.driver.iter_next(it)
        assert pairs == [(b"aa", b"v:aa"), (b"bb", b"v:bb"), (b"cc", b"v:cc")]
        assert exhausted
        store.driver.iter_close(it)

    def test_next_on_closed_iterator_fails(self, store):
        it = store.driver.iter_open(b"")
        store.driver.iter_close(it)
        with pytest.raises(NVMeError):
            store.driver.iter_next(it)

    def test_close_unknown_iterator_fails(self, store):
        with pytest.raises(NVMeError):
            store.driver.iter_close(999)

    def test_batching_across_multiple_next_calls(self, store):
        for i in range(100):
            store.put(f"k{i:04d}".encode(), bytes([i]) * 200)
        it = store.driver.iter_open(b"")
        collected = []
        for _ in range(1000):
            pairs, exhausted = store.driver.iter_next(it, batch_bytes=2048)
            collected.extend(pairs)
            if exhausted:
                break
        assert len(collected) == 100
        assert [k for k, _ in collected] == sorted(k for k, _ in collected)
        assert collected[5] == (b"k0005", bytes([5]) * 200)

    def test_oversized_record_reports_capacity(self, store):
        store.put(b"big", b"x" * 3000)
        it = store.driver.iter_open(b"")
        with pytest.raises(NVMeError, match="CAPACITY"):
            store.driver.iter_next(it, batch_bytes=1024)

    def test_start_key_respected(self, store):
        for k in (b"aa", b"bb", b"cc"):
            store.put(k, b"v")
        it = store.driver.iter_open(b"bb")
        pairs, _ = store.driver.iter_next(it)
        assert [k for k, _ in pairs] == [b"bb", b"cc"]


class TestDeviceScanAPI:
    def test_matches_host_scan(self, store):
        import random

        rng = random.Random(5)
        model = {}
        for i in range(60):
            key = f"k{rng.randrange(40):03d}".encode()
            value = bytes([i]) * rng.randrange(1, 400)
            store.put(key, value)
            model[key] = value
        host_view = list(store.scan())
        device_view = list(store.device_scan())
        assert device_view == host_view == sorted(model.items())

    def test_limit(self, store):
        for i in range(20):
            store.put(f"k{i:02d}".encode(), b"v")
        assert len(list(store.device_scan(limit=7))) == 7

    def test_device_scan_uses_far_fewer_commands(self, store):
        """The point of [22]'s interface: batch pulls, not GET-per-key."""
        from repro.pcie.metrics import TrafficCategory

        for i in range(50):
            store.put(f"k{i:02d}".encode(), b"v" * 20)
        meter = store.device.link.meter

        before = meter.transactions_for(TrafficCategory.SQ_ENTRY)
        list(store.scan())
        host_cmds = meter.transactions_for(TrafficCategory.SQ_ENTRY) - before

        before = meter.transactions_for(TrafficCategory.SQ_ENTRY)
        list(store.device_scan())
        device_cmds = meter.transactions_for(TrafficCategory.SQ_ENTRY) - before

        assert device_cmds < host_cmds / 5
