"""Tests for SGL descriptors and the 32 KiB kernel threshold (§2.5)."""

import pytest

from repro.errors import NVMeError
from repro.memory.host import HostMemory
from repro.nvme.sgl import (
    SGL_MIN_TRANSFER,
    SGLSegment,
    build_sgl,
    sgl_is_beneficial,
)
from repro.units import KIB, MEM_PAGE_SIZE


class TestSGLSegment:
    def test_rejects_nonpositive_length(self):
        with pytest.raises(NVMeError):
            SGLSegment(addr=0, length=0)

    def test_rejects_negative_addr(self):
        with pytest.raises(NVMeError):
            SGLSegment(addr=-1, length=10)


class TestBuildSGL:
    def test_byte_exact_total(self):
        """SGL describes the value's true size — no page padding."""
        mem = HostMemory()
        buf = mem.stage_value(b"v" * 100)
        sgl = build_sgl(buf)
        assert sgl.total_length == 100

    def test_multipage_segments(self):
        mem = HostMemory()
        buf = mem.stage_value(b"v" * (MEM_PAGE_SIZE + 10))
        sgl = build_sgl(buf)
        assert len(sgl.segments) == 2
        assert sgl.segments[0].length == MEM_PAGE_SIZE
        assert sgl.segments[1].length == 10

    def test_descriptor_overhead(self):
        mem = HostMemory()
        buf = mem.stage_value(b"v" * (2 * MEM_PAGE_SIZE + 1))
        assert build_sgl(buf).descriptor_bytes == 3 * 16

    def test_rejects_empty(self):
        mem = HostMemory()
        with pytest.raises(NVMeError):
            build_sgl(mem.alloc_buffer(0))


class TestKernelThreshold:
    def test_threshold_is_32_kib(self):
        """Linux's sgl_threshold — the paper's reason to avoid SGL."""
        assert SGL_MIN_TRANSFER == 32 * KIB

    def test_kv_sized_values_never_use_sgl(self):
        for size in (8, 32, 100, 2048, 4096, 16 * KIB):
            assert not sgl_is_beneficial(size)

    def test_large_transfers_do(self):
        assert sgl_is_beneficial(32 * KIB)
        assert sgl_is_beneficial(1 << 20)

    def test_custom_threshold(self):
        assert sgl_is_beneficial(100, threshold=64)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            sgl_is_beneficial(-1)
