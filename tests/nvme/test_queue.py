"""Tests for submission/completion queues: FIFO order, depth, doorbells."""

import pytest

from repro.errors import NVMeError, QueueFullError
from repro.nvme.command import NVMeCommand
from repro.nvme.opcodes import KVOpcode, StatusCode
from repro.nvme.queue import CompletionQueue, NVMeCompletion, SubmissionQueue


def cmd_with_cid(cid: int) -> NVMeCommand:
    c = NVMeCommand()
    c.opcode = KVOpcode.KV_EXIST
    c.cid = cid
    return c


class TestSubmissionQueue:
    def test_fifo_order(self):
        """FIFO is load-bearing for fragment reassembly (§3.3.1)."""
        sq = SubmissionQueue(depth=4)
        for cid in (1, 2, 3):
            sq.submit(cmd_with_cid(cid))
        assert [sq.fetch().cid for _ in range(3)] == [1, 2, 3]

    def test_depth_enforced(self):
        sq = SubmissionQueue(depth=2)
        sq.submit(cmd_with_cid(1))
        sq.submit(cmd_with_cid(2))
        with pytest.raises(QueueFullError):
            sq.submit(cmd_with_cid(3))

    def test_wraps_around(self):
        sq = SubmissionQueue(depth=2)
        for cid in range(10):
            sq.submit(cmd_with_cid(cid))
            assert sq.fetch().cid == cid

    def test_fetch_empty_raises(self):
        with pytest.raises(NVMeError):
            SubmissionQueue(depth=2).fetch()

    def test_doorbell_counted_per_submit(self):
        sq = SubmissionQueue(depth=8)
        sq.submit(cmd_with_cid(1))
        sq.submit(cmd_with_cid(2))
        assert sq.doorbell_rings == 2

    def test_occupancy(self):
        sq = SubmissionQueue(depth=4)
        assert sq.is_empty
        sq.submit(cmd_with_cid(1))
        assert sq.occupancy == 1
        sq.fetch()
        assert sq.is_empty

    def test_rejects_zero_depth(self):
        with pytest.raises(NVMeError):
            SubmissionQueue(depth=0)


class TestCompletionQueue:
    def test_post_reap_roundtrip(self):
        cq = CompletionQueue(depth=4)
        cq.post(NVMeCompletion(cid=5, status=StatusCode.SUCCESS, result=99))
        cqe = cq.reap()
        assert cqe.cid == 5
        assert cqe.ok
        assert cqe.result == 99

    def test_error_status_not_ok(self):
        cqe = NVMeCompletion(cid=1, status=StatusCode.KEY_NOT_FOUND)
        assert not cqe.ok

    def test_fifo(self):
        cq = CompletionQueue(depth=4)
        cq.post(NVMeCompletion(cid=1))
        cq.post(NVMeCompletion(cid=2))
        assert cq.reap().cid == 1
        assert cq.reap().cid == 2

    def test_full_rejected(self):
        cq = CompletionQueue(depth=1)
        cq.post(NVMeCompletion(cid=1))
        with pytest.raises(QueueFullError):
            cq.post(NVMeCompletion(cid=2))

    def test_reap_empty_raises(self):
        with pytest.raises(NVMeError):
            CompletionQueue(depth=2).reap()


class TestOpcodes:
    def test_vendor_range(self):
        assert KVOpcode.BANDSLIM_WRITE.is_vendor
        assert KVOpcode.BANDSLIM_TRANSFER.is_vendor
        assert not KVOpcode.KV_STORE.is_vendor

    def test_write_classification(self):
        assert KVOpcode.KV_STORE.is_write_class
        assert KVOpcode.BANDSLIM_WRITE.is_write_class
        assert not KVOpcode.KV_RETRIEVE.is_write_class
        assert not KVOpcode.KV_LIST.is_write_class
