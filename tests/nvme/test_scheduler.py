"""CompletionScheduler: finish-time ordering for the pipelined driver."""

import pytest

from repro.errors import NVMeError
from repro.nvme.opcodes import StatusCode
from repro.nvme.queue import CompletionScheduler, NVMeCompletion


def cqe(cid: int, status: StatusCode = StatusCode.SUCCESS) -> NVMeCompletion:
    return NVMeCompletion(cid=cid, status=status)


class TestOrdering:
    def test_pops_in_finish_order_not_schedule_order(self):
        sched = CompletionScheduler()
        sched.schedule(cqe(1), 300.0)
        sched.schedule(cqe(2), 100.0)
        sched.schedule(cqe(3), 200.0)
        order = [sched.pop_earliest() for _ in range(3)]
        assert [(c.cid, t) for c, t in order] == [
            (2, 100.0),
            (3, 200.0),
            (1, 300.0),
        ]

    def test_equal_finish_times_break_by_schedule_order(self):
        """Same-cycle completions arbitrate FIFO, like hardware."""
        sched = CompletionScheduler()
        for cid in (7, 8, 9):
            sched.schedule(cqe(cid), 50.0)
        assert [sched.pop_earliest()[0].cid for _ in range(3)] == [7, 8, 9]

    def test_interleaved_schedule_and_pop(self):
        sched = CompletionScheduler()
        sched.schedule(cqe(1), 400.0)
        sched.schedule(cqe(2), 100.0)
        assert sched.pop_earliest()[0].cid == 2
        sched.schedule(cqe(3), 200.0)  # arrives after a pop, finishes first
        assert sched.pop_earliest()[0].cid == 3
        assert sched.pop_earliest()[0].cid == 1

    def test_status_rides_through_unchanged(self):
        sched = CompletionScheduler()
        sched.schedule(cqe(5, StatusCode.MEDIA_ERROR), 10.0)
        popped, _ = sched.pop_earliest()
        assert popped.status is StatusCode.MEDIA_ERROR


class TestAccounting:
    def test_outstanding_and_len_track_the_heap(self):
        sched = CompletionScheduler()
        assert sched.outstanding == 0 and len(sched) == 0
        sched.schedule(cqe(1), 1.0)
        sched.schedule(cqe(2), 2.0)
        assert sched.outstanding == 2 and len(sched) == 2
        sched.pop_earliest()
        assert sched.outstanding == 1

    def test_earliest_finish_us_peeks_without_popping(self):
        sched = CompletionScheduler()
        sched.schedule(cqe(1), 30.0)
        sched.schedule(cqe(2), 20.0)
        assert sched.earliest_finish_us == 20.0
        assert sched.outstanding == 2

    def test_empty_scheduler_raises_on_pop_and_peek(self):
        sched = CompletionScheduler()
        with pytest.raises(NVMeError):
            sched.pop_earliest()
        with pytest.raises(NVMeError):
            sched.earliest_finish_us
