"""Wire-protocol framing tests: both parsers, both directions."""

import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    Request,
    RequestParser,
    ResponseParser,
)


def parse_one(data: bytes, **kwargs) -> Request:
    parser = RequestParser(**kwargs)
    requests = parser.feed(data)
    assert len(requests) == 1
    return requests[0]


class TestRequestParser:
    def test_ping(self):
        request = parse_one(b"PING\r\n")
        assert request.op == "PING" and request.error is None

    def test_set_with_binary_payload(self):
        # Value bytes may contain CRLF: framing is by declared length.
        request = parse_one(b"SET k1 6\r\nab\r\ncd\r\n")
        assert request.op == "SET"
        assert request.key == b"k1"
        assert request.value == b"ab\r\ncd"
        assert request.arrival_us is None

    def test_set_with_arrival_stamp(self):
        request = parse_one(b"SET k1 3 1234.5\r\nxyz\r\n")
        assert request.arrival_us == 1234.5

    def test_get_del_scan(self):
        parser = RequestParser()
        requests = parser.feed(b"GET foo\r\nDEL bar 9.0\r\nSCAN a 10 2.5\r\n")
        assert [r.op for r in requests] == ["GET", "DEL", "SCAN"]
        assert requests[0].arrival_us is None
        assert requests[1].arrival_us == 9.0
        assert requests[2].limit == 10 and requests[2].arrival_us == 2.5
        assert all(r.error is None for r in requests)

    def test_byte_at_a_time_fragmentation(self):
        wire = b"SET key 4\r\nv\x00v\xff\r\nGET key 7.0\r\n"
        parser = RequestParser()
        requests = []
        for i in range(len(wire)):
            requests.extend(parser.feed(wire[i:i + 1]))
        assert [r.op for r in requests] == ["SET", "GET"]
        assert requests[0].value == b"v\x00v\xff"
        assert parser.fatal is None

    def test_empty_lines_skipped(self):
        assert parse_one(b"\r\n\r\nPING\r\n").op == "PING"

    def test_bad_key_rejected_in_order(self):
        long_key = b"x" * (protocol.MAX_KEY_BYTES + 1)
        request = parse_one(b"GET %s\r\n" % long_key)
        assert request.error is not None

    def test_nonprintable_key_rejected(self):
        parser = RequestParser()
        requests = parser.feed(b"DEL k\x01y\r\n")
        assert requests[0].error is not None

    def test_unknown_command_not_fatal(self):
        parser = RequestParser()
        requests = parser.feed(b"BOGUS\r\nPING\r\n")
        assert requests[0].error is not None
        assert requests[1].op == "PING" and requests[1].error is None
        assert parser.fatal is None

    def test_oversized_line_fatal(self):
        parser = RequestParser()
        requests = parser.feed(b"G" * (protocol.MAX_LINE_BYTES + 2))
        assert requests and requests[-1].error is not None
        assert parser.fatal is not None
        assert parser.feed(b"PING\r\n") == []  # stream is dead

    def test_oversized_value_length_fatal(self):
        parser = RequestParser(max_value_bytes=64)
        requests = parser.feed(b"SET k 65\r\n")
        assert requests[0].error is not None
        assert parser.fatal is not None

    def test_bad_value_trailer_fatal(self):
        parser = RequestParser()
        requests = parser.feed(b"SET k 2\r\nabXX")
        assert requests[0].error is not None
        assert parser.fatal is not None

    def test_negative_arrival_rejected(self):
        request = parse_one(b"GET k -5.0\r\n")
        assert request.error is not None


class TestResponseParser:
    def roundtrip(self, wire: bytes, chunk: int = 0):
        parser = ResponseParser()
        if chunk:
            out = []
            for i in range(0, len(wire), chunk):
                out.extend(parser.feed(wire[i:i + chunk]))
            return out
        return parser.feed(wire)

    def test_simple_kinds(self):
        wire = (protocol.encode_stored(10.0, 5.0)
                + protocol.encode_deleted(1.0, 1.0)
                + protocol.encode_not_found(2.0, 2.0)
                + protocol.PONG + protocol.BYE
                + protocol.encode_busy(123.0)
                + protocol.encode_error("PROTO", "bad key"))
        kinds = [r.kind for r in self.roundtrip(wire)]
        assert kinds == ["STORED", "DELETED", "NOT_FOUND", "PONG", "BYE",
                         "SERVER_BUSY", "ERR"]

    def test_value_roundtrip_with_crlf_payload(self):
        wire = protocol.encode_value(b"a\r\nb", 9.5, 4.5)
        (response,) = self.roundtrip(wire, chunk=1)
        assert response.kind == "VALUE"
        assert response.value == b"a\r\nb"
        assert response.latency_us == 9.5
        assert response.service_us == 4.5

    def test_range_roundtrip(self):
        pairs = [(b"k1", b"v1"), (b"k2", b"\r\n")]
        wire = protocol.encode_range(pairs, 7.0, 3.0)
        (response,) = self.roundtrip(wire, chunk=3)
        assert response.kind == "RANGE"
        assert response.pairs == pairs

    def test_stats_roundtrip(self):
        wire = protocol.encode_stats({"serve.requests": 4.0, "a.b": 1.5})
        (response,) = self.roundtrip(wire)
        assert response.kind == "STATS"
        assert response.stats == {"serve.requests": 4.0, "a.b": 1.5}

    def test_empty_stats(self):
        (response,) = self.roundtrip(protocol.encode_stats({}))
        assert response.kind == "STATS" and response.stats == {}

    def test_err_detail_preserves_message(self):
        (response,) = self.roundtrip(protocol.encode_error("PROTO", "bad x y"))
        assert response.detail == "PROTO bad x y"

    def test_pipelined_mixed_stream(self):
        wire = (protocol.encode_stored(1.0, 1.0)
                + protocol.encode_value(b"abc", 2.0, 2.0)
                + protocol.encode_range([(b"k", b"v")], 3.0, 3.0)
                + protocol.PONG)
        for chunk in (1, 2, 7, 0):
            kinds = [r.kind for r in self.roundtrip(wire, chunk=chunk)]
            assert kinds == ["STORED", "VALUE", "RANGE", "PONG"]

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            ResponseParser().feed(b"WHAT 1 2\r\n")

    def test_range_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            ResponseParser().feed(b"RANGE 2 1.0 1.0\r\nEND\r\n")


class TestRequestEncoders:
    def test_encoders_parse_back(self):
        wire = (protocol.encode_set_request(b"k", b"val", 5.0)
                + protocol.encode_get_request(b"k")
                + protocol.encode_del_request(b"k", 7.5)
                + protocol.encode_scan_request(b"k", 3, 9.0))
        requests = RequestParser().feed(wire)
        assert [r.op for r in requests] == ["SET", "GET", "DEL", "SCAN"]
        assert requests[0].value == b"val" and requests[0].arrival_us == 5.0
        assert requests[1].arrival_us is None
        assert requests[2].arrival_us == 7.5
        assert requests[3].limit == 3
        assert all(r.error is None for r in requests)
