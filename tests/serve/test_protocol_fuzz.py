"""Property-based fuzzing of the wire-protocol parsers.

Invariants (the contract the chaos net clients rely on):

* ``RequestParser.feed`` NEVER raises, no matter what bytes arrive or
  how they are fragmented — malformed input surfaces as in-order
  ``Request(error=...)`` objects, never as an exception that would kill
  the reader task.
* ``ResponseParser.feed`` raises at most ``ValueError`` (the client
  treats that as a broken connection); any other exception type is a bug.
* Both parsers are fragmentation-invariant: splitting a byte stream at
  arbitrary points yields exactly the same parse as one big feed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import protocol

_FUZZ = settings(max_examples=200, deadline=None)

#: Bias the corpus towards protocol-shaped junk as well as raw noise.
_wire_bytes = st.one_of(
    st.binary(max_size=512),
    st.text(
        alphabet="GETSPUDLCANQ 0123456789kvx\r\n-.", max_size=200
    ).map(lambda s: s.encode()),
    st.sampled_from([
        b"SET k 999999999999999999\r\n",
        b"SET k -1\r\n",
        b"GET " + b"x" * 300 + b"\r\n",
        b"SET k 5\r\nab",          # truncated payload
        b"\x00\xff\xfe" * 40,
        b"VALUE 10 1.0 1.0\r\n",   # response frame fed to request parser
        b"\r\n\r\n\r\n",
        b" \r\n",
    ]),
)


def _fragments(data: bytes, cuts: list[int]):
    """Split ``data`` at the (normalised) cut points."""
    points = sorted({c % (len(data) + 1) for c in cuts})
    out, prev = [], 0
    for p in points:
        out.append(data[prev:p])
        prev = p
    out.append(data[prev:])
    return out


class TestRequestParserNeverRaises:
    @_FUZZ
    @given(chunks=st.lists(_wire_bytes, max_size=8))
    def test_arbitrary_chunks(self, chunks):
        parser = protocol.RequestParser(max_value_bytes=1 << 16)
        for chunk in chunks:
            for request in parser.feed(chunk):
                assert isinstance(request, protocol.Request)
                # Every parse is either a known op or carries an error.
                assert (
                    request.error is not None
                    or request.op in protocol.DEVICE_OPS | protocol.INLINE_OPS
                )
            if parser.fatal is not None:
                # After a fatal framing error the parser stays quiet.
                assert parser.feed(b"PING\r\n") == []

    @_FUZZ
    @given(data=_wire_bytes, cuts=st.lists(st.integers(0, 1 << 30), max_size=6))
    def test_fragmentation_invariance(self, data, cuts):
        whole = protocol.RequestParser(max_value_bytes=1 << 16)
        split = protocol.RequestParser(max_value_bytes=1 << 16)
        expected = whole.feed(data)
        got = []
        for frag in _fragments(data, cuts):
            got.extend(split.feed(frag))
        assert got == expected
        assert (whole.fatal is None) == (split.fatal is None)


class TestValidStreamUnderFragmentation:
    @_FUZZ
    @given(
        keys=st.lists(
            # Printable ASCII without space: exactly what _valid_key allows.
            st.lists(
                st.integers(0x21, 0x7E),
                min_size=1,
                max_size=protocol.MAX_KEY_BYTES,
            ).map(bytes),
            min_size=1,
            max_size=6,
        ),
        values=st.lists(st.binary(max_size=64), min_size=1, max_size=6),
        cuts=st.lists(st.integers(0, 1 << 30), max_size=8),
    )
    def test_requests_round_trip(self, keys, values, cuts):
        wire = b""
        expected_ops = []
        for i, key in enumerate(keys):
            value = values[i % len(values)]
            wire += protocol.encode_set_request(key, value, float(i))
            wire += protocol.encode_get_request(key)
            expected_ops.extend(["SET", "GET"])
        parser = protocol.RequestParser(max_value_bytes=1 << 16)
        got = []
        for frag in _fragments(wire, cuts):
            got.extend(parser.feed(frag))
        assert [r.op for r in got] == expected_ops
        assert all(r.error is None for r in got)
        assert parser.fatal is None


class TestResponseParserRaisesOnlyValueError:
    @_FUZZ
    @given(chunks=st.lists(_wire_bytes, max_size=8))
    def test_arbitrary_chunks(self, chunks):
        parser = protocol.ResponseParser()
        for chunk in chunks:
            try:
                for response in parser.feed(chunk):
                    assert isinstance(response, protocol.Response)
            except ValueError:
                return  # broken stream: the client hangs up here

    @_FUZZ
    @given(cuts=st.lists(st.integers(0, 1 << 30), max_size=8))
    def test_responses_round_trip(self, cuts):
        wire = (
            protocol.encode_stored(12.5, 3.25)
            + protocol.encode_value(b"v" * 33, 7.0, 2.0)
            + protocol.encode_not_found(1.0, 1.0)
            + protocol.encode_busy(1234.5)
            + protocol.encode_health("degraded", 1, 2, "open")
            + protocol.encode_error("BACKEND", "boom")
            + protocol.PONG
        )
        parser = protocol.ResponseParser()
        got = []
        for frag in _fragments(wire, cuts):
            got.extend(parser.feed(frag))
        assert [r.kind for r in got] == [
            "STORED", "VALUE", "NOT_FOUND", "SERVER_BUSY",
            "HEALTH", "ERR", "PONG",
        ]
        assert got[1].value == b"v" * 33
