"""Graceful-shutdown coverage: drain semantics, idempotence, SIGTERM.

``stop()`` must (a) complete every device op admitted before the drain
began, (b) answer anything dispatched after it with an explicit
``ERR SHUTDOWN`` rather than stranding a future, (c) refuse new
connections, and (d) be safely callable more than once. The subprocess
test exercises the same path through ``python -m repro serve`` +
``SIGTERM``.
"""

import asyncio
import os
import signal
import subprocess
import sys

from repro.serve import protocol
from repro.serve.backend import StoreBackend
from repro.serve.server import KVServer, _Connection

from tests.serve.test_server import _boot


def _request(index: int) -> protocol.Request:
    return protocol.Request(
        op="SET", key=b"k%d" % index, value=b"v", arrival_us=0.0
    )


class TestGracefulDrain:
    def test_stop_completes_admitted_work(self):
        async def _run():
            server = KVServer(StoreBackend.build("baseline"))
            await server.start()
            conn = _Connection(
                writer=None, max_value_bytes=server.backend.max_value_bytes
            )
            futures = []
            for i in range(3):
                server._dispatch(_request(i), conn)
                futures.append(conn.responses.get_nowait())
            # stop() queues the shutdown sentinel *behind* the three
            # admitted ops, so all of them complete before the worker
            # exits — a drain, not an abort.
            await server.stop()
            for future in futures:
                assert future.result().startswith(b"STORED")
            assert server.stats()["serve.ops.set"] == 3.0

        asyncio.run(_run())

    def test_dispatch_after_drain_gets_err_shutdown(self):
        async def _run():
            server = KVServer(StoreBackend.build("baseline"))
            await server.start()
            await server.stop()
            assert server.draining
            conn = _Connection(
                writer=None, max_value_bytes=server.backend.max_value_bytes
            )
            server._dispatch(_request(0), conn)
            payload = conn.responses.get_nowait().result()
            assert payload == protocol.encode_error(
                "SHUTDOWN", "server draining"
            )
            assert server.stats()["serve.shutdown_rejects"] == 1.0
            # Inline ops still answer during the drain.
            server._dispatch(
                protocol.Request(op="PING", key=b"", arrival_us=None), conn
            )
            assert conn.responses.get_nowait().result() == protocol.PONG

        asyncio.run(_run())

    def test_stop_is_idempotent_and_refuses_new_connections(self):
        async def _run():
            server, host, port = await _boot()
            await server.stop()
            await server.stop()  # second call is a no-op, not an error
            try:
                await asyncio.open_connection(host, port)
            except OSError:
                pass
            else:
                raise AssertionError("listener still accepting after stop()")

        asyncio.run(_run())


class TestSigtermDrain:
    def test_serve_process_drains_on_sigterm(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--config", "baseline", "--port", "0"],
            cwd="/root/repo",
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "serving baseline" in banner
            proc.stdout.readline()  # protocol line
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "drained; bye" in out
