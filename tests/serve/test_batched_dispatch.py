"""Batched dispatch: serial equivalence, outcome equivalence, stats.

Three layers of guarantees:

* **Serial freeze** — with ``dispatch_batch=1, server_qd=1`` (explicit
  or default) the server must be byte-identical to the pre-batching
  implementation; frozen report goldens pin the numbers.
* **Outcome equivalence** — ``StoreBackend.execute_batch`` over a random
  mixed SET/GET/DEL stream must return the same kinds and values as
  op-at-a-time ``execute`` against an identically-seeded store.
* **Batched serving** — the batched worker completes everything a serial
  server completes, stays deterministic, keeps low-load p50 close to
  serial, and beats serial throughput once the device has parallelism.
"""

import random

import pytest

from repro.errors import ConfigError
from repro.loadgen.runner import run_loadtest
from repro.serve import protocol
from repro.serve.backend import StoreBackend
from repro.serve.server import KVServer, ServerSettings


def loadtest(preset="backfill", **overrides):
    kwargs = dict(rps=8_000.0, requests=300, conns=1, seed=11, num_keys=100,
                  value_size=256)
    kwargs.update(overrides)
    return run_loadtest(preset, **kwargs)


def batched_settings(dispatch_batch=16, server_qd=8, **extra):
    return ServerSettings(
        dispatch_batch=dispatch_batch, server_qd=server_qd, **extra
    )


class TestSerialFreeze:
    """The serial path is frozen: goldens captured before the batched
    dispatcher landed must keep reproducing byte-for-byte."""

    def test_golden_backfill(self):
        row = loadtest().to_dict()
        assert row["completed"] == 300
        assert row["busy_rejected"] == 0
        assert row["p50_us"] == 27.24
        assert row["p99_us"] == 53.817
        assert row["p999_us"] == 65.666
        assert row["max_us"] == 65.666
        assert row["span_us"] == 36067.173
        assert row["achieved_rps"] == 8317.813

    def test_golden_baseline_with_deletes(self):
        row = loadtest("baseline", rps=6_000.0, requests=250, seed=3,
                       num_keys=80, value_size=128,
                       delete_fraction=0.1).to_dict()
        assert row["completed"] == 250
        assert row["not_found"] == 22
        assert row["p50_us"] == 105.732
        assert row["p99_us"] == 608.874
        assert row["p999_us"] == 698.936
        assert row["max_us"] == 698.936
        assert row["span_us"] == 43065.086
        assert row["achieved_rps"] == 5805.167

    def test_golden_sharded_array(self):
        row = loadtest(rps=8_000.0, requests=200, seed=5, num_keys=80,
                       value_size=200, array_shards=3).to_dict()
        assert row["completed"] == 200
        assert row["p50_us"] == 23.396
        assert row["p99_us"] == 57.125
        assert row["p999_us"] == 63.74
        assert row["max_us"] == 63.74
        assert row["span_us"] == 26832.004
        assert row["achieved_rps"] == 7453.785

    def test_explicit_serial_settings_match_default(self):
        explicit = loadtest(
            settings=ServerSettings(dispatch_batch=1, server_qd=1)
        )
        assert explicit.to_dict() == loadtest().to_dict()

    def test_serial_mode_selects_serial_worker(self):
        server = KVServer(StoreBackend.build("baseline"))
        assert server._batched is False

    def test_either_knob_selects_batched_worker(self):
        backend = StoreBackend.build("baseline")
        assert KVServer(backend, ServerSettings(dispatch_batch=4))._batched
        assert KVServer(backend, ServerSettings(server_qd=4))._batched

    @pytest.mark.parametrize("knobs", [
        {"dispatch_batch": 0}, {"server_qd": 0}, {"dispatch_batch": -3},
    ])
    def test_invalid_knobs_rejected(self, knobs):
        with pytest.raises(ConfigError):
            KVServer(StoreBackend.build("baseline"), ServerSettings(**knobs))


def _random_requests(rng, count, key_space=40):
    """Mixed SET/GET/DEL stream with repeats, misses and a few SCANs."""
    requests = []
    for i in range(count):
        key = b"bk%03d" % rng.randrange(key_space)
        roll = rng.random()
        if roll < 0.45:
            value = bytes([rng.randrange(256)]) * rng.randrange(1, 128)
            requests.append(protocol.Request(op="SET", key=key, value=value))
        elif roll < 0.85:
            requests.append(protocol.Request(op="GET", key=key))
        elif roll < 0.97:
            requests.append(protocol.Request(op="DEL", key=key))
        else:
            requests.append(protocol.Request(op="SCAN", key=key, limit=4))
    return requests


def _outcome(result):
    return (result.kind, result.value, result.pairs, result.detail)


class TestOutcomeEquivalence:
    """execute_batch == execute, op by op, on identically-seeded stores."""

    @pytest.mark.parametrize("shards", [1, 3])
    def test_random_mixed_stream(self, shards):
        rng = random.Random(1234 + shards)
        requests = _random_requests(rng, 300)
        serial = StoreBackend.build("backfill", array_shards=shards)
        batched = StoreBackend.build("backfill", array_shards=shards)
        serial_out = [serial.execute(r) for r in requests]
        batched_out = []
        pos = 0
        while pos < len(requests):
            chunk = rng.randrange(1, 48)
            batched_out.extend(
                batched.execute_batch(requests[pos:pos + chunk],
                                      queue_depth=16)
            )
            pos += chunk
        assert len(batched_out) == len(serial_out)
        for got, want in zip(batched_out, serial_out):
            assert _outcome(got) == _outcome(want)

    def test_conflicting_keys_in_one_batch(self):
        # SET/GET/SET/DEL/GET on the same key inside one batch must
        # observe program order (the window cutter forces it).
        backend = StoreBackend.build("baseline")
        requests = [
            protocol.Request(op="SET", key=b"k", value=b"one"),
            protocol.Request(op="GET", key=b"k"),
            protocol.Request(op="SET", key=b"k", value=b"two"),
            protocol.Request(op="GET", key=b"k"),
            protocol.Request(op="DEL", key=b"k"),
            protocol.Request(op="GET", key=b"k"),
        ]
        kinds = [r.kind for r in backend.execute_batch(requests, 8)]
        assert kinds == ["STORED", "VALUE", "STORED", "VALUE", "DELETED",
                         "NOT_FOUND"]
        values = [r.value for r in backend.execute_batch(
            [protocol.Request(op="SET", key=b"k", value=b"three"),
             protocol.Request(op="GET", key=b"k")], 8)]
        assert values[1] == b"three"

    def test_scan_acts_as_barrier(self):
        backend = StoreBackend.build("baseline")
        requests = [
            protocol.Request(op="SET", key=b"s1", value=b"a"),
            protocol.Request(op="SET", key=b"s2", value=b"b"),
            protocol.Request(op="SCAN", key=b"s1", limit=8),
        ]
        results = backend.execute_batch(requests, 8)
        assert results[2].kind == "RANGE"
        assert results[2].pairs == [(b"s1", b"a"), (b"s2", b"b")]


class TestBatchedServing:
    def test_completes_everything_and_matches_serial_counts(self):
        serial = loadtest(array_shards=2, delete_fraction=0.05)
        batched = loadtest(array_shards=2, delete_fraction=0.05,
                           settings=batched_settings())
        assert batched.completed == batched.requests
        assert batched.errors == 0
        assert batched.protocol_errors == 0
        assert batched.completed == serial.completed
        assert batched.not_found == serial.not_found

    def test_deterministic_at_fixed_seed(self):
        kwargs = dict(rps=120_000.0, requests=400, seed=9, array_shards=4,
                      settings=batched_settings(32, 16))
        assert loadtest(**kwargs).to_dict() == loadtest(**kwargs).to_dict()

    def test_low_load_p50_not_worse_than_serial(self):
        # Sparse arrivals degenerate to singleton sub-batches (serial
        # service times); Poisson clumps may *overlap* on the QD slots,
        # so batched p50 can only sit at or below serial + 10%.
        serial = loadtest(rps=3_000.0, requests=400)
        batched = loadtest(rps=3_000.0, requests=400,
                           settings=batched_settings(32, 16))
        assert batched.p50_us <= 1.10 * serial.p50_us

    def test_overload_throughput_beats_serial_with_parallelism(self):
        kwargs = dict(rps=200_000.0, requests=600, seed=11, num_keys=100,
                      array_shards=4)
        serial = loadtest(**kwargs)
        batched = loadtest(settings=batched_settings(32, 16), **kwargs)
        assert batched.achieved_rps > 2.0 * serial.achieved_rps

    def test_server_stats_expose_queueing_model(self):
        report = loadtest(array_shards=2, settings=batched_settings(),
                          include_server_stats=True)
        stats = report.server_stats
        assert stats, "server_stats must not be empty when requested"
        assert stats["serve.dispatch_batch"] == 16.0
        assert stats["serve.server_qd"] == 8.0
        assert stats["serve.shards"] == 2.0
        assert stats["serve.inflight_peak"] >= 1.0
        assert stats["serve.breaker_open"] == 0.0
        assert stats["serve.batch_size.count"] > 0
        for shard in range(2):
            assert f"serve.shard{shard}.queue_depth" in stats
            assert f"serve.shard{shard}.free_us" in stats

    def test_serial_server_stats_populated_too(self):
        stats = loadtest(include_server_stats=True).server_stats
        assert stats["serve.inflight_peak"] >= 1.0
        assert "serve.breaker_open" in stats
        assert "serve.queue_depth" in stats


class TestDispatchProtocol:
    def test_doorbell_parses_as_hint(self):
        parser = protocol.RequestParser()
        requests = parser.feed(protocol.DISPATCH_REQUEST)
        assert len(requests) == 1
        assert requests[0].op == "DISPATCH"
        assert requests[0].error is None

    def test_doorbell_with_arguments_is_an_error(self):
        parser = protocol.RequestParser()
        requests = parser.feed(b"DISPATCH now\r\n")
        assert requests[0].error is not None
