"""End-to-end server tests over real asyncio TCP connections.

No pytest-asyncio dependency: each test drives its own event loop with
``asyncio.run``.
"""

import asyncio

from repro.serve import protocol
from repro.serve.backend import StoreBackend
from repro.serve.server import KVServer, ServerSettings


async def _boot(preset="baseline", settings=None):
    backend = StoreBackend.build(preset)
    server = KVServer(backend, settings)
    host, port = await server.start()
    return server, host, port


async def _exchange(host, port, wire: bytes, expect: int):
    """Send ``wire``, read until ``expect`` responses are parsed."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(wire)
    await writer.drain()
    parser = protocol.ResponseParser()
    responses = []
    while len(responses) < expect:
        data = await asyncio.wait_for(reader.read(1 << 16), timeout=5.0)
        assert data, "server closed before all responses arrived"
        responses.extend(parser.feed(data))
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionResetError:
        pass
    return responses


def run_session(wire: bytes, expect: int, preset="baseline", settings=None):
    async def _run():
        server, host, port = await _boot(preset, settings)
        try:
            return await _exchange(host, port, wire, expect), server
        finally:
            await server.stop()

    return asyncio.run(_run())


class TestEndToEnd:
    def test_set_get_del_cycle(self):
        wire = (protocol.encode_set_request(b"k1", b"hello")
                + protocol.encode_get_request(b"k1")
                + protocol.encode_del_request(b"k1")
                + protocol.encode_get_request(b"k1"))
        responses, _ = run_session(wire, 4)
        assert [r.kind for r in responses] == [
            "STORED", "VALUE", "DELETED", "NOT_FOUND"]
        assert responses[1].value == b"hello"
        # Simulated latency is reported on every device op.
        assert responses[0].latency_us > 0
        assert responses[0].service_us > 0

    def test_scan_returns_sorted_range(self):
        wire = b"".join(
            protocol.encode_set_request(b"key%d" % i, b"v%d" % i)
            for i in (3, 1, 2)
        ) + protocol.encode_scan_request(b"key1", 2)
        responses, _ = run_session(wire, 4)
        scan = responses[-1]
        assert scan.kind == "RANGE"
        assert scan.pairs == [(b"key1", b"v1"), (b"key2", b"v2")]

    def test_responses_keep_request_order_when_pipelined(self):
        # Inline (PING), rejected (bad key) and device ops interleaved in
        # one write: responses must come back in exactly request order.
        wire = (protocol.PING_REQUEST
                + protocol.encode_set_request(b"a", b"1")
                + b"GET bad\x01key\r\n"
                + protocol.encode_get_request(b"a")
                + protocol.PING_REQUEST)
        responses, _ = run_session(wire, 5)
        assert [r.kind for r in responses] == [
            "PONG", "STORED", "ERR", "VALUE", "PONG"]

    def test_stats_exposes_serve_and_device_metrics(self):
        # STATS is answered inline with an instantaneous snapshot, so it
        # must be sent after the SET's response arrives to observe it.
        async def _run():
            server, host, port = await _boot()
            try:
                await _exchange(host, port,
                                protocol.encode_set_request(b"k", b"v"), 1)
                (response,) = await _exchange(
                    host, port, protocol.STATS_REQUEST, 1)
            finally:
                await server.stop()
            return response.stats

        stats = asyncio.run(_run())
        assert stats["serve.requests"] >= 2.0
        assert stats["serve.ops.set"] == 1.0
        assert stats["serve.latency_us.count"] == 1.0
        # Device snapshot is merged in.
        assert any(name.startswith("pcie.") for name in stats)

    def test_quit_closes_connection(self):
        async def _run():
            server, host, port = await _boot()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(protocol.QUIT_REQUEST)
                await writer.drain()
                data = await asyncio.wait_for(reader.read(), timeout=5.0)
                assert data == protocol.BYE
            finally:
                await server.stop()

        asyncio.run(_run())

    def test_busy_rejection_under_tight_delay_bound(self):
        # The projected-wait estimator needs one completed op (EWMA +
        # device_free are unknowable before any service time has been
        # observed), so prime it, then blast a burst all stamped at
        # arrival=0: the device is busy in virtual time, the projected
        # wait blows through the 1 us bound, and the burst bounces.
        async def _run():
            settings = ServerSettings(max_queue_delay_us=1.0)
            server, host, port = await _boot(settings=settings)
            try:
                await _exchange(
                    host, port,
                    protocol.encode_set_request(b"p", b"v", arrival_us=0.0), 1)
                burst = b"".join(
                    protocol.encode_set_request(b"k%d" % i, b"v",
                                                arrival_us=0.0)
                    for i in range(8)
                )
                responses = await _exchange(host, port, burst, 8)
            finally:
                await server.stop()
            return responses, server

        responses, server = asyncio.run(_run())
        kinds = [r.kind for r in responses]
        assert kinds == ["SERVER_BUSY"] * 8
        stats = server.stats()
        assert stats["serve.busy_rejects"] >= 8.0
        assert stats["serve.busy_rejects.queue_delay"] >= 8.0
        busy = next(r for r in responses if r.kind == "SERVER_BUSY")
        assert float(busy.detail) > 1.0  # projected wait is reported

    def test_per_conn_inflight_cap(self):
        # A 4-request burst lands in one TCP chunk and is dispatched in
        # one synchronous loop (no await between dispatches), so the
        # device worker cannot drain between them: with a per-connection
        # cap of 1, exactly the first is admitted.
        settings = ServerSettings(per_conn_inflight=1, max_queue_delay_us=0.0)
        wire = b"".join(
            protocol.encode_set_request(b"k%d" % i, b"v") for i in range(4)
        )
        responses, server = run_session(wire, 4, settings=settings)
        kinds = [r.kind for r in responses]
        assert kinds == ["STORED", "SERVER_BUSY", "SERVER_BUSY", "SERVER_BUSY"]
        assert server.metrics.snapshot()[
            "serve.busy_rejects.per_conn"] == 3.0

    def test_fatal_framing_error_closes_connection(self):
        async def _run():
            server, host, port = await _boot()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"SET k 99999999999\r\n")  # absurd length
                await writer.drain()
                data = await asyncio.wait_for(reader.read(), timeout=5.0)
                # One ERR response, then EOF (read() drained to close).
                parser = protocol.ResponseParser()
                (response,) = parser.feed(data)
                assert response.kind == "ERR"
            finally:
                await server.stop()

        asyncio.run(_run())

    def test_two_connections_isolated_ordering(self):
        async def _run():
            server, host, port = await _boot()
            try:
                first, second = await asyncio.gather(
                    _exchange(host, port,
                              protocol.encode_set_request(b"a", b"1")
                              + protocol.encode_get_request(b"a"), 2),
                    _exchange(host, port,
                              protocol.encode_set_request(b"b", b"2")
                              + protocol.encode_get_request(b"b"), 2),
                )
                assert [r.kind for r in first] == ["STORED", "VALUE"]
                assert [r.kind for r in second] == ["STORED", "VALUE"]
                assert first[1].value == b"1"
                assert second[1].value == b"2"
            finally:
                await server.stop()

        asyncio.run(_run())

    def test_value_size_limit_enforced_via_backend_config(self):
        async def _run():
            server, host, port = await _boot()
            limit = server.backend.max_value_bytes
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"SET k %d\r\n" % (limit + 1))
                await writer.drain()
                data = await asyncio.wait_for(reader.read(), timeout=5.0)
                (response,) = protocol.ResponseParser().feed(data)
                assert response.kind == "ERR"
            finally:
                await server.stop()

        asyncio.run(_run())


class TestVirtualTimeModel:
    def test_latency_equals_service_when_unqueued(self):
        # Arrivals spaced far apart: no queueing, latency == service.
        wire = (protocol.encode_set_request(b"a", b"x", arrival_us=0.0)
                + protocol.encode_set_request(b"b", b"x", arrival_us=10_000.0))
        responses, _ = run_session(wire, 2)
        for response in responses:
            assert response.latency_us == response.service_us

    def test_queued_request_charged_full_wait(self):
        # Second request arrives at t=0 while the first is still being
        # served: its latency must include the wait for the device.
        wire = (protocol.encode_set_request(b"a", b"x", arrival_us=0.0)
                + protocol.encode_set_request(b"b", b"x", arrival_us=0.0))
        responses, _ = run_session(wire, 2)
        first, second = responses
        assert second.latency_us > second.service_us
        expected_wait = first.service_us  # device busy until then
        assert abs(
            (second.latency_us - second.service_us) - expected_wait) < 1e-6

    def test_determinism_across_server_instances(self):
        wire = b"".join(
            protocol.encode_set_request(b"k%d" % i, b"payload-%d" % i,
                                        arrival_us=i * 50.0)
            for i in range(20)
        )
        first, _ = run_session(wire, 20)
        second, _ = run_session(wire, 20)
        assert [(r.kind, r.latency_us, r.service_us) for r in first] == \
               [(r.kind, r.latency_us, r.service_us) for r in second]
