"""Circuit-breaker semantics against a scriptable flaky backend.

The breaker is request-count driven (no wall clock), so the whole
open -> shed -> probe -> close cycle can be exercised deterministically
by dispatching one request at a time and pumping the worker between
dispatches.
"""

import asyncio

from repro.serve import protocol
from repro.serve.backend import ExecResult
from repro.serve.server import _SHUTDOWN, KVServer, ServerSettings, _Connection


class FlakyBackend:
    """StoreBackend stand-in that fails for a scripted span of calls."""

    def __init__(self, fail_from: int, fail_until: int) -> None:
        self.calls = 0
        self.fail_from = fail_from
        self.fail_until = fail_until

    @property
    def max_value_bytes(self) -> int:
        return 1 << 20

    def execute(self, request) -> ExecResult:
        self.calls += 1
        if self.fail_from <= self.calls <= self.fail_until:
            return ExecResult(kind="ERR", service_us=1.0, detail="boom")
        return ExecResult(kind="STORED", service_us=1.0)

    def health(self) -> dict:
        return {"state": "ok", "devices": 1, "devices_up": 1,
                "rebuild_active": False}

    def snapshot(self) -> dict[str, float]:
        return {}


async def _pump(server, conn, request):
    """Dispatch one request and run the worker until its future resolves."""
    server._dispatch(request, conn)
    future = conn.responses.get_nowait()
    while not future.done():
        await asyncio.sleep(0)
    return future.result()


def _set(i: int) -> protocol.Request:
    return protocol.Request(op="SET", key=b"k%d" % i, value=b"v",
                            arrival_us=0.0)


class TestBreakerCycle:
    def test_open_shed_probe_close(self):
        async def _run():
            # Backend calls 1-3 fail, 4+ succeed. Sheds never reach the
            # backend, so call 3 is the first probe and call 4 the second.
            backend = FlakyBackend(fail_from=1, fail_until=3)
            server = KVServer(
                backend,
                ServerSettings(breaker_error_threshold=2,
                               breaker_probe_every=3),
            )
            worker = asyncio.get_running_loop().create_task(
                server._device_worker()
            )
            conn = _Connection(writer=None,
                               max_value_bytes=backend.max_value_bytes)
            try:
                # Two consecutive backend errors trip the breaker.
                for i in range(2):
                    payload = await _pump(server, conn, _set(i))
                    assert payload.startswith(b"ERR BACKEND")
                stats = server.stats()
                assert stats["serve.breaker.opened"] == 1.0
                assert server._breaker_open

                # Open breaker: the next two device ops are shed without
                # touching the backend; the third is admitted as a probe.
                calls_before = backend.calls
                for i in range(2, 4):
                    payload = await _pump(server, conn, _set(i))
                    assert payload.startswith(b"SERVER_BUSY")
                assert backend.calls == calls_before

                # Probe while the backend is still failing: breaker stays
                # open (only a probe *success* closes it).
                payload = await _pump(server, conn, _set(4))
                assert payload.startswith(b"ERR BACKEND")
                assert server._breaker_open

                # Shed two more, then the next probe lands after the
                # backend healed (call 4) and closes the breaker.
                for i in range(5, 7):
                    payload = await _pump(server, conn, _set(i))
                    assert payload.startswith(b"SERVER_BUSY")
                payload = await _pump(server, conn, _set(7))
                assert payload.startswith(b"STORED")
                assert not server._breaker_open

                # Closed again: ops flow normally.
                payload = await _pump(server, conn, _set(8))
                assert payload.startswith(b"STORED")

                stats = server.stats()
                assert stats["serve.breaker.opened"] == 1.0
                assert stats["serve.breaker.closed"] == 1.0
                assert stats["serve.breaker.rejected"] == 4.0
                assert stats["serve.breaker.probes"] == 2.0
            finally:
                await server._device_queue.put(_SHUTDOWN)
                await worker

        asyncio.run(_run())

    def test_health_reports_breaker_state(self):
        async def _run():
            backend = FlakyBackend(fail_from=1, fail_until=10)
            server = KVServer(
                backend, ServerSettings(breaker_error_threshold=1)
            )
            worker = asyncio.get_running_loop().create_task(
                server._device_worker()
            )
            conn = _Connection(writer=None,
                               max_value_bytes=backend.max_value_bytes)
            try:
                health = protocol.Request(op="HEALTH", key=b"",
                                          arrival_us=None)
                server._dispatch(health, conn)
                assert b"breaker=closed" in conn.responses.get_nowait().result()
                await _pump(server, conn, _set(0))  # trips on first error
                server._dispatch(health, conn)
                assert b"breaker=open" in conn.responses.get_nowait().result()
            finally:
                await server._device_queue.put(_SHUTDOWN)
                await worker

        asyncio.run(_run())

    def test_disabled_breaker_never_opens(self):
        async def _run():
            backend = FlakyBackend(fail_from=1, fail_until=50)
            server = KVServer(backend)  # breaker_error_threshold=0
            worker = asyncio.get_running_loop().create_task(
                server._device_worker()
            )
            conn = _Connection(writer=None,
                               max_value_bytes=backend.max_value_bytes)
            try:
                for i in range(10):
                    payload = await _pump(server, conn, _set(i))
                    assert payload.startswith(b"ERR BACKEND")
                assert not server._breaker_open
                assert "serve.breaker.opened" not in server.stats()
            finally:
                await server._device_queue.put(_SHUTDOWN)
                await worker

        asyncio.run(_run())
