"""Abrupt-disconnect handling: dead connections must not leak device work.

The deterministic tests drive the server internals directly (no TCP
races): a connection marked dead before the worker runs must have every
queued request dropped, its futures cancelled, and its admission slots
released. The end-to-end test aborts a real socket mid-pipeline and
asserts the invariants that hold regardless of how far the worker got.
"""

import asyncio

from repro.serve import protocol
from repro.serve.backend import StoreBackend
from repro.serve.server import _SHUTDOWN, KVServer, _Connection

from tests.serve.test_server import _boot, _exchange


def _make_server(preset="baseline"):
    return KVServer(StoreBackend.build(preset))


def _device_request(index: int) -> protocol.Request:
    return protocol.Request(
        op="SET", key=b"k%d" % index, value=b"v", arrival_us=0.0
    )


class TestDeadConnectionDeterministic:
    def test_worker_drops_queued_ops_of_dead_connection(self):
        async def _run():
            server = _make_server()
            conn = _Connection(
                writer=None, max_value_bytes=server.backend.max_value_bytes
            )
            for i in range(3):
                server._dispatch(_device_request(i), conn)
            assert conn.inflight == 3
            conn.dead = True  # the client vanished before the worker ran
            worker = asyncio.get_running_loop().create_task(
                server._device_worker()
            )
            await server._device_queue.put(_SHUTDOWN)
            await worker
            stats = server.stats()
            assert stats["serve.dropped_requests"] == 3.0
            assert conn.inflight == 0
            # No device op ran, so virtual time never advanced.
            assert stats["serve.device_free_us"] == 0.0
            # Every pending response future was cancelled, in order.
            for _ in range(3):
                future = conn.responses.get_nowait()
                assert future.cancelled()

        asyncio.run(_run())

    def test_live_connection_still_served_alongside_dead_one(self):
        async def _run():
            server = _make_server()
            dead = _Connection(
                writer=None, max_value_bytes=server.backend.max_value_bytes
            )
            live = _Connection(
                writer=None, max_value_bytes=server.backend.max_value_bytes
            )
            server._dispatch(_device_request(0), dead)
            server._dispatch(_device_request(1), live)
            dead.dead = True
            worker = asyncio.get_running_loop().create_task(
                server._device_worker()
            )
            await server._device_queue.put(_SHUTDOWN)
            await worker
            assert server.stats()["serve.dropped_requests"] == 1.0
            assert dead.responses.get_nowait().cancelled()
            payload = live.responses.get_nowait().result()
            assert payload.startswith(b"STORED")

        asyncio.run(_run())


class TestAbortEndToEnd:
    def test_aborted_pipeline_does_not_wedge_the_server(self):
        async def _run():
            server, host, port = await _boot()
            try:
                _reader, writer = await asyncio.open_connection(host, port)
                wire = b"".join(
                    protocol.encode_set_request(b"a%d" % i, b"x" * 32, 0.0)
                    for i in range(5)
                )
                writer.write(wire)
                await writer.drain()
                # Give the server time to read the pipeline (an immediate
                # RST could discard unread socket data and the requests
                # would never be dispatched at all).
                await asyncio.sleep(0.05)
                writer.transport.abort()  # RST with responses in flight
                await asyncio.sleep(0.05)
                # A fresh connection is served normally afterwards.
                responses = await _exchange(
                    host, port,
                    protocol.PING_REQUEST
                    + protocol.encode_set_request(b"ok", b"v")
                    + protocol.encode_get_request(b"ok"),
                    3,
                )
                assert [r.kind for r in responses] == ["PONG", "STORED", "VALUE"]
                stats = server.stats()
                # Every one of the 5 aborted SETs was either executed or
                # dropped — none may be stranded in-queue or half-counted.
                executed_from_abort = stats.get("serve.ops.set", 0.0) - 1.0
                dropped = stats.get("serve.dropped_requests", 0.0)
                assert executed_from_abort + dropped == 5.0
                assert stats["serve.queue_depth"] == 0.0
            finally:
                await server.stop()

        asyncio.run(_run())
