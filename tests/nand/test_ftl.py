"""Tests for the page-mapped FTL: mapping, invalidation, allocation, striping."""

import pytest

from repro.errors import FTLError
from repro.nand.ftl import PageMappedFTL


class TestMapping:
    def test_write_read_roundtrip(self, ftl):
        ftl.write(5, b"value five")
        assert ftl.read(5)[:10] == b"value five"

    def test_unmapped_read_rejected(self, ftl):
        with pytest.raises(FTLError):
            ftl.read(42)

    def test_rewrite_goes_out_of_place(self, ftl):
        ppn1 = ftl.write(1, b"v1")
        ppn2 = ftl.write(1, b"v2")
        assert ppn1 != ppn2
        assert ftl.read(1)[:2] == b"v2"

    def test_rewrite_invalidates_old_page(self, ftl):
        ppn1 = ftl.write(1, b"v1")
        block1 = ftl.flash.geometry.block_of(ppn1)
        ftl.write(1, b"v2")
        assert ftl.lpn_of(ppn1) is None
        assert ftl.valid_pages_in_block(block1) + 1 >= 1  # old page not counted

    def test_negative_lpn_rejected(self, ftl):
        with pytest.raises(FTLError):
            ftl.write(-1, b"x")

    def test_mapped_pages_count(self, ftl):
        ftl.write(1, b"a")
        ftl.write(2, b"b")
        ftl.write(1, b"c")
        assert ftl.mapped_pages == 2

    def test_is_mapped(self, ftl):
        assert not ftl.is_mapped(9)
        ftl.write(9, b"x")
        assert ftl.is_mapped(9)

    def test_ppn_of_unmapped_raises(self, ftl):
        with pytest.raises(FTLError):
            ftl.ppn_of(1234)


class TestTrim:
    def test_trim_unmaps(self, ftl):
        ftl.write(1, b"a")
        ftl.trim(1)
        assert not ftl.is_mapped(1)

    def test_trim_unmapped_rejected(self, ftl):
        with pytest.raises(FTLError):
            ftl.trim(1)

    def test_trim_decrements_validity(self, ftl):
        ppn = ftl.write(1, b"a")
        block = ftl.flash.geometry.block_of(ppn)
        assert ftl.valid_pages_in_block(block) == 1
        ftl.trim(1)
        assert ftl.valid_pages_in_block(block) == 0


class TestAllocation:
    def test_writes_stripe_across_ways(self, ftl):
        """Round-robin allocation spreads consecutive writes over ways."""
        geo = ftl.flash.geometry
        ppns = [ftl.write(i, b"x") for i in range(geo.total_ways)]
        ways = {
            (geo.decompose(p).channel, geo.decompose(p).way) for p in ppns
        }
        assert len(ways) == geo.total_ways

    def test_free_block_count_decreases(self, ftl):
        before = ftl.free_block_count
        for i in range(ftl.flash.geometry.total_ways):
            ftl.write(i, b"x")
        assert ftl.free_block_count == before - ftl.flash.geometry.total_ways

    def test_exhaustion_without_gc_raises(self, flash):
        ftl = PageMappedFTL(flash, gc_reserve_blocks=1)
        total = flash.geometry.total_pages
        with pytest.raises(FTLError):
            for i in range(total + 1):
                ftl.write(i, b"x")

    def test_logical_write_counter(self, ftl):
        ftl.write(1, b"a")
        ftl.write(1, b"b")
        assert ftl.metrics.counter("logical_writes").value == 2


class TestVictimsAndRelocation:
    def test_victim_candidates_sorted_by_validity(self, ftl):
        geo = ftl.flash.geometry
        pages = geo.pages_per_block
        ways = geo.total_ways
        # Fill several blocks; rewrite some LPNs to create invalid pages.
        for i in range(pages * ways * 2):
            ftl.write(i, b"x")
        for i in range(0, pages * ways, 2):
            ftl.write(i, b"y")  # invalidate half the early pages
        candidates = ftl.victim_candidates()
        validities = [ftl.valid_pages_in_block(b) for b in candidates]
        assert validities == sorted(validities)
        assert candidates, "expected some fully-programmed victim blocks"

    def test_relocate_block_preserves_data(self, ftl):
        geo = ftl.flash.geometry
        pages = geo.pages_per_block
        ways = geo.total_ways
        for i in range(pages * ways):
            ftl.write(i, bytes([i % 256]))
        victim = ftl.victim_candidates()[0]
        survivors = [
            lpn
            for ppn in range(
                geo.first_ppn_of_block(victim),
                geo.first_ppn_of_block(victim) + pages,
            )
            if (lpn := ftl.lpn_of(ppn)) is not None
        ]
        moved = ftl.relocate_block(victim)
        assert moved == len(survivors)
        for lpn in survivors:
            assert ftl.read(lpn)[:1] == bytes([lpn % 256])

    def test_relocate_frees_the_block(self, ftl):
        geo = ftl.flash.geometry
        for i in range(geo.pages_per_block * geo.total_ways):
            ftl.write(i, b"x")
        victim = ftl.victim_candidates()[0]
        erases_before = ftl.flash.block_erases
        ftl.relocate_block(victim)
        # The victim block is erased and reprogrammable from page 0.
        assert ftl.flash.block_erases == erases_before + 1
        assert ftl.flash.pages_programmed_in_block(victim) == 0

    def test_relocate_open_block_rejected(self, ftl):
        ftl.write(0, b"x")  # one page into some block; block still open
        ppn = ftl.ppn_of(0)
        block = ftl.flash.geometry.block_of(ppn)
        with pytest.raises(FTLError):
            ftl.relocate_block(block)
