"""Tests for NAND flash semantics: program-once, in-order, erase, counters."""

import pytest

from repro.errors import NandError, ProgramError
from repro.nand.flash import NandFlash


class TestProgram:
    def test_program_read_roundtrip(self, flash):
        flash.program(0, b"hello")
        page = flash.read(0)
        assert page[:5] == b"hello"
        assert len(page) == flash.geometry.page_size

    def test_short_data_zero_padded(self, flash):
        flash.program(0, b"x")
        assert flash.read(0)[1:10] == b"\x00" * 9

    def test_oversized_data_rejected(self, flash):
        with pytest.raises(NandError):
            flash.program(0, b"x" * (flash.geometry.page_size + 1))

    def test_program_twice_rejected(self, flash):
        """NAND pages are write-once between erases."""
        flash.program(0, b"a")
        with pytest.raises(ProgramError):
            flash.program(0, b"b")

    def test_out_of_order_program_rejected(self, flash):
        """Pages within a block must be programmed sequentially."""
        flash.program(0, b"a")
        with pytest.raises(ProgramError):
            flash.program(2, b"c")

    def test_in_order_program_across_block(self, flash):
        ppb = flash.geometry.pages_per_block
        for i in range(ppb):
            flash.program(i, bytes([i]))
        # Next block starts at page 0 of that block, any time.
        flash.program(ppb, b"next block")
        assert flash.read(ppb)[:10] == b"next block"

    def test_ppn_bounds(self, flash):
        with pytest.raises(NandError):
            flash.program(flash.geometry.total_pages, b"x")

    def test_program_counts(self, flash):
        flash.program(0, b"a")
        flash.program(1, b"b")
        assert flash.page_programs == 2
        assert flash.bytes_programmed == 2 * flash.geometry.page_size

    def test_program_advances_clock(self, flash):
        t0 = flash.clock.now_us
        flash.program(0, b"a")
        assert flash.clock.now_us == pytest.approx(t0 + flash.latency.nand_program_us)


class TestRead:
    def test_read_unprogrammed_rejected(self, flash):
        with pytest.raises(NandError):
            flash.read(0)

    def test_read_counts_and_clock(self, flash):
        flash.program(0, b"a")
        t0 = flash.clock.now_us
        flash.read(0)
        assert flash.page_reads == 1
        assert flash.clock.now_us == pytest.approx(t0 + flash.latency.nand_read_us)

    def test_is_programmed(self, flash):
        assert not flash.is_programmed(0)
        flash.program(0, b"a")
        assert flash.is_programmed(0)


class TestErase:
    def test_erase_enables_reprogram(self, flash):
        flash.program(0, b"a")
        flash.erase_block(0)
        flash.program(0, b"b")  # no ProgramError
        assert flash.read(0)[:1] == b"b"

    def test_erase_clears_content(self, flash):
        flash.program(0, b"a")
        flash.erase_block(0)
        with pytest.raises(NandError):
            flash.read(0)

    def test_erase_counts(self, flash):
        flash.erase_block(0)
        flash.erase_block(0)
        assert flash.block_erases == 2
        assert flash.erase_count(0) == 2
        assert flash.erase_count(1) == 0

    def test_erase_bounds(self, flash):
        with pytest.raises(NandError):
            flash.erase_block(flash.geometry.total_blocks)

    def test_pages_programmed_in_block_resets(self, flash):
        flash.program(0, b"a")
        flash.program(1, b"b")
        assert flash.pages_programmed_in_block(0) == 2
        flash.erase_block(0)
        assert flash.pages_programmed_in_block(0) == 0


class TestMetrics:
    def test_reset_metrics(self, flash):
        flash.program(0, b"a")
        flash.reset_metrics()
        assert flash.page_programs == 0

    def test_snapshot_keys(self, flash):
        snap = flash.metrics.snapshot()
        assert "nand.page_programs" in snap
        assert "nand.block_erases" in snap
