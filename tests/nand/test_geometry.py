"""Tests for NAND geometry and PPN addressing."""

import pytest

from repro.errors import ConfigError, NandError
from repro.nand.geometry import NandGeometry, PageAddress, default_geometry
from repro.units import GIB, KIB, TIB


class TestShape:
    def test_paper_default_shape(self):
        """Table 1: 4 channels, 8 ways, 16 KiB pages."""
        geo = NandGeometry()
        assert geo.channels == 4
        assert geo.ways_per_channel == 8
        assert geo.page_size == 16 * KIB

    def test_capacity_math(self):
        geo = NandGeometry(
            channels=2, ways_per_channel=2, blocks_per_way=4,
            pages_per_block=8, page_size=16 * KIB,
        )
        assert geo.total_ways == 4
        assert geo.total_blocks == 16
        assert geo.total_pages == 128
        assert geo.capacity_bytes == 128 * 16 * KIB
        assert geo.block_size == 8 * 16 * KIB

    def test_rejects_nonpositive_fields(self):
        with pytest.raises(ConfigError):
            NandGeometry(channels=0)
        with pytest.raises(ConfigError):
            NandGeometry(page_size=0)

    def test_default_geometry_capacity(self):
        geo = default_geometry(8 * GIB)
        assert geo.capacity_bytes == pytest.approx(8 * GIB, rel=0.05)
        assert geo.channels == 4
        assert geo.ways_per_channel == 8

    def test_default_geometry_1tb(self):
        """Paper scale: 1 TB of 16 KiB pages needs 26-bit page numbers."""
        geo = default_geometry(1 * TIB)
        assert geo.total_pages == 2**26


class TestAddressing:
    @pytest.fixture
    def geo(self):
        return NandGeometry(
            channels=2, ways_per_channel=3, blocks_per_way=4,
            pages_per_block=5, page_size=16 * KIB,
        )

    def test_ppn_decompose_inverse(self, geo):
        for ppn in range(geo.total_pages):
            assert geo.ppn(geo.decompose(ppn)) == ppn

    def test_consecutive_ppns_same_block_consecutive_pages(self, geo):
        """PPN layout: in-block pages are adjacent (program-order)."""
        a0 = geo.decompose(0)
        a1 = geo.decompose(1)
        assert (a1.channel, a1.way, a1.block) == (a0.channel, a0.way, a0.block)
        assert a1.page == a0.page + 1

    def test_block_of(self, geo):
        assert geo.block_of(0) == 0
        assert geo.block_of(geo.pages_per_block) == 1

    def test_first_ppn_of_block(self, geo):
        assert geo.first_ppn_of_block(2) == 2 * geo.pages_per_block

    def test_bounds_rejected(self, geo):
        with pytest.raises(NandError):
            geo.decompose(geo.total_pages)
        with pytest.raises(NandError):
            geo.block_of(-1)
        with pytest.raises(NandError):
            geo.first_ppn_of_block(geo.total_blocks)

    def test_validate_rejects_out_of_range_coords(self, geo):
        with pytest.raises(NandError):
            geo.ppn(PageAddress(channel=2, way=0, block=0, page=0))
        with pytest.raises(NandError):
            geo.ppn(PageAddress(channel=0, way=0, block=0, page=5))
