"""Tests for greedy garbage collection under real space pressure."""

import pytest

from repro.errors import FTLError
from repro.nand.ftl import PageMappedFTL
from repro.nand.gc import GreedyGarbageCollector


@pytest.fixture
def gc_ftl(flash):
    ftl = PageMappedFTL(flash, gc_reserve_blocks=4)
    gc = GreedyGarbageCollector(ftl, batch_blocks=2)
    ftl.set_gc(gc)
    return ftl, gc


class TestCollection:
    def test_overwrite_workload_survives_module_wrap(self, gc_ftl):
        """Rewriting a small working set forever must never exhaust space."""
        ftl, gc = gc_ftl
        total_pages = ftl.flash.geometry.total_pages
        working_set = 16
        for i in range(total_pages * 2):
            ftl.write(i % working_set, bytes([i % 256]))
        assert gc.collections > 0
        assert gc.blocks_reclaimed > 0
        # All live data still readable and current.
        for lpn in range(working_set):
            assert ftl.is_mapped(lpn)

    def test_gc_preserves_latest_values(self, gc_ftl):
        ftl, _ = gc_ftl
        total_pages = ftl.flash.geometry.total_pages
        for round_no in range(3):
            for lpn in range(total_pages // 2):
                ftl.write(lpn, bytes([round_no]) + lpn.to_bytes(4, "little"))
        for lpn in range(total_pages // 2):
            page = ftl.read(lpn)
            assert page[0] == 2
            assert page[1:5] == lpn.to_bytes(4, "little")

    def test_collect_reports_reclaimed(self, gc_ftl):
        ftl, gc = gc_ftl
        geo = ftl.flash.geometry
        # Fill most of the module with a small working set (mostly garbage).
        for i in range(geo.total_pages - geo.pages_per_block * 6):
            ftl.write(i % 8, b"x")
        reclaimed = gc.collect()
        assert reclaimed >= 0
        assert gc.pages_relocated >= 0

    def test_gc_relocates_cold_data_mixed_with_hot(self, gc_ftl):
        """Blocks holding cold (live) pages among hot (dead) ones force
        relocation — the classic hot/cold GC scenario."""
        ftl, gc = gc_ftl
        total_pages = ftl.flash.geometry.total_pages
        working_set = total_pages // 2
        # Cold+hot interleaved in the same blocks...
        for lpn in range(working_set):
            ftl.write(lpn, b"cold" if lpn % 2 == 0 else b"hot")
        # ...then hammer only the hot half, and demand a deep collection so
        # greedy runs out of fully-dead victims and must move cold pages.
        for i in range(total_pages * 3):
            ftl.write(1 + 2 * (i % (working_set // 2)), b"hot2")
        deep_gc = GreedyGarbageCollector(ftl, batch_blocks=ftl.flash.geometry.total_blocks // 2)
        deep_gc.collect()
        assert deep_gc.pages_relocated > 0
        # Cold data survived relocation intact.
        for lpn in range(0, working_set, 2):
            assert ftl.read(lpn)[:4] == b"cold"

    def test_rejects_bad_batch(self, gc_ftl):
        ftl, _ = gc_ftl
        with pytest.raises(FTLError):
            GreedyGarbageCollector(ftl, batch_blocks=0)

    def test_full_valid_module_raises_eventually(self, flash):
        """If every page is live, GC cannot help; the FTL must fail loudly."""
        ftl = PageMappedFTL(flash, gc_reserve_blocks=2)
        gc = GreedyGarbageCollector(ftl)
        ftl.set_gc(gc)
        with pytest.raises(FTLError):
            for lpn in range(flash.geometry.total_pages + 1):
                ftl.write(lpn, b"live")  # never overwrites -> all valid
