"""Satellite: read-cache coherence across every page-relocation path.

A stale cached page is a silent wrong read, so each mutation path is
checked end-to-end with the cache attached and warm: vLog GC relocation,
FTL garbage collection, DELETE, overwrite, bad-block style remapping via
GC, and remount. The capstone is a churn test asserting a cache-on device
never diverges from a cache-off twin.
"""

import pytest

from repro.core.config import PRESETS
from repro.device.kvssd import KVSSD
from repro.errors import KeyNotFoundError
from repro.host.api import KVStore
from repro.memory.cache import PageCache
from repro.nand.gc import GreedyGarbageCollector
from repro.units import MIB


def _store(**overrides) -> KVStore:
    merged = dict(
        nand_capacity_bytes=64 * MIB,
        read_cache_pages=32,
        memtable_flush_bytes=16 * 1024,
    )
    merged.update(overrides)
    return KVStore(KVSSD.build(PRESETS["all"].with_overrides(**merged)))


def _value(i: int, size: int = 400) -> bytes:
    return bytes((i * 31 + j) % 256 for j in range(size))


class TestPageCacheUnit:
    def test_lookup_returns_data_and_ready_time(self):
        c = PageCache(4)
        c.put(7, b"page", ready_us=123.5)
        assert c.lookup(7) == (b"page", 123.5)

    def test_put_defaults_to_already_available(self):
        c = PageCache(4)
        c.put(7, b"page")
        assert c.lookup(7) == (b"page", 0.0)

    def test_refresh_replaces_ready_time(self):
        c = PageCache(4)
        c.put(7, b"old", ready_us=10.0)
        c.put(7, b"new", ready_us=20.0)
        assert c.lookup(7) == (b"new", 20.0)


class TestDeleteAndOverwrite:
    def test_delete_then_get_raises_despite_warm_cache(self):
        store = _store()
        store.put(b"k1", _value(1))
        store.flush()
        assert store.get(b"k1") == _value(1)  # warms the cache
        store.delete(b"k1")
        assert not store.exists(b"k1")
        with pytest.raises(KeyNotFoundError):
            store.get(b"k1")

    def test_delete_then_reput_returns_new_value(self):
        store = _store()
        store.put(b"k1", _value(1))
        store.flush()
        store.get(b"k1")
        store.delete(b"k1")
        store.put(b"k1", _value(99))
        store.flush()
        assert store.get(b"k1") == _value(99)

    def test_overwrite_visible_through_warm_cache(self):
        store = _store()
        store.put(b"k1", _value(1))
        store.flush()
        store.get(b"k1")
        store.put(b"k1", _value(2))
        store.flush()
        assert store.get(b"k1") == _value(2)


class TestVLogCompactionCoherence:
    def test_relocated_values_read_correctly_after_warm_cache(self):
        store = _store()
        keys = [b"gc-%04d" % i for i in range(120)]
        for i, key in enumerate(keys):
            store.put(key, _value(i))
        store.flush()
        for key in keys:  # warm the cache on the pre-move layout
            store.get(key)
        for key in keys[::2]:  # kill half: creates dead vLog space
            store.delete(key)
        report = store.compact_vlog(dead_threshold=0.01)
        assert report is not None and report.did_work
        for i, key in enumerate(keys):
            if i % 2 == 0:
                assert not store.exists(key)
            else:
                assert store.get(key) == _value(i), key

    def test_trimmed_victim_range_is_not_served_from_cache(self):
        store = _store()
        keys = [b"tv-%04d" % i for i in range(60)]
        for i, key in enumerate(keys):
            store.put(key, _value(i))
        store.flush()
        for key in keys:
            store.get(key)
        store.compact_vlog(dead_threshold=0.0)
        # Every survivor must resolve to its relocated copy, never the
        # trimmed original page.
        for i, key in enumerate(keys):
            assert store.get(key) == _value(i)


class TestFTLGarbageCollection:
    def test_gc_relocation_is_transparent_to_warm_cache(self, ftl):
        # The greedy GC moves live pages to fresh blocks; the mapping is
        # content-preserving, so a warm cache (keyed by lpn) stays valid.
        gc = GreedyGarbageCollector(ftl)
        ftl.set_gc(gc)
        ftl.attach_read_cache(PageCache(64))
        pages = {lpn: b"%04d" % lpn * 64 for lpn in range(40)}
        for lpn, data in pages.items():
            ftl.write(lpn, data)
        for lpn in pages:
            ftl.read(lpn)
        for lpn in range(0, 40, 2):  # free up space, then force GC
            ftl.trim(lpn)
            del pages[lpn]
        gc.collect()
        for lpn, data in pages.items():
            got = ftl.read(lpn)
            assert got[: len(data)] == data


class TestRemountCoherence:
    def test_remount_starts_with_an_empty_cache(self):
        device = KVSSD.build(
            PRESETS["all"].with_overrides(
                nand_capacity_bytes=64 * MIB,
                read_cache_pages=32,
                crash_consistency=True,
            )
        )
        for i in range(30):
            device.driver.put(b"rm-%04d" % i, _value(i))
        device.driver.nvme_flush()
        for i in range(30):
            device.driver.get(b"rm-%04d" % i)
        assert len(device.ftl._cache) > 0
        recovered = device.remount()
        assert recovered.ftl._cache is not None
        # A fresh cache object: no pre-cut entry can survive the remount
        # (the recovery scan itself may already have filled a few pages).
        assert recovered.ftl._cache is not device.ftl._cache
        assert (
            recovered.ftl._cache_hit_us
            == recovered.config.read_cache_hit_us
        )
        for i in range(30):
            assert recovered.driver.get(b"rm-%04d" % i).value == _value(i)


class TestChurnEquivalence:
    def test_cache_on_never_diverges_from_cache_off(self):
        on = _store()
        off = _store(read_cache_pages=0)
        keys = [b"ch-%04d" % i for i in range(80)]

        def run(store):
            out = []
            for i, key in enumerate(keys):
                store.put(key, _value(i))
            store.flush()
            for key in keys:
                out.append(store.get(key))
            for key in keys[::3]:
                store.delete(key)
            for i, key in enumerate(keys[1::3]):
                store.put(key, _value(1000 + i))
            store.flush()
            store.compact_vlog(dead_threshold=0.0)
            for key in keys:
                try:
                    out.append(store.get(key))
                except KeyNotFoundError:
                    out.append(None)
            out.append(sorted(store.scan()))
            return out

        assert run(on) == run(off)
        assert on.device.ftl._cache.hits > 0  # the cache actually engaged
