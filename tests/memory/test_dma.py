"""Tests for the DMA engine and its page-alignment restriction (§2.5)."""

import pytest

from repro.errors import DMAAlignmentError
from repro.memory.device import DeviceDRAM
from repro.memory.dma import DMAEngine
from repro.memory.host import HostMemory
from repro.pcie.link import PCIeLink
from repro.pcie.metrics import TrafficCategory
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.units import MEM_PAGE_SIZE


@pytest.fixture
def engine():
    clock = SimClock()
    link = PCIeLink(clock, LatencyModel())
    dram = DeviceDRAM(16 * MEM_PAGE_SIZE)
    host = HostMemory()
    return DMAEngine(link, dram, host)


class TestAlignmentRestriction:
    def test_unaligned_destination_rejected(self, engine):
        buf = engine.host_mem.stage_value(b"x" * 100)
        with pytest.raises(DMAAlignmentError):
            engine.host_to_device(buf, device_addr=100)

    def test_aligned_destination_accepted(self, engine):
        buf = engine.host_mem.stage_value(b"x" * 100)
        engine.host_to_device(buf, device_addr=MEM_PAGE_SIZE)
        assert engine.h2d_transfers == 1

    def test_d2h_unaligned_rejected(self, engine):
        buf = engine.host_mem.alloc_buffer(100)
        with pytest.raises(DMAAlignmentError):
            engine.device_to_host(1, buf)

    def test_scatter_targets_all_checked(self, engine):
        buf = engine.host_mem.stage_value(b"x" * (MEM_PAGE_SIZE + 1))
        with pytest.raises(DMAAlignmentError):
            engine.host_to_device_scatter(buf, [0, 17])

    def test_scatter_target_count_checked(self, engine):
        buf = engine.host_mem.stage_value(b"x" * (MEM_PAGE_SIZE + 1))
        with pytest.raises(DMAAlignmentError):
            engine.host_to_device_scatter(buf, [0])


class TestTransfers:
    def test_h2d_moves_whole_pages(self, engine):
        """A 32 B value transfers 4096 wire bytes — the §2.3 amplification."""
        buf = engine.host_mem.stage_value(b"v" * 32)
        wire = engine.host_to_device(buf, 0)
        assert wire == MEM_PAGE_SIZE
        assert engine.link.meter.bytes_for(TrafficCategory.DMA_H2D) == MEM_PAGE_SIZE

    def test_h2d_content_lands_in_dram(self, engine):
        value = bytes(range(256)) * 4
        buf = engine.host_mem.stage_value(value)
        engine.host_to_device(buf, 0)
        assert engine.dram.read(0, len(value)) == value

    def test_multipage_value_content(self, engine):
        value = b"ab" * 3000
        buf = engine.host_mem.stage_value(value)
        engine.host_to_device(buf, MEM_PAGE_SIZE)
        assert engine.dram.read(MEM_PAGE_SIZE, len(value)) == value

    def test_scatter_lands_pages_at_targets(self, engine):
        value = b"A" * MEM_PAGE_SIZE + b"B" * 10
        buf = engine.host_mem.stage_value(value)
        targets = [2 * MEM_PAGE_SIZE, 5 * MEM_PAGE_SIZE]
        engine.host_to_device_scatter(buf, targets)
        assert engine.dram.read(2 * MEM_PAGE_SIZE, 4) == b"AAAA"
        assert engine.dram.read(5 * MEM_PAGE_SIZE, 2) == b"B" * 2

    def test_scatter_charges_one_transaction(self, engine):
        buf = engine.host_mem.stage_value(b"x" * (2 * MEM_PAGE_SIZE))
        engine.host_to_device_scatter(buf, [0, MEM_PAGE_SIZE])
        assert engine.link.meter.transactions_for(TrafficCategory.DMA_H2D) == 1

    def test_d2h_roundtrip(self, engine):
        payload = b"payload!" * 100
        engine.dram.write(0, payload)
        buf = engine.host_mem.alloc_buffer(len(payload))
        engine.device_to_host(0, buf)
        assert buf.tobytes() == payload
        assert engine.d2h_transfers == 1

    def test_transfers_advance_clock(self, engine):
        buf = engine.host_mem.stage_value(b"x" * 64)
        t0 = engine.link.clock.now_us
        engine.host_to_device(buf, 0)
        assert engine.link.clock.now_us > t0
