"""Tests for host memory pages, buffers and the allocator."""

import pytest

from repro.errors import HostMemoryError
from repro.memory.host import HostBuffer, HostMemory, HostPage
from repro.units import MEM_PAGE_SIZE


class TestHostPage:
    def test_requires_aligned_address(self):
        with pytest.raises(HostMemoryError):
            HostPage(addr=123)

    def test_requires_full_page_data(self):
        with pytest.raises(HostMemoryError):
            HostPage(addr=0, data=bytearray(10))

    def test_valid_page(self):
        p = HostPage(addr=MEM_PAGE_SIZE * 3)
        assert len(p.data) == MEM_PAGE_SIZE


class TestHostBuffer:
    def test_page_count_must_match_length(self):
        page = HostPage(addr=0)
        with pytest.raises(HostMemoryError):
            HostBuffer(pages=[page, HostPage(addr=MEM_PAGE_SIZE)], length=100)

    def test_wire_bytes_are_page_padded(self):
        """§2.3: a 32 B value still moves a whole page."""
        buf = HostBuffer(pages=[HostPage(addr=0)], length=32)
        assert buf.wire_bytes == MEM_PAGE_SIZE

    def test_rejects_negative_length(self):
        with pytest.raises(HostMemoryError):
            HostBuffer(pages=[], length=-1)

    def test_empty_buffer_allowed(self):
        buf = HostBuffer(pages=[], length=0)
        assert buf.wire_bytes == 0

    def test_tobytes_truncates_to_length(self):
        page = HostPage(addr=0)
        page.data[:5] = b"hello"
        buf = HostBuffer(pages=[page], length=5)
        assert buf.tobytes() == b"hello"

    def test_page_addrs(self):
        pages = [HostPage(addr=0), HostPage(addr=MEM_PAGE_SIZE)]
        buf = HostBuffer(pages=pages, length=MEM_PAGE_SIZE + 1)
        assert buf.page_addrs == [0, MEM_PAGE_SIZE]


class TestHostMemory:
    def test_alloc_returns_aligned_distinct_pages(self):
        mem = HostMemory()
        a, b = mem.alloc_page(), mem.alloc_page()
        assert a.addr != b.addr
        assert a.addr % MEM_PAGE_SIZE == 0

    def test_alloc_zeroes_page(self):
        mem = HostMemory()
        page = mem.alloc_page()
        assert bytes(page.data) == b"\x00" * MEM_PAGE_SIZE

    def test_free_recycles_address(self):
        mem = HostMemory()
        page = mem.alloc_page()
        addr = page.addr
        mem.free_page(page)
        assert mem.alloc_page().addr == addr

    def test_double_free_rejected(self):
        mem = HostMemory()
        page = mem.alloc_page()
        mem.free_page(page)
        with pytest.raises(HostMemoryError):
            mem.free_page(page)

    def test_stage_value_copies_content(self):
        mem = HostMemory()
        value = bytes(range(200))
        buf = mem.stage_value(value)
        assert buf.tobytes() == value
        assert len(buf.pages) == 1

    def test_stage_large_value_spans_pages(self):
        mem = HostMemory()
        value = b"ab" * 3000  # 6000 bytes -> 2 pages
        buf = mem.stage_value(value)
        assert len(buf.pages) == 2
        assert buf.tobytes() == value

    def test_stage_exact_page(self):
        mem = HostMemory()
        value = b"x" * MEM_PAGE_SIZE
        buf = mem.stage_value(value)
        assert len(buf.pages) == 1
        assert buf.tobytes() == value

    def test_release_returns_all_pages(self):
        mem = HostMemory()
        buf = mem.stage_value(b"y" * 10000)
        assert mem.allocated_pages == 3
        mem.release(buf)
        assert mem.allocated_pages == 0

    def test_alloc_buffer_uninitialized(self):
        mem = HostMemory()
        buf = mem.alloc_buffer(5000)
        assert len(buf.pages) == 2
        assert buf.length == 5000

    def test_page_at_resolves_live_pages(self):
        mem = HostMemory()
        page = mem.alloc_page()
        assert mem.page_at(page.addr) is page

    def test_page_at_rejects_unknown(self):
        mem = HostMemory()
        with pytest.raises(HostMemoryError):
            mem.page_at(0xDEAD000)

    def test_page_at_rejects_freed(self):
        mem = HostMemory()
        page = mem.alloc_page()
        mem.free_page(page)
        with pytest.raises(HostMemoryError):
            mem.page_at(page.addr)
