"""Tests for the LRU page cache and its FTL integration."""

import pytest

from repro.errors import DeviceMemoryError
from repro.memory.cache import PageCache


class TestLRUMechanics:
    def test_miss_then_hit(self):
        c = PageCache(4)
        assert c.get(1) is None
        c.put(1, b"one")
        assert c.get(1) == b"one"
        assert c.hits == 1 and c.misses == 1

    def test_eviction_order_is_lru(self):
        c = PageCache(2)
        c.put(1, b"a")
        c.put(2, b"b")
        c.get(1)          # 1 becomes most-recent
        c.put(3, b"c")    # evicts 2
        assert c.get(2) is None
        assert c.get(1) == b"a"
        assert c.get(3) == b"c"
        assert c.evictions == 1

    def test_put_refreshes_existing(self):
        c = PageCache(2)
        c.put(1, b"old")
        c.put(1, b"new")
        assert len(c) == 1
        assert c.get(1) == b"new"

    def test_invalidate(self):
        c = PageCache(2)
        c.put(1, b"a")
        c.invalidate(1)
        assert c.get(1) is None
        assert c.invalidations == 1

    def test_invalidate_absent_is_noop(self):
        c = PageCache(2)
        c.invalidate(99)
        assert c.invalidations == 0

    def test_hit_rate(self):
        c = PageCache(2)
        c.put(1, b"a")
        c.get(1)
        c.get(2)
        assert c.hit_rate == pytest.approx(0.5)

    def test_zero_capacity_rejected(self):
        with pytest.raises(DeviceMemoryError):
            PageCache(0)

    def test_clear(self):
        c = PageCache(2)
        c.put(1, b"a")
        c.clear()
        assert len(c) == 0


class TestFTLIntegration:
    def test_second_read_served_from_cache(self, ftl):
        ftl.attach_read_cache(PageCache(4))
        ftl.write(1, b"data")
        reads_before = ftl.flash.page_reads
        ftl.read(1)
        ftl.read(1)
        ftl.read(1)
        assert ftl.flash.page_reads == reads_before + 1  # one real read

    def test_cache_hit_is_faster(self, ftl):
        ftl.attach_read_cache(PageCache(4), hit_cost_us=2.0)
        ftl.write(1, b"data")
        t0 = ftl.flash.clock.now_us
        ftl.read(1)
        miss_cost = ftl.flash.clock.now_us - t0
        t1 = ftl.flash.clock.now_us
        ftl.read(1)
        hit_cost = ftl.flash.clock.now_us - t1
        assert hit_cost == pytest.approx(2.0)
        assert hit_cost < miss_cost

    def test_overwrite_invalidates(self, ftl):
        ftl.attach_read_cache(PageCache(4))
        ftl.write(1, b"v1")
        ftl.read(1)
        ftl.write(1, b"v2")
        assert ftl.read(1)[:2] == b"v2"  # no stale cache serve

    def test_trim_invalidates(self, ftl):
        from repro.errors import FTLError

        ftl.attach_read_cache(PageCache(4))
        ftl.write(1, b"v1")
        ftl.read(1)
        ftl.trim(1)
        with pytest.raises(FTLError):
            ftl.read(1)

    def test_device_level_wiring(self, device_factory):
        d = device_factory(read_cache_pages=8)
        assert d.ftl._cache is not None
        d.driver.put(b"k", b"v" * 100)
        d.driver.flush()
        reads_before = d.flash.page_reads
        d.driver.get(b"k")
        first = d.flash.page_reads - reads_before
        d.driver.get(b"k")
        second = d.flash.page_reads - reads_before - first
        assert second < max(first, 1) or first == 0

    def test_cache_off_by_default(self, device_factory):
        assert device_factory().ftl._cache is None
