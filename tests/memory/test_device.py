"""Tests for device DRAM and regions."""

import pytest

from repro.errors import DeviceMemoryError
from repro.memory.device import DeviceDRAM


class TestDeviceDRAM:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(DeviceMemoryError):
            DeviceDRAM(0)

    def test_write_read_roundtrip(self):
        dram = DeviceDRAM(1024)
        dram.write(100, b"hello")
        assert dram.read(100, 5) == b"hello"

    def test_bounds_checked(self):
        dram = DeviceDRAM(64)
        with pytest.raises(DeviceMemoryError):
            dram.write(60, b"too long")
        with pytest.raises(DeviceMemoryError):
            dram.read(64, 1)
        with pytest.raises(DeviceMemoryError):
            dram.read(-1, 1)

    def test_memcpy_moves_bytes_and_counts(self):
        dram = DeviceDRAM(1024)
        dram.write(0, b"abcdef")
        dram.memcpy(dst=100, src=0, nbytes=6)
        assert dram.read(100, 6) == b"abcdef"
        assert dram.memcpy_bytes_total == 6

    def test_fill(self):
        dram = DeviceDRAM(64)
        dram.fill(8, 4, 0xAB)
        assert dram.read(8, 4) == b"\xab\xab\xab\xab"

    def test_fill_rejects_bad_byte(self):
        with pytest.raises(DeviceMemoryError):
            DeviceDRAM(64).fill(0, 4, 300)


class TestRegions:
    def test_carve_sequential_regions(self):
        dram = DeviceDRAM(1000)
        a = dram.carve_region("a", 400)
        b = dram.carve_region("b", 600)
        assert a.base == 0
        assert b.base == 400

    def test_carve_overflow_rejected(self):
        dram = DeviceDRAM(100)
        dram.carve_region("a", 80)
        with pytest.raises(DeviceMemoryError):
            dram.carve_region("b", 21)

    def test_region_write_read_relative(self):
        dram = DeviceDRAM(1000)
        dram.carve_region("pad", 100)
        r = dram.carve_region("r", 100)
        r.write(10, b"xy")
        assert r.read(10, 2) == b"xy"
        assert dram.read(110, 2) == b"xy"

    def test_region_write_cannot_overrun(self):
        dram = DeviceDRAM(1000)
        r = dram.carve_region("r", 16)
        with pytest.raises(DeviceMemoryError):
            r.write(10, b"1234567")

    def test_region_read_cannot_overrun(self):
        dram = DeviceDRAM(1000)
        r = dram.carve_region("r", 16)
        with pytest.raises(DeviceMemoryError):
            r.read(10, 7)

    def test_abs_and_rel_addresses_invert(self):
        dram = DeviceDRAM(1000)
        dram.carve_region("pad", 128)
        r = dram.carve_region("r", 64)
        assert r.rel_offset(r.abs_addr(10)) == 10

    def test_abs_addr_bounds(self):
        dram = DeviceDRAM(1000)
        r = dram.carve_region("r", 64)
        with pytest.raises(DeviceMemoryError):
            r.abs_addr(65)

    def test_region_fill(self):
        dram = DeviceDRAM(256)
        r = dram.carve_region("r", 64)
        r.write(0, b"zzzz")
        r.fill(0, 4, 0)
        assert r.read(0, 4) == b"\x00" * 4
