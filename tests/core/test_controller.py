"""Tests for the device-side controller: command handling end to end.

These drive the controller through real queues and commands on a small
assembled device (conftest's ``small_device``), asserting on device-side
state: buffer contents, LSM entries, memcpy accounting, completions.
"""

import pytest

from repro.errors import NVMeError
from repro.nvme.kv import (
    build_retrieve_command,
    build_store_command,
    build_transfer_command,
    build_write_command,
)
from repro.nvme.opcodes import StatusCode
from repro.nvme.prp import build_prp


def submit(device, cmd):
    device.controller.sq.submit(cmd)
    cqe = device.controller.process_next()
    device.controller.cq.reap()
    return cqe


class TestWritePath:
    def test_inline_write_commits_value(self, small_device):
        d = small_device
        cmd = build_write_command(1, b"k1", 5, inline=b"hello", final=True)
        cqe = submit(d, cmd)
        assert cqe.ok
        addr = d.lsm.get_address(b"k1")
        assert d.vlog.read(addr) == b"hello"

    def test_write_plus_transfer_reassembles(self, small_device):
        d = small_device
        value = bytes(range(120))
        submit(d, build_write_command(2, b"k2", 120, inline=value[:35], final=False))
        submit(d, build_transfer_command(2, value[35:91], final=False))
        cqe = submit(d, build_transfer_command(2, value[91:], final=True))
        assert cqe.ok
        assert d.vlog.read(d.lsm.get_address(b"k2")) == value

    def test_transfer_without_pending_write_rejected(self, small_device):
        d = small_device
        with pytest.raises(NVMeError):
            submit(d, build_transfer_command(9, b"orphan", final=True))

    def test_final_with_outstanding_bytes_rejected(self, small_device):
        d = small_device
        with pytest.raises(NVMeError):
            submit(d, build_write_command(3, b"k3", 100, inline=b"x" * 35, final=True))

    def test_store_via_prp(self, small_device):
        d = small_device
        value = b"v" * 2048
        buf = d.host_mem.stage_value(value)
        prp = build_prp(d.host_mem, buf)
        cqe = submit(d, build_store_command(4, b"k4", 2048, prp))
        assert cqe.ok
        assert d.vlog.read(d.lsm.get_address(b"k4")) == value

    def test_hybrid_write_with_tail(self, small_device):
        d = small_device
        value = bytes(i % 251 for i in range(4096 + 32))
        head_buf = d.host_mem.stage_value(value[:4096])
        prp = build_prp(d.host_mem, head_buf)
        submit(d, build_write_command(5, b"k5", len(value), prp=prp, final=False))
        cqe = submit(d, build_transfer_command(5, value[4096:], final=True))
        assert cqe.ok
        assert d.vlog.read(d.lsm.get_address(b"k5")) == value

    def test_oversized_value_rejected_with_status(self, device_factory):
        d = device_factory()
        too_big = d.config.max_value_bytes + 1
        cmd = build_write_command(6, b"k6", too_big, inline=b"x" * 35, final=False)
        cqe = submit(d, cmd)
        assert cqe.status is StatusCode.INVALID_FIELD

    def test_memcpy_charged_for_piggyback_fragments(self, small_device):
        d = small_device
        before = d.controller.metrics.counter("memcpy_bytes").value
        submit(d, build_write_command(7, b"k7", 20, inline=b"y" * 20, final=True))
        assert d.controller.metrics.counter("memcpy_bytes").value == before + 20

    def test_memcpy_per_op_recorded_at_commit(self, small_device):
        d = small_device
        submit(d, build_write_command(8, b"k8", 10, inline=b"z" * 10, final=True))
        stat = d.controller.metrics.stat("memcpy_us_per_op")
        assert stat.count == 1
        assert stat.mean > 0


class TestReadPath:
    def _put(self, d, cid, key, value):
        submit(
            d,
            build_write_command(cid, key, len(value), inline=value[:35],
                                final=len(value) <= 35),
        )
        pos = 35
        while pos < len(value):
            frag = value[pos : pos + 56]
            pos += len(frag)
            submit(d, build_transfer_command(cid, frag, final=pos >= len(value)))

    def test_retrieve_returns_value_via_dma(self, small_device):
        d = small_device
        self._put(d, 10, b"rk", b"retrieve me!")
        buf = d.host_mem.alloc_buffer(4096)
        prp = build_prp(d.host_mem, buf)
        cqe = submit(d, build_retrieve_command(11, b"rk", 4096, prp))
        assert cqe.ok
        assert cqe.result == 12
        assert buf.tobytes()[:12] == b"retrieve me!"

    def test_retrieve_missing_key(self, small_device):
        d = small_device
        buf = d.host_mem.alloc_buffer(4096)
        prp = build_prp(d.host_mem, buf)
        cqe = submit(d, build_retrieve_command(12, b"none", 4096, prp))
        assert cqe.status is StatusCode.KEY_NOT_FOUND

    def test_retrieve_too_small_buffer(self, small_device):
        d = small_device
        self._put(d, 13, b"big", b"v" * 300)
        buf = d.host_mem.alloc_buffer(100)
        prp = build_prp(d.host_mem, buf)
        cqe = submit(d, build_retrieve_command(14, b"big", 100, prp))
        assert cqe.status is StatusCode.CAPACITY_EXCEEDED
        assert cqe.result == 300  # actual size reported

    def test_retrieve_unflushed_value_read_your_writes(self, small_device):
        """Values still in the NAND page buffer must be readable."""
        d = small_device
        self._put(d, 15, b"fresh", b"still buffered")
        assert d.flash.page_programs == 0 or True  # flushed or not — must read
        buf = d.host_mem.alloc_buffer(4096)
        prp = build_prp(d.host_mem, buf)
        cqe = submit(d, build_retrieve_command(16, b"fresh", 4096, prp))
        assert cqe.ok
        assert buf.tobytes()[: cqe.result] == b"still buffered"


class TestMaintenance:
    def test_flush_all_drains_buffer_and_memtable(self, small_device):
        d = small_device
        submit(d, build_write_command(20, b"fk", 4, inline=b"data", final=True))
        d.controller.flush_all()
        assert d.buffer.open_entries == 0
        assert d.lsm.memtable.is_empty
        # Value survives entirely on NAND now.
        assert d.vlog.read(d.lsm.get_address(b"fk")) == b"data"

    def test_flush_all_with_pending_transfer_rejected(self, small_device):
        d = small_device
        submit(d, build_write_command(21, b"pk", 100, inline=b"x" * 35, final=False))
        with pytest.raises(NVMeError):
            d.controller.flush_all()

    def test_commands_processed_counter(self, small_device):
        d = small_device
        submit(d, build_write_command(22, b"ck", 3, inline=b"abc", final=True))
        assert d.controller.metrics.counter("commands_processed").value == 1


class TestHybridAcrossPolicies:
    """Hybrid values (DMA head + piggybacked tail) must stay contiguous in
    the vLog under every packing policy — including All-Packing's staged
    path, where the head is memcpy'd to an unaligned write pointer."""

    @pytest.mark.parametrize(
        "packing", ["block", "all", "selective", "backfill", "integrated"]
    )
    def test_hybrid_value_contiguous(self, device_factory, packing):
        from repro.core.config import PackingPolicyKind, TransferMode

        d = device_factory(
            transfer_mode=TransferMode.HYBRID,
            packing=PackingPolicyKind(packing),
        )
        # Unalign the WP first with a small piggybacked value.
        small = build_write_command(1, b"pre", 7, inline=b"precede", final=True)
        submit(d, small)
        value = bytes(i % 253 for i in range(2 * 4096 + 300))
        d.driver.put(b"hy", value)
        assert d.driver.get(b"hy").value == value
        # And after a full drain (read back from NAND).
        d.driver.flush()
        assert d.driver.get(b"hy").value == value


class TestInterleavedAssembly:
    """The controller keys in-flight values by cid, so an async driver may
    interleave two values' transfer commands. Each value's fragments write
    into its own reserved placement — contiguity is per-value, not global."""

    def test_two_values_interleaved(self, small_device):
        d = small_device
        a = bytes(range(100))
        b = bytes(reversed(range(100)))
        submit(d, build_write_command(70, b"ka", 100, inline=a[:35], final=False))
        submit(d, build_write_command(71, b"kb", 100, inline=b[:35], final=False))
        submit(d, build_transfer_command(70, a[35:91], final=False))
        submit(d, build_transfer_command(71, b[35:91], final=False))
        submit(d, build_transfer_command(71, b[91:], final=True))
        submit(d, build_transfer_command(70, a[91:], final=True))
        assert d.vlog.read(d.lsm.get_address(b"ka")) == a
        assert d.vlog.read(d.lsm.get_address(b"kb")) == b


class TestSoak:
    def test_integrated_policy_soak_with_stats_audit(self, device_factory):
        """A longer mixed soak on the integrated policy, audited through
        the NVMe stats log rather than Python introspection."""
        from repro.core.config import PackingPolicyKind

        d = device_factory(packing=PackingPolicyKind.INTEGRATED,
                           buffer_entries=4, dlt_capacity=4)
        model = {}
        for i in range(2500):
            key = f"k{i % 251:03d}".encode()
            size = 1 + (i * 193) % 6000
            value = bytes((i + j) % 256 for j in range(size))
            d.driver.put(key, value)
            model[key] = value
        for key, value in list(model.items())[::17]:
            assert d.driver.get(key).value == value
        d.driver.flush()
        stats = d.driver.read_stats_log()
        assert stats["nand_page_programs"] == d.flash.page_programs
        assert stats["commands_processed"] > 2500
        assert stats["buffer_flushes"] > 0
