"""Tests for bulk PUT (the §1 host-side-batching comparator) and HostBatcher."""

import pytest

from repro.errors import KeyNotFoundError, NVMeError
from repro.host.api import KVStore
from repro.host.batcher import HostBatcher
from repro.nvme.bulk import pack_bulk_payload, unpack_bulk_payload

from tests.conftest import small_config


@pytest.fixture
def store():
    return KVStore.open(small_config())


class TestPayloadCodec:
    def test_roundtrip(self):
        pairs = [(b"k1", b"v1"), (b"key-two", b"x" * 3000), (b"k3", b"\x00\xff")]
        assert unpack_bulk_payload(pack_bulk_payload(pairs)) == pairs

    def test_empty_rejected(self):
        with pytest.raises(NVMeError):
            pack_bulk_payload([])

    def test_bad_key_rejected(self):
        with pytest.raises(NVMeError):
            pack_bulk_payload([(b"", b"v")])
        with pytest.raises(NVMeError):
            pack_bulk_payload([(b"x" * 17, b"v")])

    def test_empty_value_rejected(self):
        with pytest.raises(NVMeError):
            pack_bulk_payload([(b"k", b"")])

    def test_truncated_payload_detected(self):
        payload = pack_bulk_payload([(b"key", b"value")])
        with pytest.raises(NVMeError):
            unpack_bulk_payload(payload[:-2])


class TestBulkPut:
    def test_pairs_stored_and_readable(self, store):
        pairs = [(f"bk{i:03d}".encode(), bytes([i]) * (i + 1)) for i in range(20)]
        result = store.driver.bulk_put(pairs)
        assert result.ok
        assert result.commands == 1
        for key, value in pairs:
            assert store.get(key) == value

    def test_one_command_regardless_of_pair_count(self, store):
        from repro.pcie.metrics import TrafficCategory

        before = store.device.link.meter.transactions_for(TrafficCategory.SQ_ENTRY)
        store.driver.bulk_put([(f"k{i}".encode(), b"v" * 50) for i in range(30)])
        sent = store.device.link.meter.transactions_for(
            TrafficCategory.SQ_ENTRY
        ) - before
        assert sent == 1

    def test_unpack_cost_charged_per_pair(self, store):
        t0 = store.device.clock.now_us
        store.driver.bulk_put([(f"k{i}".encode(), b"v") for i in range(10)])
        elapsed = store.device.clock.now_us - t0
        assert elapsed >= 10 * store.device.latency.unpack_per_pair_us

    def test_values_packed_densely(self, store):
        """Bulk values go through the packing path (KAML-style log)."""
        store.driver.bulk_put([(f"k{i}".encode(), b"v" * 100) for i in range(10)])
        store.flush()
        # 1000 value bytes -> one NAND page (plus index), not ten 4K slots.
        assert store.device.flash.page_programs <= 3


class TestHostBatcher:
    def test_batches_flush_at_threshold(self, store):
        batcher = HostBatcher(store, batch_pairs=8)
        for i in range(20):
            batcher.put(f"k{i:02d}".encode(), b"v")
        assert batcher.batches_sent == 2
        assert batcher.exposure == 4
        batcher.flush()
        assert batcher.exposure == 0
        assert batcher.pairs_sent == 20

    def test_max_exposure_tracked(self, store):
        batcher = HostBatcher(store, batch_pairs=16)
        for i in range(10):
            batcher.put(f"k{i:02d}".encode(), b"v")
        assert batcher.max_exposure == 10

    def test_power_failure_loses_acknowledged_writes(self, store):
        """The paper's §1 warning, demonstrated: buffered-but-unsent
        writes vanish in a host crash."""
        batcher = HostBatcher(store, batch_pairs=100)
        for i in range(10):
            batcher.put(f"k{i:02d}".encode(), b"important")
        lost = batcher.simulate_power_failure()
        assert lost == 10
        for i in range(10):
            with pytest.raises(KeyNotFoundError):
                store.get(f"k{i:02d}".encode())

    def test_bandslim_has_zero_exposure_by_contrast(self, store):
        """Per-pair fine-grained transfer acknowledges only durable writes."""
        store.put(b"safe", b"v")
        # Nothing host-buffered: the value is already on the device.
        assert store.get(b"safe") == b"v"

    def test_bad_batch_size_rejected(self, store):
        with pytest.raises(NVMeError):
            HostBatcher(store, batch_pairs=0)
