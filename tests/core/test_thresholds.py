"""Tests for the exploratory threshold calibration (§3.2)."""

import pytest

from repro.core.config import BandSlimConfig
from repro.core.thresholds import CalibrationResult, ThresholdCalibrator
from repro.errors import ConfigError
from repro.sim.latency import LatencyModel


@pytest.fixture(scope="module")
def result():
    """One shared calibration run (it sweeps many device builds)."""
    calibrator = ThresholdCalibrator(
        ops_per_point=5,
        sizes=(8, 32, 64, 91, 128, 256, 1024, 4096),
        tails=(8, 56, 128),
    )
    return calibrator.calibrate()


class TestCalibration:
    def test_threshold1_in_two_command_range(self, result):
        """With the default latency model, piggybacking wins through two
        commands (91 B) and loses from three — the Fig 8 crossover."""
        assert 36 <= result.threshold1 <= 91

    def test_threshold2_zero_with_default_model(self, result):
        """Fig 9(b): hybrid never beats PRP on response time."""
        assert result.threshold2 == 0

    def test_curves_recorded(self, result):
        assert set(result.curves) == {"piggyback", "prp", "hybrid"}
        sizes = [s for s, _ in result.curves["piggyback"]]
        assert sizes == sorted(sizes)

    def test_piggyback_monotone_in_command_count(self, result):
        curve = dict(result.curves["piggyback"])
        assert curve[8] < curve[128] < curve[1024]

    def test_prp_flat_below_page(self, result):
        """Baseline response constant for all sub-page sizes (Fig 8)."""
        curve = dict(result.curves["prp"])
        assert curve[8] == pytest.approx(curve[1024], rel=0.05)

    def test_apply_installs_thresholds(self, result):
        cfg = result.apply(BandSlimConfig())
        assert cfg.threshold1 == result.threshold1
        assert cfg.threshold2 == result.threshold2


class TestCalibratorConfig:
    def test_rejects_zero_ops(self):
        with pytest.raises(ConfigError):
            ThresholdCalibrator(ops_per_point=0)

    def test_slower_dma_raises_threshold1(self):
        """If DMA is costlier, piggybacking stays attractive for longer."""
        slow_dma = LatencyModel().with_overrides(dma_setup_us=40.0)
        calibrator = ThresholdCalibrator(
            latency=slow_dma, ops_per_point=3,
            sizes=(32, 91, 147, 203, 259), tails=(8,),
        )
        result = calibrator.calibrate()
        assert result.threshold1 > 91

    def test_result_is_dataclass_roundtrippable(self):
        r = CalibrationResult(threshold1=91, threshold2=0)
        assert r.apply(BandSlimConfig()).threshold1 == 91
