"""Tests for BandSlim configuration and the paper's presets (§4.1)."""

import pytest

from repro.core.config import (
    BandSlimConfig,
    PRESETS,
    PackingPolicyKind,
    TransferMode,
    preset,
)
from repro.errors import ConfigError


class TestValidation:
    def test_default_config_valid(self):
        cfg = BandSlimConfig()
        assert cfg.transfer_mode is TransferMode.ADAPTIVE

    def test_rejects_negative_threshold(self):
        with pytest.raises(ConfigError):
            BandSlimConfig(threshold1=-1)

    def test_rejects_nonpositive_coefficients(self):
        with pytest.raises(ConfigError):
            BandSlimConfig(alpha=0)
        with pytest.raises(ConfigError):
            BandSlimConfig(beta=-1)

    def test_rejects_zero_buffer_entries(self):
        with pytest.raises(ConfigError):
            BandSlimConfig(buffer_entries=0)

    def test_rejects_max_value_beyond_scratch(self):
        with pytest.raises(ConfigError):
            BandSlimConfig(scratch_bytes=1 << 20, max_value_bytes=1 << 21)

    def test_rejects_bad_vlog_fraction(self):
        with pytest.raises(ConfigError):
            BandSlimConfig(vlog_fraction=0.99)


class TestEffectiveThresholds:
    def test_alpha_scales_threshold1(self):
        """§3.2: users valuing traffic raise α to favor piggybacking."""
        cfg = BandSlimConfig(threshold1=91, alpha=2.0)
        assert cfg.effective_threshold1 == 182.0

    def test_beta_scales_threshold2(self):
        cfg = BandSlimConfig(threshold2=56, beta=3.0)
        assert cfg.effective_threshold2 == 168.0

    def test_unity_coefficients_identity(self):
        cfg = BandSlimConfig(threshold1=91, threshold2=56)
        assert cfg.effective_threshold1 == 91
        assert cfg.effective_threshold2 == 56


class TestOverrides:
    def test_with_overrides_copies(self):
        a = BandSlimConfig()
        b = a.with_overrides(threshold1=10)
        assert b.threshold1 == 10
        assert a.threshold1 != 10

    def test_frozen(self):
        with pytest.raises(AttributeError):
            BandSlimConfig().threshold1 = 5  # type: ignore[misc]


class TestPresets:
    def test_all_paper_configs_present(self):
        expected = {
            "baseline", "piggyback", "hybrid", "adaptive",
            "packing", "piggy+pack", "block", "all", "select", "backfill",
        }
        # "integrated" is this repo's extension (§4.3 closing remark).
        assert expected | {"integrated"} == set(PRESETS)

    def test_baseline_is_prp_block(self):
        cfg = preset("baseline")
        assert cfg.transfer_mode is TransferMode.BASELINE
        assert cfg.packing is PackingPolicyKind.BLOCK

    def test_piggy_pack_combination(self):
        cfg = preset("piggy+pack")
        assert cfg.transfer_mode is TransferMode.PIGGYBACK
        assert cfg.packing is PackingPolicyKind.ALL

    def test_fig12_presets_use_adaptive_transfer(self):
        """§4.3: "The driver transfers values using the adaptive method"."""
        for name in ("block", "all", "select", "backfill"):
            assert preset(name).transfer_mode is TransferMode.ADAPTIVE

    def test_preset_case_insensitive(self):
        assert preset("Baseline") == preset("baseline")

    def test_preset_with_overrides(self):
        cfg = preset("baseline", nand_io_enabled=False)
        assert not cfg.nand_io_enabled

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigError):
            preset("warp-drive")
