"""Tests for batched trailing-command submission (extension, §4.2 diagnosis)."""

import pytest

from repro.core.config import TransferMode
from repro.pcie.metrics import TrafficCategory

from tests.conftest import small_config


def piggy_store(batched: bool, **kw):
    from repro.host.api import KVStore

    return KVStore.open(
        small_config(
            transfer_mode=TransferMode.PIGGYBACK,
            batched_submission=batched,
            nand_io_enabled=False,
            **kw,
        )
    )


class TestCorrectness:
    @pytest.mark.parametrize("size", [36, 91, 128, 1000, 5000])
    def test_roundtrip_matches_sync_path(self, size):
        value = bytes(i % 256 for i in range(size))
        batched = piggy_store(True)
        batched.put(b"k", value)
        # NAND is disabled; read through the buffer.
        assert batched.get(b"k") == value

    def test_batch_larger_than_queue_depth(self):
        from repro.device.kvssd import KVSSD

        cfg = small_config(
            transfer_mode=TransferMode.PIGGYBACK,
            batched_submission=True,
            nand_io_enabled=False,
        )
        device = KVSSD.build(config=cfg, queue_depth=4)
        value = bytes(i % 256 for i in range(2000))  # ~36 fragments >> depth 4
        device.driver.put(b"big", value)
        assert device.driver.get(b"big").value == value


class TestAmortization:
    def test_batching_cuts_large_value_response(self):
        """The §4.2 diagnosis, quantified: remove the per-command round
        trips and piggybacking's large-value penalty shrinks."""
        sync = piggy_store(False)
        batched = piggy_store(True)
        value = b"x" * 2048  # ~37 trailing commands
        sync_lat = sync.put(b"k", value)
        batched_lat = batched.put(b"k", value)
        # Per trailing command, batching removes the doorbell MMIO and the
        # completion handling but still pays SQE fetch + firmware decode:
        # roughly half the round trip remains.
        assert batched_lat < sync_lat * 0.65

    def test_batching_reduces_doorbell_mmio(self):
        sync = piggy_store(False)
        batched = piggy_store(True)
        value = b"x" * 2048
        sync.put(b"k", value)
        batched.put(b"k", value)
        sync_mmio = sync.device.link.meter.mmio_bytes
        batched_mmio = batched.device.link.meter.mmio_bytes
        assert batched_mmio < sync_mmio / 5

    def test_sqe_traffic_identical(self):
        """Batching amortizes doorbells, not command fetches."""
        sync = piggy_store(False)
        batched = piggy_store(True)
        value = b"x" * 1024
        sync.put(b"k", value)
        batched.put(b"k", value)
        assert sync.device.link.meter.bytes_for(
            TrafficCategory.SQ_ENTRY
        ) == batched.device.link.meter.bytes_for(TrafficCategory.SQ_ENTRY)

    def test_small_values_unaffected(self):
        """Single-command values have nothing to batch."""
        sync = piggy_store(False)
        batched = piggy_store(True)
        a = sync.put(b"k", b"v" * 20)
        b = batched.put(b"k", b"v" * 20)
        assert a == b
