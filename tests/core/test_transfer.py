"""Tests for transfer planning: piggyback/PRP/hybrid/adaptive (§3.2)."""

import pytest

from repro.core.config import BandSlimConfig, TransferMode
from repro.core.transfer import TransferMethod, TransferPlanner
from repro.errors import NVMeError
from repro.units import KIB, MEM_PAGE_SIZE


def planner(mode=TransferMode.ADAPTIVE, **cfg):
    return TransferPlanner(BandSlimConfig(transfer_mode=mode, **cfg))


class TestPiggybackPlans:
    def test_tiny_value_single_command(self):
        plan = TransferPlanner.plan_piggyback(20)
        assert plan.method is TransferMethod.PIGGYBACK
        assert plan.inline_bytes == 20
        assert plan.trailing_fragments == ()
        assert plan.command_count == 1
        assert plan.dma_pages == 0

    def test_exactly_35_bytes_single_command(self):
        plan = TransferPlanner.plan_piggyback(35)
        assert plan.command_count == 1

    def test_36_bytes_needs_trailing(self):
        plan = TransferPlanner.plan_piggyback(36)
        assert plan.inline_bytes == 35
        assert plan.trailing_fragments == (1,)
        assert plan.command_count == 2

    def test_paper_128_byte_example(self):
        """§3.2/Figure 5(b): 128 B needs 3 commands (35 + 56 + 37)."""
        plan = TransferPlanner.plan_piggyback(128)
        assert plan.command_count == 3
        assert plan.inline_bytes == 35
        assert plan.trailing_fragments == (56, 37)

    def test_coverage_invariant(self):
        for size in (1, 35, 36, 91, 92, 1000, 4096):
            plan = TransferPlanner.plan_piggyback(size)
            assert plan.inline_bytes + sum(plan.trailing_fragments) == size

    def test_rejects_nonpositive(self):
        with pytest.raises(NVMeError):
            TransferPlanner.plan_piggyback(0)


class TestPRPPlans:
    def test_sub_page_value_one_page(self):
        plan = TransferPlanner.plan_prp(32)
        assert plan.method is TransferMethod.PRP
        assert plan.dma_pages == 1
        assert plan.dma_wire_bytes == MEM_PAGE_SIZE
        assert plan.command_count == 1

    def test_page_plus_32_two_pages(self):
        """The paper's (4K+32)B example moves 8 KiB (§2.3)."""
        plan = TransferPlanner.plan_prp(4096 + 32)
        assert plan.dma_pages == 2
        assert plan.dma_wire_bytes == 8192

    def test_16k_four_pages(self):
        assert TransferPlanner.plan_prp(16 * KIB).dma_pages == 4


class TestHybridPlans:
    def test_head_via_dma_tail_piggybacked(self):
        plan = TransferPlanner.plan_hybrid(4096 + 32)
        assert plan.method is TransferMethod.HYBRID
        assert plan.dma_pages == 1
        assert plan.inline_bytes == 0  # PRP occupies the piggyback fields
        assert plan.trailing_fragments == (32,)
        assert plan.command_count == 2

    def test_long_tail_multiple_fragments(self):
        plan = TransferPlanner.plan_hybrid(4096 + 130)
        assert plan.trailing_fragments == (56, 56, 18)

    def test_sub_page_degenerates_to_piggyback(self):
        plan = TransferPlanner.plan_hybrid(100)
        assert plan.method is TransferMethod.PIGGYBACK

    def test_exact_pages_degenerate_to_prp(self):
        plan = TransferPlanner.plan_hybrid(8192)
        assert plan.method is TransferMethod.PRP

    def test_multi_page_head(self):
        plan = TransferPlanner.plan_hybrid(2 * 4096 + 5)
        assert plan.dma_pages == 2
        assert plan.trailing_fragments == (5,)


class TestModeDispatch:
    def test_baseline_always_prp(self):
        p = planner(TransferMode.BASELINE)
        for size in (8, 100, 5000):
            assert p.plan(size).method is TransferMethod.PRP

    def test_piggyback_always_piggyback(self):
        p = planner(TransferMode.PIGGYBACK)
        for size in (8, 100, 5000):
            assert p.plan(size).method is TransferMethod.PIGGYBACK

    def test_hybrid_mode(self):
        p = planner(TransferMode.HYBRID)
        assert p.plan(4100).method is TransferMethod.HYBRID

    def test_max_value_enforced(self):
        p = planner(TransferMode.BASELINE, max_value_bytes=1 * KIB, scratch_bytes=64 * KIB)
        with pytest.raises(NVMeError):
            p.plan(2 * KIB)


class TestAdaptive:
    def test_small_values_piggybacked(self):
        p = planner()
        assert p.plan(8).method is TransferMethod.PIGGYBACK
        assert p.plan(91).method is TransferMethod.PIGGYBACK

    def test_above_threshold1_uses_prp(self):
        """Paper §4.2: adaptive "shifts from piggybacking to page-unit
        DMA" at the calibrated threshold."""
        p = planner()
        assert p.plan(92).method is TransferMethod.PRP
        assert p.plan(128).method is TransferMethod.PRP
        assert p.plan(2 * KIB).method is TransferMethod.PRP

    def test_alpha_extends_piggyback_range(self):
        p = planner(alpha=2.0)
        assert p.plan(180).method is TransferMethod.PIGGYBACK

    def test_hybrid_disabled_when_threshold2_zero(self):
        p = planner()  # threshold2 defaults to 0
        assert p.plan(4096 + 32).method is TransferMethod.PRP

    def test_hybrid_chosen_for_small_tails(self):
        p = planner(threshold2=56)
        assert p.plan(4096 + 32).method is TransferMethod.HYBRID
        assert p.plan(4096 + 57).method is TransferMethod.PRP

    def test_beta_extends_hybrid_range(self):
        p = planner(threshold2=56, beta=2.0)
        assert p.plan(4096 + 100).method is TransferMethod.HYBRID

    def test_sub_page_never_hybrid(self):
        p = planner(threshold2=4096)
        assert p.plan(2000).method is TransferMethod.PRP


class TestTrafficPrediction:
    def test_piggyback_wire_bytes(self):
        p = planner()
        plan = TransferPlanner.plan_piggyback(128)
        assert p.predicted_wire_bytes(plan, 88) == 3 * 88

    def test_prp_wire_bytes_includes_page_padding(self):
        p = planner()
        plan = TransferPlanner.plan_prp(32)
        assert p.predicted_wire_bytes(plan, 88) == 88 + 4096

    def test_prp_list_fetch_counted(self):
        p = planner()
        plan = TransferPlanner.plan_prp(3 * 4096)
        assert p.predicted_wire_bytes(plan, 88) == 88 + 3 * 4096 + 2 * 8

    def test_command_bytes(self):
        plan = TransferPlanner.plan_piggyback(128)
        assert TransferPlanner.command_bytes(plan) == 3 * 64
