"""Tests for the NAND page buffer and the four packing policies (§3.3).

These tests drive the policies directly (no NVMe layer): place values,
write bytes, and assert on placements, flush behavior, fragmentation and
the DLT interactions of Figure 7.
"""

import pytest

from repro.core.config import BandSlimConfig, PackingPolicyKind
from repro.core.dlt import DMALogTable
from repro.core.packing import (
    AllPacking,
    BackfillPacking,
    BlockPacking,
    NandPageBuffer,
    SelectivePacking,
    make_policy,
)
from repro.errors import PackingError
from repro.lsm.addressing import AddressingScheme
from repro.lsm.vlog import VLog
from repro.memory.device import DeviceDRAM
from repro.units import KIB, MEM_PAGE_SIZE

PAGE = 16 * KIB


@pytest.fixture
def rig(ftl):
    """buffer + vlog backed by the tiny-geometry FTL; 4-entry pool."""
    pool = 4
    dram = DeviceDRAM(pool * PAGE)
    region = dram.carve_region("buf", pool * PAGE)
    vlog = VLog(ftl, base_lpn=0, capacity_pages=64)
    buffer = NandPageBuffer(region, vlog, ftl, pool_entries=pool)
    return buffer, vlog, ftl


def make(policy_cls, buffer, dlt_capacity=8):
    if policy_cls is BackfillPacking:
        dlt = DMALogTable(dlt_capacity, buffer.page_size, buffer.vlog.capacity_pages)
        return BackfillPacking(buffer, dlt)
    return policy_cls(buffer)


class TestNandPageBuffer:
    def test_entries_open_sequentially_with_consecutive_lpns(self, rig):
        buffer, vlog, _ = rig
        buffer.open_through(3 * PAGE)
        assert buffer.open_entries == 3
        assert vlog.pages_allocated == 3

    def test_write_and_read_bytes(self, rig):
        buffer, _, _ = rig
        buffer.open_through(PAGE)
        buffer.write_bytes(100, b"hello")
        assert buffer.read_bytes(100, 5) == b"hello"

    def test_write_spanning_entries(self, rig):
        buffer, _, _ = rig
        buffer.open_through(2 * PAGE)
        data = b"x" * 100
        buffer.write_bytes(PAGE - 50, data)
        assert buffer.read_bytes(PAGE - 50, 100) == data

    def test_write_to_unopened_entry_rejected(self, rig):
        buffer, _, _ = rig
        with pytest.raises(PackingError):
            buffer.write_bytes(0, b"x")

    def test_flush_below_writes_nand_in_order(self, rig):
        buffer, _, ftl = rig
        buffer.open_through(2 * PAGE)
        buffer.write_bytes(0, b"first")
        buffer.write_bytes(PAGE, b"second")
        events = buffer.flush_below(2 * PAGE)
        assert [e.lpn for e in events] == [0, 1]
        assert ftl.read(0)[:5] == b"first"
        assert ftl.read(1)[:6] == b"second"

    def test_flush_below_partial_frontier(self, rig):
        buffer, _, _ = rig
        buffer.open_through(2 * PAGE)
        events = buffer.flush_below(PAGE + 1)  # entry 1 not fully below
        assert len(events) == 1
        assert buffer.open_entries == 1

    def test_unflushed_page_served_then_gone(self, rig):
        buffer, _, _ = rig
        buffer.open_through(PAGE)
        buffer.write_bytes(0, b"live")
        assert buffer.unflushed_page(0)[:4] == b"live"
        buffer.flush_below(PAGE)
        assert buffer.unflushed_page(0) is None

    def test_pool_overflow_force_flushes_oldest(self, rig):
        buffer, _, _ = rig
        events = buffer.open_through(5 * PAGE)  # pool is 4
        forced = [e for e in events if e.forced]
        assert len(forced) == 1
        assert forced[0].entry_index == 0
        assert buffer.metrics.counter("forced_flushes").value == 1

    def test_slot_reuse_zeroed(self, rig):
        buffer, _, _ = rig
        buffer.open_through(PAGE)
        buffer.write_bytes(0, b"old!")
        buffer.open_through(5 * PAGE)  # forces entry 0 out; entry 4 reuses slot 0
        assert buffer.read_bytes(4 * PAGE, 4) == b"\x00" * 4

    def test_addr_of_translation(self, rig):
        buffer, _, _ = rig
        addr = buffer.addr_of(PAGE + 100, 32)
        assert addr.lpn == 1
        assert addr.offset == 100
        assert addr.size == 32

    def test_dma_page_targets_alignment_enforced(self, rig):
        buffer, _, _ = rig
        buffer.open_through(PAGE)
        with pytest.raises(PackingError):
            buffer.dma_page_targets(100, MEM_PAGE_SIZE)
        with pytest.raises(PackingError):
            buffer.dma_page_targets(0, 100)

    def test_dma_page_targets_map_into_region(self, rig):
        buffer, _, _ = rig
        buffer.open_through(2 * PAGE)
        targets = buffer.dma_page_targets(PAGE, 2 * MEM_PAGE_SIZE)
        assert targets == [
            buffer.region.abs_addr(PAGE),
            buffer.region.abs_addr(PAGE + MEM_PAGE_SIZE),
        ]

    def test_flush_all_drains(self, rig):
        buffer, _, _ = rig
        buffer.open_through(3 * PAGE)
        events = buffer.flush_all()
        assert len(events) == 3
        assert buffer.open_entries == 0

    def test_nand_io_disabled_discards(self, ftl):
        dram = DeviceDRAM(2 * PAGE)
        region = dram.carve_region("buf", 2 * PAGE)
        vlog = VLog(ftl, base_lpn=0, capacity_pages=8)
        buffer = NandPageBuffer(region, vlog, ftl, 2, nand_io_enabled=False)
        buffer.open_through(PAGE)
        buffer.flush_below(PAGE)
        assert ftl.flash.page_programs == 0


class TestBlockPacking:
    def test_every_value_starts_a_4k_slot(self, rig):
        """§2.3: in-device packing along 4 KiB boundaries."""
        buffer, _, _ = rig
        policy = make(BlockPacking, buffer)
        offsets = [policy.place_piggyback(32).value_offset for _ in range(4)]
        assert offsets == [0, 4096, 8192, 12288]

    def test_large_value_consumes_rounded_slots(self, rig):
        buffer, _, _ = rig
        policy = make(BlockPacking, buffer)
        policy.place_dma(4096 + 32, 8192)
        assert policy.place_piggyback(8).value_offset == 8192

    def test_dma_lands_direct(self, rig):
        buffer, _, _ = rig
        policy = make(BlockPacking, buffer)
        placement = policy.place_dma(2048, MEM_PAGE_SIZE)
        assert placement.direct
        assert placement.dma_target == placement.value_offset

    def test_flush_after_four_small_values(self, rig):
        """16 KiB page / 4 KiB slots: every 4th small value fills an entry."""
        buffer, _, ftl = rig
        policy = make(BlockPacking, buffer)
        for i in range(4):
            policy.place_piggyback(32)
            policy.finalize_value()
        assert ftl.flash.page_programs == 1

    def test_fragmentation_accounted(self, rig):
        buffer, _, _ = rig
        policy = make(BlockPacking, buffer)
        policy.place_piggyback(32)
        assert policy.fragmentation_bytes == 4096 - 32

    def test_page_addressing_sufficient(self, rig):
        buffer, _, _ = rig
        assert make(BlockPacking, buffer).required_addressing is AddressingScheme.PAGE


class TestAllPacking:
    def test_dense_packing_at_wp(self, rig):
        buffer, _, _ = rig
        policy = make(AllPacking, buffer)
        a = policy.place_piggyback(30)
        b = policy.place_piggyback(50)
        assert (a.value_offset, b.value_offset) == (0, 30)
        assert policy.fragmentation_bytes == 0

    def test_dma_at_aligned_wp_is_direct(self, rig):
        """§3.3.1: if WP and the DMA destination coincide, skip the memcpy."""
        buffer, _, _ = rig
        policy = make(AllPacking, buffer)
        placement = policy.place_dma(2048, MEM_PAGE_SIZE)
        assert placement.direct
        assert placement.dma_target == 0

    def test_dma_at_unaligned_wp_stages(self, rig):
        buffer, _, _ = rig
        policy = make(AllPacking, buffer)
        policy.place_piggyback(100)
        placement = policy.place_dma(2048, MEM_PAGE_SIZE)
        assert not placement.direct
        assert placement.value_offset == 100

    def test_flush_only_after_full_page_of_data(self, rig):
        buffer, _, ftl = rig
        policy = make(AllPacking, buffer)
        for _ in range(PAGE // 64):
            policy.place_piggyback(64)
            policy.finalize_value()
        assert ftl.flash.page_programs == 1

    def test_requires_fine_addressing(self, rig):
        buffer, _, _ = rig
        assert make(AllPacking, buffer).required_addressing is AddressingScheme.FINE


class TestSelectivePacking:
    def test_small_values_packed_densely(self, rig):
        buffer, _, _ = rig
        policy = make(SelectivePacking, buffer)
        a = policy.place_piggyback(10)
        b = policy.place_piggyback(20)
        assert (a.value_offset, b.value_offset) == (0, 10)

    def test_dma_skips_to_alignment_leaving_gap(self, rig):
        """Figure 7(a): C lands at the next page boundary; the gap is lost."""
        buffer, _, _ = rig
        policy = make(SelectivePacking, buffer)
        policy.place_piggyback(100)
        placement = policy.place_dma(2048, MEM_PAGE_SIZE)
        assert placement.direct
        assert placement.value_offset == 4096
        assert policy.fragmentation_bytes == 4096 - 100

    def test_wp_moves_past_dma_value(self, rig):
        """Figure 7(a): D packs right after C's value end."""
        buffer, _, _ = rig
        policy = make(SelectivePacking, buffer)
        policy.place_piggyback(100)
        policy.place_dma(2048, MEM_PAGE_SIZE)
        d = policy.place_piggyback(8)
        assert d.value_offset == 4096 + 2048

    def test_no_memcpy_for_dma_values(self, rig):
        buffer, _, _ = rig
        policy = make(SelectivePacking, buffer)
        policy.place_piggyback(1)  # unalign the WP
        placement = policy.place_dma(2048, MEM_PAGE_SIZE)
        assert placement.direct  # never staged, never copied


class TestBackfillPacking:
    def test_figure_7b_scenario(self, rig):
        """A, B piggybacked; C via DMA; D backfills at the original WP."""
        buffer, _, _ = rig
        policy = make(BackfillPacking, buffer)
        a = policy.place_piggyback(37)
        b = policy.place_piggyback(37)
        c = policy.place_dma(4096 + 512, 8192)
        d = policy.place_piggyback(37)
        assert (a.value_offset, b.value_offset) == (0, 37)
        assert c.value_offset == 4096  # next boundary past the WP
        assert d.value_offset == 74    # original WP — backfilled!
        assert policy.backfill_bytes == 37

    def test_wp_skips_colliding_region(self, rig):
        """§3.3.3: WP + size exceeding the oldest region start jumps to its
        end and consumes the entry."""
        buffer, _, _ = rig
        policy = make(BackfillPacking, buffer)
        policy.place_dma(2048, MEM_PAGE_SIZE)  # region [0, 2048) (WP was 0)
        v = policy.place_piggyback(100)
        assert v.value_offset == 2048
        assert policy.dlt.is_empty  # consumed

    def test_small_value_fits_before_region(self, rig):
        buffer, _, _ = rig
        policy = make(BackfillPacking, buffer)
        policy.place_piggyback(10)           # WP = 10
        policy.place_dma(100, MEM_PAGE_SIZE)  # region [4096, 4196)
        v = policy.place_piggyback(4000)      # 10+4000 <= 4096: fits
        assert v.value_offset == 10
        assert len(policy.dlt) == 1

    def test_too_big_value_skips_gap(self, rig):
        buffer, _, _ = rig
        policy = make(BackfillPacking, buffer)
        policy.place_piggyback(10)
        policy.place_dma(100, MEM_PAGE_SIZE)  # [4096, 4196)
        v = policy.place_piggyback(4090)      # 10+4090 > 4096: collide
        assert v.value_offset == 4196
        assert policy.fragmentation_bytes >= 4086

    def test_consecutive_dma_regions_stack(self, rig):
        buffer, _, _ = rig
        policy = make(BackfillPacking, buffer)
        c1 = policy.place_dma(2048, MEM_PAGE_SIZE)
        c2 = policy.place_dma(2048, MEM_PAGE_SIZE)
        assert c1.value_offset == 0
        assert c2.value_offset == 4096  # aligned past c1's end

    def test_multiple_region_skip_chain(self, rig):
        buffer, _, _ = rig
        policy = make(BackfillPacking, buffer)
        policy.place_dma(4000, MEM_PAGE_SIZE)   # [0, 4000)
        policy.place_dma(4000, MEM_PAGE_SIZE)   # [4096, 8096)
        v = policy.place_piggyback(200)
        # 96-byte gap at 4000 too small; value lands after second region.
        assert v.value_offset == 8096
        assert policy.dlt.is_empty

    def test_dlt_eviction_advances_wp(self, rig):
        buffer, _, _ = rig
        policy = make(BackfillPacking, buffer, dlt_capacity=2)
        policy.place_dma(2048, MEM_PAGE_SIZE)  # [0, 2048)
        policy.place_dma(2048, MEM_PAGE_SIZE)  # [4096, 6144)
        policy.place_dma(2048, MEM_PAGE_SIZE)  # [8192, ...) evicts oldest
        v = policy.place_piggyback(10)
        # WP was forced past the evicted region [0, 2048).
        assert v.value_offset >= 2048

    def test_flush_waits_for_wp(self, rig):
        """Entries ahead of the WP must not flush (backfill pending)."""
        buffer, _, ftl = rig
        policy = make(BackfillPacking, buffer)
        policy.place_dma(PAGE + 2048, 2 * PAGE)  # spans entries 0-1
        policy.finalize_value()
        assert ftl.flash.page_programs == 0  # WP still at 0

    def test_forced_flush_bumps_wp_and_consumes_dlt(self, rig):
        buffer, _, ftl = rig
        policy = make(BackfillPacking, buffer, dlt_capacity=64)
        # Fill the 4-entry pool with DMA placements while WP stays at 0.
        for _ in range(5):
            policy.place_dma(PAGE, PAGE)  # one full entry each
            policy.finalize_value()
        assert buffer.metrics.counter("forced_flushes").value >= 1
        # WP must have been pushed past the flushed entry.
        v = policy.place_piggyback(10)
        assert v.value_offset >= PAGE

    def test_requires_fine_addressing(self, rig):
        buffer, _, _ = rig
        assert (
            make(BackfillPacking, buffer).required_addressing
            is AddressingScheme.FINE
        )


class TestMakePolicy:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            (PackingPolicyKind.BLOCK, BlockPacking),
            (PackingPolicyKind.ALL, AllPacking),
            (PackingPolicyKind.SELECTIVE, SelectivePacking),
            (PackingPolicyKind.BACKFILL, BackfillPacking),
        ],
    )
    def test_factory_dispatch(self, rig, kind, cls):
        buffer, _, _ = rig
        config = BandSlimConfig(packing=kind)
        policy = make_policy(config, buffer, vlog_pages=64)
        assert isinstance(policy, cls)

    def test_backfill_gets_dlt_sized_from_config(self, rig):
        buffer, _, _ = rig
        config = BandSlimConfig(packing=PackingPolicyKind.BACKFILL, dlt_capacity=17)
        policy = make_policy(config, buffer, vlog_pages=64)
        assert policy.dlt.capacity == 17
