"""Tests for the DMA Log Table (§3.3.3)."""

import pytest

from repro.core.dlt import DLTEntry, DMALogTable
from repro.errors import PackingError
from repro.units import KIB

PAGE_16K = 16 * KIB


def dlt(capacity=4, vlog_pages=2**26):
    return DMALogTable(capacity=capacity, nand_page_size=PAGE_16K, vlog_pages=vlog_pages)


class TestDLTEntry:
    def test_valid(self):
        e = DLTEntry(start=4096, size=2048)
        assert e.end == 6144

    def test_requires_page_aligned_start(self):
        """DMA destinations are page-aligned by the engine restriction."""
        with pytest.raises(PackingError):
            DLTEntry(start=100, size=10)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(PackingError):
            DLTEntry(start=0, size=0)


class TestFIFO:
    def test_oldest_is_fifo_head(self):
        t = dlt()
        t.push(DLTEntry(0, 100))
        t.push(DLTEntry(4096, 100))
        assert t.oldest().start == 0
        t.consume_oldest()
        assert t.oldest().start == 4096

    def test_oldest_on_empty_raises(self):
        with pytest.raises(PackingError):
            dlt().oldest()

    def test_consume_on_empty_raises(self):
        with pytest.raises(PackingError):
            dlt().consume_oldest()

    def test_len_tracking(self):
        t = dlt()
        assert t.is_empty
        t.push(DLTEntry(0, 10))
        assert len(t) == 1
        t.consume_oldest()
        assert t.is_empty

    def test_push_requires_placement_order(self):
        t = dlt()
        t.push(DLTEntry(8192, 100))
        with pytest.raises(PackingError):
            t.push(DLTEntry(4096, 100))

    def test_wraparound(self):
        t = dlt(capacity=2)
        offs = [0, 4096, 8192, 12288, 16384]
        for o in offs[:2]:
            t.push(DLTEntry(o, 50))
        t.consume_oldest()
        t.push(DLTEntry(offs[2], 50))
        assert t.oldest().start == 4096
        assert len(t) == 2


class TestOverflow:
    def test_full_push_evicts_oldest(self):
        """When full, the oldest backfill opportunity is abandoned."""
        t = dlt(capacity=2)
        t.push(DLTEntry(0, 10))
        t.push(DLTEntry(4096, 10))
        evicted = t.push(DLTEntry(8192, 10))
        assert evicted is not None and evicted.start == 0
        assert t.overflow_evictions == 1
        assert len(t) == 2
        assert t.oldest().start == 4096

    def test_no_eviction_when_space(self):
        t = dlt(capacity=2)
        assert t.push(DLTEntry(0, 10)) is None


class TestConsumeBelow:
    def test_consumes_fully_passed_regions(self):
        t = dlt()
        t.push(DLTEntry(0, 4096))
        t.push(DLTEntry(8192, 100))
        consumed = t.consume_below(8192)
        assert consumed == 1
        assert t.oldest().start == 8192

    def test_stops_at_live_region(self):
        t = dlt()
        t.push(DLTEntry(0, 100))
        assert t.consume_below(50) == 0
        assert len(t) == 1


class TestSpaceAccounting:
    def test_paper_bit_budget(self):
        """§3.3.3: 1 TB/16 KiB → 26+2 bits + 4 B size; 512 entries ≈ 4 KiB."""
        t = DMALogTable(capacity=512, nand_page_size=PAGE_16K, vlog_pages=2**26)
        assert t.entry_bits() == 26 + 2 + 32
        assert t.table_bytes() == (60 * 512 + 7) // 8  # 3840 B, under 4 KiB
        assert t.table_bytes() <= 4 * KIB

    def test_small_vlog_fewer_bits(self):
        t = DMALogTable(capacity=8, nand_page_size=PAGE_16K, vlog_pages=1024)
        assert t.entry_bits() == 10 + 2 + 32

    def test_rejects_zero_capacity(self):
        with pytest.raises(PackingError):
            DMALogTable(capacity=0, nand_page_size=PAGE_16K, vlog_pages=16)
