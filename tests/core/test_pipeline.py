"""Pipelined PUTs (driver.put_many): queue-depth semantics and overlap.

The multi-queue pipeline keeps up to ``queue_depth`` commands in flight,
books their NAND work on the channel/way timeline, and delivers
completions in finish order. These tests pin the user-visible contract:
QD=1 degenerates to the sequential path exactly, results come back in
submission order regardless of completion order, stored values survive,
and deep queues on a parallel module genuinely overlap NAND programs.
"""

import pytest

from repro.core.config import preset
from repro.device.kvssd import KVSSD
from repro.errors import NVMeError
from repro.units import KIB, MIB


def build_device(channels: int, ways: int, qd: int, **overrides) -> KVSSD:
    cfg = preset(
        "baseline",
        nand_capacity_bytes=64 * MIB,
        nand_channels=channels,
        nand_ways=ways,
        queue_depth=qd,
        **overrides,
    )
    return KVSSD.build(config=cfg)


def page_value(device: KVSSD, i: int) -> bytes:
    page = device.geometry.page_size
    return bytes([(i * 13 + j) % 256 for j in range(64)]) * (page // 64)


class TestQueueDepthOne:
    def test_qd1_put_many_is_identical_to_sequential_puts(self):
        """The degenerate configuration must not just be close — the QD=1
        path and put() must share every simulated microsecond."""
        sync = build_device(1, 1, qd=1)
        pipelined = build_device(1, 1, qd=1)
        pairs = [(b"k%03d" % i, page_value(sync, i)) for i in range(24)]

        sync_results = [sync.driver.put(k, v) for k, v in pairs]
        many_results = pipelined.driver.put_many(pairs)

        assert pipelined.clock.now_us == sync.clock.now_us
        for got, want in zip(many_results, sync_results):
            assert got.latency_us == want.latency_us
            assert got.commands == want.commands
            assert got.status is want.status
        assert (
            pipelined.link.meter.total_bytes == sync.link.meter.total_bytes
        )

    def test_explicit_queue_depth_overrides_config(self):
        device = build_device(1, 1, qd=8)
        pairs = [(b"a", page_value(device, 0))]
        # qd=1 override takes the sequential path even on a qd=8 config.
        results = device.driver.put_many(pairs, queue_depth=1)
        assert results[0].ok

    def test_zero_queue_depth_is_rejected(self):
        device = build_device(1, 1, qd=1)
        with pytest.raises(NVMeError):
            device.driver.put_many([], queue_depth=0)


class TestPipelinedResults:
    def test_results_align_with_submission_order(self):
        device = build_device(4, 8, qd=16)
        pairs = [(b"key-%04d" % i, page_value(device, i)) for i in range(40)]
        results = device.driver.put_many(pairs)
        assert len(results) == len(pairs)
        assert all(r.ok for r in results)
        assert device.driver.metrics.counter("puts").value == len(pairs)

    def test_values_survive_reordered_completions(self):
        device = build_device(4, 8, qd=16)
        pairs = [(b"key-%04d" % i, page_value(device, i)) for i in range(40)]
        device.driver.put_many(pairs)
        for key, value in pairs:
            got = device.driver.get(key, max_size=len(value))
            assert got.ok
            assert got.value == value

    def test_latencies_are_positive_and_clock_covers_all_finishes(self):
        device = build_device(4, 8, qd=16)
        pairs = [(b"key-%04d" % i, page_value(device, i)) for i in range(32)]
        t0 = device.clock.now_us
        results = device.driver.put_many(pairs)
        assert all(r.latency_us > 0 for r in results)
        # The drain loop advances the clock through every parked finish
        # time, so nothing in the module is still busy past "now".
        assert device.clock.now_us >= t0
        assert device.flash.timeline.frontier_us <= device.clock.now_us

    def test_oversize_value_raises_before_anything_is_submitted(self):
        """A bad pair anywhere in the batch must fail up front — raising
        mid-pipeline would leave earlier completions parked undelivered."""
        device = build_device(4, 8, qd=8)
        too_big = b"x" * (device.config.max_value_bytes + 1)
        pairs = [
            (b"ok-1", page_value(device, 1)),
            (b"huge", too_big),
        ]
        before = device.clock.now_us
        with pytest.raises(NVMeError):
            device.driver.put_many(pairs)
        # Nothing was submitted, so no simulated time passed and the
        # device still accepts work.
        assert device.clock.now_us == before
        assert device.driver.put_many([(b"ok-2", page_value(device, 2))], 4)[0].ok
        assert device.driver.get(b"ok-2", max_size=64 * KIB).ok

    def test_empty_value_raises(self):
        device = build_device(4, 8, qd=8)
        with pytest.raises(NVMeError):
            device.driver.put_many([(b"k", b"")])


class TestOverlap:
    def test_parallel_module_with_deep_queue_beats_serial_module(self):
        """NAND-bound writes on 4x8 at QD=16 must run at least 4x faster in
        simulated time than the same sequence on 1x1 at QD=1 — the
        acceptance floor for the parallel timing engine."""
        ops = 64
        serial = build_device(1, 1, qd=1)
        parallel = build_device(4, 8, qd=16)
        pairs_serial = [
            (b"key-%04d" % i, page_value(serial, i)) for i in range(ops)
        ]
        pairs_parallel = [
            (b"key-%04d" % i, page_value(parallel, i)) for i in range(ops)
        ]

        serial.driver.put_many(pairs_serial)
        serial.driver.flush()
        parallel.driver.put_many(pairs_parallel)
        parallel.driver.flush()

        assert serial.clock.now_us > 4 * parallel.clock.now_us

    def test_deep_queue_on_serial_module_cannot_overlap_nand(self):
        """With one way, programs serialize on the die whatever the queue
        depth: elapsed time stays close to the QD=1 figure."""
        ops = 32
        qd1 = build_device(1, 1, qd=1)
        qd16 = build_device(1, 1, qd=16)
        pairs = lambda dev: [  # noqa: E731
            (b"key-%04d" % i, page_value(dev, i)) for i in range(ops)
        ]
        qd1.driver.put_many(pairs(qd1))
        qd1.driver.flush()
        qd16.driver.put_many(pairs(qd16))
        qd16.driver.flush()
        # Pipelining still hides host-side round trips, so some gain is
        # expected — but nothing like the way-parallel speedup.
        assert qd16.clock.now_us > 0.6 * qd1.clock.now_us
