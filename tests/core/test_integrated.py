"""Tests for the Integrated packing extension (§4.3 closing remark).

Integrated = All Packing for DMA values at/below ``copy_threshold``,
Backfill for larger ones — "integrating the strengths of both".
"""

import pytest

from repro.core.config import BandSlimConfig, PackingPolicyKind
from repro.core.dlt import DMALogTable
from repro.core.packing import (
    AllPacking,
    BackfillPacking,
    IntegratedPacking,
    NandPageBuffer,
    make_policy,
)
from repro.errors import PackingError
from repro.lsm.vlog import VLog
from repro.memory.device import DeviceDRAM
from repro.sim.runner import run_workload
from repro.units import KIB, MEM_PAGE_SIZE
from repro.workloads.workloads import workload_c, workload_m

PAGE = 16 * KIB


@pytest.fixture
def rig(ftl):
    pool = 4
    dram = DeviceDRAM(pool * PAGE)
    region = dram.carve_region("buf", pool * PAGE)
    vlog = VLog(ftl, base_lpn=0, capacity_pages=64)
    buffer = NandPageBuffer(region, vlog, ftl, pool_entries=pool)
    return buffer, vlog


def make(buffer, copy_threshold=3 * KIB, dlt_capacity=8):
    dlt = DMALogTable(dlt_capacity, buffer.page_size, buffer.vlog.capacity_pages)
    return IntegratedPacking(buffer, dlt, copy_threshold=copy_threshold)


class TestPlacement:
    def test_small_dma_packed_at_wp(self, rig):
        """Below the threshold, behaves like All Packing."""
        buffer, _ = rig
        policy = make(buffer)
        policy.place_piggyback(100)
        p = policy.place_dma(2048, MEM_PAGE_SIZE)
        assert p.value_offset == 100  # dense, not aligned
        assert not p.direct           # WP unaligned -> staged copy
        assert policy.metrics.counter("dma_copied").value == 1

    def test_small_dma_at_aligned_wp_direct(self, rig):
        buffer, _ = rig
        policy = make(buffer)
        p = policy.place_dma(2048, MEM_PAGE_SIZE)
        assert p.value_offset == 0
        assert p.direct  # WP aligned, no DLT regions: skip the memcpy

    def test_large_dma_stays_aligned_and_logged(self, rig):
        """Above the threshold, behaves like Backfill."""
        buffer, _ = rig
        policy = make(buffer)
        policy.place_piggyback(100)
        p = policy.place_dma(4096, MEM_PAGE_SIZE)
        assert p.value_offset == 4096
        assert p.direct
        assert len(policy.dlt) == 1
        assert policy.metrics.counter("dma_aligned").value == 1

    def test_small_values_backfill_behind_large(self, rig):
        buffer, _ = rig
        policy = make(buffer)
        policy.place_piggyback(50)               # WP = 50
        policy.place_dma(8000, 2 * MEM_PAGE_SIZE)  # aligned at 4096, logged
        d = policy.place_piggyback(40)
        assert d.value_offset == 50              # backfilled

    def test_small_dma_respects_dlt_regions(self, rig):
        """A copied DMA value must not collide with a logged region."""
        buffer, _ = rig
        policy = make(buffer)
        policy.place_dma(8000, 2 * MEM_PAGE_SIZE)   # region [0+align.. ) at 0
        p = policy.place_dma(2048, MEM_PAGE_SIZE)   # small: copied
        # Region was [0, 8000): WP must have skipped past it.
        assert p.value_offset >= 8000

    def test_threshold_zero_degenerates_to_backfill(self, rig):
        buffer, _ = rig
        policy = make(buffer, copy_threshold=0)
        p = policy.place_dma(100, MEM_PAGE_SIZE)
        assert p.value_offset == 0 and p.direct
        assert len(policy.dlt) == 1  # logged, backfill-style

    def test_negative_threshold_rejected(self, rig):
        buffer, _ = rig
        dlt = DMALogTable(8, buffer.page_size, buffer.vlog.capacity_pages)
        with pytest.raises(PackingError):
            IntegratedPacking(buffer, dlt, copy_threshold=-1)


class TestFactory:
    def test_make_policy_dispatch(self, rig):
        buffer, _ = rig
        cfg = BandSlimConfig(
            packing=PackingPolicyKind.INTEGRATED, integrated_copy_threshold=2048
        )
        policy = make_policy(cfg, buffer, vlog_pages=64)
        assert isinstance(policy, IntegratedPacking)
        assert policy.copy_threshold == 2048


class TestEndToEnd:
    def test_roundtrip_through_device(self):
        from repro.host.api import KVStore
        from tests.conftest import small_config

        store = KVStore.open(
            small_config(packing=PackingPolicyKind.INTEGRATED)
        )
        for i, size in enumerate((8, 100, 2048, 4096, 9000)):
            key = f"k{i}".encode()
            value = bytes((i + j) % 256 for j in range(size))
            store.put(key, value)
            assert store.get(key) == value
        store.flush()
        assert store.get(b"k4") == bytes((4 + j) % 256 for j in range(9000))

    def test_integrated_never_worse_than_both_parents(self):
        """On W(C) it should track All; on W(M) it should track the better
        of All/Backfill — the §4.3 integration promise."""
        # Small pool: the run must reach steady-state flushing, otherwise
        # Backfill's deferred flushes flatter it (see bench_ablation_integrated).
        for factory in (workload_c, workload_m):
            w = lambda: factory(800, seed=4)  # noqa: E731
            allp = run_workload("all", w(), buffer_entries=8, dlt_capacity=8)
            bf = run_workload("backfill", w(), buffer_entries=8, dlt_capacity=8)
            integ = run_workload("integrated", w(), buffer_entries=8,
                                 dlt_capacity=8)
            best_parent = min(allp.avg_response_us, bf.avg_response_us)
            assert integ.avg_response_us <= best_parent * 1.10, factory.__name__
