"""Tests for the host-side driver: plans → command sequences → results."""

import pytest

from repro.core.transfer import TransferMethod
from repro.errors import KeyNotFoundError, NVMeError
from repro.nvme.opcodes import StatusCode
from repro.pcie.metrics import TrafficCategory


class TestPut:
    def test_small_put_roundtrip(self, device_factory):
        d = device_factory()
        result = d.driver.put(b"k1", b"small")
        assert result.ok
        assert result.commands == 1
        assert result.latency_us > 0

    def test_put_command_count_matches_plan(self, small_device):
        d = small_device
        value = b"x" * 128  # adaptive: >91 -> PRP, 1 command
        result = d.driver.put(b"k2", value)
        plan = d.driver.planner.plan(128)
        assert result.commands == plan.command_count

    def test_piggyback_put_sends_trailing_commands(self, device_factory):
        from repro.core.config import TransferMode

        d = device_factory(transfer_mode=TransferMode.PIGGYBACK)
        before = d.link.meter.transactions_for(TrafficCategory.SQ_ENTRY)
        d.driver.put(b"k3", b"v" * 128)
        sent = d.link.meter.transactions_for(TrafficCategory.SQ_ENTRY) - before
        assert sent == 3  # 35 + 56 + 37

    def test_empty_value_rejected(self, small_device):
        with pytest.raises(NVMeError):
            small_device.driver.put(b"k", b"")

    def test_put_releases_staging_pages(self, small_device):
        d = small_device
        d.driver.put(b"k4", b"v" * 8192)  # PRP path stages pages
        assert d.host_mem.allocated_pages == 0

    def test_put_latency_recorded(self, small_device):
        d = small_device
        d.driver.put(b"k5", b"value")
        assert d.driver.metrics.stat("put_latency_us").count == 1
        assert d.driver.metrics.counter("puts").value == 1

    def test_cids_wrap_without_collision_issue(self, small_device):
        d = small_device
        d.driver._next_cid = 2**16 - 1
        d.driver.put(b"kw", b"x")
        d.driver.put(b"kx", b"y")  # wrapped to 0
        assert d.driver.get(b"kw").value == b"x"


class TestGet:
    def test_get_roundtrip(self, small_device):
        d = small_device
        d.driver.put(b"gk", b"round trip")
        result = d.driver.get(b"gk")
        assert result.ok
        assert result.value == b"round trip"

    def test_get_missing_raises(self, small_device):
        with pytest.raises(KeyNotFoundError):
            small_device.driver.get(b"missing")

    def test_get_large_value(self, small_device):
        d = small_device
        value = bytes(i % 256 for i in range(10000))
        d.driver.put(b"big", value)
        assert d.driver.get(b"big").value == value

    def test_get_releases_pages(self, small_device):
        d = small_device
        d.driver.put(b"gk2", b"x" * 100)
        d.driver.get(b"gk2")
        assert d.host_mem.allocated_pages == 0

    def test_get_with_explicit_max_size(self, small_device):
        d = small_device
        d.driver.put(b"gk3", b"tiny")
        assert d.driver.get(b"gk3", max_size=4096).value == b"tiny"


class TestDeleteExist:
    def test_delete_removes(self, small_device):
        d = small_device
        d.driver.put(b"dk", b"x")
        d.driver.delete(b"dk")
        assert not d.driver.exists(b"dk")
        with pytest.raises(KeyNotFoundError):
            d.driver.get(b"dk")

    def test_delete_missing_raises(self, small_device):
        with pytest.raises(KeyNotFoundError):
            small_device.driver.delete(b"nope")

    def test_exists(self, small_device):
        d = small_device
        assert not d.driver.exists(b"ek")
        d.driver.put(b"ek", b"x")
        assert d.driver.exists(b"ek")


class TestListKeys:
    def test_list_in_order(self, small_device):
        d = small_device
        for k in (b"cc", b"aa", b"bb"):
            d.driver.put(k, b"v")
        assert d.driver.list_keys(b"\x00", max_keys=10) == [b"aa", b"bb", b"cc"]

    def test_list_from_start_key(self, small_device):
        d = small_device
        for k in (b"aa", b"bb", b"cc"):
            d.driver.put(k, b"v")
        assert d.driver.list_keys(b"bb", max_keys=10) == [b"bb", b"cc"]

    def test_list_respects_max_keys(self, small_device):
        d = small_device
        for i in range(10):
            d.driver.put(f"k{i}".encode(), b"v")
        assert len(d.driver.list_keys(b"\x00", max_keys=3)) == 3

    def test_list_empty_store(self, small_device):
        assert small_device.driver.list_keys(b"\x00") == []


class TestPlanExecutionFidelity:
    """The driver must execute exactly the plan the planner produced."""

    @pytest.mark.parametrize("size", [1, 35, 36, 91, 92, 128, 2048, 4096, 5000])
    def test_roundtrip_across_plan_boundaries(self, small_device, size):
        d = small_device
        value = bytes(i % 256 for i in range(size))
        key = f"sz{size}".encode()
        d.driver.put(key, value)
        assert d.driver.get(key).value == value

    def test_hybrid_mode_roundtrip(self, device_factory):
        from repro.core.config import TransferMode

        d = device_factory(transfer_mode=TransferMode.HYBRID)
        value = bytes(i % 256 for i in range(4096 + 200))
        plan = d.driver.planner.plan(len(value))
        assert plan.method is TransferMethod.HYBRID
        d.driver.put(b"hy", value)
        assert d.driver.get(b"hy").value == value

    def test_status_propagates(self, small_device):
        d = small_device
        result = d.driver.put(b"ok", b"fine")
        assert result.status is StatusCode.SUCCESS


class TestFlush:
    def test_flush_persists_everything(self, small_device):
        d = small_device
        d.driver.put(b"fk", b"persist me")
        d.driver.flush()
        assert d.buffer.open_entries == 0
        assert d.driver.get(b"fk").value == b"persist me"
