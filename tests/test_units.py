"""Unit tests for size/alignment arithmetic (repro.units)."""

import pytest

from repro.units import (
    DEFAULT_NAND_PAGE_SIZE,
    KIB,
    MEM_PAGE_SIZE,
    MIB,
    NVME_COMMAND_SIZE,
    align_down,
    align_up,
    fmt_bytes,
    is_aligned,
    pages_needed,
    split_sizes,
)


class TestConstants:
    def test_memory_page_is_4k(self):
        assert MEM_PAGE_SIZE == 4096

    def test_nand_page_is_16k(self):
        assert DEFAULT_NAND_PAGE_SIZE == 16 * KIB

    def test_nvme_command_is_64_bytes(self):
        assert NVME_COMMAND_SIZE == 64

    def test_unit_scaling(self):
        assert MIB == 1024 * KIB == 1024 * 1024


class TestAlignDown:
    def test_exact_multiple_unchanged(self):
        assert align_down(8192, 4096) == 8192

    def test_rounds_down(self):
        assert align_down(8193, 4096) == 8192
        assert align_down(4095, 4096) == 0

    def test_zero(self):
        assert align_down(0, 4096) == 0

    def test_rejects_nonpositive_alignment(self):
        with pytest.raises(ValueError):
            align_down(100, 0)
        with pytest.raises(ValueError):
            align_down(100, -4)


class TestAlignUp:
    def test_exact_multiple_unchanged(self):
        assert align_up(8192, 4096) == 8192

    def test_rounds_up(self):
        assert align_up(1, 4096) == 4096
        assert align_up(4097, 4096) == 8192

    def test_zero(self):
        assert align_up(0, 4096) == 0

    def test_rejects_nonpositive_alignment(self):
        with pytest.raises(ValueError):
            align_up(100, 0)


class TestIsAligned:
    def test_aligned(self):
        assert is_aligned(0, 4096)
        assert is_aligned(12288, 4096)

    def test_not_aligned(self):
        assert not is_aligned(1, 4096)
        assert not is_aligned(4095, 4096)

    def test_rejects_nonpositive_alignment(self):
        with pytest.raises(ValueError):
            is_aligned(4096, 0)


class TestPagesNeeded:
    def test_zero_bytes_needs_no_pages(self):
        assert pages_needed(0) == 0

    def test_one_byte_needs_one_page(self):
        assert pages_needed(1) == 1

    def test_exact_page(self):
        assert pages_needed(4096) == 1

    def test_page_plus_one(self):
        """The paper's (4K+32)B example: two pages on the wire (§2.3)."""
        assert pages_needed(4096 + 32) == 2

    def test_sixteen_kib_needs_four_pages(self):
        assert pages_needed(16 * KIB) == 4

    def test_custom_page_size(self):
        assert pages_needed(16 * KIB + 1, 16 * KIB) == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            pages_needed(-1)


class TestSplitSizes:
    def test_exact_split(self):
        assert split_sizes(112, 56) == [56, 56]

    def test_remainder(self):
        """130 piggybacked bytes → two full fragments + an 18-byte tail."""
        assert split_sizes(130, 56) == [56, 56, 18]

    def test_zero_total(self):
        assert split_sizes(0, 56) == []

    def test_small_total(self):
        assert split_sizes(5, 56) == [5]

    def test_sum_invariant(self):
        for total in (0, 1, 55, 56, 57, 1000):
            assert sum(split_sizes(total, 56)) == total

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            split_sizes(10, 0)
        with pytest.raises(ValueError):
            split_sizes(-1, 56)


class TestFmtBytes:
    def test_bytes(self):
        assert fmt_bytes(12) == "12 B"

    def test_kilobytes(self):
        assert fmt_bytes(2048) == "2.00 KB"

    def test_gigabytes(self):
        assert fmt_bytes(4 * 1024**3) == "4.00 GB"

    def test_fractional(self):
        assert fmt_bytes(1536) == "1.50 KB"
