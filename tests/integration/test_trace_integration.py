"""Tracing end-to-end: observation-only, deterministic, phase-accurate.

Three properties the tracer promises (docs/observability.md):

1. A traced run is byte-identical to an untraced one — same latencies,
   same PCIe bytes, same NAND programs, same metric snapshot.
2. Per-op phase durations sum exactly to the op's latency.
3. Same seed + config => identical event streams (reproducible traces).
"""

import pytest

from repro.device.kvssd import KVSSD
from repro.sim.runner import run_workload
from repro.sim.trace import PHASES, Tracer
from repro.workloads.workloads import workload_m, workload_mixed

from tests.conftest import small_config


def _core_snapshot(snapshot: dict) -> dict:
    """Strip the tracer's merged report keys before comparing runs."""
    return {k: v for k, v in snapshot.items() if not k.startswith("trace.")}


def _event_key(event):
    return (
        event.ts_us,
        event.dur_us,
        event.category,
        event.name,
        event.op_id,
        event.resource,
        event.args,
    )


class TestObservationOnly:
    def test_traced_run_matches_untraced_run(self):
        workload = workload_mixed(150, read_fraction=0.4, seed=5)
        plain = run_workload("backfill", workload)
        tracer = Tracer()
        traced = run_workload("backfill", workload, tracer=tracer)
        assert traced.elapsed_us == plain.elapsed_us
        assert traced.avg_response_us == plain.avg_response_us
        assert traced.p99_response_us == plain.p99_response_us
        assert traced.pcie_total_bytes == plain.pcie_total_bytes
        assert traced.mmio_bytes == plain.mmio_bytes
        assert traced.nand_page_writes_with_flush == plain.nand_page_writes_with_flush
        assert _core_snapshot(traced.snapshot) == _core_snapshot(plain.snapshot)

    def test_traced_snapshot_gains_report_keys(self):
        tracer = Tracer()
        result = run_workload("backfill", workload_m(60, seed=1), tracer=tracer)
        assert result.snapshot["trace.ops"] == len(tracer.ops)
        assert result.snapshot["trace.put.count"] > 0


class TestPhaseAccounting:
    def test_put_phases_sum_to_latency(self):
        tracer = Tracer()
        run_workload("backfill", workload_m(120, seed=2), tracer=tracer)
        assert len(tracer.ops) == 120
        assert tracer.open_ops == 0
        for op in tracer.ops:
            assert sum(op.phases.values()) == pytest.approx(
                op.latency_us, abs=1e-9
            ), f"op {op.op_id} ({op.kind})"
            assert set(op.phases) <= set(PHASES)

    def test_mixed_workload_covers_put_and_get(self):
        tracer = Tracer()
        run_workload(
            "backfill", workload_mixed(120, read_fraction=0.5, seed=9),
            tracer=tracer,
        )
        kinds = {op.kind for op in tracer.ops}
        assert {"put", "get"} <= kinds
        for op in tracer.ops:
            assert sum(op.phases.values()) == pytest.approx(op.latency_us)

    def test_pipelined_put_many_traces_every_op(self):
        """QD>1 overlaps device work; phase sums must still be exact."""
        tracer = Tracer()
        device = KVSSD.build(config=small_config(), tracer=tracer)
        pairs = [
            (b"pm-%04d" % i, bytes([i % 256]) * 64) for i in range(200)
        ]
        results = device.driver.put_many(pairs, queue_depth=8)
        assert len(results) == 200
        assert len(tracer.ops) == 200
        assert tracer.open_ops == 0
        for op in tracer.ops:
            assert sum(op.phases.values()) == pytest.approx(op.latency_us)
        traced_latencies = sorted(op.latency_us for op in tracer.ops)
        plain = KVSSD.build(config=small_config())
        plain_results = plain.driver.put_many(pairs, queue_depth=8)
        assert traced_latencies == sorted(r.latency_us for r in plain_results)

    def test_get_phases_sum_to_latency(self):
        tracer = Tracer()
        device = KVSSD.build(config=small_config(), tracer=tracer)
        device.driver.put(b"k1", b"v" * 100)
        device.driver.get(b"k1", max_size=4096)
        gets = [op for op in tracer.ops if op.kind == "get"]
        assert len(gets) == 1
        assert sum(gets[0].phases.values()) == pytest.approx(gets[0].latency_us)


class TestDeterminism:
    def test_same_seed_same_event_stream(self):
        streams = []
        for _ in range(2):
            tracer = Tracer()
            run_workload("backfill", workload_m(100, seed=4), tracer=tracer)
            streams.append([_event_key(e) for e in tracer.events])
        assert streams[0] == streams[1]
        assert len(streams[0]) > 0

    def test_different_seed_different_stream(self):
        streams = []
        for seed in (4, 5):
            tracer = Tracer()
            run_workload("backfill", workload_m(100, seed=seed), tracer=tracer)
            streams.append([_event_key(e) for e in tracer.events])
        assert streams[0] != streams[1]


class TestSnapshotSatellites:
    def test_traffic_meter_exports_payload_and_direction(self):
        result = run_workload("backfill", workload_m(40, seed=3))
        snap = result.snapshot
        assert "pcie.payload_bytes" in snap
        assert "pcie.host_to_device_bytes" in snap
        assert 0 < snap["pcie.payload_bytes"] <= snap["pcie.total_bytes"]
        assert 0 < snap["pcie.host_to_device_bytes"] <= snap["pcie.total_bytes"]

    def test_empty_histograms_absent_from_run_snapshot(self):
        # A pure-PUT workload never records a GET latency sample; its
        # histogram must be omitted rather than reported as p99=0.
        result = run_workload("backfill", workload_m(40, seed=3))
        assert "driver.get_latency_us.p99" not in result.snapshot
        assert result.snapshot["driver.put_latency_us.p99"] > 0
