"""The paper's quantitative claims, as executable assertions.

Each test reproduces one claim from the evaluation (§4.2–4.3) at reduced
operation counts (byte metrics are exactly per-op linear; latency means are
distribution-stable). Tolerances reflect that this is a behavioral model of
a different substrate — the *shape* is asserted, with the headline numbers
pinned where the model reproduces them exactly.
"""

import pytest

from repro.sim.runner import run_workload
from repro.workloads.workloads import (
    workload_a,
    workload_b,
    workload_c,
    workload_m,
)

N = 1500  # ops per run; enough for stable means, fast enough for CI


def run(config, workload, **kw):
    return run_workload(config, workload, **kw)


class TestFig3And4Baseline:
    def test_traffic_constant_within_page_buckets(self):
        """Fig 3(a): PCIe traffic flat from 1 B to 4 KiB, then steps."""
        r1k = run("baseline", workload_a(300, 1024), nand_io_enabled=False)
        r4k = run("baseline", workload_a(300, 4096), nand_io_enabled=False)
        r5k = run("baseline", workload_a(300, 5 * 1024), nand_io_enabled=False)
        assert r1k.pcie_total_bytes == r4k.pcie_total_bytes
        assert r5k.pcie_total_bytes > r4k.pcie_total_bytes * 1.8

    def test_taf_halves_as_size_doubles(self):
        """Fig 3(b): TAF ≈ 130, 65, 32.5 … for 32, 64, 128 B."""
        tafs = {}
        for size in (32, 64, 128, 256, 512, 1024):
            r = run("baseline", workload_a(200, size), nand_io_enabled=False)
            tafs[size] = r.traffic_amplification
        assert tafs[32] == pytest.approx(130, rel=0.02)
        for size in (64, 128, 256, 512):
            assert tafs[size] == pytest.approx(tafs[size * 2] * 2, rel=0.05)

    def test_waf_mirrors_taf(self):
        """Fig 4(b): WAF ≈ TAF for the same sizes (§2.4)."""
        r = run("baseline", workload_a(400, 32))
        assert r.write_amplification == pytest.approx(
            r.traffic_amplification, rel=0.10
        )

    def test_write_response_nand_dominated(self):
        """Fig 4(a): write responses ~10× transfer responses (§2.4)."""
        transfer_only = run("baseline", workload_a(300, 4096), nand_io_enabled=False)
        with_nand = run("baseline", workload_a(300, 16 * 1024))
        assert with_nand.avg_response_us > 5 * transfer_only.avg_response_us


class TestFig8Piggyback:
    def test_headline_traffic_reduction_97_9_percent(self):
        """§4.2: "Piggyback reduces traffic by up to 97.9 %" (4–32 B)."""
        base = run("baseline", workload_a(N, 32), nand_io_enabled=False)
        pig = run("piggyback", workload_a(N, 32), nand_io_enabled=False)
        reduction = 1 - pig.pcie_total_bytes / base.pcie_total_bytes
        assert reduction == pytest.approx(0.979, abs=0.003)

    def test_response_half_at_32b(self):
        """Fig 8: piggyback response ≈ half of baseline for ≤32 B."""
        base = run("baseline", workload_a(500, 32), nand_io_enabled=False)
        pig = run("piggyback", workload_a(500, 32), nand_io_enabled=False)
        assert 0.40 < pig.avg_response_us / base.avg_response_us < 0.65

    def test_parity_at_64b(self):
        base = run("baseline", workload_a(500, 64), nand_io_enabled=False)
        pig = run("piggyback", workload_a(500, 64), nand_io_enabled=False)
        assert pig.avg_response_us == pytest.approx(base.avg_response_us, rel=0.15)

    def test_degradation_from_128b(self):
        base = run("baseline", workload_a(500, 128), nand_io_enabled=False)
        pig = run("piggyback", workload_a(500, 128), nand_io_enabled=False)
        assert pig.avg_response_us > base.avg_response_us * 1.3

    def test_piggyback_traffic_overtakes_baseline_at_4k(self):
        """Fig 8: piggyback traffic crosses above baseline at ~4 KiB."""
        base = run("baseline", workload_a(200, 4096), nand_io_enabled=False)
        pig = run("piggyback", workload_a(200, 4096), nand_io_enabled=False)
        assert pig.pcie_total_bytes > base.pcie_total_bytes


class TestFig9Hybrid:
    def test_hybrid_traffic_optimal_for_small_tails(self):
        """Fig 9(a): hybrid beats both for 4K+small-tail values."""
        size = 4096 + 32
        base = run("baseline", workload_a(300, size), nand_io_enabled=False)
        pig = run("piggyback", workload_a(300, size), nand_io_enabled=False)
        hyb = run("hybrid", workload_a(300, size), nand_io_enabled=False)
        assert hyb.pcie_total_bytes < base.pcie_total_bytes
        assert hyb.pcie_total_bytes < pig.pcie_total_bytes

    def test_hybrid_does_not_improve_response(self):
        """Fig 9(b)/§4.2: hybrid reduces traffic but not response time."""
        size = 4096 + 32
        base = run("baseline", workload_a(300, size), nand_io_enabled=False)
        hyb = run("hybrid", workload_a(300, size), nand_io_enabled=False)
        assert hyb.avg_response_us >= base.avg_response_us * 0.98

    def test_piggyback_sharply_worse_for_page_plus_tail(self):
        size = 4096 + 1024
        base = run("baseline", workload_a(200, size), nand_io_enabled=False)
        pig = run("piggyback", workload_a(200, size), nand_io_enabled=False)
        assert pig.avg_response_us > base.avg_response_us * 5


class TestFig10Adaptive:
    def test_piggyback_collapses_on_large_value_workload(self):
        """Fig 10(a): W(C) is piggybacking's worst case."""
        base = run("baseline", workload_c(N, seed=3), nand_io_enabled=False)
        pig = run("piggyback", workload_c(N, seed=3), nand_io_enabled=False)
        assert pig.avg_response_us > base.avg_response_us * 2

    def test_piggyback_wins_on_real_world_mix(self):
        """Fig 10(a)/§4.2: Piggyback alone beats Baseline on W(M)."""
        base = run("baseline", workload_m(N, seed=3), nand_io_enabled=False)
        pig = run("piggyback", workload_m(N, seed=3), nand_io_enabled=False)
        assert pig.avg_response_us < base.avg_response_us

    def test_adaptive_best_or_equal_everywhere(self):
        """Fig 10(a-b): "Adaptive proves to be the best in all workloads"."""
        for factory in (workload_b, workload_c, workload_m):
            w = lambda: factory(N, seed=3)  # noqa: E731
            base = run("baseline", w(), nand_io_enabled=False)
            pig = run("piggyback", w(), nand_io_enabled=False)
            ada = run("adaptive", w(), nand_io_enabled=False)
            assert ada.avg_response_us <= base.avg_response_us * 1.02
            assert ada.avg_response_us <= pig.avg_response_us * 1.02

    def test_wm_piggyback_traffic_reduction(self):
        """Fig 10(c): ~97.9 % traffic reduction on W(M) for Piggyback."""
        base = run("baseline", workload_m(N, seed=3), nand_io_enabled=False)
        pig = run("piggyback", workload_m(N, seed=3), nand_io_enabled=False)
        reduction = 1 - pig.pcie_total_bytes / base.pcie_total_bytes
        assert reduction > 0.95

    def test_adaptive_trades_some_traffic_for_speed(self):
        """Fig 10(c): Adaptive's traffic sits between Piggyback and Baseline."""
        base = run("baseline", workload_m(N, seed=3), nand_io_enabled=False)
        pig = run("piggyback", workload_m(N, seed=3), nand_io_enabled=False)
        ada = run("adaptive", workload_m(N, seed=3), nand_io_enabled=False)
        assert pig.pcie_total_bytes < ada.pcie_total_bytes < base.pcie_total_bytes

    def test_mmio_constant_for_baseline_scaling_for_piggyback(self):
        """Fig 10(d): Baseline MMIO is workload-independent; Piggyback's
        grows with value sizes (more doorbells)."""
        base_b = run("baseline", workload_b(N, seed=3), nand_io_enabled=False)
        base_c = run("baseline", workload_c(N, seed=3), nand_io_enabled=False)
        assert base_b.mmio_bytes == base_c.mmio_bytes
        pig_b = run("piggyback", workload_b(N, seed=3), nand_io_enabled=False)
        pig_c = run("piggyback", workload_c(N, seed=3), nand_io_enabled=False)
        assert pig_c.mmio_bytes > pig_b.mmio_bytes * 3


class TestFig11Packing:
    def test_headline_nand_reduction_98_percent(self):
        """§4.3: "packing reduced NAND writes by 98.1 %" at 4–32 B."""
        base = run("baseline", workload_a(N, 32))
        pack = run("packing", workload_a(N, 32))
        reduction = 1 - pack.nand_page_writes_with_flush / base.nand_page_writes_with_flush
        assert reduction > 0.95

    def test_piggyback_alone_does_not_reduce_nand(self):
        """Fig 11(a): Piggyback + Block packing ≈ Baseline NAND count."""
        base = run("baseline", workload_a(800, 32))
        pig = run("piggyback", workload_a(800, 32))
        assert pig.nand_page_writes_with_flush == pytest.approx(
            base.nand_page_writes_with_flush, rel=0.1
        )

    def test_packing_slashes_write_response(self):
        """Fig 11(b): fine-grained packing cuts response by ~67 % at 32 B."""
        base = run("baseline", workload_a(800, 32))
        pack = run("packing", workload_a(800, 32))
        assert pack.avg_response_us < base.avg_response_us * 0.5

    def test_piggy_pack_small_values_best(self):
        """Fig 11(b): Piggy+Pack shaves a further slice at ≤32 B."""
        pack = run("packing", workload_a(800, 32))
        both = run("piggy+pack", workload_a(800, 32))
        assert both.avg_response_us < pack.avg_response_us

    def test_piggy_pack_degrades_for_large_values(self):
        """Fig 11(b): from 128 B piggy-only transfer drags Piggy+Pack down."""
        pack = run("packing", workload_a(400, 2048))
        both = run("piggy+pack", workload_a(400, 2048))
        assert both.avg_response_us > pack.avg_response_us * 2


class TestFig12PackingPolicies:
    def test_block_worst_everywhere(self):
        """Fig 12(a-b): Block shows the worst performance on every workload."""
        for factory in (workload_b, workload_c, workload_m):
            results = {
                name: run(name, factory(N, seed=3))
                for name in ("block", "all", "select", "backfill")
            }
            for name in ("all", "select", "backfill"):
                assert (
                    results[name].avg_response_us
                    <= results["block"].avg_response_us * 1.01
                ), (factory.__name__, name)

    def test_select_as_poor_as_block_on_large_values(self):
        """Fig 12(a): Selective ≈ Block in W(C) (page-alignment adherence)."""
        blk = run("block", workload_c(N, seed=3))
        sel = run("select", workload_c(N, seed=3))
        assert sel.avg_response_us > blk.avg_response_us * 0.85

    def test_all_beats_select_on_large_values(self):
        """Fig 12: All Packing is optimal when mid-size DMA values abound."""
        allp = run("all", workload_c(N, seed=3))
        sel = run("select", workload_c(N, seed=3))
        assert allp.avg_response_us < sel.avg_response_us

    def test_backfill_at_least_as_dense_as_select(self):
        """Backfilling can only reclaim space Selective wastes."""
        for factory in (workload_b, workload_m):
            sel = run("select", factory(N, seed=3))
            bf = run("backfill", factory(N, seed=3))
            assert (
                bf.nand_page_writes_with_flush <= sel.nand_page_writes_with_flush
            ), factory.__name__

    def test_memcpy_ordering_matches_paper(self):
        """Fig 12(d): All-Packing memcpy time grows M < B < D < C."""
        from repro.workloads.workloads import workload_d

        times = {}
        for name, factory in (
            ("M", workload_m), ("B", workload_b), ("D", workload_d), ("C", workload_c),
        ):
            times[name] = run("all", factory(N, seed=3)).avg_memcpy_us
        assert times["M"] < times["B"] < times["D"] < times["C"]

    def test_all_packing_pays_most_memcpy(self):
        """Fig 12(d): All copies every DMA value; others copy piggyback only."""
        allp = run("all", workload_c(N, seed=3))
        sel = run("select", workload_c(N, seed=3))
        bf = run("backfill", workload_c(N, seed=3))
        assert allp.avg_memcpy_us > 5 * sel.avg_memcpy_us
        assert allp.avg_memcpy_us > 5 * bf.avg_memcpy_us

    def test_nand_counts_block_highest_all_lowest(self):
        """Fig 12(c): Block ≫ Select/Backfill ≥ All."""
        results = {
            name: run(name, workload_b(N, seed=3)).nand_page_writes_with_flush
            for name in ("block", "all", "select", "backfill")
        }
        assert results["block"] > results["select"] >= results["backfill"]
        assert results["backfill"] >= results["all"]


class TestFig10QuotedRatios:
    """The specific ratios §4.2 quotes for W(M) and W(C)."""

    def test_wm_piggyback_response_gain_over_baseline(self):
        """Paper: 'Piggyback improved response time by about 22% compared
        to Baseline for W(M)' — this model lands at ~26 %."""
        base = run("baseline", workload_m(N, seed=3), nand_io_enabled=False)
        pig = run("piggyback", workload_m(N, seed=3), nand_io_enabled=False)
        gain = 1 - pig.avg_response_us / base.avg_response_us
        assert 0.15 < gain < 0.40

    def test_wm_adaptive_throughput_gain_over_piggyback(self):
        """Paper: adaptive trades traffic for a ~12 % throughput gain over
        Piggyback on W(M)."""
        pig = run("piggyback", workload_m(N, seed=3), nand_io_enabled=False)
        ada = run("adaptive", workload_m(N, seed=3), nand_io_enabled=False)
        gain = ada.throughput_kops / pig.throughput_kops - 1
        assert 0.05 < gain < 0.30

    def test_wc_adaptive_throughput_vs_piggyback_order_of_magnitude(self):
        """Paper: on W(C) adaptive 'increases the throughput by nearly 13
        times' over Piggyback and ~2 % over Baseline."""
        pig = run("piggyback", workload_c(N, seed=3), nand_io_enabled=False)
        ada = run("adaptive", workload_c(N, seed=3), nand_io_enabled=False)
        base = run("baseline", workload_c(N, seed=3), nand_io_enabled=False)
        assert ada.throughput_kops > 8 * pig.throughput_kops
        assert ada.throughput_kops >= base.throughput_kops
