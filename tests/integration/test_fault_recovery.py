"""Fault-plan integration: recovery under sustained injected faults.

The contracts the fault subsystem promises (docs/fault-model.md):

* zero-cost when off — a device built without a plan (or with a plan that
  cannot inject anything) is byte-identical to the seed behavior;
* no fault escapes the driver as a raw exception — media trouble surfaces
  as NVMe statuses, recovered or reported;
* every acknowledged PUT stays readable through program failures, grown
  bad blocks, wear-scaled read noise and transient transfer faults;
* determinism — same plan, same workload, same final snapshot.
"""

from repro.device.kvssd import KVSSD
from repro.faults import FaultPlan, FaultSite, ScriptedFault

from tests.conftest import small_config

#: Injection mix used by the soak test: background program failures,
#: wear-scaled read noise, occasional PCIe hiccups, plus two certainties —
#: the first DMA transfer faults (driver retry guaranteed) and the 50th
#: NAND program fails permanently (grown bad block guaranteed).
SOAK_PLAN = FaultPlan(
    seed=0xFA11,
    program_fail_p=1e-3,
    erase_fail_p=1e-3,
    transfer_fault_p=2e-3,
    read_bitflip_base=0.2,
    read_bitflip_per_erase=0.2,
    scripted=(
        ScriptedFault(site=FaultSite.TRANSFER, nth=1),
        ScriptedFault(site=FaultSite.PROGRAM, nth=50, permanent=True),
    ),
)


def run_workload(device: KVSSD, ops: int) -> dict[bytes, bytes]:
    """Alternate PUTs and verifying GETs; returns the acknowledged pairs."""
    model: dict[bytes, bytes] = {}
    keys: list[bytes] = []
    for i in range(ops // 2):
        key = f"key{i % 601:04d}".encode()
        size = (i * 193) % 4000 + 1
        value = (f"v{i:06d}".encode() * (size // 7 + 1))[:size]
        res = device.driver.put(key, value)
        assert res.ok, f"PUT {i} failed with {res.status.name}"
        model[key] = value
        keys.append(key)
        # Read back a pair acknowledged earlier this run.
        probe = keys[(i * 31) % len(keys)]
        got = device.driver.get(probe)
        assert got.ok, f"GET {probe!r} failed with {got.status.name}"
        assert got.value == model[probe]
    return model


class TestFaultSoak:
    def test_10k_ops_survive_the_soak_plan(self):
        device = KVSSD.build(config=small_config(), fault_plan=SOAK_PLAN)
        model = run_workload(device, 10_000)
        # Recovery left no acknowledged data behind — including values the
        # FTL relocated off the grown bad block.
        device.driver.flush()
        for key, value in model.items():
            got = device.driver.get(key)
            assert got.ok and got.value == value
        snap = device.snapshot()
        assert snap["faults.program_faults"] >= 1
        assert snap["ftl.bad_blocks_retired"] >= 1
        assert snap["driver.retries"] > 0
        assert snap["driver.failed_ops"] == 0

    def test_same_seed_same_final_snapshot(self):
        snaps = []
        for _ in range(2):
            device = KVSSD.build(config=small_config(), fault_plan=SOAK_PLAN)
            run_workload(device, 1_000)
            snaps.append(device.snapshot())
        assert snaps[0] == snaps[1]
        # The runs actually injected something — equality is not vacuous.
        assert snaps[0]["faults.transfer_faults"] >= 1


class TestZeroCostWhenOff:
    def test_disabled_plan_builds_a_byte_identical_device(self):
        pristine = KVSSD.build(config=small_config())
        disabled = KVSSD.build(config=small_config(), fault_plan=FaultPlan())
        assert disabled.injector is None
        run_workload(pristine, 400)
        run_workload(disabled, 400)
        assert pristine.snapshot() == disabled.snapshot()

    def test_no_fault_keys_without_a_plan(self):
        device = KVSSD.build(config=small_config())
        run_workload(device, 100)
        snap = device.snapshot()
        assert not any(k.startswith("faults.") for k in snap)
        assert "ftl.bad_blocks_retired" not in snap
        assert "driver.retries" not in snap
