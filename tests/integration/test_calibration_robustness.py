"""Robustness: the paper's qualitative claims must survive recalibration.

A reproduction whose conclusions flip when a latency constant moves 2× is
curve-fitting, not modeling. These tests perturb each constant and check
which claims are structural (byte counts — immune to timing by
construction) and which hold across a wide calibration band.
"""

import pytest

from repro.sim.latency import LatencyModel
from repro.sim.runner import run_workload
from repro.workloads.workloads import workload_a, workload_m

N = 500


def perturbed(**overrides) -> LatencyModel:
    return LatencyModel().with_overrides(**overrides)


class TestByteMetricsAreTimingFree:
    @pytest.mark.parametrize(
        "latency",
        [
            LatencyModel(),
            perturbed(dma_setup_us=20.0, dma_per_byte_us=0.01),
            perturbed(mmio_doorbell_us=5.0, completion_us=20.0),
            perturbed(nand_program_us=50.0),
        ],
        ids=["default", "slow-dma", "slow-cmd", "fast-nand"],
    )
    def test_traffic_reduction_is_constant(self, latency):
        """97.9 % at 32 B is protocol arithmetic, not calibration."""
        base = run_workload("baseline", workload_a(N, 32), latency=latency,
                            nand_io_enabled=False)
        pig = run_workload("piggyback", workload_a(N, 32), latency=latency,
                           nand_io_enabled=False)
        reduction = 1 - pig.pcie_total_bytes / base.pcie_total_bytes
        assert reduction == pytest.approx(0.979, abs=0.001)

    def test_nand_reduction_is_timing_free(self):
        fast = perturbed(nand_program_us=10.0)
        base = run_workload("baseline", workload_a(N, 32), latency=fast)
        pack = run_workload("packing", workload_a(N, 32), latency=fast)
        assert pack.nand_page_writes_with_flush < base.nand_page_writes_with_flush / 10


class TestOrderingsHoldAcrossCalibrationBand:
    @pytest.mark.parametrize("scale", [0.5, 1.0, 2.0])
    def test_piggyback_beats_baseline_at_tiny_values(self, scale):
        """Holds as long as one round trip < round trip + one page DMA —
        i.e., structurally, for any positive DMA cost."""
        m = LatencyModel()
        latency = m.with_overrides(
            dma_setup_us=m.dma_setup_us * scale,
            dma_per_byte_us=m.dma_per_byte_us * scale,
        )
        base = run_workload("baseline", workload_a(N, 16), latency=latency,
                            nand_io_enabled=False)
        pig = run_workload("piggyback", workload_a(N, 16), latency=latency,
                           nand_io_enabled=False)
        assert pig.avg_response_us < base.avg_response_us

    @pytest.mark.parametrize("scale", [0.5, 1.0, 2.0])
    def test_piggyback_loses_at_page_scale(self, scale):
        """73 trailing round trips dwarf one DMA at any sane calibration."""
        m = LatencyModel()
        latency = m.with_overrides(
            mmio_doorbell_us=m.mmio_doorbell_us * scale,
            sq_fetch_us=m.sq_fetch_us * scale,
            completion_us=m.completion_us * scale,
        )
        base = run_workload("baseline", workload_a(N, 4096), latency=latency,
                            nand_io_enabled=False)
        pig = run_workload("piggyback", workload_a(N, 4096), latency=latency,
                           nand_io_enabled=False)
        assert pig.avg_response_us > base.avg_response_us * 2

    @pytest.mark.parametrize("scale", [0.5, 1.0, 2.0])
    def test_block_worst_under_any_nand_speed(self, scale):
        m = LatencyModel()
        latency = m.with_overrides(nand_program_us=m.nand_program_us * scale)
        blk = run_workload("block", workload_m(N, seed=3), latency=latency)
        bf = run_workload("backfill", workload_m(N, seed=3), latency=latency)
        assert bf.avg_response_us < blk.avg_response_us

    def test_memcpy_calibration_flips_all_vs_select_as_documented(self):
        """EXPERIMENTS.md's divergence note, verified: a ~3× costlier
        memcpy makes Selective beat All on W(C) — the knob that separates
        this model's verdict from the FPGA's."""
        from repro.workloads.workloads import workload_c

        cheap = LatencyModel()
        costly = perturbed(memcpy_per_byte_us=0.03)
        all_cheap = run_workload("all", workload_c(N, seed=3), latency=cheap)
        sel_cheap = run_workload("select", workload_c(N, seed=3), latency=cheap)
        assert all_cheap.avg_response_us < sel_cheap.avg_response_us
        all_costly = run_workload("all", workload_c(N, seed=3), latency=costly)
        sel_costly = run_workload("select", workload_c(N, seed=3), latency=costly)
        assert all_costly.avg_response_us > sel_costly.avg_response_us
