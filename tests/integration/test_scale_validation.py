"""Validates the linear-extrapolation claim EXPERIMENTS.md relies on.

Benches run at reduced op counts and report byte/count metrics scaled to
the paper's 1 M / 10 M operations. That is only legitimate if the metrics
really are per-op linear and the latency means are size-stable. These
tests check both, with a 30× scale jump.
"""

import pytest

from repro.sim.runner import run_workload
from repro.workloads.workloads import workload_a, workload_m

SMALL = 1_000
LARGE = 30_000


class TestByteMetricsExactlyLinear:
    def test_fixed_size_traffic_scales_exactly(self):
        small = run_workload("baseline", workload_a(SMALL, 32), nand_io_enabled=False)
        large = run_workload("baseline", workload_a(LARGE, 32), nand_io_enabled=False)
        assert large.pcie_total_bytes == small.pcie_total_bytes * (LARGE // SMALL)

    def test_piggyback_traffic_scales_exactly(self):
        small = run_workload("piggyback", workload_a(SMALL, 128), nand_io_enabled=False)
        large = run_workload("piggyback", workload_a(LARGE, 128), nand_io_enabled=False)
        assert large.pcie_total_bytes == small.pcie_total_bytes * (LARGE // SMALL)

    def test_nand_writes_scale_within_buffer_residue(self):
        small = run_workload("baseline", workload_a(SMALL, 2048))
        large = run_workload("baseline", workload_a(LARGE, 2048))
        scaled = small.nand_page_writes_with_flush * (LARGE // SMALL)
        # LSM flush/compaction timing differs slightly across scales.
        assert large.nand_page_writes_with_flush == pytest.approx(scaled, rel=0.05)


class TestLatencyMeansStable:
    def test_fillseq_mean_response_size_invariant(self):
        small = run_workload("baseline", workload_a(SMALL, 1024), nand_io_enabled=False)
        large = run_workload("baseline", workload_a(LARGE, 1024), nand_io_enabled=False)
        assert large.avg_response_us == pytest.approx(small.avg_response_us, rel=0.01)

    def test_mixgraph_mean_response_distribution_stable(self):
        """Random-size workloads: means converge across scales (same GPD)."""
        small = run_workload("adaptive", workload_m(2_000, seed=1), nand_io_enabled=False)
        large = run_workload("adaptive", workload_m(20_000, seed=2), nand_io_enabled=False)
        assert large.avg_response_us == pytest.approx(small.avg_response_us, rel=0.10)

    def test_seed_invariance_of_the_shape(self):
        """Different seeds, same distribution: headline ratios hold."""
        ratios = []
        for seed in (1, 7, 42):
            base = run_workload("baseline", workload_m(2_000, seed=seed),
                                nand_io_enabled=False)
            pig = run_workload("piggyback", workload_m(2_000, seed=seed),
                               nand_io_enabled=False)
            ratios.append(pig.pcie_total_bytes / base.pcie_total_bytes)
        assert max(ratios) - min(ratios) < 0.01
        assert all(r < 0.05 for r in ratios)  # ~97 % reduction at any seed
