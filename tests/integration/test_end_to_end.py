"""End-to-end integration: full stack, every preset, mixed operation flows."""

import pytest

from repro.core.config import PRESETS
from repro.errors import KeyNotFoundError
from repro.host.api import KVStore

from tests.conftest import small_config


@pytest.mark.parametrize("preset_name", sorted(PRESETS))
class TestEveryPreset:
    """Every paper configuration must serve the same KV contract."""

    def _store(self, preset_name):
        base = PRESETS[preset_name]
        cfg = small_config(
            transfer_mode=base.transfer_mode, packing=base.packing
        )
        return KVStore.open(cfg)

    def test_mixed_size_roundtrip(self, preset_name):
        store = self._store(preset_name)
        values = {
            f"key{i:03d}".encode(): bytes((i * 31 + j) % 256 for j in range(size))
            for i, size in enumerate((1, 8, 35, 36, 91, 92, 500, 2048, 4096, 9000))
        }
        for k, v in values.items():
            store.put(k, v)
        for k, v in values.items():
            assert store.get(k) == v, f"{preset_name}: {k!r}"

    def test_survives_flush_cycle(self, preset_name):
        store = self._store(preset_name)
        for i in range(50):
            store.put(f"k{i:03d}".encode(), bytes([i]) * (i + 1))
        store.flush()
        for i in range(50):
            assert store.get(f"k{i:03d}".encode()) == bytes([i]) * (i + 1)


class TestSustainedLoad:
    def test_write_heavy_with_memtable_spills(self):
        """Enough PUTs to force LSM flushes and compactions mid-run."""
        store = KVStore.open(small_config(memtable_flush_bytes=2048))
        n = 600
        for i in range(n):
            store.put(f"key{i:05d}".encode(), f"value-{i}".encode())
        assert store.device.lsm.flush_count > 0
        # Every key still resolves through memtable/SSTables/vLog.
        for i in range(0, n, 37):
            assert store.get(f"key{i:05d}".encode()) == f"value-{i}".encode()

    def test_overwrites_return_latest_across_levels(self):
        store = KVStore.open(small_config(memtable_flush_bytes=2048))
        for round_no in range(3):
            for i in range(150):
                store.put(f"key{i:04d}".encode(), f"r{round_no}-{i}".encode())
        for i in range(0, 150, 13):
            assert store.get(f"key{i:04d}".encode()) == f"r2-{i}".encode()

    def test_interleaved_puts_gets_deletes(self):
        store = KVStore.open(small_config(memtable_flush_bytes=2048))
        live = {}
        for i in range(400):
            key = f"k{i % 97:03d}".encode()
            if i % 5 == 4 and key in live:
                store.delete(key)
                del live[key]
            else:
                value = f"v{i}".encode()
                store.put(key, value)
                live[key] = value
            if i % 50 == 25:
                probe = f"k{(i * 7) % 97:03d}".encode()
                if probe in live:
                    assert store.get(probe) == live[probe]
                else:
                    with pytest.raises(KeyNotFoundError):
                        store.get(probe)
        for key, value in live.items():
            assert store.get(key) == value

    def test_scan_matches_model_after_churn(self):
        store = KVStore.open(small_config(memtable_flush_bytes=2048))
        model = {}
        for i in range(300):
            key = f"k{(i * 13) % 83:03d}".encode()
            if i % 7 == 6 and key in model:
                store.delete(key)
                del model[key]
            else:
                model[key] = f"v{i}".encode()
                store.put(key, model[key])
        scanned = dict(store.scan())
        assert scanned == model

    def test_buffer_pool_churn_with_large_values(self):
        """Values far exceeding the pool size force steady-state flushing."""
        store = KVStore.open(small_config(buffer_entries=2, dlt_capacity=2))
        for i in range(60):
            store.put(f"big{i:03d}".encode(), bytes([i]) * 10_000)
        assert store.device.flash.page_programs > 0
        for i in (0, 30, 59):
            assert store.get(f"big{i:03d}".encode()) == bytes([i]) * 10_000


class TestDurabilityBoundary:
    def test_values_readable_from_nand_after_drain(self):
        """After flush, reads must come from NAND, not the buffer."""
        store = KVStore.open(small_config())
        store.put(b"durable", b"on flash now")
        store.flush()
        assert store.device.buffer.open_entries == 0
        reads_before = store.device.flash.page_reads
        assert store.get(b"durable") == b"on flash now"
        assert store.device.flash.page_reads > reads_before

    def test_unflushed_values_readable_from_buffer(self):
        store = KVStore.open(small_config())
        store.put(b"hot", b"still in dram")
        reads_before = store.device.flash.page_reads
        assert store.get(b"hot") == b"still in dram"
        # vLog read served from the buffer: no NAND page read for the value.
        # (LSM index probes may read SSTable pages; value pages may not.)
        assert store.device.vlog.ftl.metrics.counter("logical_writes").value >= 0


class TestCrossConfigConsistency:
    def test_all_presets_agree_on_content(self):
        """Different transfer/packing choices must never change the data."""
        workload = [
            (f"key{i:03d}".encode(), bytes((i * 7 + j) % 256 for j in range(1 + (i * 53) % 3000)))
            for i in range(40)
        ]
        reference = None
        for name in ("baseline", "piggyback", "adaptive", "all", "select", "backfill"):
            base = PRESETS[name]
            store = KVStore.open(
                small_config(transfer_mode=base.transfer_mode, packing=base.packing)
            )
            for k, v in workload:
                store.put(k, v)
            contents = {k: store.get(k) for k, _ in workload}
            if reference is None:
                reference = contents
            else:
                assert contents == reference, name


class TestLargeValues:
    """Values far beyond the paper's 16 KiB sweep ceiling: multi-page PRP
    with a real PRP list, multi-entry buffer spans, multi-page vLog reads."""

    def test_60kib_value_roundtrip_and_nand_readback(self):
        store = KVStore.open(small_config())
        value = bytes((i * 31) % 256 for i in range(60 * 1024))
        store.put(b"huge", value)
        assert store.get(b"huge") == value
        store.flush()  # now resident on NAND across ~4 logical pages
        assert store.get(b"huge") == value

    def test_large_value_uses_prp_list(self):
        store = KVStore.open(small_config())
        from repro.pcie.metrics import TrafficCategory

        meter = store.device.link.meter
        before = meter.bytes_for(TrafficCategory.SQ_ENTRY)
        store.put(b"big", b"z" * (5 * 4096))  # 5 pages -> PRP list fetch
        extra = meter.bytes_for(TrafficCategory.SQ_ENTRY) - before - 64
        assert extra == 4 * 8  # list entries for pages 2..5

    def test_interleaved_large_and_tiny(self):
        store = KVStore.open(small_config(buffer_entries=4, dlt_capacity=4))
        model = {}
        for i in range(40):
            if i % 4 == 0:
                value = bytes([i]) * 20_000
            else:
                value = bytes([i]) * 10
            key = f"k{i:02d}".encode()
            store.put(key, value)
            model[key] = value
        for key, value in model.items():
            assert store.get(key) == value


class TestSplitBoundaryRead:
    def test_get_spans_flushed_and_buffered_pages(self):
        """A value straddling a NAND-page boundary whose first page already
        flushed: GET must stitch NAND bytes and buffer bytes together."""
        from repro.core.config import PackingPolicyKind

        store = KVStore.open(small_config(packing=PackingPolicyKind.ALL))
        page = store.device.vlog.page_size
        value = bytes((7 * i) % 256 for i in range(page + 300))
        store.put(b"straddle", value)
        # Entry 0 is complete (the value crossed it) and flushed; entry 1
        # holds the 300-byte tail and stays open.
        assert store.device.flash.page_programs >= 1
        assert store.device.buffer.open_entries >= 1
        reads_before = store.device.flash.page_reads
        assert store.get(b"straddle") == value
        assert store.device.flash.page_reads > reads_before
