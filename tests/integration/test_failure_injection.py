"""Failure injection: wrong inputs and exhausted resources fail loudly.

A behavioral model earns trust by *not* absorbing errors: corrupted wire
bytes must corrupt data (proving the value really travels through the
command encoding), stale PRP pointers must blow up, and exhausted
substrates must raise their specific exceptions instead of wedging.
"""

import pytest

from repro.core.config import PackingPolicyKind, TransferMode
from repro.errors import (
    HostMemoryError,
    LSMError,
    NVMeError,
    VLogError,
)
from repro.host.api import KVStore
from repro.nvme.kv import build_store_command, build_write_command
from repro.nvme.command import WRITE_PIGGYBACK_RANGES
from repro.nvme.prp import build_prp

from tests.conftest import small_config


class TestWireCorruption:
    def test_flipped_piggyback_byte_corrupts_the_value(self):
        """The value truly rides inside the command: corrupt the command,
        corrupt the data — no out-of-band copy can save it."""
        store = KVStore.open(small_config())
        d = store.device
        value = b"A" * 20
        cmd = build_write_command(1, b"victim", len(value), inline=value,
                                  final=True)
        offset, _ = WRITE_PIGGYBACK_RANGES[0]
        cmd.raw[offset] ^= 0xFF  # corruption on the "wire"
        d.controller.sq.submit(cmd)
        d.controller.process_next()
        d.controller.cq.reap()
        got = store.get(b"victim")
        assert got != value
        assert got[1:] == value[1:]  # exactly the flipped byte differs

    def test_flipped_key_byte_stores_under_wrong_key(self):
        store = KVStore.open(small_config())
        d = store.device
        cmd = build_write_command(1, b"good", 3, inline=b"xyz", final=True)
        cmd.raw[8] ^= 0x01  # first key byte lives at dword 2
        d.controller.sq.submit(cmd)
        d.controller.process_next()
        d.controller.cq.reap()
        assert not store.exists(b"good")


class TestStalePointers:
    def test_prp_to_freed_page_detected(self):
        """A use-after-free in the DMA path must be caught, not read junk."""
        store = KVStore.open(small_config())
        d = store.device
        buf = d.host_mem.stage_value(b"x" * 2048)
        prp = build_prp(d.host_mem, buf)
        d.host_mem.release(buf)  # freed before the device fetches it
        cmd = build_store_command(2, b"stale", 2048, prp)
        d.controller.sq.submit(cmd)
        with pytest.raises(HostMemoryError):
            d.controller.process_next()

    def test_transfer_for_unknown_cid_rejected(self):
        from repro.nvme.kv import build_transfer_command

        store = KVStore.open(small_config())
        d = store.device
        d.controller.sq.submit(build_transfer_command(77, b"orphan", final=True))
        with pytest.raises(NVMeError):
            d.controller.process_next()


class TestResourceExhaustion:
    def test_vlog_exhaustion_raises_vlog_error(self):
        """Filling the value log must fail with the specific error."""
        store = KVStore.open(
            small_config(nand_capacity_bytes=4 << 20, vlog_fraction=0.3)
        )
        with pytest.raises((VLogError, LSMError)):
            for i in range(100_000):
                store.put(f"k{i:06d}".encode(), b"x" * 8192)

    def test_oversized_value_rejected_at_plan_time(self):
        store = KVStore.open(small_config())
        with pytest.raises(NVMeError):
            store.put(b"big", b"x" * (store.device.config.max_value_bytes + 1))


class TestModeMatrixUnderChurn:
    """Every transfer×packing combination survives a hostile mixed pattern."""

    @pytest.mark.parametrize("transfer", list(TransferMode))
    @pytest.mark.parametrize(
        "packing", [PackingPolicyKind.ALL, PackingPolicyKind.BACKFILL,
                    PackingPolicyKind.INTEGRATED]
    )
    def test_churn_roundtrip(self, transfer, packing):
        store = KVStore.open(
            small_config(transfer_mode=transfer, packing=packing,
                         memtable_flush_bytes=2048)
        )
        model = {}
        for i in range(120):
            key = f"k{i % 37:03d}".encode()
            size = (i * 97) % 5000 + 1
            value = bytes((i + j) % 256 for j in range(size))
            store.put(key, value)
            model[key] = value
            if i % 11 == 10:
                store.delete(key)
                del model[key]
        for key, value in model.items():
            assert store.get(key) == value
