"""A full day-in-the-life scenario exercising every subsystem together.

Ingest → point reads → range scans (both interfaces) → deletes →
runtime retuning via admin → vLog compaction → more ingest → final audit
against a model, with device statistics read back over NVMe at the end.
"""

import pytest

from repro.errors import KeyNotFoundError
from repro.host.api import KVStore
from repro.lsm.vlog_gc import VLogCompactor
from repro.nvme.admin import FeatureId

from tests.conftest import small_config


@pytest.fixture
def store():
    return KVStore.open(
        small_config(memtable_flush_bytes=2048, buffer_entries=8,
                     dlt_capacity=8, read_cache_pages=4)
    )


def test_full_lifecycle(store):
    model = {}

    # Phase 1: ingest a mixed-size dataset.
    for i in range(300):
        key = f"doc{i:05d}".encode()
        value = bytes((i * 13 + j) % 256 for j in range(1 + (i * 97) % 3000))
        store.put(key, value)
        model[key] = value

    # Phase 2: point reads, hot and cold.
    for i in (0, 100, 299):
        key = f"doc{i:05d}".encode()
        assert store.get(key) == model[key]

    # Phase 3: range scans agree across interfaces and with the model.
    host_view = dict(store.scan(b"doc00100", limit=50))
    device_view = dict(store.device_scan(b"doc00100", limit=50))
    expected = dict(sorted(model.items())[100:150])
    assert host_view == device_view == expected

    # Phase 4: delete a band of keys.
    for i in range(50, 100):
        key = f"doc{i:05d}".encode()
        store.delete(key)
        del model[key]
    with pytest.raises(KeyNotFoundError):
        store.get(b"doc00075")

    # Phase 5: retune transfer thresholds at runtime via admin commands.
    store.driver.set_feature(FeatureId.ALPHA_MILLI, 3000)
    assert store.driver.get_feature(FeatureId.ALPHA_MILLI) == 3000
    for i in range(300, 350):
        key = f"doc{i:05d}".encode()
        value = bytes([i % 256]) * 200  # now piggybacked (200 < 3*91)
        store.put(key, value)
        model[key] = value

    # Phase 6: reclaim dead vLog space left by the deletes/overwrites.
    store.flush()
    gc = VLogCompactor(store.device.lsm, store.device.policy, store.device.buffer)
    report = gc.compact()
    assert report.pages_trimmed > 0

    # Phase 7: overwrite part of the survivors post-compaction.
    for i in range(0, 50, 5):
        key = f"doc{i:05d}".encode()
        store.put(key, b"rewritten")
        model[key] = b"rewritten"

    # Final audit: every key, every byte; scan order; absent keys absent.
    assert dict(store.scan()) == dict(sorted(model.items()))
    for i in range(50, 100):
        assert not store.exists(f"doc{i:05d}".encode())

    # Device statistics over NVMe agree with ground truth.
    stats = store.driver.read_stats_log()
    assert stats["nand_page_programs"] == store.device.flash.page_programs
    assert stats["lsm_flushes"] == store.device.lsm.flush_count
    assert stats["commands_processed"] > 300


def test_lifecycle_is_deterministic(store):
    """The exact same op sequence on a second device gives identical
    traffic and NAND counts — the simulator has no hidden nondeterminism."""
    def run(s):
        for i in range(150):
            s.put(f"k{i:04d}".encode(), bytes([i % 256]) * (1 + i % 500))
        for i in range(0, 150, 3):
            s.get(f"k{i:04d}".encode())
        s.flush()
        return (
            s.device.link.meter.total_bytes,
            s.device.flash.page_programs,
            s.device.clock.now_us,
        )

    first = run(store)
    second = run(KVStore.open(small_config(
        memtable_flush_bytes=2048, buffer_entries=8, dlt_capacity=8,
        read_cache_pages=4,
    )))
    assert first == second
