"""ChaosBackend.execute_batch: faults land at exact executed-op indices.

Batched dispatch must not move a scripted fault: an action at ``at_op=N``
fires between executed op N-1 and op N no matter how the dispatcher
grouped the stream, so chaos scenarios stay replayable byte-for-byte
when the serving path batches.
"""

import random

from repro.chaos.backend import BackendAction, ChaosBackend
from repro.serve import protocol
from repro.serve.backend import StoreBackend


def _mixed_requests(seed, count):
    rng = random.Random(seed)
    requests = []
    for _ in range(count):
        key = b"ck%02d" % rng.randrange(20)
        if rng.random() < 0.5:
            requests.append(protocol.Request(
                op="SET", key=key, value=b"v" * rng.randrange(1, 64)))
        else:
            requests.append(protocol.Request(op="GET", key=key))
    return requests


def _chaos(actions):
    return ChaosBackend(
        StoreBackend.build("backfill", array_shards=3, replication=2),
        actions,
    )


class TestBatchFaultPlacement:
    def test_fault_fires_at_same_index_as_serial(self):
        requests = _mixed_requests(1, 40)
        action = BackendAction(at_op=17, kind="kill_shard", shard=1)

        serial = _chaos([action])
        serial_kinds = [serial.execute(r).kind for r in requests]

        for chunk_seed in (2, 3, 4):
            batched = _chaos([action])
            rng = random.Random(chunk_seed)
            kinds, pos = [], 0
            while pos < len(requests):
                chunk = rng.randrange(1, 12)
                kinds.extend(
                    r.kind for r in batched.execute_batch(
                        requests[pos:pos + chunk], queue_depth=8)
                )
                pos += chunk
            assert kinds == serial_kinds
            # Fault *placement* is identical; the fire-time clock differs
            # because overlapped submission burns less virtual time.
            strip = [{k: v for k, v in f.items() if k != "now_us"}
                     for f in batched.fired]
            assert strip == [{k: v for k, v in f.items() if k != "now_us"}
                             for f in serial.fired]
            assert batched.fired[0]["at_op"] == 17
            assert batched.ops_seen == serial.ops_seen == len(requests)

    def test_multiple_actions_split_one_batch(self):
        requests = _mixed_requests(5, 12)
        actions = [
            BackendAction(at_op=4, kind="kill_shard", shard=0),
            BackendAction(at_op=7, kind="rebuild_shard", shard=0,
                          remount=False),
        ]
        backend = _chaos(actions)
        results = backend.execute_batch(requests, queue_depth=8)
        assert len(results) == len(requests)
        assert [f["at_op"] for f in backend.fired] == [4, 7]
        assert [f["kind"] for f in backend.fired] == [
            "kill_shard", "rebuild_shard"]
        assert backend.ops_seen == len(requests)

    def test_action_at_zero_fires_before_first_op(self):
        backend = _chaos([BackendAction(at_op=0, kind="kill_shard", shard=2)])
        backend.execute_batch(_mixed_requests(9, 5), queue_depth=4)
        assert backend.fired[0]["at_op"] == 0
        assert backend.inner.store.devices_up == 2

    def test_pending_action_beyond_batch_stays_pending(self):
        backend = _chaos([BackendAction(at_op=50, kind="kill_shard")])
        backend.execute_batch(_mixed_requests(13, 10), queue_depth=4)
        assert backend.fired == []
        assert backend.ops_seen == 10

    def test_shard_loss_loadtest_is_repeatable_when_batched(self):
        # End-to-end determinism: same chaos script + batched serving,
        # two runs, identical reports.
        from repro.loadgen.runner import run_loadtest
        from repro.serve.server import ServerSettings

        def run():
            settings = ServerSettings(dispatch_batch=16, server_qd=8)
            return run_loadtest(
                "backfill", rps=60_000.0, requests=250, seed=21,
                num_keys=60, value_size=128, array_shards=3,
                settings=settings,
            ).to_dict()

        assert run() == run()
