"""Chaos harness: action plumbing, write-oracle unit tests, scenario runs."""

from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.chaos import BackendAction, ChaosBackend, run_scenario
from repro.chaos.scenario import (
    CHAOS_SCENARIOS,
    _TOMBSTONE,
    ChaosScenarioReport,
    _WriteOracle,
)
from repro.errors import ConfigError, KeyNotFoundError
from repro.serve import protocol
from repro.serve.backend import StoreBackend


class TestBackendAction:
    def test_validation(self):
        with pytest.raises(ConfigError):
            BackendAction(at_op=-1, kind="scrub")
        with pytest.raises(ConfigError):
            BackendAction(at_op=0, kind="set-on-fire")

    def test_fires_at_executed_op_index(self):
        backend = ChaosBackend(
            StoreBackend.build("baseline", array_shards=2, replication=2),
            actions=(BackendAction(at_op=2, kind="kill_shard", shard=1),),
        )
        assert backend.store.devices_up == 2

        def _set(i):
            return protocol.Request(op="SET", key=b"k%d" % i, value=b"v",
                                    arrival_us=None)

        backend.execute(_set(0))  # op 0: before at_op, nothing fires
        backend.execute(_set(1))  # op 1
        assert backend.store.devices_up == 2 and backend.fired == []
        backend.execute(_set(2))  # fires just before executed op 2
        assert backend.store.devices_up == 1
        assert len(backend.fired) == 1
        event = backend.fired[0]
        assert (event["at_op"], event["kind"], event["shard"]) == \
            (2, "kill_shard", 1)

    def test_rejected_requests_never_advance_the_op_clock(self):
        # The server only calls execute() for admitted ops; ChaosBackend
        # counts exactly those calls, so ops_seen == executed ops.
        backend = ChaosBackend(StoreBackend.build("baseline"))
        assert backend.ops_seen == 0
        backend.execute(protocol.Request(op="SET", key=b"k", value=b"v",
                                         arrival_us=None))
        assert backend.ops_seen == 1


class _FakeStore:
    def __init__(self, contents: dict) -> None:
        self.contents = contents

    def get(self, key: bytes) -> bytes:
        try:
            return self.contents[key]
        except KeyError:
            raise KeyNotFoundError(f"no such key {key!r}") from None


def _op(kind: str, key: bytes, value: bytes = b"") -> SimpleNamespace:
    return SimpleNamespace(kind=kind, key=key, value=value)


def _outcome(kind: str) -> SimpleNamespace:
    return SimpleNamespace(kind=kind)


def _check(oracle: _WriteOracle, store: _FakeStore, mode: str):
    report = ChaosScenarioReport(
        name="unit", seed=0, requests=0, preset="baseline",
        array_shards=1, replication=1, write_oracle=mode,
    )
    oracle.check(store, report, mode)
    return report


class TestWriteOracle:
    def test_strict_detects_lost_acked_write(self):
        oracle = _WriteOracle()
        oracle.seed(b"k", b"old")
        oracle.observe(_op("SET", b"k", b"new"), _outcome("STORED"))
        assert oracle.acked_writes == 1
        ok = _check(oracle, _FakeStore({b"k": b"new"}), "strict")
        assert ok.ok and ok.keys_checked == 1
        lost = _check(oracle, _FakeStore({b"k": b"old"}), "strict")
        assert not lost.ok and "acked write lost" in lost.violations[0]
        gone = _check(oracle, _FakeStore({}), "strict")
        assert not gone.ok

    def test_rejected_outcomes_leave_state_expectations_unchanged(self):
        oracle = _WriteOracle()
        oracle.seed(b"k", b"old")
        for kind in ("SERVER_BUSY", "GAVE_UP", "DEADLINE_EXCEEDED"):
            oracle.observe(_op("SET", b"k", b"never-landed"), _outcome(kind))
        assert oracle.acked_writes == 0
        # The rejected value reading back WOULD be corruption.
        report = _check(
            oracle, _FakeStore({b"k": b"never-landed"}), "no-corruption"
        )
        assert not report.ok and "corruption" in report.violations[0]
        assert _check(oracle, _FakeStore({b"k": b"old"}), "strict").ok

    def test_err_write_makes_the_key_uncertain(self):
        oracle = _WriteOracle()
        oracle.seed(b"k", b"old")
        oracle.observe(_op("SET", b"k", b"maybe"), _outcome("ERR"))
        report = _check(oracle, _FakeStore({}), "strict")
        # Uncertain keys are reported, never judged.
        assert report.ok
        assert report.keys_uncertain == 1 and report.keys_checked == 0
        # A later acked write clears the uncertainty.
        oracle.observe(_op("SET", b"k", b"sure"), _outcome("STORED"))
        report = _check(oracle, _FakeStore({b"k": b"sure"}), "strict")
        assert report.ok and report.keys_checked == 1

    def test_no_corruption_allows_any_acked_state_only(self):
        oracle = _WriteOracle()
        oracle.seed(b"k", b"v0")
        oracle.observe(_op("SET", b"k", b"v1"), _outcome("STORED"))
        oracle.observe(_op("SET", b"k", b"v2"), _outcome("STORED"))
        for acked in (b"v0", b"v1", b"v2"):
            assert _check(
                oracle, _FakeStore({b"k": acked}), "no-corruption"
            ).ok
        bad = _check(oracle, _FakeStore({b"k": b"torn"}), "no-corruption")
        assert not bad.ok and "corruption" in bad.violations[0]
        # Absent without an acked delete: below the flushed durable floor.
        floor = _check(oracle, _FakeStore({}), "no-corruption")
        assert not floor.ok and "never deleted" in floor.violations[0]

    def test_acked_delete_permits_absence(self):
        oracle = _WriteOracle()
        oracle.seed(b"k", b"v0")
        oracle.observe(_op("DEL", b"k"), _outcome("DELETED"))
        assert _check(oracle, _FakeStore({}), "strict").ok
        assert _check(oracle, _FakeStore({}), "no-corruption").ok
        # strict demands the tombstone; no-corruption tolerates rollback
        # to the earlier acked value.
        assert not _check(oracle, _FakeStore({b"k": b"v0"}), "strict").ok
        assert _check(oracle, _FakeStore({b"k": b"v0"}), "no-corruption").ok
        assert _TOMBSTONE in oracle.history[b"k"]


class TestScenarioRuns:
    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigError):
            run_scenario("does-not-exist")

    def test_shard_loss_is_byte_deterministic_and_green(self):
        # The acceptance scenario: two runs at one seed must produce
        # identical JSON, and the oracles must pass.
        first = run_scenario("shard-loss-under-load", seed=7)
        second = run_scenario("shard-loss-under-load", seed=7)
        assert first.to_json_obj() == second.to_json_obj()
        assert first.ok, first.violations
        assert [e["kind"] for e in first.chaos_events] == [
            "kill_shard", "rebuild_shard", "scrub",
        ]
        assert first.acked_writes > 0 and first.keys_checked > 0

    def test_slow_clients_reaps_every_staller(self):
        report = run_scenario("slow-clients", seed=3)
        assert report.ok, report.violations
        assert report.stalled_reaped == 4
        assert report.server_counters["serve.conns_idle_reaped"] >= 4.0

    def test_garbage_frames_answers_errs_and_serves_on(self):
        report = run_scenario("garbage-frames", seed=3, requests=120)
        assert report.ok, report.violations
        assert report.requests == 120  # the override is honored
        assert report.server_counters["serve.protocol_errors"] >= 4.0

    def test_judge_flags_missed_counter_floor(self):
        # Same scenario, impossible counter floor: the verdict machinery
        # must turn it into a violation rather than a silent pass.
        base = CHAOS_SCENARIOS["garbage-frames"]
        rigged = replace(
            base,
            name="rigged-floor",
            expect_counters={"serve.protocol_errors": 10_000},
        )
        CHAOS_SCENARIOS["rigged-floor"] = rigged
        try:
            report = run_scenario("rigged-floor", seed=3, requests=60)
        finally:
            del CHAOS_SCENARIOS["rigged-floor"]
        assert not report.ok
        assert any("serve.protocol_errors" in v for v in report.violations)
