"""Tests for device assembly: wiring, partitioning, snapshots."""

import pytest

from repro.core.config import BandSlimConfig, PackingPolicyKind
from repro.core.packing import BackfillPacking, BlockPacking
from repro.device.kvssd import KVSSD
from repro.units import KIB, MIB


def build(**overrides):
    defaults = dict(
        buffer_entries=4,
        dlt_capacity=4,
        scratch_bytes=128 * KIB,
        max_value_bytes=64 * KIB,
        nand_capacity_bytes=64 * MIB,
    )
    defaults.update(overrides)
    return KVSSD.build(config=BandSlimConfig(**defaults))


class TestAssembly:
    def test_build_produces_wired_device(self):
        d = build()
        assert d.driver.controller is d.controller
        assert d.controller.buffer is d.buffer
        assert d.lsm.vlog is d.vlog

    def test_vlog_and_sstable_spaces_disjoint(self):
        d = build()
        assert d.vlog.base_lpn == 0
        assert d.lsm.store.space.base_lpn == d.vlog.capacity_pages

    def test_logical_space_leaves_gc_headroom(self):
        d = build()
        usable = d.vlog.capacity_pages + d.lsm.store.space.capacity_pages
        assert usable < d.geometry.total_pages

    def test_dram_sized_for_pool_and_scratch(self):
        d = build()
        expected = 4 * d.geometry.page_size + 128 * KIB
        assert d.dram.size == expected

    def test_policy_matches_config(self):
        assert isinstance(build().policy, BackfillPacking)
        assert isinstance(
            build(packing=PackingPolicyKind.BLOCK).policy, BlockPacking
        )

    def test_shared_clock_everywhere(self):
        d = build()
        assert d.link.clock is d.clock
        assert d.flash.clock is d.clock
        assert d.lsm.clock is d.clock

    def test_nand_disabled_never_programs(self):
        d = build(nand_io_enabled=False)
        for i in range(200):
            d.driver.put(f"k{i:04d}".encode(), b"v" * 2048)
        assert d.flash.page_programs == 0

    def test_nand_disabled_memtable_never_spills(self):
        d = build(nand_io_enabled=False, memtable_flush_bytes=1 * KIB)
        for i in range(200):
            d.driver.put(f"k{i:04d}".encode(), b"v" * 64)
        assert d.lsm.flush_count == 0


class TestSnapshot:
    def test_snapshot_covers_components(self):
        d = build()
        d.driver.put(b"k", b"v" * 100)
        snap = d.snapshot()
        for key in (
            "pcie.total_bytes",
            "nand.page_programs",
            "buffer.flushes",
            "driver.puts",
            "controller.commands_processed",
            "clock.now_us",
        ):
            assert key in snap, key

    def test_snapshot_reflects_activity(self):
        d = build()
        d.driver.put(b"k", b"v" * 100)
        snap = d.snapshot()
        assert snap["driver.puts"] == 1.0
        assert snap["pcie.total_bytes"] > 0
