"""Tests for the leveled store: flush intake, compaction, invariants."""

import pytest

from repro.errors import LSMError
from repro.lsm.addressing import AddressingScheme, ValueAddress
from repro.lsm.levels import LeveledStore
from repro.lsm.space import PageSpace
from repro.nand.flash import NandFlash
from repro.nand.ftl import PageMappedFTL
from repro.nand.geometry import NandGeometry
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.units import KIB


@pytest.fixture
def store():
    geo = NandGeometry(
        channels=2, ways_per_channel=2, blocks_per_way=32,
        pages_per_block=16, page_size=16 * KIB,
    )
    flash = NandFlash(geo, SimClock(), LatencyModel())
    ftl = PageMappedFTL(flash, gc_reserve_blocks=4)
    space = PageSpace(0, geo.total_pages)
    return LeveledStore(
        ftl, space, AddressingScheme.FINE,
        l0_compaction_trigger=2, l1_page_budget=4,
        level_size_ratio=4, table_page_budget=2,
    )


def addr(n: int) -> ValueAddress:
    return ValueAddress(lpn=n % 1000, offset=0, size=8)


def batch(start: int, count: int, stride: int = 1):
    return [(f"k{start + i * stride:06d}".encode(), addr(start + i)) for i in range(count)]


def check_invariants(store):
    """Structural invariants: L1+ sorted and non-overlapping."""
    for level in range(1, store.max_levels):
        tables = store.levels[level]
        for i in range(len(tables) - 1):
            assert tables[i].max_key < tables[i + 1].min_key, (
                f"level {level} overlap between tables {i} and {i+1}"
            )


class TestFlushIntake:
    def test_flush_lands_in_l0(self, store):
        store.l0_compaction_trigger = 100  # disable compaction
        store.add_flush(batch(0, 10))
        assert len(store.levels[0]) == 1
        found, a = store.get(b"k000003")
        assert found and a == addr(3)

    def test_newest_flush_probed_first(self, store):
        store.l0_compaction_trigger = 100
        store.add_flush([(b"k", addr(1))])
        store.add_flush([(b"k", addr(2))])
        found, a = store.get(b"k")
        assert found and a == addr(2)

    def test_empty_flush_rejected(self, store):
        with pytest.raises(LSMError):
            store.add_flush([])

    def test_flush_counter(self, store):
        store.l0_compaction_trigger = 100
        store.add_flush(batch(0, 5))
        assert store.metrics.counter("flushes").value == 1


class TestCompaction:
    def test_l0_trigger_compacts_into_l1(self, store):
        store.add_flush(batch(0, 200))
        store.add_flush(batch(100, 200))
        assert len(store.levels[0]) < store.l0_compaction_trigger
        assert store.levels[1]
        check_invariants(store)

    def test_compaction_preserves_latest_versions(self, store):
        store.add_flush([(b"dup", addr(1)), (b"only_a", addr(10))])
        store.add_flush([(b"dup", addr(2)), (b"only_b", addr(20))])
        found, a = store.get(b"dup")
        assert found and a == addr(2)
        assert store.get(b"only_a") == (True, addr(10))
        assert store.get(b"only_b") == (True, addr(20))

    def test_tombstones_dropped_at_bottom(self, store):
        store.add_flush([(b"k", addr(1))])
        store.add_flush([(b"k", None)])
        # Both flushes compacted into L1 == lowest populated level.
        found, _ = store.get(b"k")
        assert not found

    def test_deep_ingest_spills_to_lower_levels(self, store):
        for i in range(30):
            store.add_flush(batch(i * 100, 300))
        check_invariants(store)
        deepest = store.lowest_populated_level()
        assert deepest >= 2
        # Spot-check data integrity after multi-level compaction.
        for key_num in (0, 1500, 2900):
            found, _ = store.get(f"k{key_num:06d}".encode())
            assert found

    def test_level_budgets_respected_after_rebalance(self, store):
        for i in range(20):
            store.add_flush(batch(i * 137, 250))
        for level in range(1, store.max_levels - 1):
            assert store.level_pages(level) <= store.level_page_budget(level), (
                f"level {level} over budget"
            )

    def test_compaction_frees_input_tables(self, store):
        for i in range(8):
            store.add_flush(batch(i * 50, 100))
        # Space usage must equal the sum of live tables' pages.
        live_pages = sum(
            t.page_count for level in store.levels for t in level
        )
        assert store.space.pages_in_use == live_pages

    def test_compaction_counter(self, store):
        store.add_flush(batch(0, 200))
        store.add_flush(batch(50, 200))
        assert store.metrics.counter("compactions").value >= 1


class TestScan:
    def test_iter_sources_cover_all_levels(self, store):
        for i in range(10):
            store.add_flush(batch(i * 100, 150))
        sources = store.iter_sources_from(b"")
        keys = set()
        for src in sources:
            for k, _ in src:
                keys.add(k)
        # Every live key appears in some source.
        found, _ = store.get(b"k000000")
        assert found
        assert b"k000000" in keys


class TestConfigValidation:
    def test_rejects_bad_levels(self, store):
        with pytest.raises(LSMError):
            LeveledStore(store.ftl, store.space, AddressingScheme.FINE, max_levels=1)

    def test_l0_budget_query_rejected(self, store):
        with pytest.raises(LSMError):
            store.level_page_budget(0)
