"""Tests for the vLog compactor (WiscKey-style space reclamation)."""

import pytest

from repro.errors import VLogError
from repro.host.api import KVStore
from repro.lsm.vlog_gc import VLogCompactor

from tests.conftest import small_config


@pytest.fixture
def store():
    # Tiny memtable so index state spills to SSTables during churn.
    return KVStore.open(small_config(memtable_flush_bytes=2048))


def compactor_for(store) -> VLogCompactor:
    d = store.device
    return VLogCompactor(d.lsm, d.policy, d.buffer)


def churn(store, keys: int, rounds: int, size: int = 600) -> dict:
    """Overwrite a working set repeatedly; returns the live model."""
    model = {}
    for r in range(rounds):
        for i in range(keys):
            key = f"k{i:04d}".encode()
            value = bytes([r, i % 256]) * (size // 2)
            store.put(key, value)
            model[key] = value
    store.flush()
    return model


class TestObservation:
    def test_fresh_store_has_nothing_to_compact(self, store):
        gc = compactor_for(store)
        report = gc.compact()
        assert not report.did_work

    def test_dead_fraction_grows_with_overwrites(self, store):
        gc = compactor_for(store)
        churn(store, keys=30, rounds=1)
        once = gc.dead_fraction()
        churn(store, keys=30, rounds=3)
        thrice = gc.dead_fraction()
        assert thrice > once

    def test_live_bytes_matches_model(self, store):
        model = churn(store, keys=25, rounds=2)
        gc = compactor_for(store)
        assert gc.live_bytes() == sum(len(v) for v in model.values())


class TestCompaction:
    def test_compaction_preserves_every_live_value(self, store):
        model = churn(store, keys=40, rounds=4)
        gc = compactor_for(store)
        report = gc.compact()
        assert report.did_work
        assert report.values_moved > 0
        for key, value in model.items():
            assert store.get(key) == value

    def test_compaction_trims_pages_for_ftl_reclaim(self, store):
        churn(store, keys=40, rounds=4)
        gc = compactor_for(store)
        mapped_before = store.device.ftl.mapped_pages
        report = gc.compact()
        assert report.pages_trimmed > 0
        # Trims released mappings (relocation added some new pages too).
        assert store.device.ftl.mapped_pages <= mapped_before + report.values_moved

    def test_compaction_is_idempotent_when_clean(self, store):
        churn(store, keys=20, rounds=2)
        gc = compactor_for(store)
        gc.compact()
        store.flush()
        second = gc.compact()
        # The frontier advanced; only newly flushed relocated pages remain.
        assert second.pages_examined >= 0  # must not crash or corrupt
        for key in (b"k0000", b"k0010"):
            assert store.get(key) is not None

    def test_bounded_rounds_advance_frontier(self, store):
        churn(store, keys=40, rounds=3)
        gc = compactor_for(store)
        before = gc.compacted_through_lpn
        gc.compact(max_pages=2)
        assert gc.compacted_through_lpn == before + 2
        gc.compact(max_pages=2)
        assert gc.compacted_through_lpn == before + 4

    def test_deleted_values_not_relocated(self, store):
        churn(store, keys=20, rounds=1)
        for i in range(0, 20, 2):
            store.delete(f"k{i:04d}".encode())
        store.flush()
        gc = compactor_for(store)
        report = gc.compact()
        # Only the 10 surviving keys' values move.
        assert report.values_moved <= 10 + 1
        for i in range(1, 20, 2):
            assert store.get(f"k{i:04d}".encode()) is not None

    def test_compact_if_needed_respects_threshold(self, store):
        churn(store, keys=20, rounds=1)  # mostly live
        gc = compactor_for(store)
        report = gc.compact_if_needed(dead_threshold=0.99)
        assert not report.did_work
        churn(store, keys=20, rounds=5)  # mostly dead now
        report = gc.compact_if_needed(dead_threshold=0.5)
        assert report.did_work

    def test_threshold_validation(self, store):
        gc = compactor_for(store)
        with pytest.raises(VLogError):
            gc.compact_if_needed(dead_threshold=1.5)

    def test_scan_still_sorted_after_compaction(self, store):
        model = churn(store, keys=30, rounds=3)
        gc = compactor_for(store)
        gc.compact()
        scanned = dict(store.scan())
        assert scanned == model
