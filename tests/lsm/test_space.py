"""Tests for the logical page space allocator."""

import pytest

from repro.errors import LSMError
from repro.lsm.space import PageSpace


class TestPageSpace:
    def test_sequential_allocation(self):
        sp = PageSpace(base_lpn=100, capacity_pages=3)
        assert [sp.alloc() for _ in range(3)] == [100, 101, 102]

    def test_exhaustion(self):
        sp = PageSpace(0, 1)
        sp.alloc()
        with pytest.raises(LSMError):
            sp.alloc()

    def test_free_recycles(self):
        sp = PageSpace(0, 2)
        a = sp.alloc()
        sp.free(a)
        assert sp.alloc() == a

    def test_free_unallocated_rejected(self):
        sp = PageSpace(0, 10)
        with pytest.raises(LSMError):
            sp.free(5)

    def test_free_outside_range_rejected(self):
        sp = PageSpace(10, 10)
        with pytest.raises(LSMError):
            sp.free(9)

    def test_pages_in_use(self):
        sp = PageSpace(0, 10)
        a = sp.alloc()
        sp.alloc()
        assert sp.pages_in_use == 2
        sp.free(a)
        assert sp.pages_in_use == 1

    def test_bounds_validation(self):
        with pytest.raises(LSMError):
            PageSpace(-1, 10)
        with pytest.raises(LSMError):
            PageSpace(0, 0)

    def test_end_lpn(self):
        assert PageSpace(5, 10).end_lpn == 15
