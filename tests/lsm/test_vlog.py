"""Tests for the vLog: allocation, read-through, page-spanning reads."""

import pytest

from repro.errors import VLogError
from repro.lsm.addressing import ValueAddress
from repro.lsm.vlog import VLog


@pytest.fixture
def vlog(ftl):
    return VLog(ftl, base_lpn=0, capacity_pages=16)


class TestAllocation:
    def test_sequential_lpns(self, vlog):
        assert [vlog.alloc_page() for _ in range(3)] == [0, 1, 2]

    def test_base_offset(self, ftl):
        v = VLog(ftl, base_lpn=100, capacity_pages=4)
        assert v.alloc_page() == 100
        assert v.end_lpn == 104

    def test_exhaustion(self, ftl):
        v = VLog(ftl, base_lpn=0, capacity_pages=1)
        v.alloc_page()
        with pytest.raises(VLogError):
            v.alloc_page()

    def test_pages_allocated(self, vlog):
        vlog.alloc_page()
        vlog.alloc_page()
        assert vlog.pages_allocated == 2

    def test_contains(self, ftl):
        v = VLog(ftl, base_lpn=5, capacity_pages=3)
        assert v.contains(5) and v.contains(7)
        assert not v.contains(4) and not v.contains(8)

    def test_bad_construction(self, ftl):
        with pytest.raises(VLogError):
            VLog(ftl, base_lpn=-1, capacity_pages=4)
        with pytest.raises(VLogError):
            VLog(ftl, base_lpn=0, capacity_pages=0)


class TestReadThroughNAND:
    def test_read_flushed_value(self, vlog, ftl):
        lpn = vlog.alloc_page()
        page = bytearray(vlog.page_size)
        page[100:105] = b"hello"
        ftl.write(lpn, bytes(page))
        addr = ValueAddress(lpn=lpn, offset=100, size=5)
        assert vlog.read(addr) == b"hello"

    def test_read_spanning_two_pages(self, vlog, ftl):
        l0, l1 = vlog.alloc_page(), vlog.alloc_page()
        p = vlog.page_size
        ftl.write(l0, b"\x00" * (p - 3) + b"abc")
        ftl.write(l1, b"defgh" + b"\x00" * (p - 5))
        addr = ValueAddress(lpn=l0, offset=p - 3, size=8)
        assert vlog.read(addr) == b"abcdefgh"

    def test_read_outside_vlog_rejected(self, vlog):
        with pytest.raises(VLogError):
            vlog.read(ValueAddress(lpn=99, offset=0, size=4))

    def test_offset_beyond_page_rejected(self, vlog):
        with pytest.raises(VLogError):
            vlog.read(ValueAddress(lpn=0, offset=vlog.page_size, size=1))


class TestReadThroughBuffer:
    class FakeBuffer:
        """Serves LPN 0 from 'DRAM', leaving others to NAND."""

        def __init__(self, page_size):
            self.page = bytearray(page_size)
            self.page[0:6] = b"buffed"

        def unflushed_page(self, lpn):
            return bytes(self.page) if lpn == 0 else None

    def test_unflushed_page_served_from_buffer(self, vlog):
        vlog.alloc_page()
        vlog.attach_buffer(self.FakeBuffer(vlog.page_size))
        addr = ValueAddress(lpn=0, offset=0, size=6)
        assert vlog.read(addr) == b"buffed"

    def test_buffer_miss_falls_through_to_nand(self, vlog, ftl):
        vlog.alloc_page()
        lpn = vlog.alloc_page()
        vlog.attach_buffer(self.FakeBuffer(vlog.page_size))
        ftl.write(lpn, b"nandy" + b"\x00" * (vlog.page_size - 5))
        assert vlog.read(ValueAddress(lpn=lpn, offset=0, size=5)) == b"nandy"

    def test_read_spanning_buffer_and_nand(self, vlog, ftl):
        """A value whose head flushed to NAND but whose tail is buffered...
        or here the reverse: page 0 buffered, page 1 on NAND."""
        vlog.alloc_page()
        lpn1 = vlog.alloc_page()
        fake = self.FakeBuffer(vlog.page_size)
        fake.page[-2:] = b"xy"
        vlog.attach_buffer(fake)
        ftl.write(lpn1, b"z" + b"\x00" * (vlog.page_size - 1))
        addr = ValueAddress(lpn=0, offset=vlog.page_size - 2, size=3)
        assert vlog.read(addr) == b"xyz"
