"""Tests for the k-way merge with newest-first shadowing."""

from repro.lsm.addressing import ValueAddress
from repro.lsm.iterators import drop_tombstones, merge_entries


def addr(n: int) -> ValueAddress:
    return ValueAddress(lpn=n, offset=0, size=1)


class TestMergeEntries:
    def test_merges_sorted_streams(self):
        a = [(b"a", addr(1)), (b"c", addr(3))]
        b = [(b"b", addr(2)), (b"d", addr(4))]
        merged = list(merge_entries([a, b]))
        assert [k for k, _ in merged] == [b"a", b"b", b"c", b"d"]

    def test_newest_source_wins_on_duplicates(self):
        newer = [(b"k", addr(100))]
        older = [(b"k", addr(1))]
        merged = list(merge_entries([newer, older]))
        assert merged == [(b"k", addr(100))]

    def test_duplicate_across_three_sources(self):
        s0 = [(b"k", addr(3))]
        s1 = [(b"k", addr(2))]
        s2 = [(b"k", addr(1)), (b"z", addr(9))]
        merged = list(merge_entries([s0, s1, s2]))
        assert merged == [(b"k", addr(3)), (b"z", addr(9))]

    def test_tombstone_shadows_older_value(self):
        newer = [(b"k", None)]
        older = [(b"k", addr(1))]
        assert list(merge_entries([newer, older])) == [(b"k", None)]

    def test_empty_sources(self):
        assert list(merge_entries([])) == []
        assert list(merge_entries([[], []])) == []

    def test_single_source_passthrough(self):
        src = [(b"a", addr(1)), (b"b", None)]
        assert list(merge_entries([src])) == src

    def test_interleaved_many_sources(self):
        sources = [
            [(f"k{i:03d}".encode(), addr(i)) for i in range(start, 100, 4)]
            for start in range(4)
        ]
        merged = [k for k, _ in merge_entries(sources)]
        assert merged == sorted(merged)
        assert len(merged) == 100


class TestDropTombstones:
    def test_drops_only_tombstones(self):
        entries = [(b"a", addr(1)), (b"b", None), (b"c", addr(3))]
        assert list(drop_tombstones(entries)) == [(b"a", addr(1)), (b"c", addr(3))]

    def test_empty(self):
        assert list(drop_tombstones([])) == []
