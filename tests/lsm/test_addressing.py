"""Tests for vLog value addressing: fine vs page-unit encoding (§3.4)."""

import pytest

from repro.errors import VLogError
from repro.lsm.addressing import AddressingScheme, ValueAddress
from repro.units import KIB

PAGE_16K = 16 * KIB


class TestValueAddress:
    def test_valid(self):
        addr = ValueAddress(lpn=3, offset=100, size=32)
        assert addr.end_offset == 132

    def test_rejects_negative_lpn(self):
        with pytest.raises(VLogError):
            ValueAddress(lpn=-1, offset=0, size=1)

    def test_rejects_negative_offset(self):
        with pytest.raises(VLogError):
            ValueAddress(lpn=0, offset=-1, size=1)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(VLogError):
            ValueAddress(lpn=0, offset=0, size=0)

    def test_ordering(self):
        assert ValueAddress(0, 0, 1) < ValueAddress(0, 1, 1) < ValueAddress(1, 0, 1)


class TestBitBudgets:
    def test_fine_offset_bits_for_16k_page(self):
        """Byte offsets in a 16 KiB page need 14 bits."""
        assert AddressingScheme.FINE.offset_bits(PAGE_16K) == 14

    def test_page_offset_bits_for_16k_page(self):
        """Four 4 KiB slots per 16 KiB page need 2 bits (§3.3.3)."""
        assert AddressingScheme.PAGE.offset_bits(PAGE_16K) == 2

    def test_paper_1tb_example(self):
        """§3.3.3: 1 TB / 16 KiB pages → 26 LPN bits; 26+2 page vs 26+14 fine."""
        vlog_pages = 2**26
        assert AddressingScheme.PAGE.entry_addr_bits(vlog_pages, PAGE_16K) == 28
        assert AddressingScheme.FINE.entry_addr_bits(vlog_pages, PAGE_16K) == 40

    def test_lpn_bits_small_space(self):
        assert AddressingScheme.FINE.lpn_bits(1024) == 10


class TestEncodeDecode:
    def test_fine_roundtrip_arbitrary_offset(self):
        addr = ValueAddress(lpn=77, offset=12345, size=99)
        enc = AddressingScheme.FINE.encode(addr, PAGE_16K)
        dec = AddressingScheme.FINE.decode(enc, 99, PAGE_16K)
        assert dec == addr

    def test_page_roundtrip_aligned_offset(self):
        addr = ValueAddress(lpn=5, offset=8192, size=4096)
        enc = AddressingScheme.PAGE.encode(addr, PAGE_16K)
        dec = AddressingScheme.PAGE.decode(enc, 4096, PAGE_16K)
        assert dec == addr

    def test_page_scheme_rejects_byte_offsets(self):
        """§3.4: fine-grained packing *requires* byte-level addressing."""
        addr = ValueAddress(lpn=5, offset=100, size=10)
        with pytest.raises(VLogError):
            AddressingScheme.PAGE.encode(addr, PAGE_16K)

    def test_fine_rejects_offset_beyond_page(self):
        addr = ValueAddress(lpn=0, offset=PAGE_16K, size=1)
        with pytest.raises(VLogError):
            AddressingScheme.FINE.encode(addr, PAGE_16K)

    def test_encodings_distinct_across_pages(self):
        a = AddressingScheme.FINE.encode(ValueAddress(1, 0, 1), PAGE_16K)
        b = AddressingScheme.FINE.encode(ValueAddress(0, 1, 1), PAGE_16K)
        assert a != b

    def test_roundtrip_exhaustive_small_page(self):
        page = 8 * KIB
        scheme = AddressingScheme.FINE
        for lpn in (0, 1, 1000):
            for offset in (0, 1, page - 1):
                addr = ValueAddress(lpn, offset, 7)
                assert scheme.decode(scheme.encode(addr, page), 7, page) == addr
