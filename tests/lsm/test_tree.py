"""Tests for the LSM-tree facade: put/get/delete/scan across flush cycles."""

import pytest

from repro.errors import KeyNotFoundError, LSMError
from repro.lsm.addressing import ValueAddress
from repro.lsm.space import PageSpace
from repro.lsm.tree import LSMConfig, LSMTree
from repro.lsm.vlog import VLog
from repro.nand.flash import NandFlash
from repro.nand.ftl import PageMappedFTL
from repro.nand.geometry import NandGeometry
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.units import KIB


@pytest.fixture
def tree():
    geo = NandGeometry(
        channels=2, ways_per_channel=2, blocks_per_way=32,
        pages_per_block=16, page_size=16 * KIB,
    )
    clock = SimClock()
    latency = LatencyModel()
    flash = NandFlash(geo, clock, latency)
    ftl = PageMappedFTL(flash, gc_reserve_blocks=4)
    vlog = VLog(ftl, base_lpn=0, capacity_pages=512)
    space = PageSpace(base_lpn=512, capacity_pages=geo.total_pages - 512)
    config = LSMConfig(memtable_flush_bytes=2 * KIB)
    t = LSMTree(ftl, vlog, space, clock, latency, config)
    # Back the vLog with real NAND pages so get() can resolve addresses:
    # each test value i lives at (lpn=i//128, offset=(i%128)*64, size<=64).
    return t


def put_backed(tree, i: int, payload: bytes):
    """Store payload in the vLog page space and index it."""
    assert len(payload) <= 64
    lpn, slot = divmod(i, 128)
    while tree.vlog.pages_allocated <= lpn:
        tree.vlog.alloc_page()
    # Accumulate page content in a side dict, reprogramming via FTL is
    # write-once per page; instead pre-build pages lazily per 128 slots.
    key = f"key{i:06d}".encode()
    addr = ValueAddress(lpn=lpn, offset=slot * 64, size=len(payload))
    tree.put(key, addr)
    return key, addr


class TestPutGetAddress:
    def test_put_then_get_address(self, tree):
        addr = ValueAddress(lpn=0, offset=0, size=8)
        tree.vlog.alloc_page()
        tree.put(b"k", addr)
        assert tree.get_address(b"k") == addr

    def test_missing_key_raises(self, tree):
        with pytest.raises(KeyNotFoundError):
            tree.get_address(b"missing")

    def test_overwrite_returns_latest(self, tree):
        tree.put(b"k", ValueAddress(0, 0, 8))
        tree.put(b"k", ValueAddress(1, 64, 9))
        assert tree.get_address(b"k") == ValueAddress(1, 64, 9)

    def test_exists(self, tree):
        tree.put(b"k", ValueAddress(0, 0, 8))
        assert tree.exists(b"k")
        assert not tree.exists(b"nope")

    def test_get_survives_flush(self, tree):
        for i in range(400):
            key, addr = put_backed(tree, i, b"x" * 8)
        assert tree.flush_count > 0
        for probe in (0, 200, 399):
            key = f"key{probe:06d}".encode()
            got = tree.get_address(key)
            assert got.lpn == probe // 128
            assert got.offset == (probe % 128) * 64

    def test_clock_charged_per_insert(self, tree):
        t0 = tree.clock.now_us
        tree.put(b"k", ValueAddress(0, 0, 8))
        assert tree.clock.now_us > t0


class TestDelete:
    def test_delete_hides_key(self, tree):
        tree.put(b"k", ValueAddress(0, 0, 8))
        tree.delete(b"k")
        with pytest.raises(KeyNotFoundError):
            tree.get_address(b"k")

    def test_delete_shadow_survives_flush(self, tree):
        for i in range(200):
            put_backed(tree, i, b"x" * 8)
        tree.delete(b"key000100")
        for i in range(200, 400):
            put_backed(tree, i, b"x" * 8)  # force more flushes
        with pytest.raises(KeyNotFoundError):
            tree.get_address(b"key000100")


class TestScan:
    def test_scan_ordered_across_memtable_and_tables(self, tree):
        for i in range(300):
            put_backed(tree, i, b"x" * 8)
        keys = [k for k, _ in tree.scan_from(b"key000290")]
        assert keys[:10] == [f"key{i:06d}".encode() for i in range(290, 300)]

    def test_scan_skips_tombstones(self, tree):
        tree.put(b"a", ValueAddress(0, 0, 1))
        tree.put(b"b", ValueAddress(0, 1, 1))
        tree.delete(b"a")
        keys = [k for k, _ in tree.scan_from(b"")]
        assert keys == [b"b"]

    def test_scan_sees_newest_version(self, tree):
        for i in range(300):
            put_backed(tree, i, b"x" * 8)
        tree.put(b"key000000", ValueAddress(3, 128, 5))
        pairs = dict(tree.scan_from(b"key000000"))
        assert pairs[b"key000000"] == ValueAddress(3, 128, 5)


class TestFlushSemantics:
    def test_explicit_flush_empties_memtable(self, tree):
        tree.put(b"k", ValueAddress(0, 0, 8))
        tree.flush_memtable()
        assert tree.memtable.is_empty
        assert tree.get_address(b"k") == ValueAddress(0, 0, 8)

    def test_flush_of_empty_memtable_is_noop(self, tree):
        before = tree.flush_count
        tree.flush_memtable()
        assert tree.flush_count == before

    def test_entry_addr_bits_reflects_scheme(self, tree):
        bits = tree.entry_addr_bits()
        # 512 vLog pages -> 9 LPN bits; fine 16 KiB offsets -> 14 bits.
        assert bits == 9 + 14


class TestConfig:
    def test_rejects_tiny_flush_threshold(self):
        with pytest.raises(LSMError):
            LSMConfig(memtable_flush_bytes=10)
