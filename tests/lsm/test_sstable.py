"""Tests for SSTable serialization, lookup and iteration over real NAND pages."""

import pytest

from repro.errors import LSMError
from repro.lsm.addressing import AddressingScheme, ValueAddress
from repro.lsm.space import PageSpace
from repro.lsm.sstable import SSTable, decode_entries, encode_entry


@pytest.fixture
def space(ftl):
    return PageSpace(base_lpn=0, capacity_pages=64)


def addr(n: int, size: int = 8) -> ValueAddress:
    return ValueAddress(lpn=n, offset=(n * 64) % 4096, size=size)


def items(n: int):
    return [(f"key{i:05d}".encode(), addr(i)) for i in range(n)]


SCHEME = AddressingScheme.FINE


class TestEntryCodec:
    def test_roundtrip(self, ftl):
        page_size = ftl.flash.geometry.page_size
        blob = encode_entry(b"kk", addr(3), SCHEME, page_size)
        page = bytes([1, 0]) + blob  # count=1 header
        page += b"\x00" * (page_size - len(page))
        decoded = decode_entries(page, SCHEME, page_size)
        assert decoded == [(b"kk", addr(3))]

    def test_tombstone_roundtrip(self, ftl):
        page_size = ftl.flash.geometry.page_size
        blob = encode_entry(b"dead", None, SCHEME, page_size)
        page = bytes([1, 0]) + blob
        page += b"\x00" * (page_size - len(page))
        assert decode_entries(page, SCHEME, page_size) == [(b"dead", None)]

    def test_key_length_bounds(self, ftl):
        with pytest.raises(LSMError):
            encode_entry(b"", addr(1), SCHEME, 16384)
        with pytest.raises(LSMError):
            encode_entry(b"x" * 256, addr(1), SCHEME, 16384)


class TestBuild:
    def test_build_and_get(self, ftl, space):
        table = SSTable.build(items(100), ftl, space, SCHEME)
        assert table.entry_count == 100
        found, a = table.get(b"key00042", ftl)
        assert found and a == addr(42)

    def test_get_missing_inside_range(self, ftl, space):
        table = SSTable.build(items(10), ftl, space, SCHEME)
        found, _ = table.get(b"key00003x", ftl)
        assert not found

    def test_get_outside_range_reads_no_pages(self, ftl, space):
        table = SSTable.build(items(10), ftl, space, SCHEME)
        reads_before = ftl.flash.page_reads
        found, _ = table.get(b"zzz", ftl)
        assert not found
        assert ftl.flash.page_reads == reads_before

    def test_min_max_keys(self, ftl, space):
        table = SSTable.build(items(10), ftl, space, SCHEME)
        assert table.min_key == b"key00000"
        assert table.max_key == b"key00009"

    def test_unsorted_input_rejected(self, ftl, space):
        bad = [(b"b", addr(1)), (b"a", addr(2))]
        with pytest.raises(LSMError):
            SSTable.build(bad, ftl, space, SCHEME)

    def test_duplicate_keys_rejected(self, ftl, space):
        bad = [(b"a", addr(1)), (b"a", addr(2))]
        with pytest.raises(LSMError):
            SSTable.build(bad, ftl, space, SCHEME)

    def test_empty_input_rejected(self, ftl, space):
        with pytest.raises(LSMError):
            SSTable.build([], ftl, space, SCHEME)

    def test_large_table_spans_pages(self, ftl, space):
        table = SSTable.build(items(3000), ftl, space, SCHEME)
        assert table.page_count > 1
        # Every entry still reachable with exactly one page read each.
        for probe in (0, 1499, 2999):
            found, a = table.get(f"key{probe:05d}".encode(), ftl)
            assert found and a == addr(probe)

    def test_build_programs_nand(self, ftl, space):
        before = ftl.flash.page_programs
        table = SSTable.build(items(50), ftl, space, SCHEME)
        assert ftl.flash.page_programs == before + table.page_count

    def test_tombstones_persist(self, ftl, space):
        mixed = [(b"aaa", addr(1)), (b"bbb", None), (b"ccc", addr(3))]
        table = SSTable.build(mixed, ftl, space, SCHEME)
        found, a = table.get(b"bbb", ftl)
        assert found and a is None


class TestIteration:
    def test_iter_all(self, ftl, space):
        table = SSTable.build(items(200), ftl, space, SCHEME)
        keys = [k for k, _ in table.iter_entries(ftl)]
        assert keys == [f"key{i:05d}".encode() for i in range(200)]

    def test_iter_from_start_key(self, ftl, space):
        table = SSTable.build(items(50), ftl, space, SCHEME)
        keys = [k for k, _ in table.iter_entries(ftl, b"key00045")]
        assert keys == [f"key{i:05d}".encode() for i in range(45, 50)]

    def test_iter_from_beyond_range_is_empty(self, ftl, space):
        table = SSTable.build(items(5), ftl, space, SCHEME)
        assert list(table.iter_entries(ftl, b"zzz")) == []


class TestRelease:
    def test_release_frees_pages_and_trims(self, ftl, space):
        table = SSTable.build(items(100), ftl, space, SCHEME)
        in_use = space.pages_in_use
        table.release(ftl, space)
        assert space.pages_in_use == in_use - table.page_count
        for lpn in table.lpns:
            assert not ftl.is_mapped(lpn)

    def test_overlap_predicate(self, ftl, space):
        table = SSTable.build(items(10), ftl, space, SCHEME)
        assert table.key_range_overlaps(b"key00005", b"key00007")
        assert table.key_range_overlaps(b"a", b"z")
        assert not table.key_range_overlaps(b"x", b"z")
        assert not table.key_range_overlaps(b"a", b"b")
