"""Tests for the MemTable: sorted order, tombstones, size accounting."""

import pytest

from repro.errors import LSMError
from repro.lsm.addressing import ValueAddress
from repro.lsm.memtable import MemTable


def addr(n: int) -> ValueAddress:
    return ValueAddress(lpn=n, offset=0, size=8)


class TestPutGet:
    def test_put_get(self):
        mt = MemTable()
        mt.put(b"k", addr(1))
        found, a = mt.get(b"k")
        assert found and a == addr(1)

    def test_missing_key(self):
        found, a = MemTable().get(b"nope")
        assert not found and a is None

    def test_overwrite_keeps_latest(self):
        mt = MemTable()
        mt.put(b"k", addr(1))
        mt.put(b"k", addr(2))
        assert mt.get(b"k") == (True, addr(2))
        assert len(mt) == 1

    def test_empty_key_rejected(self):
        with pytest.raises(LSMError):
            MemTable().put(b"", addr(1))


class TestTombstones:
    def test_delete_records_tombstone(self):
        mt = MemTable()
        mt.put(b"k", addr(1))
        mt.delete(b"k")
        found, a = mt.get(b"k")
        assert found and a is None

    def test_delete_unknown_key_still_tombstones(self):
        """A tombstone must shadow versions in lower levels."""
        mt = MemTable()
        mt.delete(b"k")
        found, a = mt.get(b"k")
        assert found and a is None

    def test_empty_key_delete_rejected(self):
        with pytest.raises(LSMError):
            MemTable().delete(b"")


class TestOrdering:
    def test_sorted_items(self):
        mt = MemTable()
        for k in (b"c", b"a", b"b"):
            mt.put(k, addr(1))
        assert [k for k, _ in mt.sorted_items()] == [b"a", b"b", b"c"]

    def test_items_from_start_key(self):
        mt = MemTable()
        for k in (b"apple", b"banana", b"cherry"):
            mt.put(k, addr(1))
        assert [k for k, _ in mt.items_from(b"b")] == [b"banana", b"cherry"]

    def test_items_from_exact_key_inclusive(self):
        mt = MemTable()
        mt.put(b"b", addr(1))
        assert [k for k, _ in mt.items_from(b"b")] == [b"b"]

    def test_overwrites_do_not_duplicate_sorted_keys(self):
        mt = MemTable()
        mt.put(b"x", addr(1))
        mt.put(b"x", addr(2))
        assert [k for k, _ in mt.sorted_items()] == [b"x"]


class TestSizeAccounting:
    def test_grows_with_entries(self):
        mt = MemTable()
        before = mt.approx_bytes
        mt.put(b"key1", addr(1))
        assert mt.approx_bytes > before

    def test_overwrite_does_not_grow(self):
        mt = MemTable()
        mt.put(b"key1", addr(1))
        size = mt.approx_bytes
        mt.put(b"key1", addr(2))
        assert mt.approx_bytes == size

    def test_clear_resets(self):
        mt = MemTable()
        mt.put(b"key1", addr(1))
        mt.clear()
        assert mt.is_empty
        assert mt.approx_bytes == 0
        assert len(mt) == 0
