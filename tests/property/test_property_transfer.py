"""Property-based tests: transfer plans always cover the value exactly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BandSlimConfig, TransferMode
from repro.core.transfer import TransferMethod, TransferPlanner
from repro.nvme.kv import TRANSFER_PIGGYBACK_CAPACITY, WRITE_PIGGYBACK_CAPACITY
from repro.units import MEM_PAGE_SIZE

sizes = st.integers(min_value=1, max_value=64 * 1024)


def delivered_bytes(plan) -> int:
    return plan.inline_bytes + sum(plan.trailing_fragments) + plan.dma_head_bytes


class TestCoverage:
    @given(size=sizes)
    def test_piggyback_covers_exactly(self, size):
        plan = TransferPlanner.plan_piggyback(size)
        assert delivered_bytes(plan) == size
        assert plan.inline_bytes <= WRITE_PIGGYBACK_CAPACITY
        assert all(
            1 <= f <= TRANSFER_PIGGYBACK_CAPACITY for f in plan.trailing_fragments
        )

    @given(size=sizes)
    def test_prp_covers_exactly(self, size):
        plan = TransferPlanner.plan_prp(size)
        assert delivered_bytes(plan) == size
        assert plan.dma_wire_bytes >= size
        assert plan.dma_wire_bytes - size < MEM_PAGE_SIZE

    @given(size=sizes)
    def test_hybrid_covers_exactly(self, size):
        plan = TransferPlanner.plan_hybrid(size)
        assert delivered_bytes(plan) == size

    @given(size=sizes)
    def test_piggyback_command_count_formula(self, size):
        plan = TransferPlanner.plan_piggyback(size)
        expected = 1
        if size > WRITE_PIGGYBACK_CAPACITY:
            rest = size - WRITE_PIGGYBACK_CAPACITY
            expected += -(-rest // TRANSFER_PIGGYBACK_CAPACITY)
        assert plan.command_count == expected


class TestAdaptiveDecisions:
    @given(
        size=sizes,
        threshold1=st.integers(min_value=0, max_value=8192),
        threshold2=st.integers(min_value=0, max_value=4096),
        alpha=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        beta=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    )
    @settings(max_examples=300)
    def test_adaptive_respects_thresholds(self, size, threshold1, threshold2, alpha, beta):
        cfg = BandSlimConfig(
            transfer_mode=TransferMode.ADAPTIVE,
            threshold1=threshold1,
            threshold2=threshold2,
            alpha=alpha,
            beta=beta,
        )
        plan = TransferPlanner(cfg).plan(size)
        assert delivered_bytes(plan) == size
        if size <= cfg.effective_threshold1:
            assert plan.method is TransferMethod.PIGGYBACK
        else:
            tail = size % MEM_PAGE_SIZE
            if tail and size > MEM_PAGE_SIZE and tail <= cfg.effective_threshold2:
                assert plan.method in (TransferMethod.HYBRID, TransferMethod.PRP)
            else:
                assert plan.method is TransferMethod.PRP

    @given(size=sizes)
    def test_wire_prediction_nonnegative_and_ordered(self, size):
        """Piggyback wire bytes beat PRP for small values, by construction."""
        p = TransferPlanner(BandSlimConfig())
        pig = p.predicted_wire_bytes(TransferPlanner.plan_piggyback(size), 88)
        prp = p.predicted_wire_bytes(TransferPlanner.plan_prp(size), 88)
        assert pig > 0 and prp > 0
        if size <= 1024:
            assert pig < prp  # Fig 8's left half
