"""Property-based tests: the full device round-trips arbitrary KV data.

This is the top-level correctness property: for any sequence of PUTs (any
sizes, any preset), every value reads back byte-identical — having actually
traversed command encoding, piggyback fields / PRP pages, DMA, packing,
vLog addressing and (for flushed data) NAND.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PRESETS
from repro.host.api import KVStore

from tests.conftest import small_config

kv_pairs = st.lists(
    st.tuples(
        st.binary(min_size=1, max_size=16),
        st.binary(min_size=1, max_size=6000),
    ),
    min_size=1,
    max_size=25,
    unique_by=lambda kv: kv[0],
)

preset_names = st.sampled_from(sorted(PRESETS))


def open_store(preset_name):
    base = PRESETS[preset_name]
    return KVStore.open(
        small_config(transfer_mode=base.transfer_mode, packing=base.packing)
    )


class TestFullStackRoundtrip:
    @given(name=preset_names, pairs=kv_pairs)
    @settings(max_examples=60, deadline=None)
    def test_put_get_roundtrip(self, name, pairs):
        store = open_store(name)
        for k, v in pairs:
            store.put(k, v)
        for k, v in pairs:
            assert store.get(k) == v

    @given(name=preset_names, pairs=kv_pairs)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_after_flush(self, name, pairs):
        store = open_store(name)
        for k, v in pairs:
            store.put(k, v)
        store.flush()
        for k, v in pairs:
            assert store.get(k) == v

    @given(pairs=kv_pairs)
    @settings(max_examples=30, deadline=None)
    def test_scan_returns_sorted_keys(self, pairs):
        store = open_store("backfill")
        for k, v in pairs:
            store.put(k, v)
        scanned = [k for k, _ in store.scan()]
        assert scanned == sorted(dict(pairs).keys())

    @given(pairs=kv_pairs, overwrite_index=st.integers(min_value=0, max_value=24))
    @settings(max_examples=30, deadline=None)
    def test_overwrite_any_key(self, pairs, overwrite_index):
        store = open_store("adaptive")
        for k, v in pairs:
            store.put(k, v)
        target = pairs[overwrite_index % len(pairs)][0]
        store.put(target, b"NEW")
        assert store.get(target) == b"NEW"
        for k, v in pairs:
            if k != target:
                assert store.get(k) == v


class TestAccountingInvariants:
    @given(pairs=kv_pairs)
    @settings(max_examples=30, deadline=None)
    def test_pcie_payload_at_least_value_bytes_for_baseline(self, pairs):
        """PRP can only amplify: wire payload >= useful bytes, page-rounded."""
        store = open_store("baseline")
        for k, v in pairs:
            store.put(k, v)
        useful = sum(len(v) for _, v in dict(pairs).items())
        assert store.device.link.meter.payload_bytes >= useful

    @given(pairs=kv_pairs)
    @settings(max_examples=30, deadline=None)
    def test_piggyback_payload_dma_is_zero(self, pairs):
        """Pure piggybacking never touches the DMA path for values."""
        store = open_store("piggyback")
        for k, v in pairs:
            store.put(k, v)
        from repro.pcie.metrics import TrafficCategory

        assert store.device.link.meter.bytes_for(TrafficCategory.DMA_H2D) == 0

    @given(pairs=kv_pairs)
    @settings(max_examples=20, deadline=None)
    def test_clock_strictly_increases_per_op(self, pairs):
        store = open_store("adaptive")
        last = store.device.clock.now_us
        for k, v in pairs:
            store.put(k, v)
            now = store.device.clock.now_us
            assert now > last
            last = now
