"""Property-based tests: every serialization layer round-trips.

SSTable entries/pages, PRP construction/resolution, identify structures,
stats log pages and workload traces — anything that crosses a byte
boundary must survive arbitrary inputs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.addressing import AddressingScheme, ValueAddress
from repro.lsm.space import PageSpace
from repro.lsm.sstable import SSTable, decode_entries, encode_entry
from repro.memory.host import HostMemory
from repro.nand.flash import NandFlash
from repro.nand.ftl import PageMappedFTL
from repro.nand.geometry import NandGeometry
from repro.nvme.admin import (
    STATS_LOG_FIELDS,
    BandSlimCapabilities,
    build_identify_data,
    build_stats_log,
    parse_identify_data,
    parse_stats_log,
)
from repro.nvme.prp import build_prp, resolve_prp
from repro.pcie.link import PCIeLink
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.units import KIB

PAGE_16K = 16 * KIB

keys = st.binary(min_size=1, max_size=16)
addresses = st.builds(
    ValueAddress,
    lpn=st.integers(min_value=0, max_value=2**20 - 1),
    offset=st.integers(min_value=0, max_value=PAGE_16K - 1),
    size=st.integers(min_value=1, max_value=PAGE_16K),
)


class TestSSTableEntryCodec:
    @given(key=keys, addr=addresses)
    def test_entry_roundtrip(self, key, addr):
        blob = encode_entry(key, addr, AddressingScheme.FINE, PAGE_16K)
        page = bytes([1, 0]) + blob
        page += b"\x00" * (PAGE_16K - len(page))
        assert decode_entries(page, AddressingScheme.FINE, PAGE_16K) == [(key, addr)]

    @given(
        entries=st.lists(
            st.tuples(keys, st.one_of(st.none(), addresses)),
            min_size=1,
            max_size=40,
            unique_by=lambda e: e[0],
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_whole_table_roundtrip(self, entries):
        geo = NandGeometry(channels=1, ways_per_channel=2, blocks_per_way=32,
                           pages_per_block=8, page_size=PAGE_16K)
        ftl = PageMappedFTL(NandFlash(geo, SimClock(), LatencyModel()),
                            gc_reserve_blocks=2)
        space = PageSpace(0, geo.total_pages)
        sorted_entries = sorted(entries, key=lambda e: e[0])
        table = SSTable.build(sorted_entries, ftl, space, AddressingScheme.FINE)
        assert list(table.iter_entries(ftl)) == sorted_entries
        for key, addr in sorted_entries:
            found, got = table.get(key, ftl)
            assert found and got == addr


class TestPRPRoundtrip:
    @given(nbytes=st.integers(min_value=1, max_value=12 * 4096))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_sizes(self, nbytes):
        host = HostMemory()
        link = PCIeLink(SimClock(), LatencyModel())
        payload = bytes(i % 251 for i in range(nbytes))
        buf = host.stage_value(payload)
        prp = build_prp(host, buf)
        resolved = resolve_prp(host, link, prp.prp1, prp.prp2, nbytes)
        assert resolved.tobytes() == payload


class TestAdminStructures:
    caps_strategy = st.builds(
        BandSlimCapabilities,
        write_piggyback_capacity=st.integers(0, 64),
        transfer_piggyback_capacity=st.integers(0, 64),
        nand_page_size=st.integers(4096, 1 << 20),
        buffer_entries=st.integers(1, 1 << 16),
        dlt_capacity=st.integers(1, 1 << 16),
        transfer_mode=st.sampled_from(["baseline", "piggyback", "adaptive"]),
        packing_policy=st.sampled_from(["block", "all", "backfill"]),
        threshold1=st.integers(0, 1 << 20),
        threshold2=st.integers(0, 1 << 20),
    )

    @given(caps=caps_strategy)
    def test_identify_roundtrip(self, caps):
        assert parse_identify_data(build_identify_data(caps)) == caps

    @given(
        values=st.fixed_dictionaries(
            {name: st.integers(0, 2**63 - 1) for name in STATS_LOG_FIELDS}
        )
    )
    def test_stats_log_roundtrip(self, values):
        assert parse_stats_log(build_stats_log(values)) == values


class TestIteratorBatchCodec:
    @given(
        pairs=st.lists(
            st.tuples(
                st.binary(min_size=1, max_size=16),
                st.binary(min_size=1, max_size=500),
            ),
            min_size=0,
            max_size=30,
        ),
        capacity=st.integers(min_value=4, max_value=8192),
    )
    @settings(max_examples=100)
    def test_pack_respects_capacity_and_roundtrips(self, pairs, capacity):
        from repro.nvme.iterator import pack_batch, unpack_batch

        blob, taken = pack_batch(pairs, capacity)
        assert len(blob) <= max(capacity, 4)
        assert unpack_batch(blob) == pairs[:taken]
        # Greedy: the first rejected record really would not have fit.
        if taken < len(pairs):
            key, value = pairs[taken]
            assert len(blob) + 1 + len(key) + 4 + len(value) > capacity


class TestBulkPayloadCodec:
    @given(
        pairs=st.lists(
            st.tuples(
                st.binary(min_size=1, max_size=16),
                st.binary(min_size=1, max_size=800),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=100)
    def test_roundtrip(self, pairs):
        from repro.nvme.bulk import pack_bulk_payload, unpack_bulk_payload

        assert unpack_bulk_payload(pack_bulk_payload(pairs)) == pairs
