"""Property-based tests: stats primitives against NumPy references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dlt import DLTEntry, DMALogTable
from repro.sim.stats import Histogram, RunningStat
from repro.workloads.generator import mix32

floats = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False)
samples = st.lists(floats, min_size=1, max_size=300)


class TestRunningStatVsNumpy:
    @given(xs=samples)
    def test_mean_total_minmax(self, xs):
        s = RunningStat("s")
        s.record_many(xs)
        arr = np.asarray(xs)
        assert s.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-6)
        assert s.total == pytest.approx(arr.sum(), rel=1e-9, abs=1e-6)
        assert s.min == arr.min()
        assert s.max == arr.max()

    @given(xs=st.lists(floats, min_size=2, max_size=300))
    def test_variance(self, xs):
        s = RunningStat("s")
        s.record_many(xs)
        expected = float(np.var(np.asarray(xs), ddof=1))
        assert s.variance == pytest.approx(expected, rel=1e-6, abs=1e-3)

    @given(xs=samples, ys=samples)
    def test_merge_equals_concatenation(self, xs, ys):
        a, b, ref = RunningStat("a"), RunningStat("b"), RunningStat("r")
        a.record_many(xs)
        b.record_many(ys)
        ref.record_many(xs + ys)
        a.merge(b)
        assert a.count == ref.count
        assert a.mean == pytest.approx(ref.mean, rel=1e-9, abs=1e-6)
        assert a.variance == pytest.approx(ref.variance, rel=1e-6, abs=1e-3)


class TestHistogramProperties:
    @given(xs=st.lists(st.floats(min_value=0.1, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=200))
    def test_count_conserved(self, xs):
        h = Histogram.exponential("h")
        for x in xs:
            h.record(x)
        assert h.count == len(xs)
        assert sum(c for _, c in h.bucket_counts()) == len(xs)

    @given(xs=st.lists(st.floats(min_value=0.1, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=200))
    def test_percentiles_monotone(self, xs):
        h = Histogram.exponential("h")
        for x in xs:
            h.record(x)
        ps = [h.percentile(p) for p in (10, 50, 90, 99, 100)]
        assert ps == sorted(ps)

    @given(
        edges=st.lists(st.floats(min_value=0.01, max_value=1e6, allow_nan=False),
                       min_size=1, max_size=20, unique=True),
        xs=st.lists(st.floats(min_value=0.0, max_value=2e6, allow_nan=False),
                    min_size=1, max_size=200),
    )
    def test_percentiles_within_observed_range(self, edges, xs):
        # ISSUE 8: interpolation must never escape [observed min, observed
        # max] — the seed anchored the first bin at 0 (p50 below every
        # sample) and overshot the last bin to its nominal edge.
        h = Histogram("h", edges)
        for x in xs:
            h.record(x)
        for p in (0.1, 10, 25, 50, 75, 90, 99, 99.9, 100):
            value = h.percentile(p)
            assert min(xs) <= value <= max(xs)

    @given(
        edges=st.lists(st.floats(min_value=0.01, max_value=1e6, allow_nan=False),
                       min_size=1, max_size=20, unique=True),
        xs=st.lists(st.floats(min_value=0.0, max_value=2e6, allow_nan=False),
                    min_size=1, max_size=200),
        ps=st.lists(st.floats(min_value=0.001, max_value=100.0,
                              allow_nan=False), min_size=2, max_size=10),
    )
    def test_percentiles_monotone_random_edges(self, edges, xs, ps):
        h = Histogram("h", edges)
        for x in xs:
            h.record(x)
        values = [h.percentile(p) for p in sorted(ps)]
        assert values == sorted(values)

    @given(xs=st.lists(st.floats(min_value=0.1, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=150),
           ys=st.lists(st.floats(min_value=0.1, max_value=1e6,
                                 allow_nan=False), min_size=0, max_size=150))
    def test_merge_equals_recording_together(self, xs, ys):
        a, b, ref = (Histogram.exponential(n) for n in ("a", "b", "ref"))
        for x in xs:
            a.record(x)
            ref.record(x)
        for y in ys:
            b.record(y)
            ref.record(y)
        a.merge(b)
        assert a.bucket_counts() == ref.bucket_counts()
        assert a.min == ref.min
        assert a.max == ref.max
        for p in (10, 50, 90, 99, 99.9, 100):
            assert a.percentile(p) == ref.percentile(p)


class TestMix32Bijectivity:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        base=st.integers(min_value=0, max_value=2**32 - 5000),
    )
    @settings(max_examples=50)
    def test_no_collisions_in_window(self, seed, base):
        outs = {mix32(base + i, seed) for i in range(2000)}
        assert len(outs) == 2000


class TestDLTModelEquivalence:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=8192),
                       min_size=1, max_size=40),
        capacity=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100)
    def test_fifo_matches_deque_model(self, sizes, capacity):
        """The circular DLT behaves exactly like a bounded FIFO."""
        from collections import deque

        table = DMALogTable(capacity, 16384, 2**20)
        model: deque = deque()
        offset = 0
        for size in sizes:
            start = offset
            entry = DLTEntry(start=start, size=size)
            evicted = table.push(entry)
            if len(model) == capacity:
                expected_evicted = model.popleft()
                assert evicted == expected_evicted
            else:
                assert evicted is None
            model.append(entry)
            offset = ((start + size) // 4096 + 1) * 4096
            assert len(table) == len(model)
            if model:
                assert table.oldest() == model[0]
