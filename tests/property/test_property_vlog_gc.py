"""Property-based tests: vLog compaction never loses or corrupts data."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.host.api import KVStore
from repro.lsm.vlog_gc import VLogCompactor

from tests.conftest import small_config

# op: (key index 0..20, size 1..800 | None for delete)
churn_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=20),
        st.one_of(st.none(), st.integers(min_value=1, max_value=800)),
    ),
    min_size=5,
    max_size=80,
)


def apply_ops(store, ops, model=None):
    model = {} if model is None else model
    for key_idx, size in ops:
        key = f"k{key_idx:03d}".encode()
        if size is None:
            if key in model:
                store.delete(key)
                del model[key]
        else:
            value = bytes([key_idx, size % 256]) * (size // 2 + 1)
            value = value[:size]
            store.put(key, value)
            model[key] = value
    return model


class TestCompactionSafety:
    @given(ops=churn_ops)
    @settings(max_examples=40, deadline=None)
    def test_every_live_value_survives_compaction(self, ops):
        store = KVStore.open(small_config(memtable_flush_bytes=2048))
        model = apply_ops(store, ops)
        store.flush()
        gc = VLogCompactor(store.device.lsm, store.device.policy,
                           store.device.buffer)
        gc.compact()
        for key, value in model.items():
            assert store.get(key) == value

    @given(ops=churn_ops, rounds=st.integers(min_value=1, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_repeated_compaction_with_interleaved_writes(self, ops, rounds):
        store = KVStore.open(small_config(memtable_flush_bytes=2048))
        gc = VLogCompactor(store.device.lsm, store.device.policy,
                           store.device.buffer)
        model = {}
        for _ in range(rounds):
            apply_ops(store, ops, model)
            store.flush()
            gc.compact()
        scanned = dict(store.scan())
        assert set(scanned) == set(model)
        for key, value in model.items():
            assert scanned[key] == value

    @given(ops=churn_ops)
    @settings(max_examples=25, deadline=None)
    def test_frontier_monotone_and_trims_bounded(self, ops):
        store = KVStore.open(small_config(memtable_flush_bytes=2048))
        apply_ops(store, ops)
        store.flush()
        gc = VLogCompactor(store.device.lsm, store.device.policy,
                           store.device.buffer)
        before = gc.compacted_through_lpn
        report = gc.compact()
        assert gc.compacted_through_lpn >= before
        assert report.pages_trimmed <= report.pages_examined
