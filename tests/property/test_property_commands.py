"""Property-based tests: the NVMe wire format round-trips arbitrary data."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvme.command import (
    NVMeCommand,
    pack_transfer_piggyback,
    pack_write_piggyback,
    unpack_transfer_piggyback,
    unpack_write_piggyback,
)
from repro.nvme.kv import (
    TRANSFER_PIGGYBACK_CAPACITY,
    WRITE_PIGGYBACK_CAPACITY,
    build_transfer_command,
    build_write_command,
    parse_transfer_command,
    parse_write_command,
)

keys = st.binary(min_size=1, max_size=16)
cids = st.integers(min_value=0, max_value=2**16 - 1)


class TestPiggybackFieldRoundtrip:
    @given(fragment=st.binary(min_size=0, max_size=WRITE_PIGGYBACK_CAPACITY))
    def test_write_area(self, fragment):
        cmd = NVMeCommand()
        pack_write_piggyback(cmd, fragment)
        assert unpack_write_piggyback(cmd, len(fragment)) == fragment

    @given(fragment=st.binary(min_size=0, max_size=TRANSFER_PIGGYBACK_CAPACITY))
    def test_transfer_area(self, fragment):
        cmd = NVMeCommand()
        pack_transfer_piggyback(cmd, fragment)
        assert unpack_transfer_piggyback(cmd, len(fragment)) == fragment

    @given(
        fragment=st.binary(min_size=0, max_size=WRITE_PIGGYBACK_CAPACITY),
        key=keys,
        value_size=st.integers(min_value=1, max_value=2**31),
    )
    def test_piggyback_never_corrupts_kept_fields(self, fragment, key, value_size):
        """Whatever rides in the piggyback area, key/sizes must survive."""
        cmd = NVMeCommand()
        cmd.key = key
        cmd.value_size = value_size
        pack_write_piggyback(cmd, fragment)
        assert cmd.key == key
        assert cmd.value_size == value_size


class TestCommandRoundtrip:
    @given(cid=cids, key=keys, inline=st.binary(min_size=1, max_size=35))
    @settings(max_examples=200)
    def test_write_command_through_the_wire(self, cid, key, inline):
        value_size = len(inline)
        cmd = build_write_command(cid, key, value_size, inline=inline, final=True)
        rebuilt = NVMeCommand(bytes(cmd.raw))  # serialize boundary
        parsed = parse_write_command(rebuilt)
        assert parsed.cid == cid
        assert parsed.key == key
        assert parsed.value_size == value_size
        assert parsed.inline == inline
        assert parsed.final

    @given(cid=cids, fragment=st.binary(min_size=1, max_size=56), final=st.booleans())
    def test_transfer_command_through_the_wire(self, cid, fragment, final):
        cmd = build_transfer_command(cid, fragment, final=final)
        parsed = parse_transfer_command(NVMeCommand(bytes(cmd.raw)))
        assert parsed.cid == cid
        assert parsed.final == final
        assert parsed.area[: len(fragment)] == fragment

    @given(key=keys)
    def test_key_field_roundtrip(self, key):
        cmd = NVMeCommand()
        cmd.key = key
        assert cmd.key == key
