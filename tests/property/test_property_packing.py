"""Property-based tests: packing-policy invariants under random op mixes.

The central invariant across all four policies: **no two placements ever
overlap**, and byte content written at a placement is exactly what comes
back out of the buffer/NAND. Backfilling adds: piggybacked placements never
overlap logged DMA regions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dlt import DMALogTable
from repro.core.packing import (
    AllPacking,
    BackfillPacking,
    BlockPacking,
    IntegratedPacking,
    NandPageBuffer,
    SelectivePacking,
)
from repro.lsm.vlog import VLog
from repro.memory.device import DeviceDRAM
from repro.nand.flash import NandFlash
from repro.nand.ftl import PageMappedFTL
from repro.nand.geometry import NandGeometry
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.units import KIB, MEM_PAGE_SIZE, pages_needed

PAGE = 16 * KIB

# One op: (is_dma, size). DMA sizes up to 2 pages; piggyback up to 200 B.
ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just(False), st.integers(min_value=1, max_value=200)),
        st.tuples(st.just(True), st.integers(min_value=1, max_value=8192)),
    ),
    min_size=1,
    max_size=60,
)

policy_names = st.sampled_from(["block", "all", "select", "backfill", "integrated"])


def build_rig(pool_entries=8):
    geo = NandGeometry(
        channels=2, ways_per_channel=2, blocks_per_way=64,
        pages_per_block=16, page_size=PAGE,
    )
    flash = NandFlash(geo, SimClock(), LatencyModel())
    ftl = PageMappedFTL(flash, gc_reserve_blocks=4)
    dram = DeviceDRAM(pool_entries * PAGE)
    region = dram.carve_region("buf", pool_entries * PAGE)
    vlog = VLog(ftl, base_lpn=0, capacity_pages=geo.total_pages // 2)
    buffer = NandPageBuffer(region, vlog, ftl, pool_entries=pool_entries)
    return buffer, vlog


def make_policy(name, buffer):
    if name == "block":
        return BlockPacking(buffer)
    if name == "all":
        return AllPacking(buffer)
    if name == "select":
        return SelectivePacking(buffer)
    dlt = DMALogTable(8, buffer.page_size, buffer.vlog.capacity_pages)
    if name == "integrated":
        return IntegratedPacking(buffer, dlt, copy_threshold=3 * KIB)
    return BackfillPacking(buffer, dlt)


def apply_ops(policy, buffer, ops):
    """Run placements, writing a recognizable pattern for each value."""
    placements = []
    for i, (is_dma, size) in enumerate(ops):
        if is_dma:
            wire = pages_needed(size) * MEM_PAGE_SIZE
            placement = policy.place_dma(size, wire)
        else:
            placement = policy.place_piggyback(size)
        content = bytes([(i * 37 + 11) % 256]) * size
        buffer.write_bytes(placement.value_offset, content)
        policy.finalize_value()
        placements.append((placement.value_offset, size, content))
    return placements


class TestNoOverlapInvariant:
    @given(name=policy_names, ops=ops_strategy)
    @settings(max_examples=150, deadline=None)
    def test_placements_never_overlap(self, name, ops):
        buffer, _ = build_rig()
        policy = make_policy(name, buffer)
        placements = apply_ops(policy, buffer, ops)
        intervals = sorted((off, off + size) for off, size, _ in placements)
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2, f"{name}: [{s1},{e1}) overlaps [{s2},{e2})"

    @given(name=policy_names, ops=ops_strategy)
    @settings(max_examples=100, deadline=None)
    def test_content_integrity_end_to_end(self, name, ops):
        """Every placed value reads back intact, buffered or flushed."""
        buffer, vlog = build_rig()
        policy = make_policy(name, buffer)
        placements = apply_ops(policy, buffer, ops)
        for off, size, content in placements:
            addr = buffer.addr_of(off, size)
            assert vlog.read(addr) == content

    @given(name=policy_names, ops=ops_strategy)
    @settings(max_examples=100, deadline=None)
    def test_frontier_monotone_and_flush_safe(self, name, ops):
        """The flush frontier never regresses, and no placement lands
        below an already-flushed boundary."""
        buffer, _ = build_rig()
        policy = make_policy(name, buffer)
        last_frontier = 0
        flushed_through = 0
        for i, (is_dma, size) in enumerate(ops):
            if is_dma:
                wire = pages_needed(size) * MEM_PAGE_SIZE
                placement = policy.place_dma(size, wire)
            else:
                placement = policy.place_piggyback(size)
            assert placement.value_offset >= flushed_through, name
            events = policy.finalize_value()
            for e in events:
                flushed_through = max(flushed_through, e.end_offset)
            frontier = policy.flush_frontier()
            assert frontier >= last_frontier, name
            last_frontier = frontier


class TestBackfillSpecificInvariants:
    @given(ops=ops_strategy)
    @settings(max_examples=100, deadline=None)
    def test_piggyback_avoids_live_dma_regions(self, ops):
        buffer, _ = build_rig()
        dlt = DMALogTable(8, buffer.page_size, buffer.vlog.capacity_pages)
        policy = BackfillPacking(buffer, dlt)
        dma_regions = []
        for is_dma, size in ops:
            if is_dma:
                wire = pages_needed(size) * MEM_PAGE_SIZE
                p = policy.place_dma(size, wire)
                dma_regions.append((p.value_offset, p.value_offset + size))
            else:
                p = policy.place_piggyback(size)
                for s, e in dma_regions:
                    assert not (p.value_offset < e and s < p.value_offset + size), (
                        f"piggyback [{p.value_offset},{p.value_offset+size}) "
                        f"overlaps DMA region [{s},{e})"
                    )
            policy.finalize_value()

    @given(ops=ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_backfill_never_denser_than_all_packing_is_impossible(self, ops):
        """All-Packing is the density optimum: Backfill's frontier travel
        can never be smaller for the same op sequence."""
        buffer_a, _ = build_rig()
        all_policy = AllPacking(buffer_a)
        apply_ops(all_policy, buffer_a, ops)
        buffer_b, _ = build_rig()
        dlt = DMALogTable(64, buffer_b.page_size, buffer_b.vlog.capacity_pages)
        bf_policy = BackfillPacking(buffer_b, dlt)
        apply_ops(bf_policy, buffer_b, ops)
        all_high = buffer_a.metrics.counter("entries_opened").value
        bf_high = buffer_b.metrics.counter("entries_opened").value
        assert bf_high >= all_high
