"""Property-based tests: the LSM-tree behaves like a sorted dict."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyNotFoundError
from repro.lsm.addressing import ValueAddress
from repro.lsm.space import PageSpace
from repro.lsm.tree import LSMConfig, LSMTree
from repro.lsm.vlog import VLog
from repro.nand.flash import NandFlash
from repro.nand.ftl import PageMappedFTL
from repro.nand.geometry import NandGeometry
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.units import KIB

keys = st.binary(min_size=1, max_size=12)
# op: (key, lpn-or-None). None = delete.
ops_strategy = st.lists(
    st.tuples(keys, st.one_of(st.none(), st.integers(min_value=0, max_value=499))),
    min_size=1,
    max_size=120,
)


def build_tree(flush_bytes=2 * KIB):
    geo = NandGeometry(
        channels=2, ways_per_channel=2, blocks_per_way=64,
        pages_per_block=16, page_size=16 * KIB,
    )
    clock = SimClock()
    latency = LatencyModel()
    flash = NandFlash(geo, clock, latency)
    ftl = PageMappedFTL(flash, gc_reserve_blocks=4)
    vlog = VLog(ftl, base_lpn=0, capacity_pages=500)
    space = PageSpace(500, geo.total_pages - 500)
    return LSMTree(
        ftl, vlog, space, clock, latency,
        LSMConfig(memtable_flush_bytes=flush_bytes),
    )


def addr_for(lpn: int) -> ValueAddress:
    return ValueAddress(lpn=lpn, offset=(lpn * 17) % 4096, size=1 + lpn % 64)


class TestDictEquivalence:
    @given(ops=ops_strategy)
    @settings(max_examples=80, deadline=None)
    def test_get_matches_model(self, ops):
        tree = build_tree()
        model: dict[bytes, ValueAddress] = {}
        for key, lpn in ops:
            if lpn is None:
                tree.delete(key)
                model.pop(key, None)
            else:
                a = addr_for(lpn)
                tree.put(key, a)
                model[key] = a
        for key, expected in model.items():
            assert tree.get_address(key) == expected
        # Deleted/absent keys stay absent.
        for key, lpn in ops:
            if key not in model:
                try:
                    tree.get_address(key)
                    assert False, f"{key!r} should be gone"
                except KeyNotFoundError:
                    pass

    @given(ops=ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_scan_matches_sorted_model(self, ops):
        tree = build_tree()
        model: dict[bytes, ValueAddress] = {}
        for key, lpn in ops:
            if lpn is None:
                tree.delete(key)
                model.pop(key, None)
            else:
                a = addr_for(lpn)
                tree.put(key, a)
                model[key] = a
        scanned = list(tree.scan_from(b""))
        assert scanned == sorted(model.items())

    @given(ops=ops_strategy, start=keys)
    @settings(max_examples=60, deadline=None)
    def test_scan_from_arbitrary_start(self, ops, start):
        tree = build_tree()
        model: dict[bytes, ValueAddress] = {}
        for key, lpn in ops:
            if lpn is None:
                tree.delete(key)
                model.pop(key, None)
            else:
                model[key] = addr_for(lpn)
                tree.put(key, model[key])
        scanned = list(tree.scan_from(start))
        expected = sorted((k, v) for k, v in model.items() if k >= start)
        assert scanned == expected

    @given(ops=ops_strategy)
    @settings(max_examples=40, deadline=None)
    def test_explicit_flushes_are_transparent(self, ops):
        """Flushing between every op must not change observable state."""
        tree = build_tree(flush_bytes=64 * KIB)  # no automatic flushes
        model: dict[bytes, ValueAddress] = {}
        for key, lpn in ops:
            if lpn is None:
                tree.delete(key)
                model.pop(key, None)
            else:
                model[key] = addr_for(lpn)
                tree.put(key, model[key])
            tree.flush_memtable()
        for key, expected in model.items():
            assert tree.get_address(key) == expected
