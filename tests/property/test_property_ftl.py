"""Model-based property test: the FTL behaves like a dict, even across GC."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nand.flash import NandFlash
from repro.nand.ftl import PageMappedFTL
from repro.nand.gc import GreedyGarbageCollector
from repro.nand.geometry import NandGeometry
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.units import KIB

# ops: (lpn 0..working_set, payload byte | None = trim)
ftl_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=47),
        st.one_of(st.none(), st.integers(min_value=0, max_value=255)),
    ),
    min_size=1,
    max_size=400,
)


def build_ftl():
    geo = NandGeometry(
        channels=2, ways_per_channel=2, blocks_per_way=8,
        pages_per_block=8, page_size=16 * KIB,
    )
    flash = NandFlash(geo, SimClock(), LatencyModel())
    ftl = PageMappedFTL(flash, gc_reserve_blocks=4)
    gc = GreedyGarbageCollector(ftl, batch_blocks=2)
    ftl.set_gc(gc)
    return ftl


class TestFTLModelEquivalence:
    @given(ops=ftl_ops)
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_model(self, ops):
        """Random write/trim streams under GC pressure: the LPN->data view
        must always equal a plain dict."""
        ftl = build_ftl()
        model: dict[int, bytes] = {}
        for lpn, payload in ops:
            if payload is None:
                if lpn in model:
                    ftl.trim(lpn)
                    del model[lpn]
            else:
                data = bytes([payload]) * 32
                ftl.write(lpn, data)
                model[lpn] = data
        assert ftl.mapped_pages == len(model)
        for lpn, data in model.items():
            assert ftl.read(lpn)[:32] == data
        for lpn in range(48):
            assert ftl.is_mapped(lpn) == (lpn in model)

    @given(ops=ftl_ops)
    @settings(max_examples=40, deadline=None)
    def test_validity_accounting_consistent(self, ops):
        """Per-block valid counts always sum to the mapped-page count."""
        ftl = build_ftl()
        live = set()
        for lpn, payload in ops:
            if payload is None:
                if lpn in live:
                    ftl.trim(lpn)
                    live.discard(lpn)
            else:
                ftl.write(lpn, bytes([payload]))
                live.add(lpn)
            total_valid = sum(
                ftl.valid_pages_in_block(b)
                for b in range(ftl.flash.geometry.total_blocks)
            )
            assert total_valid == len(live)

    @given(rounds=st.integers(min_value=2, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_striping_stays_balanced_under_wraparound(self, rounds):
        """Round-robin allocation keeps way utilization flat even after GC."""
        ftl = build_ftl()
        working_set = 48
        for i in range(ftl.flash.geometry.total_pages * rounds // 2):
            ftl.write(i % working_set, bytes([i % 256]))
        per_way = ftl.way_utilization()
        assert sum(per_way) == working_set
        assert max(per_way) - min(per_way) <= working_set // 2

    def test_wear_stats_shape(self):
        ftl = build_ftl()
        for i in range(ftl.flash.geometry.total_pages * 2):
            ftl.write(i % 16, b"x")
        stats = ftl.wear_stats()
        assert stats["total_erases"] > 0
        assert stats["min_erases"] <= stats["mean_erases"] <= stats["max_erases"]
