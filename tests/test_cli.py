"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def _read_jsonl(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestInfo:
    def test_lists_presets(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "backfill" in out
        assert "W(M)" in out


class TestDBBench:
    def test_fillseq(self, capsys):
        assert main(["dbbench", "--benchmark", "fillseq", "--num", "50",
                     "--value-size", "64"]) == 0
        out = capsys.readouterr().out
        assert "micros/op" in out

    def test_config_choice_enforced(self):
        with pytest.raises(SystemExit):
            main(["dbbench", "--config", "nonsense"])


class TestWorkload:
    def test_wm_summary(self, capsys):
        assert main(["workload", "--name", "W(M)", "--num", "100"]) == 0
        out = capsys.readouterr().out
        assert "avg response" in out
        assert "NAND writes" in out
        assert "TAF" in out

    def test_no_nand_flag(self, capsys):
        assert main(["workload", "--name", "W(B)", "--num", "100",
                     "--no-nand"]) == 0
        out = capsys.readouterr().out
        assert "NAND writes     0" in out

    def test_unknown_workload(self, capsys):
        assert main(["workload", "--name", "W(Z)", "--num", "10"]) == 2


class TestTrace:
    def test_prints_phase_table(self, capsys):
        assert main(["trace", "--name", "W(M)", "--num", "50"]) == 0
        out = capsys.readouterr().out
        assert "traced ops" in out
        assert "phase" in out
        assert "total" in out

    def test_writes_jsonl_and_chrome(self, tmp_path, capsys):
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.chrome.json"
        assert main(["trace", "--name", "W(M)", "--num", "30",
                     "--out", str(jsonl), "--chrome", str(chrome)]) == 0
        lines = _read_jsonl(jsonl)
        assert lines[0]["type"] == "header"
        assert lines[0]["version"] == 1
        assert lines[0]["ops"] == 30
        assert any(ln["type"] == "event" for ln in lines)
        ops = [ln for ln in lines if ln["type"] == "op"]
        assert len(ops) == 30
        for op in ops:
            assert sum(op["phases"].values()) == pytest.approx(op["latency_us"])
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]

    def test_report_flag_prints_metrics(self, capsys):
        assert main(["trace", "--name", "W(M)", "--num", "20",
                     "--report"]) == 0
        out = capsys.readouterr().out
        assert "trace.put.count" in out

    def test_unknown_workload(self):
        assert main(["trace", "--name", "W(Z)", "--num", "10"]) == 2


class TestTraceFlags:
    def test_workload_trace_flag(self, tmp_path, capsys):
        path = tmp_path / "w.jsonl"
        assert main(["workload", "--name", "W(M)", "--num", "40",
                     "--trace", str(path)]) == 0
        assert _read_jsonl(path)[0]["type"] == "header"
        assert "trace" in capsys.readouterr().out

    def test_dbbench_trace_flag(self, tmp_path, capsys):
        path = tmp_path / "d.jsonl"
        assert main(["dbbench", "--benchmark", "fillseq", "--num", "40",
                     "--value-size", "64", "--trace", str(path)]) == 0
        assert _read_jsonl(path)[0]["type"] == "header"

    def test_compare_trace_dir(self, tmp_path, capsys):
        out_dir = tmp_path / "traces"
        assert main(["compare", "--workload", "W(M)", "--num", "40",
                     "--configs", "baseline,backfill",
                     "--trace", str(out_dir)]) == 0
        for name in ("baseline", "backfill"):
            lines = _read_jsonl(out_dir / f"{name}.jsonl")
            assert lines[0]["type"] == "header"
            assert lines[0]["ops"] > 0


class TestCalibrate:
    def test_prints_thresholds(self, capsys):
        assert main(["calibrate", "--ops", "3"]) == 0
        out = capsys.readouterr().out
        assert "threshold1" in out
        assert "threshold2" in out


class TestBench:
    def test_single_figure(self, capsys):
        assert main(["bench", "fig3", "--ops", "30"]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out
        assert "fig3b" in out

    def test_writes_out_dir(self, tmp_path, capsys):
        assert main(["bench", "table1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["bench", "fig99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestIdentify:
    def test_prints_capability_block(self, capsys):
        assert main(["identify", "--config", "backfill"]) == 0
        out = capsys.readouterr().out
        assert "IDENTIFY controller" in out
        assert "write piggyback capacity    35 B" in out
        assert "packing policy              backfill" in out


class TestCrashCheck:
    def test_small_run_exits_zero(self, capsys):
        assert main(["crashcheck", "--ops", "120", "--crash-points", "2",
                     "--seed", "3", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "invariants       OK" in out
        assert "cuts fired" in out

    def test_progress_lines_by_default(self, capsys):
        assert main(["crashcheck", "--ops", "100", "--crash-points", "2",
                     "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "cut   1/2" in out

    def test_json_report_file(self, tmp_path, capsys):
        path = tmp_path / "crash.json"
        assert main(["crashcheck", "--ops", "120", "--crash-points", "2",
                     "--seed", "3", "--quiet", "--json", str(path)]) == 0
        obj = json.loads(path.read_text())
        assert obj["ok"] is True
        assert obj["violations"] == []
        assert obj["ops"] == 120
        assert obj["crash_points"] == 2

    def test_json_report_stdout(self, capsys):
        assert main(["crashcheck", "--ops", "100", "--crash-points", "2",
                     "--seed", "9", "--quiet", "--json", "-"]) == 0
        out = capsys.readouterr().out
        start = out.index("{")
        end = out.rindex("}") + 1
        obj = json.loads(out[start:end])
        assert obj["ok"] is True

    def test_violations_exit_nonzero_for_ci(self, monkeypatch, capsys,
                                            tmp_path):
        # CI gates on the exit code: force a failing report through the
        # handler and check both the code and the stderr summary.
        from repro.recovery.crashcheck import CrashCheckReport

        bad = CrashCheckReport(
            ops=10, crash_points=1, seed=1, dry_run_us=1.0, cuts_fired=1,
            torn_pages=0, entries_replayed=0,
            violations=["flushed key k lost after cut"],
        )
        monkeypatch.setattr(
            "repro.recovery.crashcheck.run_crashcheck",
            lambda **kwargs: bad,
        )
        path = tmp_path / "bad.json"
        assert main(["crashcheck", "--quiet", "--json", str(path)]) == 1
        err = capsys.readouterr().err
        assert "VIOLATIONS" in err
        assert "flushed key k lost" in err
        assert json.loads(path.read_text())["ok"] is False


class TestArray:
    def test_device_loss_scenario_exits_zero(self, capsys):
        assert main(["array", "--ops", "200", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "oracle           OK" in out
        assert "rebuild" in out

    def test_json_report(self, tmp_path, capsys):
        path = tmp_path / "array.json"
        assert main(["array", "--ops", "150", "--seed", "3", "--quiet",
                     "--json", str(path)]) == 0
        obj = json.loads(path.read_text())
        assert obj["ok"] is True
        assert obj["name"] == "device-loss"
        assert obj["shards"] == 3
        assert obj["violations"] == []
        assert capsys.readouterr().out == ""

    def test_rolling_scenario(self, capsys):
        assert main(["array", "--scenario", "rolling", "--ops", "280",
                     "--seed", "5", "--quiet"]) == 0

    def test_violations_exit_nonzero_for_ci(self, monkeypatch, capsys):
        from repro.array.scenario import ScenarioReport

        bad = ScenarioReport(
            name="device-loss", ops=10, shards=3, replication=2,
            write_quorum=1, seed=1, kill_mode="power", victim=0,
            kill_at=3, rebuild_at=6, remount=False,
            violations=["acked key b'k' is absent from every replica"],
        )
        monkeypatch.setattr(
            "repro.array.scenario.run_device_loss",
            lambda **kwargs: bad,
        )
        assert main(["array", "--quiet"]) == 1
        err = capsys.readouterr().err
        assert "VIOLATIONS" in err


class TestLoadtest:
    def test_single_run_prints_table(self, capsys):
        assert main(["loadtest", "--rps", "4000", "--requests", "120",
                     "--num-keys", "50", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "open-loop run" in out
        assert "p99_us" in out

    def test_sweep_json_report(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        assert main(["loadtest", "--rps-sweep", "3000,150000",
                     "--requests", "120", "--num-keys", "50", "--seed", "3",
                     "--config", "baseline", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "saturation knee" in out
        obj = json.loads(path.read_text())
        assert obj["schema"] == 2
        assert [row["offered_rps"] for row in obj["rows"]] == [3000.0, 150000.0]
        assert obj["knee_rps"] == 150000.0
        assert all(row["protocol_errors"] == 0 for row in obj["rows"])
        assert all(row["retries"] == 0 for row in obj["rows"])

    def test_onoff_process_accepted(self, capsys):
        assert main(["loadtest", "--process", "onoff", "--rps", "4000",
                     "--requests", "120", "--num-keys", "50"]) == 0

    def test_config_choice_enforced(self):
        with pytest.raises(SystemExit):
            main(["loadtest", "--config", "nonsense"])

    def test_retry_flag_prints_retry_columns(self, capsys):
        assert main(["loadtest", "--rps", "4000", "--requests", "120",
                     "--num-keys", "50", "--seed", "3", "--retry",
                     "--max-attempts", "3"]) == 0
        out = capsys.readouterr().out
        assert "retries" in out and "gaveup" in out


class TestChaos:
    def test_list_prints_catalog(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("slow-clients", "shard-loss-under-load",
                     "power-cut-remount"):
            assert name in out

    def test_scenario_json_report(self, tmp_path, capsys):
        path = tmp_path / "chaos.json"
        assert main(["chaos", "--scenario", "garbage-frames", "--seed", "3",
                     "--requests", "120", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "garbage-frames" in out
        obj = json.loads(path.read_text())
        assert obj["schema"] == 1
        assert obj["name"] == "garbage-frames"
        assert obj["ok"] is True

    def test_unknown_scenario_is_an_error(self, capsys):
        assert main(["chaos", "--scenario", "nonsense"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
