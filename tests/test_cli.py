"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_lists_presets(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "backfill" in out
        assert "W(M)" in out


class TestDBBench:
    def test_fillseq(self, capsys):
        assert main(["dbbench", "--benchmark", "fillseq", "--num", "50",
                     "--value-size", "64"]) == 0
        out = capsys.readouterr().out
        assert "micros/op" in out

    def test_config_choice_enforced(self):
        with pytest.raises(SystemExit):
            main(["dbbench", "--config", "nonsense"])


class TestWorkload:
    def test_wm_summary(self, capsys):
        assert main(["workload", "--name", "W(M)", "--num", "100"]) == 0
        out = capsys.readouterr().out
        assert "avg response" in out
        assert "NAND writes" in out
        assert "TAF" in out

    def test_no_nand_flag(self, capsys):
        assert main(["workload", "--name", "W(B)", "--num", "100",
                     "--no-nand"]) == 0
        out = capsys.readouterr().out
        assert "NAND writes     0" in out

    def test_unknown_workload(self, capsys):
        assert main(["workload", "--name", "W(Z)", "--num", "10"]) == 2


class TestCalibrate:
    def test_prints_thresholds(self, capsys):
        assert main(["calibrate", "--ops", "3"]) == 0
        out = capsys.readouterr().out
        assert "threshold1" in out
        assert "threshold2" in out


class TestBench:
    def test_single_figure(self, capsys):
        assert main(["bench", "fig3", "--ops", "30"]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out
        assert "fig3b" in out

    def test_writes_out_dir(self, tmp_path, capsys):
        assert main(["bench", "table1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["bench", "fig99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestIdentify:
    def test_prints_capability_block(self, capsys):
        assert main(["identify", "--config", "backfill"]) == 0
        out = capsys.readouterr().out
        assert "IDENTIFY controller" in out
        assert "write piggyback capacity    35 B" in out
        assert "packing policy              backfill" in out
