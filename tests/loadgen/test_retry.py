"""Retry policy: backoff math, loadgen accounting, knee visibility."""

import random
from dataclasses import replace

import pytest

from repro.loadgen import LoadtestReport, RetryPolicy, detect_knee, run_loadtest
from repro.serve.server import ServerSettings


def _no_jitter(**overrides) -> RetryPolicy:
    return replace(RetryPolicy(jitter=0.0), **overrides)


class TestBackoffMath:
    def test_exponential_growth_and_cap(self):
        policy = _no_jitter(base_backoff_us=200.0, multiplier=2.0,
                            max_backoff_us=50_000.0)
        rng = random.Random(0)
        assert policy.backoff_us(1, 0.0, rng) == 200.0
        assert policy.backoff_us(2, 0.0, rng) == 400.0
        assert policy.backoff_us(3, 0.0, rng) == 800.0
        # Attempt 10 would be 102400 uncapped.
        assert policy.backoff_us(10, 0.0, rng) == 50_000.0

    def test_busy_hint_stretches_the_wait(self):
        policy = _no_jitter()
        rng = random.Random(0)
        assert policy.backoff_us(1, 10_000.0, rng) == 10_000.0
        # A hint smaller than the computed backoff changes nothing.
        assert policy.backoff_us(1, 50.0, rng) == 200.0
        deaf = _no_jitter(honor_busy_hint=False)
        assert deaf.backoff_us(1, 10_000.0, rng) == 200.0

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(jitter=0.1)
        waits = [
            policy.backoff_us(1, 0.0, random.Random(seed))
            for seed in range(50)
        ]
        assert all(180.0 <= w <= 220.0 for w in waits)
        assert len(set(waits)) > 1  # jitter actually varies
        # Same seed, same wait: retries stay deterministic.
        assert (policy.backoff_us(1, 0.0, random.Random(7))
                == policy.backoff_us(1, 0.0, random.Random(7)))

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_us=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_us(0, 0.0, random.Random(0))


#: Starved admission: one queue slot and a tight delay bound guarantee a
#: steady stream of SERVER_BUSY under a fast open-loop burst.
_STARVED = dict(
    rps=200_000.0,
    requests=150,
    num_keys=32,
    value_size=64,
    settings=ServerSettings(max_inflight=2, per_conn_inflight=2,
                            max_queue_delay_us=50.0),
)


class TestLoadgenAccounting:
    def test_without_retry_busy_is_terminal(self):
        report = run_loadtest("baseline", seed=3, **_STARVED)
        assert report.busy_rejected > 0
        assert report.retries == 0 and report.gave_up == 0
        assert report.rejected == report.busy_rejected

    def test_retries_are_counted_and_give_up_is_terminal(self):
        report = run_loadtest(
            "baseline", seed=3,
            retry=RetryPolicy(max_attempts=3, deadline_us=0.0),
            **_STARVED,
        )
        assert report.retries > 0
        assert report.gave_up > 0
        assert report.deadline_exceeded == 0  # deadline disabled
        # Every op terminates exactly once.
        terminal = (report.completed + report.errors + report.busy_rejected
                    + report.gave_up + report.deadline_exceeded)
        assert terminal == report.requests
        assert report.rejected == (report.busy_rejected + report.gave_up)

    def test_tight_deadline_trips_deadline_exceeded(self):
        report = run_loadtest(
            "baseline", seed=3,
            retry=RetryPolicy(max_attempts=8, base_backoff_us=500.0,
                              deadline_us=1.0),
            **_STARVED,
        )
        assert report.deadline_exceeded > 0

    def test_unused_retry_policy_changes_nothing(self):
        # Ample admission: no SERVER_BUSY, so the retry machinery never
        # fires — the report must be byte-for-byte what a no-retry run
        # produces (this is what keeps the frozen goldens valid).
        kwargs = dict(rps=4000.0, requests=200, num_keys=32,
                      value_size=64, seed=5)
        plain = run_loadtest("baseline", **kwargs)
        armed = run_loadtest("baseline", retry=RetryPolicy(), **kwargs)
        assert plain.busy_rejected == 0
        assert armed.retries == 0
        assert plain.to_dict() == armed.to_dict()


class TestKneeNotMaskedByRetries:
    def test_give_ups_count_as_rejections(self):
        calm = LoadtestReport(
            preset="x", process="poisson", offered_rps=1000.0,
            requests=500, conns=1, seed=0, completed=500,
            achieved_rps=1000.0, p99_us=100.0,
        )
        # A retrying client at saturation: zero raw SERVER_BUSY terminals
        # (every bounce was retried) but 10% of ops gave up.
        saturated = LoadtestReport(
            preset="x", process="poisson", offered_rps=2000.0,
            requests=500, conns=1, seed=0, completed=450,
            achieved_rps=2000.0, p99_us=120.0,
            busy_rejected=0, gave_up=40, deadline_exceeded=10,
        )
        assert saturated.rejected == 50
        assert detect_knee([calm, saturated]) == 2000.0
