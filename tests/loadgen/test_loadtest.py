"""End-to-end loadtest tests: server + client + aggregation + knee."""

import pytest

from repro.loadgen.runner import (
    LoadtestReport,
    detect_knee,
    run_loadtest,
    run_rps_sweep,
)
from repro.serve.server import ServerSettings


def small_loadtest(**overrides):
    kwargs = dict(rps=5_000.0, requests=150, conns=1, seed=11, num_keys=60,
                  value_size=64)
    kwargs.update(overrides)
    return run_loadtest("baseline", **kwargs)


class TestLoadtest:
    def test_all_requests_complete_cleanly_at_low_rate(self):
        report = small_loadtest(rps=2_000.0)
        assert report.completed == report.requests
        assert report.busy_rejected == 0
        assert report.errors == 0
        assert report.protocol_errors == 0
        assert 0 < report.p50_us <= report.p99_us <= report.p999_us
        assert report.p999_us <= report.max_us
        assert report.achieved_rps > 0
        assert report.span_us > 0

    def test_deterministic_at_fixed_seed(self):
        assert small_loadtest().to_dict() == small_loadtest().to_dict()

    def test_seed_changes_report(self):
        assert small_loadtest(seed=1).to_dict() != \
               small_loadtest(seed=2).to_dict()

    def test_reads_hit_preloaded_keys(self):
        report = small_loadtest(read_fraction=1.0)
        assert report.completed == report.requests
        assert report.not_found == 0  # preload covers the whole keyspace

    def test_overload_sheds_load_with_server_busy(self):
        report = small_loadtest(
            rps=500_000.0, requests=400,
            settings=ServerSettings(max_queue_delay_us=5_000.0))
        assert report.busy_rejected > 0
        assert report.completed + report.busy_rejected == report.requests
        # Admission bounds the latency of what *was* served.
        assert report.p99_us < 50_000.0

    def test_onoff_tail_worse_than_poisson_at_same_rate(self):
        poisson = small_loadtest(rps=8_000.0, requests=400)
        bursty = small_loadtest(rps=8_000.0, requests=400, process="onoff")
        assert bursty.p99_us > poisson.p99_us

    def test_multi_connection_run_completes(self):
        report = small_loadtest(conns=3)
        assert report.completed == report.requests
        assert report.protocol_errors == 0

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            small_loadtest(process="uniform")

    def test_server_stats_included_on_request(self):
        report = small_loadtest(include_server_stats=True, requests=50)
        assert report.server_stats
        assert all(name.startswith("serve.") for name in report.server_stats)
        assert report.server_stats["serve.latency_us.count"] == 50.0


def _row(rps, p50=100.0, p99=500.0, busy=0, requests=100, achieved=None):
    return LoadtestReport(
        preset="baseline", process="poisson", offered_rps=rps,
        requests=requests, conns=1, seed=0, completed=requests - busy,
        busy_rejected=busy, achieved_rps=rps if achieved is None else achieved,
        p50_us=p50, p99_us=p99, p999_us=p99,
    )


class TestKneeDetection:
    def test_no_rows_no_knee(self):
        assert detect_knee([]) is None

    def test_flat_curve_has_no_knee(self):
        rows = [_row(rps) for rps in (1000, 2000, 4000)]
        assert detect_knee(rows) is None

    def test_p99_blowup_detected(self):
        rows = [_row(1000), _row(2000), _row(4000, p99=5000.0)]
        assert detect_knee(rows) == 4000

    def test_busy_fraction_detected(self):
        rows = [_row(1000), _row(2000, busy=20)]
        assert detect_knee(rows) == 2000

    def test_achieved_shortfall_detected(self):
        rows = [_row(1000), _row(2000, achieved=1200.0)]
        assert detect_knee(rows) == 2000

    def test_rows_scanned_in_rate_order(self):
        rows = [_row(4000, p99=5000.0), _row(1000), _row(2000)]
        assert detect_knee(rows) == 4000


class TestSweep:
    def test_sweep_shape_and_knee(self):
        report = run_rps_sweep(
            [3_000.0, 60_000.0], "baseline", requests=150, conns=1,
            seed=5, num_keys=60, value_size=64,
        )
        assert report["schema"] == 2
        assert report["preset"] == "baseline"
        assert [row["offered_rps"] for row in report["rows"]] == \
               [3_000.0, 60_000.0]
        # 60k offered vastly exceeds the simulated device's service rate.
        assert report["knee_rps"] == 60_000.0
        for row in report["rows"]:
            assert row["protocol_errors"] == 0
