"""Arrival-process and op-mix generator tests."""

import pytest

from repro.loadgen.arrivals import onoff_arrivals, poisson_arrivals
from repro.loadgen.ops import generate_ops, key_for, preload_values
from repro.serve.protocol import MAX_KEY_BYTES


class TestPoisson:
    def test_deterministic_at_fixed_seed(self):
        assert poisson_arrivals(5000, 200, seed=3) == \
               poisson_arrivals(5000, 200, seed=3)

    def test_different_seed_differs(self):
        assert poisson_arrivals(5000, 200, seed=3) != \
               poisson_arrivals(5000, 200, seed=4)

    def test_strictly_increasing_and_positive(self):
        arrivals = poisson_arrivals(1000, 500, seed=1)
        assert len(arrivals) == 500
        assert arrivals[0] > 0
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_mean_rate_close_to_target(self):
        rps = 10_000
        arrivals = poisson_arrivals(rps, 20_000, seed=0)
        achieved = len(arrivals) / (arrivals[-1] / 1e6)
        assert achieved == pytest.approx(rps, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, 10)
        with pytest.raises(ValueError):
            poisson_arrivals(100, -1)
        assert poisson_arrivals(100, 0) == []


class TestOnOff:
    def test_deterministic_at_fixed_seed(self):
        assert onoff_arrivals(5000, 200, seed=3) == \
               onoff_arrivals(5000, 200, seed=3)

    def test_nondecreasing(self):
        arrivals = onoff_arrivals(1000, 500, seed=1)
        assert len(arrivals) == 500
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))

    def test_long_run_mean_rate_close_to_target(self):
        rps = 10_000
        arrivals = onoff_arrivals(rps, 50_000, seed=2)
        achieved = len(arrivals) / (arrivals[-1] / 1e6)
        assert achieved == pytest.approx(rps, rel=0.15)

    def test_burstier_than_poisson(self):
        # Squared coefficient of variation of interarrivals: 1 for a
        # Poisson process, substantially higher for ON/OFF bursts.
        def scv(arrivals):
            gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var / mean**2

        poisson = scv(poisson_arrivals(10_000, 20_000, seed=5))
        bursty = scv(onoff_arrivals(10_000, 20_000, seed=5))
        assert poisson == pytest.approx(1.0, rel=0.2)
        assert bursty > 2.0 * poisson

    def test_validation(self):
        with pytest.raises(ValueError):
            onoff_arrivals(100, 10, on_us=0)
        with pytest.raises(ValueError):
            onoff_arrivals(0, 10)


class TestOpsGenerator:
    def test_deterministic_and_mix_fractions(self):
        ops = generate_ops(4000, read_fraction=0.5, delete_fraction=0.1,
                           seed=9)
        assert ops == generate_ops(4000, read_fraction=0.5,
                                   delete_fraction=0.1, seed=9)
        kinds = [op.kind for op in ops]
        assert kinds.count("GET") == pytest.approx(2000, rel=0.1)
        assert kinds.count("DEL") == pytest.approx(400, rel=0.3)
        assert kinds.count("SET") == pytest.approx(1600, rel=0.1)

    def test_sets_carry_values_of_requested_size(self):
        ops = generate_ops(100, value_size=64, read_fraction=0.0, seed=0)
        assert all(op.kind == "SET" and len(op.value) == 64 for op in ops)

    def test_keys_are_protocol_safe(self):
        for op in generate_ops(500, num_keys=10_000, seed=1):
            assert 0 < len(op.key) <= MAX_KEY_BYTES
            assert all(0x21 <= b <= 0x7E for b in op.key)

    def test_keys_stay_in_keyspace(self):
        num_keys = 37
        valid = {key_for(i) for i in range(num_keys)}
        assert {op.key for op in generate_ops(1000, num_keys=num_keys,
                                              seed=2)} <= valid

    def test_preload_covers_keyspace(self):
        pairs = list(preload_values(25, 32, seed=0))
        assert [key for key, _ in pairs] == [key_for(i) for i in range(25)]
        assert all(len(value) == 32 for _, value in pairs)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_ops(10, num_keys=0)
        with pytest.raises(ValueError):
            generate_ops(10, read_fraction=0.8, delete_fraction=0.3)
