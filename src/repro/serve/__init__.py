"""Host-side network serving layer over the simulated KV-SSD.

``repro.serve`` turns the single-caller ``KVStore``/``ArrayStore`` stacks
into a networked service: an asyncio TCP server speaking a minimal
memcached/RESP-like text protocol (GET/SET/DEL/SCAN/STATS/HEALTH) with
per-connection framing, bounded queues, admission control, and explicit
``SERVER_BUSY`` backpressure when the simulated device saturates.

Request latency is accounted in *virtual* microseconds — open-loop
arrival stamps from the load generator plus the device's simulated
service time — so the reported latency-under-load curves are
deterministic and free of coordinated omission (see ``docs/serving.md``).

The server is hardened against misbehaving clients and degraded
backends: abrupt disconnects drop their queued device work, idle
connections can be reaped, ``stop()`` drains gracefully, and an optional
deterministic circuit breaker sheds load off a failing store (see
``docs/chaos.md``).
"""

from repro.serve.backend import StoreBackend
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    Request,
    RequestParser,
    ResponseParser,
)
from repro.serve.server import KVServer, ServerSettings

__all__ = [
    "KVServer",
    "MAX_LINE_BYTES",
    "Request",
    "RequestParser",
    "ResponseParser",
    "ServerSettings",
    "StoreBackend",
]
