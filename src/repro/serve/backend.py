"""Device-side executor for the KV service.

The simulator is synchronous: a driver call runs to completion and
advances the device's simulated clock by the op's latency. The backend
wraps one :class:`~repro.host.api.KVStore` (or a sharded
:class:`~repro.array.store.ArrayStore`) behind a uniform ``execute()``
that returns the outcome *plus the simulated service time* — the single
number the server's virtual-time queueing model needs. One asyncio worker
drains the device queue, so backend calls never interleave.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import BandSlimConfig
from repro.core.config import preset as config_preset
from repro.errors import KeyNotFoundError, ReproError
from repro.serve.protocol import Request


@dataclass
class ExecResult:
    """Outcome of one device-side command."""

    #: STORED / VALUE / DELETED / NOT_FOUND / RANGE / ERR
    kind: str
    service_us: float
    value: bytes | None = None
    pairs: list = field(default_factory=list)
    detail: str = ""


class StoreBackend:
    """Uniform synchronous executor over a KVStore or ArrayStore."""

    def __init__(self, store, *, scan_limit_max: int = 256) -> None:
        self.store = store
        self.scan_limit_max = scan_limit_max
        # ArrayStore routers expose now_us directly; single-device stores
        # read the device clock. Late-bound through ``self.store`` so a
        # remount swap (see :meth:`remount_store`) is picked up.
        if hasattr(store, "now_us"):
            self._now = lambda: self.store.now_us
        else:
            self._now = lambda: self.store.device.clock.now_us
        self.supports_scan = hasattr(store, "scan")

    @classmethod
    def build(
        cls,
        config: BandSlimConfig | str | None = "backfill",
        *,
        array_shards: int = 1,
        replication: int = 1,
        write_quorum: int = 1,
        scan_limit_max: int = 256,
        **build_kwargs,
    ) -> "StoreBackend":
        """Build a fresh simulated store to serve.

        ``array_shards > 1`` builds a sharded/replicated ``ArrayStore``
        (SCAN unsupported there); otherwise a single-device ``KVStore``.
        """
        if isinstance(config, str):
            config = config_preset(config)
        elif config is None:
            config = BandSlimConfig()
        if array_shards > 1:
            from repro.array.store import ArrayStore

            config = config.with_overrides(
                array_shards=array_shards,
                replication_factor=replication,
                write_quorum=write_quorum,
            )
            store = ArrayStore.build(config=config, **build_kwargs)
        else:
            from repro.host.api import KVStore

            store = KVStore.open(config=config, **build_kwargs)
        return cls(store, scan_limit_max=scan_limit_max)

    @property
    def now_us(self) -> float:
        """The store's simulated clock (µs)."""
        return self._now()

    @property
    def max_value_bytes(self) -> int:
        """The store's configured value-size ceiling (protocol guard)."""
        if hasattr(self.store, "config"):
            return self.store.config.max_value_bytes
        return self.store.device.config.max_value_bytes

    @property
    def shards(self) -> int:
        """Independent device stacks behind this backend (1 for KVStore)."""
        store = self.store
        return len(store.devices) if hasattr(store, "devices_up") else 1

    def shard_of(self, key: bytes | None) -> int:
        """The shard that owns ``key`` in the server's queueing model.

        For an ArrayStore this is the first-preference replica on the
        hash ring (writes also fan to the other replicas, but the owner
        is what the per-shard QD-slot model charges); single-device
        stores — and key-less ops like SCAN — map to shard 0.
        """
        store = self.store
        if key is not None and hasattr(store, "replicas_of"):
            return store.replicas_of(key)[0]
        return 0

    def execute(self, request: Request) -> ExecResult:
        """Run one device op; service time is the simulated-clock delta."""
        t0 = self._now()
        try:
            if request.op == "SET":
                self.store.put(request.key, request.value)
                return ExecResult(kind="STORED", service_us=self._now() - t0)
            if request.op == "GET":
                value = self.store.get(request.key)
                return ExecResult(
                    kind="VALUE", service_us=self._now() - t0, value=value,
                )
            if request.op == "DEL":
                self.store.delete(request.key)
                return ExecResult(kind="DELETED", service_us=self._now() - t0)
            if request.op == "SCAN":
                if not self.supports_scan:
                    return ExecResult(
                        kind="ERR",
                        service_us=self._now() - t0,
                        detail="SCAN unsupported by this backend",
                    )
                limit = min(request.limit or 1, self.scan_limit_max)
                pairs = list(self.store.scan(request.key, limit=limit))
                return ExecResult(
                    kind="RANGE", service_us=self._now() - t0, pairs=pairs,
                )
        except KeyNotFoundError:
            return ExecResult(kind="NOT_FOUND", service_us=self._now() - t0)
        except ReproError as exc:
            # Device-level failure (quorum loss, media error escalation...):
            # report it to the client, charge the time it took.
            return ExecResult(
                kind="ERR", service_us=self._now() - t0, detail=str(exc),
            )
        return ExecResult(
            kind="ERR", service_us=0.0, detail=f"unhandled op {request.op!r}",
        )

    def execute_batch(
        self, requests: list[Request], queue_depth: int = 1
    ) -> list[ExecResult]:
        """Execute a group of device ops, pipelining same-kind runs.

        Outcome-equivalent to calling :meth:`execute` per request in
        order: the group is cut into **conflict-free windows** — a window
        never holds the same key twice unless both ops are GETs, and any
        op that is not SET/GET/DEL (SCAN, unknown) is a barrier — so
        executing a window's SETs as one pipelined ``put_many`` and its
        GETs as one ``get_many`` (their key sets are disjoint within the
        window) cannot change any response. DELs and barriers run
        serially through :meth:`execute`.

        Per-op ``service_us`` for batched ops is the op's own simulated
        latency *within* the pipelined schedule (concurrent ops overlap,
        so each carries its latency under load — the server's QD-slot
        model is what turns those into completions). A driver-level
        failure that aborts a whole device batch maps every op of that
        sub-batch to ``ERR`` — the batch analog of an NVMe queue abort.
        """
        results: list[ExecResult | None] = [None] * len(requests)
        window: list[tuple[int, Request]] = []
        seen: dict[bytes, str] = {}
        for pos, request in enumerate(requests):
            if request.op not in ("SET", "GET", "DEL"):
                # Barrier (SCAN, unhandled): flush, run solo, start fresh.
                self._flush_window(window, results, queue_depth)
                window, seen = [], {}
                results[pos] = self.execute(request)
                continue
            prior = seen.get(request.key)
            if prior is not None and (prior != "GET" or request.op != "GET"):
                self._flush_window(window, results, queue_depth)
                window, seen = [], {}
            window.append((pos, request))
            seen[request.key] = request.op
        self._flush_window(window, results, queue_depth)
        return results

    def _flush_window(self, window, results, queue_depth: int) -> None:
        """Run one conflict-free window: batch the SETs and GETs."""
        sets = [(pos, req) for pos, req in window if req.op == "SET"]
        gets = [(pos, req) for pos, req in window if req.op == "GET"]
        rest = [(pos, req) for pos, req in window if req.op == "DEL"]
        if len(sets) > 1:
            self._set_batch(sets, results, queue_depth)
        else:
            for pos, req in sets:
                results[pos] = self.execute(req)
        if len(gets) > 1:
            self._get_batch(gets, results, queue_depth)
        else:
            for pos, req in gets:
                results[pos] = self.execute(req)
        for pos, req in rest:
            results[pos] = self.execute(req)

    def _set_batch(self, items, results, queue_depth: int) -> None:
        pairs = [(req.key, req.value) for _, req in items]
        store = self.store
        try:
            if hasattr(store, "put_many"):  # sharded ArrayStore
                for (pos, _), outcome in zip(
                    items, store.put_many(pairs, queue_depth=queue_depth)
                ):
                    if isinstance(outcome, ReproError):
                        results[pos] = ExecResult(
                            kind="ERR", service_us=0.0, detail=str(outcome),
                        )
                    else:
                        results[pos] = ExecResult(
                            kind="STORED", service_us=outcome,
                        )
                return
            for (pos, _), result in zip(
                items, store.driver.put_many(pairs, queue_depth=queue_depth)
            ):
                if result.ok:
                    results[pos] = ExecResult(
                        kind="STORED", service_us=result.latency_us,
                    )
                else:
                    results[pos] = ExecResult(
                        kind="ERR", service_us=result.latency_us,
                        detail=f"PUT failed with status {result.status.name}",
                    )
        except ReproError as exc:
            for pos, _ in items:
                if results[pos] is None:
                    results[pos] = ExecResult(
                        kind="ERR", service_us=0.0, detail=str(exc),
                    )

    def _get_batch(self, items, results, queue_depth: int) -> None:
        keys = [req.key for _, req in items]
        store = self.store
        try:
            if hasattr(store, "get_many") and hasattr(store, "devices_up"):
                for (pos, _), entry in zip(
                    items, store.get_many(keys, queue_depth=queue_depth)
                ):
                    if isinstance(entry, ReproError):
                        results[pos] = ExecResult(
                            kind="ERR", service_us=0.0, detail=str(entry),
                        )
                        continue
                    found, payload, latency = entry
                    if found:
                        results[pos] = ExecResult(
                            kind="VALUE", service_us=latency, value=payload,
                        )
                    else:
                        results[pos] = ExecResult(
                            kind="NOT_FOUND", service_us=latency,
                        )
                return
            for (pos, _), result in zip(
                items, store.driver.get_many(keys, queue_depth=queue_depth)
            ):
                if result.ok and result.value is not None:
                    results[pos] = ExecResult(
                        kind="VALUE", service_us=result.latency_us,
                        value=result.value,
                    )
                elif result.status.name == "KEY_NOT_FOUND":
                    results[pos] = ExecResult(
                        kind="NOT_FOUND", service_us=result.latency_us,
                    )
                else:
                    results[pos] = ExecResult(
                        kind="ERR", service_us=result.latency_us,
                        detail=f"GET failed with status {result.status.name}",
                    )
        except ReproError as exc:
            for pos, _ in items:
                if results[pos] is None:
                    results[pos] = ExecResult(
                        kind="ERR", service_us=0.0, detail=str(exc),
                    )

    def health(self) -> dict:
        """Degraded-mode view of the backing store (HEALTH passthrough).

        ``state`` is ``ok`` when every device is up, ``degraded`` when
        some are, ``down`` when none are. Single-device stores report a
        power-lost injector as the one device being down.
        """
        store = self.store
        if hasattr(store, "devices_up"):  # sharded ArrayStore
            devices = len(store.devices)
            up = store.devices_up
            rebuild = getattr(store, "rebuild", None) is not None
        else:
            devices = 1
            injector = getattr(store.device, "injector", None)
            up = 0 if (injector is not None and injector.power_lost) else 1
            rebuild = False
        if up >= devices:
            state = "ok"
        elif up == 0:
            state = "down"
        else:
            state = "degraded"
        return {
            "state": state,
            "devices": devices,
            "devices_up": up,
            "rebuild_active": rebuild,
        }

    def remount_store(self) -> None:
        """Replace a power-lost single-device store with its remount.

        Models the operator pulling the plug and bringing the device
        back: ``KVSSD.remount()`` replays the recovery path and returns
        a fresh device, which we re-wrap in a ``KVStore`` so subsequent
        ops (and the late-bound clock) hit the recovered instance.
        """
        if hasattr(self.store, "devices_up"):
            raise ReproError(
                "remount_store applies to single-device stores; "
                "use ArrayStore.start_rebuild(remount=True) per shard"
            )
        from repro.host.api import KVStore

        self.store = KVStore(self.store.device.remount())

    def snapshot(self) -> dict[str, float]:
        """Full device metric snapshot (STATS passthrough)."""
        if hasattr(self.store, "stats"):
            return self.store.stats()
        return self.store.snapshot()

    def flush(self) -> None:
        self.store.flush()
