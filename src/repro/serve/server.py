"""Asyncio KV server: framing, bounded queues, admission, backpressure.

Architecture (per ``docs/serving.md``):

* One **reader task** per connection de-frames requests and dispatches
  them. Every request immediately gets a future on the connection's
  response queue, so responses always flow back in request order even
  when rejections resolve instantly and device ops resolve later.
* One **writer task** per connection awaits those futures in FIFO order
  and writes the encoded responses (``drain()`` applies TCP backpressure
  towards slow readers).
* One global **device worker** drains the bounded device queue. The
  simulator is synchronous, so the worker is the only place driver calls
  happen; it also runs the virtual-time queueing model below.

Virtual-time accounting: each request carries an optional open-loop
arrival stamp (relative µs). The worker keeps ``device_free_us`` — the
virtual time the device finishes its current backlog — and computes

    start      = max(arrival, device_free)
    completion = start + service          (service = simulated op time)
    latency    = completion - arrival     (queue wait + service)

which is an FCFS M/G/1-style queue over the *intended* schedule: a
request that queues behind a burst is charged its full wait even though
the load generator never blocked, so coordinated omission cannot hide
the knee.

Admission control (checked at dispatch, before enqueueing):

* device queue full (``max_inflight`` slots)          -> ``SERVER_BUSY``
* projected wait ``(device_free - arrival) + qsize * EWMA(service)``
  above ``max_queue_delay_us``                        -> ``SERVER_BUSY``
* per-connection in-flight above ``per_conn_inflight`` -> ``SERVER_BUSY``

Rejected requests never touch the device; the client sees an explicit
``SERVER_BUSY <projected_wait_us>`` and decides whether to shed or retry.

Robustness (see ``docs/chaos.md``; every knob defaults *off* so the
steady-state byte streams are identical to the pre-hardening server):

* A connection that vanishes with requests outstanding (reset, or EOF
  with in-flight ops) is marked **dead**: its queued device requests are
  dropped by the worker without touching the device, their futures are
  cancelled, and the admission slots come back.
* ``idle_timeout_s > 0`` reaps connections that send nothing for that
  long (stalled / slow-drip clients cannot pin reader tasks forever).
* ``stop()`` is an idempotent **graceful drain**: the listener closes,
  already-admitted device work completes (the shutdown sentinel queues
  *behind* it), and any request dispatched after the drain began gets an
  explicit ``ERR SHUTDOWN`` instead of silently hanging.
* ``breaker_error_threshold > 0`` arms a deterministic **circuit
  breaker**: after that many *consecutive* backend errors the breaker
  opens and device ops are rejected with ``SERVER_BUSY`` without
  touching the device, except every ``breaker_probe_every``-th request,
  which is admitted as a probe; one probe success closes the breaker.
  (No wall-clock cool-down — request-count probing keeps runs
  deterministic in virtual time.)
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.serve import protocol
from repro.serve.backend import StoreBackend
from repro.sim.stats import Histogram, MetricSet

#: Latency histograms need finer-than-2x buckets for smooth p99/p999
#: curves: quarter-octave edges spanning ~1 µs .. ~16 s.
LATENCY_EDGES = tuple(2.0 ** (i / 4.0) for i in range(97))

_CLOSE = object()  # response-queue sentinel: no more responses
_SHUTDOWN = object()  # device-queue sentinel: worker exits


def _latency_histogram(metrics: MetricSet, name: str) -> Histogram:
    return metrics.histogram(name, LATENCY_EDGES)


@dataclass
class ServerSettings:
    """Knobs for the serving layer (device config lives on the backend)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, read the bound port off the server
    #: Device-queue slots: admitted-but-unserved requests.
    max_inflight: int = 256
    #: Per-connection admitted-but-unserved bound (fairness: one client
    #: cannot monopolise the device queue).
    per_conn_inflight: int = 128
    #: Admission bound on projected queueing delay; <= 0 disables the
    #: delay-based check (the queue-slot bound still applies).
    max_queue_delay_us: float = 200_000.0
    #: EWMA weight for the projected-service estimate.
    service_ewma_alpha: float = 0.1
    #: Reap connections idle (nothing read) this long, in *wall* seconds;
    #: 0 disables. Defends the reader-task pool against stalled clients.
    idle_timeout_s: float = 0.0
    #: Consecutive backend errors that open the circuit breaker;
    #: 0 disables the breaker entirely.
    breaker_error_threshold: int = 0
    #: While open, admit every Nth device op as a probe.
    breaker_probe_every: int = 8
    #: Optional accept-path fault hook (``repro.chaos.net.ServerChaos``):
    #: ``allow_accept() -> bool``; False resets the connection on arrival.
    chaos: object | None = None


class _Connection:
    """Per-connection state shared by the reader/writer pair."""

    __slots__ = ("writer", "responses", "inflight", "parser", "closing", "dead")

    def __init__(self, writer, max_value_bytes: int) -> None:
        self.writer = writer
        self.responses: asyncio.Queue = asyncio.Queue()
        self.inflight = 0
        self.parser = protocol.RequestParser(max_value_bytes=max_value_bytes)
        #: Graceful close (QUIT): drain queued responses, then close.
        self.closing = False
        #: Abrupt close (reset / EOF with ops in flight): drop queued
        #: device work, cancel pending responses.
        self.dead = False


class KVServer:
    """The networked KV service over one simulated store."""

    def __init__(self, backend: StoreBackend,
                 settings: ServerSettings | None = None) -> None:
        self.backend = backend
        self.settings = settings or ServerSettings()
        self.metrics = MetricSet("serve")
        # Create the histograms up front so STATS always shows the set.
        _latency_histogram(self.metrics, "latency_us")
        _latency_histogram(self.metrics, "wait_us")
        _latency_histogram(self.metrics, "service_us")
        self._device_queue: asyncio.Queue = asyncio.Queue()
        self._device_free_us = 0.0
        self._ewma_service_us = 0.0
        self._server: asyncio.AbstractServer | None = None
        self._worker: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = False
        # Circuit-breaker state (armed only if breaker_error_threshold > 0).
        self._breaker_open = False
        self._breaker_failures = 0
        self._breaker_probe_countdown = 0

    # --- lifecycle --------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns (host, port) actually bound."""
        self._worker = asyncio.get_running_loop().create_task(
            self._device_worker()
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.settings.host, self.settings.port,
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        """Graceful drain: stop accepting, finish admitted work, close.

        Idempotent. The shutdown sentinel queues *behind* everything
        already admitted, so accepted device ops complete and their
        responses flush; requests dispatched after the drain begins get
        ``ERR SHUTDOWN`` (see :meth:`_dispatch`).
        """
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._worker is not None:
            await self._device_queue.put(_SHUTDOWN)
            await self._worker
            self._worker = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    @property
    def draining(self) -> bool:
        return self._draining

    # --- the device worker ------------------------------------------------

    async def _device_worker(self) -> None:
        queue = self._device_queue
        alpha = self.settings.service_ewma_alpha
        h_latency = self.metrics.histogram("latency_us")
        h_wait = self.metrics.histogram("wait_us")
        h_service = self.metrics.histogram("service_us")
        while True:
            item = await queue.get()
            if item is _SHUTDOWN:
                return
            request, future, conn, probe = item
            conn.inflight -= 1
            if conn.dead:
                # The client vanished with this request queued: never
                # touch the device on its behalf (virtual time must not
                # advance for work nobody will read).
                self.metrics.counter("dropped_requests").add()
                future.cancel()
                continue
            arrival = request.arrival_us
            if arrival is None:
                # No open-loop stamp: arrive the moment the device frees up.
                arrival = self._device_free_us
            result = self.backend.execute(request)
            start = max(arrival, self._device_free_us)
            completion = start + result.service_us
            wait = start - arrival
            latency = completion - arrival
            self._device_free_us = completion
            if self._ewma_service_us:
                self._ewma_service_us += alpha * (
                    result.service_us - self._ewma_service_us
                )
            else:
                self._ewma_service_us = result.service_us
            h_latency.record(latency)
            h_wait.record(wait)
            h_service.record(result.service_us)
            self.metrics.counter(f"ops.{request.op.lower()}").add()
            if result.kind == "STORED":
                payload = protocol.encode_stored(latency, result.service_us)
            elif result.kind == "VALUE":
                payload = protocol.encode_value(
                    result.value, latency, result.service_us
                )
            elif result.kind == "DELETED":
                payload = protocol.encode_deleted(latency, result.service_us)
            elif result.kind == "NOT_FOUND":
                self.metrics.counter("not_found").add()
                payload = protocol.encode_not_found(latency, result.service_us)
            elif result.kind == "RANGE":
                payload = protocol.encode_range(
                    result.pairs, latency, result.service_us
                )
            else:
                self.metrics.counter("backend_errors").add()
                payload = protocol.encode_error("BACKEND", result.detail)
            self._breaker_record(result.kind == "ERR", probe)
            if not future.done():
                future.set_result(payload)

    # --- circuit breaker --------------------------------------------------

    def _breaker_record(self, failed: bool, probe: bool) -> None:
        """Track consecutive backend errors; open/close the breaker.

        Half-open semantics: only a *probe* success closes an open
        breaker — ops admitted before the trip that happen to succeed
        while draining the queue do not (they predate the failure run).
        """
        threshold = self.settings.breaker_error_threshold
        if threshold <= 0:
            return
        if failed:
            self._breaker_failures += 1
            if not self._breaker_open and self._breaker_failures >= threshold:
                self._breaker_open = True
                self._breaker_probe_countdown = self.settings.breaker_probe_every
                self.metrics.counter("breaker.opened").add()
        else:
            self._breaker_failures = 0
            if self._breaker_open and probe:
                self._breaker_open = False
                self.metrics.counter("breaker.closed").add()

    def _breaker_admit(self) -> str:
        """'pass' = breaker closed; 'probe' = admit as probe; 'shed'."""
        if not self._breaker_open:
            return "pass"
        self._breaker_probe_countdown -= 1
        if self._breaker_probe_countdown > 0:
            self.metrics.counter("breaker.rejected").add()
            return "shed"
        self._breaker_probe_countdown = self.settings.breaker_probe_every
        self.metrics.counter("breaker.probes").add()
        return "probe"

    # --- projected backlog (admission) ------------------------------------

    def projected_wait_us(self, arrival_us: float | None) -> float:
        """Queueing delay a request admitted now should expect."""
        backlog = self._device_queue.qsize() * self._ewma_service_us
        if arrival_us is None:
            return backlog
        return max(0.0, self._device_free_us - arrival_us) + backlog

    def _admit(self, request: protocol.Request, conn: _Connection):
        """(rejection, probe): rejection bytes to send instead, or None
        = admitted; probe marks a breaker-probe admission."""
        settings = self.settings
        verdict = self._breaker_admit()
        if verdict == "shed":
            self.metrics.counter("busy_rejects").add()
            return (
                protocol.encode_busy(self.projected_wait_us(request.arrival_us)),
                False,
            )
        probe = verdict == "probe"
        if conn.inflight >= settings.per_conn_inflight:
            self.metrics.counter("busy_rejects").add()
            self.metrics.counter("busy_rejects.per_conn").add()
            return (
                protocol.encode_busy(self.projected_wait_us(request.arrival_us)),
                probe,
            )
        if self._device_queue.qsize() >= settings.max_inflight:
            self.metrics.counter("busy_rejects").add()
            self.metrics.counter("busy_rejects.queue_full").add()
            return (
                protocol.encode_busy(self.projected_wait_us(request.arrival_us)),
                probe,
            )
        projected = self.projected_wait_us(request.arrival_us)
        if 0 < settings.max_queue_delay_us < projected:
            self.metrics.counter("busy_rejects").add()
            self.metrics.counter("busy_rejects.queue_delay").add()
            return protocol.encode_busy(projected), probe
        return None, probe

    # --- per-connection plumbing ------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        chaos = self.settings.chaos
        if chaos is not None and not chaos.allow_accept():
            # Injected accept-path fault: reset the connection on arrival.
            self.metrics.counter("chaos.accept_resets").add()
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            return
        self.metrics.counter("connections").add()
        conn = _Connection(writer, max_value_bytes=self.backend.max_value_bytes)
        writer_task = asyncio.get_running_loop().create_task(
            self._connection_writer(conn)
        )
        idle_timeout = self.settings.idle_timeout_s
        try:
            while not conn.closing and not conn.dead:
                if idle_timeout > 0:
                    try:
                        data = await asyncio.wait_for(
                            reader.read(1 << 16), idle_timeout
                        )
                    except asyncio.TimeoutError:
                        self.metrics.counter("conns_idle_reaped").add()
                        if conn.inflight > 0:
                            conn.dead = True
                        break
                else:
                    data = await reader.read(1 << 16)
                if not data:
                    if conn.inflight > 0 and not conn.dead:
                        # EOF with device ops outstanding: the client is
                        # gone and will never read the responses.
                        self.metrics.counter("disconnects.abrupt").add()
                        conn.dead = True
                    break
                for request in conn.parser.feed(data):
                    self._dispatch(request, conn)
                if conn.parser.fatal is not None:
                    break
                # Bounded pipeline: stop reading while the writer is more
                # than two windows behind (cheap inline responses are not
                # admission-controlled, so the response queue needs its
                # own brake).
                limit = 2 * self.settings.per_conn_inflight
                while conn.responses.qsize() > limit and not conn.closing:
                    await asyncio.sleep(0.001)
        except ConnectionResetError:
            if not conn.dead:
                self.metrics.counter("disconnects.abrupt").add()
                conn.dead = True
        except asyncio.CancelledError:
            pass
        finally:
            await conn.responses.put(_CLOSE)
            try:
                await writer_task
            except asyncio.CancelledError:
                pass
            self._conn_tasks.discard(task)

    def _dispatch(self, request: protocol.Request, conn: _Connection) -> None:
        future = asyncio.get_running_loop().create_future()
        conn.responses.put_nowait(future)
        self.metrics.counter("requests").add()
        if request.error is not None:
            self.metrics.counter("protocol_errors").add()
            future.set_result(protocol.encode_error("PROTO", request.error))
            if conn.parser.fatal is not None:
                conn.closing = True
            return
        if request.op == "PING":
            future.set_result(protocol.PONG)
            return
        if request.op == "STATS":
            future.set_result(protocol.encode_stats(self.stats()))
            return
        if request.op == "HEALTH":
            health = self.backend.health()
            future.set_result(
                protocol.encode_health(
                    health["state"],
                    health["devices_up"],
                    health["devices"],
                    "open" if self._breaker_open else "closed",
                )
            )
            return
        if request.op == "QUIT":
            future.set_result(protocol.BYE)
            conn.closing = True
            return
        if self._draining:
            # The device worker is (or is about to be) gone: answering
            # here beats stranding a future that nothing will resolve.
            self.metrics.counter("shutdown_rejects").add()
            future.set_result(
                protocol.encode_error("SHUTDOWN", "server draining")
            )
            return
        rejection, probe = self._admit(request, conn)
        if rejection is not None:
            future.set_result(rejection)
            return
        conn.inflight += 1
        self._device_queue.put_nowait((request, future, conn, probe))

    async def _connection_writer(self, conn: _Connection) -> None:
        """Write responses strictly in request order; apply TCP backpressure."""
        while True:
            item = await conn.responses.get()
            if item is _CLOSE:
                break
            try:
                payload = await item
            except asyncio.CancelledError:
                break
            conn.writer.write(payload)
            try:
                await conn.writer.drain()
            except ConnectionResetError:
                # The client reset with responses still flowing: whatever
                # it has queued on the device is now work for nobody.
                if not conn.dead:
                    self.metrics.counter("disconnects.abrupt").add()
                    conn.dead = True
                break
        try:
            conn.writer.close()
            await conn.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # --- reporting --------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Server metrics merged with the backend's device snapshot."""
        out = self.metrics.snapshot()
        out["serve.device_free_us"] = self._device_free_us
        out["serve.ewma_service_us"] = self._ewma_service_us
        out["serve.queue_depth"] = float(self._device_queue.qsize())
        out.update(self.backend.snapshot())
        return out
