"""Asyncio KV server: framing, bounded queues, admission, backpressure.

Architecture (per ``docs/serving.md``):

* One **reader task** per connection de-frames requests and dispatches
  them. Every request immediately gets a future on the connection's
  response queue, so responses always flow back in request order even
  when rejections resolve instantly and device ops resolve later.
* One **writer task** per connection awaits those futures in FIFO order
  and writes the encoded responses (``drain()`` applies TCP backpressure
  towards slow readers).
* One global **device worker** drains the bounded device queue. The
  simulator is synchronous, so the worker is the only place driver calls
  happen; it also runs the virtual-time queueing model below.

Two worker shapes exist, selected by ``dispatch_batch``/``server_qd``:

**Serial (the default, both knobs 1).** The worker executes one request
per queue item and keeps a single scalar ``device_free_us`` — the
virtual time the device finishes its current backlog:

    start      = max(arrival, device_free)
    completion = start + service          (service = simulated op time)
    latency    = completion - arrival     (queue wait + service)

an FCFS M/G/1-style queue over the *intended* schedule: a request that
queues behind a burst is charged its full wait even though the load
generator never blocked, so coordinated omission cannot hide the knee.

**Batched (either knob > 1).** Device ops buffer per connection and
flush to the worker in groups — on the ``DISPATCH`` doorbell the load
generator sends every few ops (a byte-stream position, so batch
boundaries are deterministic), on the ``dispatch_batch`` cap, on any
inline op, and on connection close/drain. The worker cuts each group
into virtual-time sub-batches (an op arriving after the device fully
drained starts a new one, so low load degenerates to serial execution
and low-load latency is unchanged), executes same-kind runs through the
backend's pipelined ``put_many``/``get_many`` paths, and generalizes the
queueing model to **per-shard, per-QD-slot free times**: each op takes
the earliest-free of its owning shard's ``server_qd`` slots,

    slot       = argmin(shard_free[shard])
    start      = max(arrival, shard_free[shard][slot])
    completion = start + service          (service = latency in the batch)
    latency    = completion - arrival

so requests overlap exactly as far as the device's internal parallelism
(QD pipelining × independent shards) allows, still open-loop and still
in strict per-connection response order.

Admission control (checked at dispatch, before enqueueing):

* device queue full (``max_inflight`` slots)          -> ``SERVER_BUSY``
* projected wait above ``max_queue_delay_us``         -> ``SERVER_BUSY``
  (serial: ``(device_free - arrival) + queued * EWMA(service)``;
  batched: ``(earliest shard slot - arrival) + queued * EWMA(service) /
  (shards * server_qd)`` — the backlog drains through every slot, so the
  estimate divides by the effective parallelism to stay truthful)
* per-connection in-flight above ``per_conn_inflight`` -> ``SERVER_BUSY``

Rejected requests never touch the device; the client sees an explicit
``SERVER_BUSY <projected_wait_us>`` and decides whether to shed or retry.

Robustness (see ``docs/chaos.md``; every knob defaults *off* so the
steady-state byte streams are identical to the pre-hardening server):

* A connection that vanishes with requests outstanding (reset, or EOF
  with in-flight ops) is marked **dead**: its queued device requests are
  dropped by the worker without touching the device, their futures are
  cancelled, and the admission slots come back.
* ``idle_timeout_s > 0`` reaps connections that send nothing for that
  long (stalled / slow-drip clients cannot pin reader tasks forever).
* ``stop()`` is an idempotent **graceful drain**: the listener closes,
  already-admitted device work completes (the shutdown sentinel queues
  *behind* it), and any request dispatched after the drain began gets an
  explicit ``ERR SHUTDOWN`` instead of silently hanging.
* ``breaker_error_threshold > 0`` arms a deterministic **circuit
  breaker**: after that many *consecutive* backend errors the breaker
  opens and device ops are rejected with ``SERVER_BUSY`` without
  touching the device, except every ``breaker_probe_every``-th request,
  which is admitted as a probe; one probe success closes the breaker.
  (No wall-clock cool-down — request-count probing keeps runs
  deterministic in virtual time.)
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.serve import protocol
from repro.serve.backend import StoreBackend
from repro.sim.stats import Histogram, MetricSet

#: Latency histograms need finer-than-2x buckets for smooth p99/p999
#: curves: quarter-octave edges spanning ~1 µs .. ~16 s.
LATENCY_EDGES = tuple(2.0 ** (i / 4.0) for i in range(97))

#: Power-of-two buckets for the executed sub-batch sizes (batched mode).
BATCH_SIZE_EDGES = tuple(float(2 ** i) for i in range(13))

_CLOSE = object()  # response-queue sentinel: no more responses
_SHUTDOWN = object()  # device-queue sentinel: worker exits


def _latency_histogram(metrics: MetricSet, name: str) -> Histogram:
    return metrics.histogram(name, LATENCY_EDGES)


@dataclass
class ServerSettings:
    """Knobs for the serving layer (device config lives on the backend)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, read the bound port off the server
    #: Device-queue slots: admitted-but-unserved requests.
    max_inflight: int = 256
    #: Per-connection admitted-but-unserved bound (fairness: one client
    #: cannot monopolise the device queue).
    per_conn_inflight: int = 128
    #: Admission bound on projected queueing delay; <= 0 disables the
    #: delay-based check (the queue-slot bound still applies).
    max_queue_delay_us: float = 200_000.0
    #: EWMA weight for the projected-service estimate.
    service_ewma_alpha: float = 0.1
    #: Reap connections idle (nothing read) this long, in *wall* seconds;
    #: 0 disables. Defends the reader-task pool against stalled clients.
    idle_timeout_s: float = 0.0
    #: Consecutive backend errors that open the circuit breaker;
    #: 0 disables the breaker entirely.
    breaker_error_threshold: int = 0
    #: While open, admit every Nth device op as a probe.
    breaker_probe_every: int = 8
    #: Max device ops buffered per connection before a forced flush to the
    #: worker; 1 (the default) is the serial worker, byte-identical to the
    #: pre-batching server. > 1 needs doorbell-aware clients (the load
    #: generator's ``dispatch_every``): ops buffer until a ``DISPATCH``
    #: hint, the cap, or an inline op flushes them.
    dispatch_batch: int = 1
    #: Virtual QD slots per shard in the queueing model, and the queue
    #: depth handed to the backend's pipelined batch paths; 1 keeps the
    #: scalar serial model.
    server_qd: int = 1
    #: Optional accept-path fault hook (``repro.chaos.net.ServerChaos``):
    #: ``allow_accept() -> bool``; False resets the connection on arrival.
    chaos: object | None = None


class _Connection:
    """Per-connection state shared by the reader/writer pair."""

    __slots__ = (
        "writer", "responses", "inflight", "parser", "closing", "dead",
        "batch",
    )

    def __init__(self, writer, max_value_bytes: int) -> None:
        self.writer = writer
        self.responses: asyncio.Queue = asyncio.Queue()
        self.inflight = 0
        self.parser = protocol.RequestParser(max_value_bytes=max_value_bytes)
        #: Graceful close (QUIT): drain queued responses, then close.
        self.closing = False
        #: Abrupt close (reset / EOF with ops in flight): drop queued
        #: device work, cancel pending responses.
        self.dead = False
        #: Batched mode only: admitted device ops awaiting a flush.
        self.batch: list = []


class KVServer:
    """The networked KV service over one simulated store."""

    def __init__(self, backend: StoreBackend,
                 settings: ServerSettings | None = None) -> None:
        self.backend = backend
        self.settings = settings or ServerSettings()
        self.metrics = MetricSet("serve")
        # Create the histograms up front so STATS always shows the set.
        _latency_histogram(self.metrics, "latency_us")
        _latency_histogram(self.metrics, "wait_us")
        _latency_histogram(self.metrics, "service_us")
        self._device_queue: asyncio.Queue = asyncio.Queue()
        self._device_free_us = 0.0
        self._ewma_service_us = 0.0
        if self.settings.dispatch_batch < 1 or self.settings.server_qd < 1:
            raise ConfigError("dispatch_batch and server_qd must be >= 1")
        #: Batched mode: buffer + doorbell dispatch, per-shard QD-slot
        #: queueing model. Off (both knobs 1) keeps the serial worker
        #: byte-identical to the pre-batching server.
        self._batched = (
            self.settings.dispatch_batch > 1 or self.settings.server_qd > 1
        )
        shards = max(1, backend.shards) if self._batched else 1
        #: Per-shard, per-QD-slot virtual free times (batched model).
        self._shard_free = [
            [0.0] * self.settings.server_qd for _ in range(shards)
        ]
        #: Admitted-but-unserved device ops (buffered + queued). The
        #: batched queue holds *groups*, so qsize() undercounts there.
        self._queued_ops = 0
        self._queued_per_shard = [0] * shards
        self._inflight_peak = 0
        if self._batched:
            self.metrics.histogram("batch_size", BATCH_SIZE_EDGES)
        self._server: asyncio.AbstractServer | None = None
        self._worker: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._conns: set[_Connection] = set()
        self._draining = False
        # Circuit-breaker state (armed only if breaker_error_threshold > 0).
        self._breaker_open = False
        self._breaker_failures = 0
        self._breaker_probe_countdown = 0

    # --- lifecycle --------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns (host, port) actually bound."""
        worker = self._batched_worker if self._batched else self._device_worker
        self._worker = asyncio.get_running_loop().create_task(worker())
        self._server = await asyncio.start_server(
            self._handle_connection, self.settings.host, self.settings.port,
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        """Graceful drain: stop accepting, finish admitted work, close.

        Idempotent. The shutdown sentinel queues *behind* everything
        already admitted, so accepted device ops complete and their
        responses flush; requests dispatched after the drain begins get
        ``ERR SHUTDOWN`` (see :meth:`_dispatch`).
        """
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._batched:
            # Buffered device ops are admitted work: flush them ahead of
            # the shutdown sentinel so their responses are written.
            for conn in list(self._conns):
                self._flush_batch(conn)
        if self._worker is not None:
            await self._device_queue.put(_SHUTDOWN)
            await self._worker
            self._worker = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    @property
    def draining(self) -> bool:
        return self._draining

    # --- the device worker ------------------------------------------------

    async def _device_worker(self) -> None:
        queue = self._device_queue
        alpha = self.settings.service_ewma_alpha
        h_latency = self.metrics.histogram("latency_us")
        h_wait = self.metrics.histogram("wait_us")
        h_service = self.metrics.histogram("service_us")
        while True:
            item = await queue.get()
            if item is _SHUTDOWN:
                return
            request, future, conn, probe = item
            conn.inflight -= 1
            if conn.dead:
                # The client vanished with this request queued: never
                # touch the device on its behalf (virtual time must not
                # advance for work nobody will read).
                self.metrics.counter("dropped_requests").add()
                future.cancel()
                continue
            arrival = request.arrival_us
            if arrival is None:
                # No open-loop stamp: arrive the moment the device frees up.
                arrival = self._device_free_us
            result = self.backend.execute(request)
            start = max(arrival, self._device_free_us)
            completion = start + result.service_us
            wait = start - arrival
            latency = completion - arrival
            self._device_free_us = completion
            if self._ewma_service_us:
                self._ewma_service_us += alpha * (
                    result.service_us - self._ewma_service_us
                )
            else:
                self._ewma_service_us = result.service_us
            h_latency.record(latency)
            h_wait.record(wait)
            h_service.record(result.service_us)
            self.metrics.counter(f"ops.{request.op.lower()}").add()
            payload = self._encode_result(result, latency)
            self._breaker_record(result.kind == "ERR", probe)
            if not future.done():
                future.set_result(payload)

    def _encode_result(self, result, latency: float) -> bytes:
        """Encode a backend outcome (and bump its outcome counters)."""
        if result.kind == "STORED":
            return protocol.encode_stored(latency, result.service_us)
        if result.kind == "VALUE":
            return protocol.encode_value(
                result.value, latency, result.service_us
            )
        if result.kind == "DELETED":
            return protocol.encode_deleted(latency, result.service_us)
        if result.kind == "NOT_FOUND":
            self.metrics.counter("not_found").add()
            return protocol.encode_not_found(latency, result.service_us)
        if result.kind == "RANGE":
            return protocol.encode_range(
                result.pairs, latency, result.service_us
            )
        self.metrics.counter("backend_errors").add()
        return protocol.encode_error("BACKEND", result.detail)

    # --- the batched worker (dispatch_batch / server_qd > 1) ---------------

    async def _batched_worker(self) -> None:
        """Drain flushed groups; run the per-shard QD-slot model.

        Each queue item is one flushed batch (doorbell/cap-bounded). The
        group is cut into virtual-time **sub-batches**: an op whose
        arrival stamp lies beyond the device's drain horizon (every slot
        free) starts a new sub-batch, so sparse traffic executes op-at-a-
        time with serial service times and only genuinely-queued spans
        batch onto the pipelined paths. The cut depends only on arrival
        stamps and executed history — deterministic for a fixed stream.
        """
        queue = self._device_queue
        while True:
            item = await queue.get()
            if item is _SHUTDOWN:
                return
            live = []
            for entry in item:
                request, future, conn, probe, shard = entry
                conn.inflight -= 1
                self._queued_ops -= 1
                self._queued_per_shard[shard] -= 1
                if conn.dead:
                    # The client vanished with this request queued: never
                    # touch the device on its behalf.
                    self.metrics.counter("dropped_requests").add()
                    future.cancel()
                    continue
                live.append(entry)
            if not live:
                continue
            horizon = max(max(slots) for slots in self._shard_free)
            sub: list = []
            for entry in live:
                arrival = entry[0].arrival_us
                if sub and arrival is not None and arrival > horizon:
                    horizon = max(horizon, self._run_subbatch(sub))
                    sub = []
                sub.append(entry)
            if sub:
                self._run_subbatch(sub)

    def _run_subbatch(self, entries: list) -> float:
        """Execute one sub-batch; charge it on the shard QD slots.

        Returns the latest completion time it booked (the caller's drain
        horizon). Singleton sub-batches take the plain ``execute`` path,
        so their service times are identical to the serial worker's.
        """
        settings = self.settings
        alpha = settings.service_ewma_alpha
        h_latency = self.metrics.histogram("latency_us")
        h_wait = self.metrics.histogram("wait_us")
        h_service = self.metrics.histogram("service_us")
        self.metrics.histogram("batch_size").record(float(len(entries)))
        requests = [entry[0] for entry in entries]
        if len(requests) == 1:
            results = [self.backend.execute(requests[0])]
        else:
            self.metrics.counter("batches").add()
            results = self.backend.execute_batch(
                requests, queue_depth=settings.server_qd
            )
        max_completion = 0.0
        for (request, future, conn, probe, shard), result in zip(
            entries, results
        ):
            slots = self._shard_free[shard]
            arrival = request.arrival_us
            if arrival is None:
                # No open-loop stamp: arrive the moment a slot frees up.
                arrival = min(slots)
            slot = min(range(len(slots)), key=slots.__getitem__)
            start = max(arrival, slots[slot])
            completion = start + result.service_us
            slots[slot] = completion
            wait = start - arrival
            latency = completion - arrival
            if completion > self._device_free_us:
                self._device_free_us = completion
            if completion > max_completion:
                max_completion = completion
            if self._ewma_service_us:
                self._ewma_service_us += alpha * (
                    result.service_us - self._ewma_service_us
                )
            else:
                self._ewma_service_us = result.service_us
            h_latency.record(latency)
            h_wait.record(wait)
            h_service.record(result.service_us)
            self.metrics.counter(f"ops.{request.op.lower()}").add()
            payload = self._encode_result(result, latency)
            self._breaker_record(result.kind == "ERR", probe)
            if not future.done():
                future.set_result(payload)
        return max_completion

    def _flush_batch(self, conn: _Connection) -> None:
        """Hand a connection's buffered device ops to the worker."""
        if conn.batch:
            self._device_queue.put_nowait(conn.batch)
            conn.batch = []

    # --- circuit breaker --------------------------------------------------

    def _breaker_record(self, failed: bool, probe: bool) -> None:
        """Track consecutive backend errors; open/close the breaker.

        Half-open semantics: only a *probe* success closes an open
        breaker — ops admitted before the trip that happen to succeed
        while draining the queue do not (they predate the failure run).
        """
        threshold = self.settings.breaker_error_threshold
        if threshold <= 0:
            return
        if failed:
            self._breaker_failures += 1
            if not self._breaker_open and self._breaker_failures >= threshold:
                self._breaker_open = True
                self._breaker_probe_countdown = self.settings.breaker_probe_every
                self.metrics.counter("breaker.opened").add()
        else:
            self._breaker_failures = 0
            if self._breaker_open and probe:
                self._breaker_open = False
                self.metrics.counter("breaker.closed").add()

    def _breaker_admit(self) -> str:
        """'pass' = breaker closed; 'probe' = admit as probe; 'shed'."""
        if not self._breaker_open:
            return "pass"
        self._breaker_probe_countdown -= 1
        if self._breaker_probe_countdown > 0:
            self.metrics.counter("breaker.rejected").add()
            return "shed"
        self._breaker_probe_countdown = self.settings.breaker_probe_every
        self.metrics.counter("breaker.probes").add()
        return "probe"

    # --- projected backlog (admission) ------------------------------------

    def projected_wait_us(self, arrival_us: float | None,
                          shard: int | None = None) -> float:
        """Queueing delay a request admitted now should expect.

        Serial: time until the scalar ``device_free_us`` clears, plus the
        queued backlog at the EWMA service estimate. Batched: the backlog
        drains through every QD slot of every shard concurrently, so the
        estimate divides by that effective parallelism, and the head-of-
        line term is the earliest-free slot (of the request's own shard
        when known) — keeping ``SERVER_BUSY`` projections truthful under
        the parallel schedule.
        """
        if not self._batched:
            backlog = self._device_queue.qsize() * self._ewma_service_us
            if arrival_us is None:
                return backlog
            return max(0.0, self._device_free_us - arrival_us) + backlog
        parallelism = len(self._shard_free) * self.settings.server_qd
        backlog = self._queued_ops * self._ewma_service_us / parallelism
        if arrival_us is None:
            return backlog
        if shard is None:
            free = min(min(slots) for slots in self._shard_free)
        else:
            free = min(self._shard_free[shard])
        return max(0.0, free - arrival_us) + backlog

    def _admit(self, request: protocol.Request, conn: _Connection):
        """(rejection, probe, shard): rejection bytes to send instead, or
        None = admitted; probe marks a breaker-probe admission; shard is
        the queueing-model shard the op charges (0 in serial mode)."""
        settings = self.settings
        shard = self.backend.shard_of(request.key) if self._batched else 0
        verdict = self._breaker_admit()
        if verdict == "shed":
            self.metrics.counter("busy_rejects").add()
            return (
                protocol.encode_busy(
                    self.projected_wait_us(request.arrival_us, shard)
                ),
                False,
                shard,
            )
        probe = verdict == "probe"
        if conn.inflight >= settings.per_conn_inflight:
            self.metrics.counter("busy_rejects").add()
            self.metrics.counter("busy_rejects.per_conn").add()
            return (
                protocol.encode_busy(
                    self.projected_wait_us(request.arrival_us, shard)
                ),
                probe,
                shard,
            )
        # The batched queue holds *groups* (and ops buffer on connections
        # before flushing), so the slot bound counts admitted ops, not
        # queue items.
        depth = (self._queued_ops if self._batched
                 else self._device_queue.qsize())
        if depth >= settings.max_inflight:
            self.metrics.counter("busy_rejects").add()
            self.metrics.counter("busy_rejects.queue_full").add()
            return (
                protocol.encode_busy(
                    self.projected_wait_us(request.arrival_us, shard)
                ),
                probe,
                shard,
            )
        projected = self.projected_wait_us(request.arrival_us, shard)
        if 0 < settings.max_queue_delay_us < projected:
            self.metrics.counter("busy_rejects").add()
            self.metrics.counter("busy_rejects.queue_delay").add()
            return protocol.encode_busy(projected), probe, shard
        return None, probe, shard

    # --- per-connection plumbing ------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        chaos = self.settings.chaos
        if chaos is not None and not chaos.allow_accept():
            # Injected accept-path fault: reset the connection on arrival.
            self.metrics.counter("chaos.accept_resets").add()
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            return
        self.metrics.counter("connections").add()
        conn = _Connection(writer, max_value_bytes=self.backend.max_value_bytes)
        self._conns.add(conn)
        writer_task = asyncio.get_running_loop().create_task(
            self._connection_writer(conn)
        )
        idle_timeout = self.settings.idle_timeout_s
        try:
            while not conn.closing and not conn.dead:
                if idle_timeout > 0:
                    try:
                        data = await asyncio.wait_for(
                            reader.read(1 << 16), idle_timeout
                        )
                    except asyncio.TimeoutError:
                        self.metrics.counter("conns_idle_reaped").add()
                        if conn.inflight > 0:
                            conn.dead = True
                        break
                else:
                    data = await reader.read(1 << 16)
                if not data:
                    if conn.inflight > 0 and not conn.dead:
                        # EOF with device ops outstanding: the client is
                        # gone and will never read the responses.
                        self.metrics.counter("disconnects.abrupt").add()
                        conn.dead = True
                    break
                for request in conn.parser.feed(data):
                    self._dispatch(request, conn)
                if conn.parser.fatal is not None:
                    break
                # Bounded pipeline: stop reading while the writer is more
                # than two windows behind (cheap inline responses are not
                # admission-controlled, so the response queue needs its
                # own brake).
                limit = 2 * self.settings.per_conn_inflight
                while conn.responses.qsize() > limit and not conn.closing:
                    await asyncio.sleep(0.001)
        except ConnectionResetError:
            if not conn.dead:
                self.metrics.counter("disconnects.abrupt").add()
                conn.dead = True
        except asyncio.CancelledError:
            pass
        finally:
            if self._batched:
                # Reader is done (EOF, QUIT, fatal, reap): any still-
                # buffered admitted ops must reach the worker — dead
                # connections get theirs dropped there, live ones get
                # their responses written before _CLOSE lands.
                self._flush_batch(conn)
            await conn.responses.put(_CLOSE)
            try:
                await writer_task
            except asyncio.CancelledError:
                pass
            self._conns.discard(conn)
            self._conn_tasks.discard(task)

    def _dispatch(self, request: protocol.Request, conn: _Connection) -> None:
        if request.op == "DISPATCH" and request.error is None:
            # Doorbell hint: response-less by design (memcached-noreply
            # style), so batching never costs a round-trip. A byte-stream
            # position, not a timer — batch composition stays
            # deterministic. Serial mode counts and ignores it.
            self.metrics.counter("dispatch_hints").add()
            if self._batched:
                self._flush_batch(conn)
            return
        future = asyncio.get_running_loop().create_future()
        conn.responses.put_nowait(future)
        self.metrics.counter("requests").add()
        if request.error is not None:
            self.metrics.counter("protocol_errors").add()
            future.set_result(protocol.encode_error("PROTO", request.error))
            if conn.parser.fatal is not None:
                conn.closing = True
            return
        if self._batched and request.op in protocol.INLINE_OPS:
            # Inline ops answer immediately; flush first so buffered
            # device work is not reordered behind (or invisible to) them.
            self._flush_batch(conn)
        if request.op == "PING":
            future.set_result(protocol.PONG)
            return
        if request.op == "STATS":
            future.set_result(protocol.encode_stats(self.stats()))
            return
        if request.op == "HEALTH":
            health = self.backend.health()
            future.set_result(
                protocol.encode_health(
                    health["state"],
                    health["devices_up"],
                    health["devices"],
                    "open" if self._breaker_open else "closed",
                )
            )
            return
        if request.op == "QUIT":
            future.set_result(protocol.BYE)
            conn.closing = True
            return
        if self._draining:
            # The device worker is (or is about to be) gone: answering
            # here beats stranding a future that nothing will resolve.
            self.metrics.counter("shutdown_rejects").add()
            future.set_result(
                protocol.encode_error("SHUTDOWN", "server draining")
            )
            return
        rejection, probe, shard = self._admit(request, conn)
        if rejection is not None:
            future.set_result(rejection)
            return
        conn.inflight += 1
        if not self._batched:
            self._device_queue.put_nowait((request, future, conn, probe))
            depth = self._device_queue.qsize()
            if depth > self._inflight_peak:
                self._inflight_peak = depth
            return
        self._queued_ops += 1
        self._queued_per_shard[shard] += 1
        if self._queued_ops > self._inflight_peak:
            self._inflight_peak = self._queued_ops
        entry = (request, future, conn, probe, shard)
        if self.settings.dispatch_batch > 1:
            conn.batch.append(entry)
            if len(conn.batch) >= self.settings.dispatch_batch:
                self._flush_batch(conn)
        else:
            # server_qd > 1 with dispatch_batch == 1: no buffering, but
            # the worker still runs the QD-slot model per singleton group.
            self._device_queue.put_nowait([entry])

    async def _connection_writer(self, conn: _Connection) -> None:
        """Write responses strictly in request order; apply TCP backpressure."""
        while True:
            item = await conn.responses.get()
            if item is _CLOSE:
                break
            try:
                payload = await item
            except asyncio.CancelledError:
                break
            conn.writer.write(payload)
            try:
                await conn.writer.drain()
            except ConnectionResetError:
                # The client reset with responses still flowing: whatever
                # it has queued on the device is now work for nobody.
                if not conn.dead:
                    self.metrics.counter("disconnects.abrupt").add()
                    conn.dead = True
                break
        try:
            conn.writer.close()
            await conn.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # --- reporting --------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Server metrics merged with the backend's device snapshot."""
        out = self.metrics.snapshot()
        out["serve.device_free_us"] = self._device_free_us
        out["serve.ewma_service_us"] = self._ewma_service_us
        out["serve.inflight_peak"] = float(self._inflight_peak)
        out["serve.breaker_open"] = 1.0 if self._breaker_open else 0.0
        if self._batched:
            out["serve.queue_depth"] = float(self._queued_ops)
            out["serve.dispatch_batch"] = float(self.settings.dispatch_batch)
            out["serve.server_qd"] = float(self.settings.server_qd)
            out["serve.shards"] = float(len(self._shard_free))
            for i, slots in enumerate(self._shard_free):
                out[f"serve.shard{i}.queue_depth"] = float(
                    self._queued_per_shard[i]
                )
                out[f"serve.shard{i}.free_us"] = min(slots)
        else:
            out["serve.queue_depth"] = float(self._device_queue.qsize())
        out.update(self.backend.snapshot())
        return out
