"""Wire protocol for the KV service: a minimal memcached/RESP-like text
framing with binary-safe value payloads.

Requests are single CRLF-terminated lines; ``SET`` carries a raw value
payload (``<vlen>`` bytes plus a trailing CRLF) after its command line:

    PING
    SET <key> <vlen> [<arrival_us>]\\r\\n<value bytes>\\r\\n
    GET <key> [<arrival_us>]
    DEL <key> [<arrival_us>]
    SCAN <start_key> <limit> [<arrival_us>]
    STATS
    QUIT
    DISPATCH    (response-less batching doorbell; see HINT_OPS)

``<arrival_us>`` is the request's *virtual* arrival timestamp in
microseconds, relative to the session start — the open-loop load
generator stamps it so the server can account queueing delay against the
intended schedule rather than the send time (no coordinated omission).
When omitted the server treats the request as arriving the moment the
device frees up (zero queue wait).

Responses (one per request, in request order per connection):

    PONG
    STORED <latency_us> <service_us>
    VALUE <vlen> <latency_us> <service_us>\\r\\n<value bytes>\\r\\n
    DELETED <latency_us> <service_us>
    NOT_FOUND <latency_us> <service_us>
    RANGE <count> <latency_us> <service_us>\\r\\n then per pair:
        ITEM <key> <vlen>\\r\\n<value bytes>\\r\\n   and finally: END
    STAT <name> <value>\\r\\n ... END
    SERVER_BUSY <projected_wait_us>
    ERR <code> <message>
    BYE

``latency_us`` is queue wait + device service in virtual time;
``service_us`` is the device part alone. Parsing is incremental on both
sides: feed bytes, collect complete messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

MAX_KEY_BYTES = 16
#: Upper bound on a command line; anything longer is a framing error.
MAX_LINE_BYTES = 4096
_CRLF = b"\r\n"

#: Commands the device worker executes (everything else is served inline).
DEVICE_OPS = frozenset({"SET", "GET", "DEL", "SCAN"})
INLINE_OPS = frozenset({"PING", "STATS", "QUIT", "HEALTH"})
#: Response-less client hints (memcached ``noreply`` precedent). ``DISPATCH``
#: is the batching doorbell: a server running with ``dispatch_batch > 1``
#: flushes the connection's buffered device ops to the worker when it sees
#: one. Because the doorbell is a *byte-stream position* (not a wall-clock
#: timer), batch boundaries — and therefore the virtual-time schedule — are
#: deterministic for a fixed request stream. A serial server ignores it.
HINT_OPS = frozenset({"DISPATCH"})

#: Client-side sanity bound on any length header in a *response* (the
#: request side is bounded by the backend's ``max_value_bytes``): a
#: response claiming a longer payload is treated as a framing error
#: instead of making the client buffer unbounded garbage.
MAX_RESPONSE_PAYLOAD_BYTES = 1 << 26


@dataclass
class Request:
    """One parsed client request (or a framing error to answer in order)."""

    op: str
    key: bytes | None = None
    value: bytes | None = None
    limit: int | None = None
    #: Virtual arrival stamp (relative µs), None = "arrive when free".
    arrival_us: float | None = None
    #: Parse/validation failure; the server answers ``ERR`` in order.
    error: str | None = None


def _valid_key(token: bytes) -> bool:
    if not 0 < len(token) <= MAX_KEY_BYTES:
        return False
    # Printable ASCII without space — tokens survive text framing.
    return all(0x21 <= b <= 0x7E for b in token)


def _parse_arrival(token: bytes) -> float:
    value = float(token)
    if value < 0 or value != value or value == float("inf"):
        raise ValueError(f"bad arrival stamp {token!r}")
    return value


class RequestParser:
    """Incremental request de-framer: ``feed(data)`` -> complete requests.

    Framing errors are returned as :class:`Request` objects with ``error``
    set (never raised): the server must answer every request in order, so
    a malformed line produces an in-order ``ERR`` response. Errors that
    desynchronise the stream (oversized line, bad SET header) also set
    :attr:`fatal` — the connection should be closed after responding.
    """

    def __init__(self, max_value_bytes: int = 1 << 20) -> None:
        self.max_value_bytes = max_value_bytes
        self._buf = bytearray()
        #: SET awaiting its payload: (request, vlen).
        self._pending_set: tuple[Request, int] | None = None
        self.fatal: str | None = None

    def feed(self, data: bytes) -> list[Request]:
        """Consume bytes; return every request completed by them."""
        if self.fatal is not None:
            return []
        self._buf.extend(data)
        out: list[Request] = []
        while True:
            if self._pending_set is not None:
                request, vlen = self._pending_set
                if len(self._buf) < vlen + 2:
                    break
                payload = bytes(self._buf[:vlen])
                trailer = bytes(self._buf[vlen:vlen + 2])
                del self._buf[:vlen + 2]
                self._pending_set = None
                if trailer != _CRLF:
                    self.fatal = "value payload not CRLF-terminated"
                    out.append(Request(op="SET", error=self.fatal))
                    return out
                request.value = payload
                out.append(request)
                continue
            nl = self._buf.find(b"\n")
            if nl < 0:
                if len(self._buf) > MAX_LINE_BYTES:
                    self.fatal = "command line too long"
                    out.append(Request(op="?", error=self.fatal))
                return out
            line = bytes(self._buf[:nl]).rstrip(b"\r")
            del self._buf[:nl + 1]
            if not line:
                continue
            request = self._parse_line(line)
            if request is not None:
                out.append(request)
        return out

    def _parse_line(self, line: bytes) -> Request | None:
        tokens = line.split()
        if not tokens:
            # Whitespace-only line: treat like the blank lines ``feed``
            # already skips (it is not re-framable content).
            return None
        op = tokens[0].upper().decode("ascii", "replace")
        if op == "SET":
            if len(tokens) not in (3, 4):
                return Request(op=op, error="SET wants: key vlen [arrival_us]")
            if not _valid_key(tokens[1]):
                return Request(op=op, error="bad key")
            try:
                vlen = int(tokens[2])
                arrival = _parse_arrival(tokens[3]) if len(tokens) == 4 else None
            except ValueError:
                return Request(op=op, error="bad SET header")
            if not 0 <= vlen <= self.max_value_bytes:
                # The payload length can no longer be trusted to re-frame.
                self.fatal = f"value length {vlen} out of range"
                return Request(op=op, error=self.fatal)
            self._pending_set = (
                Request(op=op, key=tokens[1], arrival_us=arrival), vlen,
            )
            return None
        if op in ("GET", "DEL"):
            if len(tokens) not in (2, 3):
                return Request(op=op, error=f"{op} wants: key [arrival_us]")
            if not _valid_key(tokens[1]):
                return Request(op=op, error="bad key")
            try:
                arrival = _parse_arrival(tokens[2]) if len(tokens) == 3 else None
            except ValueError:
                return Request(op=op, error="bad arrival stamp")
            return Request(op=op, key=tokens[1], arrival_us=arrival)
        if op == "SCAN":
            if len(tokens) not in (3, 4):
                return Request(op=op, error="SCAN wants: start_key limit [arrival_us]")
            if not _valid_key(tokens[1]):
                return Request(op=op, error="bad key")
            try:
                limit = int(tokens[2])
                arrival = _parse_arrival(tokens[3]) if len(tokens) == 4 else None
            except ValueError:
                return Request(op=op, error="bad SCAN header")
            if limit <= 0:
                return Request(op=op, error="SCAN limit must be positive")
            return Request(op=op, key=tokens[1], limit=limit, arrival_us=arrival)
        if op in INLINE_OPS or op in HINT_OPS:
            if len(tokens) != 1:
                return Request(op=op, error=f"{op} takes no arguments")
            return Request(op=op)
        return Request(op=op, error=f"unknown command {op!r}")


# --- request encoding (client side) -----------------------------------------


def _stamp(arrival_us: float | None) -> bytes:
    return b"" if arrival_us is None else b" %.3f" % arrival_us


def encode_set_request(
    key: bytes, value: bytes, arrival_us: float | None = None
) -> bytes:
    return b"SET %s %d%s\r\n%s\r\n" % (key, len(value), _stamp(arrival_us), value)


def encode_get_request(key: bytes, arrival_us: float | None = None) -> bytes:
    return b"GET %s%s\r\n" % (key, _stamp(arrival_us))


def encode_del_request(key: bytes, arrival_us: float | None = None) -> bytes:
    return b"DEL %s%s\r\n" % (key, _stamp(arrival_us))


def encode_scan_request(
    start_key: bytes, limit: int, arrival_us: float | None = None
) -> bytes:
    return b"SCAN %s %d%s\r\n" % (start_key, limit, _stamp(arrival_us))


PING_REQUEST = b"PING\r\n"
STATS_REQUEST = b"STATS\r\n"
QUIT_REQUEST = b"QUIT\r\n"
HEALTH_REQUEST = b"HEALTH\r\n"
#: Batching doorbell: response-less, see HINT_OPS above.
DISPATCH_REQUEST = b"DISPATCH\r\n"


# --- response encoding (server side) ---------------------------------------


def encode_stored(latency_us: float, service_us: float) -> bytes:
    return b"STORED %.3f %.3f\r\n" % (latency_us, service_us)


def encode_deleted(latency_us: float, service_us: float) -> bytes:
    return b"DELETED %.3f %.3f\r\n" % (latency_us, service_us)


def encode_not_found(latency_us: float, service_us: float) -> bytes:
    return b"NOT_FOUND %.3f %.3f\r\n" % (latency_us, service_us)


def encode_value(value: bytes, latency_us: float, service_us: float) -> bytes:
    return b"VALUE %d %.3f %.3f\r\n%s\r\n" % (
        len(value), latency_us, service_us, value,
    )


def encode_range(pairs, latency_us: float, service_us: float) -> bytes:
    chunks = [b"RANGE %d %.3f %.3f\r\n" % (len(pairs), latency_us, service_us)]
    for key, value in pairs:
        chunks.append(b"ITEM %s %d\r\n%s\r\n" % (key, len(value), value))
    chunks.append(b"END\r\n")
    return b"".join(chunks)


def encode_stats(snapshot: dict) -> bytes:
    chunks = [
        b"STAT %s %s\r\n" % (name.encode(), repr(value).encode())
        for name, value in sorted(snapshot.items())
    ]
    chunks.append(b"END\r\n")
    return b"".join(chunks)


def encode_busy(projected_wait_us: float) -> bytes:
    return b"SERVER_BUSY %.3f\r\n" % projected_wait_us


def encode_health(
    state: str, devices_up: int, devices: int, breaker: str
) -> bytes:
    """``HEALTH <state> up=<m>/<n> breaker=<closed|open>``."""
    return b"HEALTH %s up=%d/%d breaker=%s\r\n" % (
        state.encode(), devices_up, devices, breaker.encode(),
    )


def encode_error(code: str, message: str) -> bytes:
    return b"ERR %s %s\r\n" % (code.encode(), message.encode())


PONG = b"PONG\r\n"
BYE = b"BYE\r\n"


# --- response parsing (client side) -----------------------------------------


@dataclass
class Response:
    """One parsed server response."""

    kind: str  # STORED/VALUE/DELETED/NOT_FOUND/RANGE/STATS/SERVER_BUSY/ERR/PONG/BYE
    latency_us: float = 0.0
    service_us: float = 0.0
    value: bytes | None = None
    pairs: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    #: SERVER_BUSY projected wait, ERR message.
    detail: str = ""


def _parse_length(token: bytes) -> int:
    """A response length header; raises ValueError outside sane bounds."""
    length = int(token)
    if not 0 <= length <= MAX_RESPONSE_PAYLOAD_BYTES:
        raise ValueError(f"response length {length} out of range")
    return length


class ResponseParser:
    """Incremental client-side response de-framer (mirror of RequestParser).

    Malformed input raises :class:`ValueError` — and only ValueError:
    a server (or a fault injector) feeding garbage, truncated frames or
    absurd length headers must surface as one well-defined client-side
    parse error, never as a stray ``IndexError`` escaping the read loop.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._value_head: Response | None = None  # VALUE awaiting payload
        self._value_len = 0
        self._range_head: Response | None = None  # RANGE collecting ITEMs
        self._range_left = 0
        self._item_key: bytes | None = None
        self._item_len = 0
        self._stats_head: Response | None = None  # STATS collecting STAT lines

    def feed(self, data: bytes) -> list[Response]:
        self._buf.extend(data)
        out: list[Response] = []
        while True:
            try:
                response = self._step()
            except ValueError:
                raise
            except (IndexError, UnicodeDecodeError) as exc:
                raise ValueError(f"malformed response line: {exc}") from exc
            if response is None:
                return out
            out.append(response)

    def _take_payload(self, length: int) -> bytes | None:
        if len(self._buf) < length + 2:
            return None
        payload = bytes(self._buf[:length])
        if bytes(self._buf[length:length + 2]) != _CRLF:
            raise ValueError("payload not CRLF-terminated")
        del self._buf[:length + 2]
        return payload

    def _take_line(self) -> bytes | None:
        nl = self._buf.find(b"\n")
        if nl < 0:
            if len(self._buf) > MAX_LINE_BYTES:
                raise ValueError("response line too long")
            return None
        line = bytes(self._buf[:nl]).rstrip(b"\r")
        del self._buf[:nl + 1]
        return line

    def _step(self) -> Response | None:  # noqa: PLR0911 - protocol dispatch
        if self._value_head is not None:
            payload = self._take_payload(self._value_len)
            if payload is None:
                return None
            response, self._value_head = self._value_head, None
            response.value = payload
            return response
        if self._item_key is not None:
            payload = self._take_payload(self._item_len)
            if payload is None:
                return None
            assert self._range_head is not None
            self._range_head.pairs.append((self._item_key, payload))
            self._item_key = None
            return self._step()
        line = self._take_line()
        if line is None:
            return None
        if not line:
            return self._step()
        tokens = line.split()
        head = tokens[0]
        if self._range_head is not None:
            if head == b"ITEM":
                if self._range_left <= 0:
                    raise ValueError("more ITEM lines than RANGE declared")
                self._item_key = tokens[1]
                self._item_len = _parse_length(tokens[2])
                self._range_left -= 1
                return self._step()
            if head == b"END":
                if self._range_left != 0:
                    raise ValueError("RANGE item count mismatch")
                response, self._range_head = self._range_head, None
                return response
            raise ValueError(f"unexpected line inside RANGE: {line!r}")
        if self._stats_head is not None:
            if head == b"STAT":
                self._stats_head.stats[tokens[1].decode()] = float(tokens[2])
                return self._step()
            if head == b"END":
                response, self._stats_head = self._stats_head, None
                return response
            raise ValueError(f"unexpected line inside STATS: {line!r}")
        if head == b"STORED" or head == b"DELETED" or head == b"NOT_FOUND":
            return Response(
                kind=head.decode(),
                latency_us=float(tokens[1]),
                service_us=float(tokens[2]),
            )
        if head == b"VALUE":
            self._value_len = _parse_length(tokens[1])
            self._value_head = Response(
                kind="VALUE",
                latency_us=float(tokens[2]),
                service_us=float(tokens[3]),
            )
            return self._step()
        if head == b"RANGE":
            self._range_left = _parse_length(tokens[1])
            self._range_head = Response(
                kind="RANGE",
                latency_us=float(tokens[2]),
                service_us=float(tokens[3]),
            )
            return self._step()
        if head == b"STAT":
            self._stats_head = Response(kind="STATS")
            self._stats_head.stats[tokens[1].decode()] = float(tokens[2])
            return self._step()
        if head == b"SERVER_BUSY":
            return Response(kind="SERVER_BUSY", detail=tokens[1].decode())
        if head == b"HEALTH":
            return Response(
                kind="HEALTH", detail=line[7:].decode(errors="replace"),
            )
        if head == b"ERR":
            return Response(kind="ERR", detail=line[4:].decode(errors="replace"))
        if head == b"PONG":
            return Response(kind="PONG")
        if head == b"BYE":
            return Response(kind="BYE")
        if head == b"END":
            # Empty STATS (no metrics yet): END with no STAT lines.
            return Response(kind="STATS")
        raise ValueError(f"unknown response line {line!r}")
