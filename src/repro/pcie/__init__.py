"""PCIe interconnect model: traffic accounting by category plus link timing."""

from repro.pcie.link import PCIeLink, PCIeLinkConfig
from repro.pcie.metrics import TrafficCategory, TrafficMeter, amplification_factor

__all__ = [
    "PCIeLink",
    "PCIeLinkConfig",
    "TrafficCategory",
    "TrafficMeter",
    "amplification_factor",
]
