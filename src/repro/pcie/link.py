"""The simulated PCIe link: the single place protocol bytes and time meet.

Both the driver (host side) and the controller (device side) move data only
through a :class:`PCIeLink`. Each method both *accounts traffic* on the
:class:`~repro.pcie.metrics.TrafficMeter` and *advances the simulated clock*
per the :class:`~repro.sim.latency.LatencyModel`, so neither endpoint can
forget one half of the cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, TransferFaultError
from repro.faults.injector import FaultInjector
from repro.pcie.metrics import TrafficCategory, TrafficMeter
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.units import (
    DOORBELL_WRITE_SIZE,
    NVME_COMMAND_SIZE,
    NVME_COMPLETION_SIZE,
)


@dataclass(frozen=True)
class PCIeLinkConfig:
    """Static link parameters (Table 1: PCIe Gen2 ×8 end-points)."""

    generation: int = 2
    lanes: int = 8
    #: Bytes written per doorbell ring (one 32-bit register store).
    doorbell_bytes: int = DOORBELL_WRITE_SIZE

    def __post_init__(self) -> None:
        if self.generation not in (1, 2, 3, 4, 5):
            raise ConfigError(f"unknown PCIe generation {self.generation}")
        if self.lanes not in (1, 2, 4, 8, 16):
            raise ConfigError(f"invalid lane count {self.lanes}")
        if self.doorbell_bytes <= 0:
            raise ConfigError(f"doorbell_bytes must be positive")

    @property
    def raw_gbps(self) -> float:
        """Nominal raw bandwidth in GB/s (after 8b/10b or 128b/130b coding)."""
        per_lane = {1: 0.25, 2: 0.5, 3: 0.985, 4: 1.969, 5: 3.938}
        return per_lane[self.generation] * self.lanes


class PCIeLink:
    """Models command submission, completion, and page-unit DMA transfers."""

    def __init__(
        self,
        clock: SimClock,
        latency: LatencyModel,
        config: PCIeLinkConfig | None = None,
        injector: FaultInjector | None = None,
        tracer=None,
    ) -> None:
        self.clock = clock
        self.latency = latency
        self.config = config or PCIeLinkConfig()
        self.meter = TrafficMeter()
        self._injector = injector
        #: Optional repro.sim.trace.Tracer; every hook is one None check.
        self._tracer = tracer
        # Per-command fast path: fixed byte sizes and fixed latencies, so
        # resolve the counter pairs and latency sums once.
        self._db_bytes, self._db_txns = self.meter.channel(TrafficCategory.DOORBELL)
        self._sq_bytes, self._sq_txns = self.meter.channel(TrafficCategory.SQ_ENTRY)
        self._cq_bytes, self._cq_txns = self.meter.channel(TrafficCategory.CQ_ENTRY)
        self._h2d_bytes, self._h2d_txns = self.meter.channel(TrafficCategory.DMA_H2D)
        self._d2h_bytes, self._d2h_txns = self.meter.channel(TrafficCategory.DMA_D2H)
        self._doorbell_size = self.config.doorbell_bytes
        self._submit_us = latency.mmio_doorbell_us + latency.sq_fetch_us
        self._complete_us = latency.completion_us
        self._dma_setup_us = latency.dma_setup_us
        self._dma_per_byte_us = latency.dma_per_byte_us

    # --- command plumbing -------------------------------------------------

    def submit_command(self) -> None:
        """Host rings the SQ doorbell; device fetches the 64 B SQE.

        Charged: doorbell MMIO store + SQE fetch over the link.
        Counter increments are inlined (amounts are fixed non-negative
        constants, so ``Counter.add``'s guard buys nothing): this pair of
        methods runs twice per command and dominates protocol accounting.
        """
        self._db_bytes._value += self._doorbell_size
        self._db_txns._value += 1
        self._sq_bytes._value += NVME_COMMAND_SIZE
        self._sq_txns._value += 1
        tracer = self._tracer
        if tracer is None:
            self.clock.advance(self._submit_us)
            return
        t0 = self.clock.now_us
        self.clock.advance(self._submit_us)
        db_end = t0 + self.latency.mmio_doorbell_us
        tracer.span("pcie", "doorbell", t0, db_end, phase="doorbell")
        tracer.span("pcie", "sq_fetch", db_end, self.clock.now_us, phase="sq_fetch")

    def complete_command(self) -> None:
        """Device posts the 16 B CQE; host rings the CQ head doorbell."""
        self._cq_bytes._value += NVME_COMPLETION_SIZE
        self._cq_txns._value += 1
        self._db_bytes._value += self._doorbell_size
        self._db_txns._value += 1
        tracer = self._tracer
        if tracer is None:
            self.clock.advance(self._complete_us)
            return
        t0 = self.clock.now_us
        self.clock.advance(self._complete_us)
        tracer.span("pcie", "completion", t0, self.clock.now_us, phase="completion")

    def submit_commands(self, count: int) -> None:
        """Batched submission: one doorbell ring covers ``count`` SQEs.

        The device still fetches each 64 B entry, but the host-side MMIO
        store and its latency are paid once — the amortization a
        non-passthrough driver gets (paper §4.2 attributes Piggyback's
        large-value penalty to the absence of exactly this).
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.meter.record(TrafficCategory.DOORBELL, self.config.doorbell_bytes)
        for _ in range(count):
            self.meter.record(TrafficCategory.SQ_ENTRY, NVME_COMMAND_SIZE)
        t0 = self.clock.now_us
        self.clock.advance(
            self.latency.mmio_doorbell_us + count * self.latency.sq_fetch_us
        )
        if self._tracer is not None:
            db_end = t0 + self.latency.mmio_doorbell_us
            self._tracer.span("pcie", "doorbell", t0, db_end, phase="doorbell")
            self._tracer.span(
                "pcie", "sq_fetch", db_end, self.clock.now_us,
                phase="sq_fetch", count=count,
            )

    def complete_commands(self, count: int) -> None:
        """Coalesced completion: ``count`` CQEs, one interrupt + doorbell."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        for _ in range(count):
            self.meter.record(TrafficCategory.CQ_ENTRY, NVME_COMPLETION_SIZE)
        self.meter.record(TrafficCategory.DOORBELL, self.config.doorbell_bytes)
        t0 = self.clock.now_us
        self.clock.advance(self.latency.completion_us)
        if self._tracer is not None:
            self._tracer.span(
                "pcie", "completion", t0, self.clock.now_us,
                phase="completion", count=count,
            )

    # --- payload DMA -------------------------------------------------------

    def dma_host_to_device(self, wire_bytes: int) -> None:
        """Page-unit DMA of ``wire_bytes`` (already page-padded) to device.

        The caller passes the *wire* size — for PRP transfers that is the
        page-aligned size, which is exactly the amplification the paper
        measures (§2.4): a 32 B value still moves 4096 B here.
        """
        if wire_bytes < 0:
            raise ValueError(f"wire_bytes must be non-negative, got {wire_bytes}")
        if wire_bytes == 0:
            return
        self._h2d_bytes._value += wire_bytes
        self._h2d_txns._value += 1
        t0 = self.clock.now_us
        self.clock.advance(self._dma_setup_us + wire_bytes * self._dma_per_byte_us)
        if self._tracer is not None:
            self._tracer.span(
                "pcie", "dma_h2d", t0, self.clock.now_us,
                phase="dma", bytes=wire_bytes,
            )
        self._maybe_transfer_fault(wire_bytes, "host-to-device")

    def dma_device_to_host(self, wire_bytes: int) -> None:
        """Page-unit DMA from device DRAM back to host memory (GET path)."""
        if wire_bytes < 0:
            raise ValueError(f"wire_bytes must be non-negative, got {wire_bytes}")
        if wire_bytes == 0:
            return
        self._d2h_bytes._value += wire_bytes
        self._d2h_txns._value += 1
        t0 = self.clock.now_us
        self.clock.advance(self._dma_setup_us + wire_bytes * self._dma_per_byte_us)
        if self._tracer is not None:
            self._tracer.span(
                "pcie", "dma_d2h", t0, self.clock.now_us,
                phase="dma", bytes=wire_bytes,
            )
        self._maybe_transfer_fault(wire_bytes, "device-to-host")

    def _maybe_transfer_fault(self, wire_bytes: int, direction: str) -> None:
        """Transient payload fault: the bytes crossed the wire (traffic and
        time already charged) before the CRC check rejected them."""
        if self._injector is not None and self._injector.transfer_fault():
            raise TransferFaultError(
                f"transient PCIe fault during {wire_bytes}-byte "
                f"{direction} DMA"
            )

    # --- derived -----------------------------------------------------------

    @property
    def per_command_overhead_bytes(self) -> int:
        """Protocol bytes per command submission/completion pair (no DMA)."""
        return (
            NVME_COMMAND_SIZE
            + NVME_COMPLETION_SIZE
            + 2 * self.config.doorbell_bytes
        )

    def reset_metrics(self) -> None:
        self.meter.reset()
