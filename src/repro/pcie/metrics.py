"""Traffic accounting: what the paper measured with Intel PCM, rebuilt.

The paper's PCIe numbers (Figs 3, 8, 9, 10c) are byte totals observed on the
link; the MMIO numbers (Fig 10d) are the doorbell-write subset. We classify
every link transaction into a :class:`TrafficCategory` so both views fall out
of one meter.

Calibration: one NVMe submission moves 64 B (SQE fetch) + 16 B (CQE) + two
4 B doorbell writes = 88 B of protocol traffic. A Baseline PUT adds one
4 KiB page-unit DMA → 4184 B per op. At a 32 B value that is a Traffic
Amplification Factor of 4184/32 ≈ 130 — the paper's Figure 3(b) value — and
a pure-piggyback PUT (88 B) is a 97.9 % reduction — the paper's headline.
"""

from __future__ import annotations

import enum

from repro.sim.stats import MetricSet


class TrafficCategory(enum.Enum):
    """Every byte on the simulated link belongs to exactly one category."""

    #: 64 B submission queue entry, fetched by the device (host→device).
    SQ_ENTRY = "sq_entry"
    #: 16 B completion queue entry, posted by the device (device→host).
    CQ_ENTRY = "cq_entry"
    #: 4 B doorbell register writes (host→device MMIO).
    DOORBELL = "doorbell"
    #: PRP page-unit DMA payload, host→device (PUT values).
    DMA_H2D = "dma_h2d"
    #: PRP page-unit DMA payload, device→host (GET values).
    DMA_D2H = "dma_d2h"

    @property
    def is_mmio(self) -> bool:
        """Doorbell writes are the host-CPU MMIO traffic of Fig 10(d)."""
        return self is TrafficCategory.DOORBELL

    @property
    def host_to_device(self) -> bool:
        return self in (
            TrafficCategory.SQ_ENTRY,
            TrafficCategory.DOORBELL,
            TrafficCategory.DMA_H2D,
        )


class TrafficMeter:
    """Byte and transaction tallies per :class:`TrafficCategory`."""

    __slots__ = ("_metrics", "_channels")

    def __init__(self) -> None:
        self._metrics = MetricSet("pcie")
        # record() sits on the per-command fast path; resolve each category's
        # counter pair once here instead of two dict lookups per transaction.
        self._channels = {
            cat: (
                self._metrics.counter(f"{cat.value}.bytes"),
                self._metrics.counter(f"{cat.value}.transactions"),
            )
            for cat in TrafficCategory
        }

    def record(self, category: TrafficCategory, nbytes: int) -> None:
        """Account one link transaction of ``nbytes`` payload bytes."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        bytes_counter, txn_counter = self._channels[category]
        bytes_counter.add(nbytes)
        txn_counter.add(1)

    def channel(self, category: TrafficCategory):
        """The (bytes, transactions) counter pair for one category.

        Heavy callers (the link's per-command methods) hold these directly
        instead of paying the category lookup on every transaction.
        """
        return self._channels[category]

    def bytes_for(self, category: TrafficCategory) -> int:
        return self._channels[category][0].value

    def transactions_for(self, category: TrafficCategory) -> int:
        return self._channels[category][1].value

    @property
    def total_bytes(self) -> int:
        """All bytes on the link, both directions (Fig 3a / 8 / 10c view)."""
        return sum(self.bytes_for(cat) for cat in TrafficCategory)

    @property
    def host_to_device_bytes(self) -> int:
        return sum(
            self.bytes_for(cat) for cat in TrafficCategory if cat.host_to_device
        )

    @property
    def mmio_bytes(self) -> int:
        """Doorbell-write bytes only — the paper's Fig 10(d) metric."""
        return sum(
            self.bytes_for(cat) for cat in TrafficCategory if cat.is_mmio
        )

    @property
    def payload_bytes(self) -> int:
        """DMA payload in both directions (excludes protocol overhead)."""
        return self.bytes_for(TrafficCategory.DMA_H2D) + self.bytes_for(
            TrafficCategory.DMA_D2H
        )

    def snapshot(self, seed_schema: bool = False) -> dict[str, float]:
        """Per-category tallies plus the paper's derived byte totals.

        ``payload_bytes`` and ``host_to_device_bytes`` are both §2.4 TAF
        inputs; ``seed_schema=True`` omits them to reproduce the frozen
        golden key set (see :meth:`repro.sim.stats.MetricSet.snapshot`).
        """
        out = self._metrics.snapshot(seed_schema=seed_schema)
        out["pcie.total_bytes"] = float(self.total_bytes)
        out["pcie.mmio_bytes"] = float(self.mmio_bytes)
        if not seed_schema:
            out["pcie.payload_bytes"] = float(self.payload_bytes)
            out["pcie.host_to_device_bytes"] = float(self.host_to_device_bytes)
        return out

    def reset(self) -> None:
        self._metrics.reset()


def amplification_factor(link_bytes: int, useful_bytes: int) -> float:
    """Traffic Amplification Factor: link bytes per byte of user data.

    The paper defines TAF as "the ratio of PCIe traffic to the size of the
    requested data" (§2.4). By symmetry the same helper computes WAF from
    NAND-program bytes.
    """
    if useful_bytes <= 0:
        raise ValueError(f"useful_bytes must be positive, got {useful_bytes}")
    if link_bytes < 0:
        raise ValueError(f"link_bytes must be non-negative, got {link_bytes}")
    return link_bytes / useful_bytes
