"""Client-side retry policy: capped exponential backoff with jitter.

``SERVER_BUSY`` is a *retryable* rejection — the server bounced the
request before it touched the device and told the client how far behind
the device is (``SERVER_BUSY <projected_wait_us>``). A well-behaved
client backs off and retries instead of recording the rejection as a
terminal outcome; a misbehaving client hammers. :class:`RetryPolicy`
models the well-behaved one:

* attempt ``k`` (first retry is ``k=1``) waits
  ``base_backoff_us * multiplier**(k-1)`` capped at ``max_backoff_us``,
* the wait is stretched to at least the server's projected-wait hint
  (when ``honor_busy_hint``), so the client never retries into a backlog
  the server already told it about,
* seeded multiplicative jitter (``1 ± jitter``) decorrelates retry
  storms across connections while staying deterministic per seed,
* a per-op deadline bounds total slip: when the retry's arrival stamp
  would land more than ``deadline_us`` past the op's original arrival,
  the client gives up (``deadline_exceeded``), and after
  ``max_attempts`` total attempts it gives up (``gave_up``).

All waiting happens in *virtual* time: a retry is re-sent immediately on
the wire but stamped ``arrival_us = previous arrival + wait`` — the same
open-loop bookkeeping the rest of the harness uses, so retried runs stay
deterministic and free of coordinated omission.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for client-side SERVER_BUSY retry behaviour."""

    #: Total attempts per op including the first (1 = never retry).
    max_attempts: int = 4
    #: Backoff before the first retry (virtual µs).
    base_backoff_us: float = 200.0
    #: Exponential growth factor per retry.
    multiplier: float = 2.0
    #: Cap on any single backoff wait (virtual µs).
    max_backoff_us: float = 50_000.0
    #: Multiplicative jitter: the wait is scaled by ``1 ± jitter``.
    jitter: float = 0.1
    #: Stretch the wait to the server's ``SERVER_BUSY`` projected-wait
    #: hint when the hint is larger than the computed backoff.
    honor_busy_hint: bool = True
    #: Per-op deadline: give up once the retry's arrival stamp would sit
    #: more than this past the op's *original* arrival (<= 0 disables).
    deadline_us: float = 200_000.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff_us < 0 or self.max_backoff_us < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff_us(
        self, attempt: int, hint_us: float, rng: random.Random
    ) -> float:
        """The virtual-time wait before retry number ``attempt`` (1-based).

        ``hint_us`` is the server's projected-wait payload from the
        ``SERVER_BUSY`` response (0 when absent/unparseable).
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        wait = min(
            self.base_backoff_us * self.multiplier ** (attempt - 1),
            self.max_backoff_us,
        )
        if self.honor_busy_hint and hint_us > wait:
            wait = hint_us
        if self.jitter:
            wait *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return wait
