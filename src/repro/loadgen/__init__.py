"""Open-loop load generation for the networked KV service.

Unlike the repo's closed-loop benchmarks (next request issued when the
previous completes — which silently throttles to whatever the device can
absorb), this package schedules requests on an *arrival process* at a
target RPS: Poisson or bursty ON/OFF, in virtual microseconds. Every
request carries its intended arrival stamp, so queueing delay during
overload is charged in full — the coordinated-omission trap closed-loop
harnesses fall into cannot occur (see ``docs/serving.md``).
"""

from repro.loadgen.arrivals import onoff_arrivals, poisson_arrivals
from repro.loadgen.ops import LoadOp, generate_ops
from repro.loadgen.runner import (
    LoadtestReport,
    detect_knee,
    run_loadtest,
    run_rps_sweep,
)

__all__ = [
    "LoadOp",
    "LoadtestReport",
    "detect_knee",
    "generate_ops",
    "onoff_arrivals",
    "poisson_arrivals",
    "run_loadtest",
    "run_rps_sweep",
]
