"""Open-loop load generation for the networked KV service.

Unlike the repo's closed-loop benchmarks (next request issued when the
previous completes — which silently throttles to whatever the device can
absorb), this package schedules requests on an *arrival process* at a
target RPS: Poisson or bursty ON/OFF, in virtual microseconds. Every
request carries its intended arrival stamp, so queueing delay during
overload is charged in full — the coordinated-omission trap closed-loop
harnesses fall into cannot occur (see ``docs/serving.md``).

``SERVER_BUSY`` rejections can be retried with a seeded
:class:`~repro.loadgen.retry.RetryPolicy` (capped exponential backoff +
jitter honoring the server's projected-wait hint); retry slip is charged
in virtual time and give-ups still count as rejections for knee
detection (see ``docs/chaos.md``).
"""

from repro.loadgen.arrivals import onoff_arrivals, poisson_arrivals
from repro.loadgen.client import ClientRunResult, OpOutcome, run_client
from repro.loadgen.ops import LoadOp, generate_ops
from repro.loadgen.retry import RetryPolicy
from repro.loadgen.runner import (
    REPORT_SCHEMA,
    LoadtestReport,
    detect_knee,
    run_loadtest,
    run_rps_sweep,
)

__all__ = [
    "REPORT_SCHEMA",
    "ClientRunResult",
    "LoadOp",
    "LoadtestReport",
    "OpOutcome",
    "RetryPolicy",
    "detect_knee",
    "generate_ops",
    "onoff_arrivals",
    "poisson_arrivals",
    "run_client",
    "run_loadtest",
    "run_rps_sweep",
]
