"""Deterministic request-mix generation for the load harness.

Keys are drawn uniformly from a fixed keyspace (``k<index>`` — printable,
<= 16 bytes, so they survive the text protocol); values are seeded random
bytes. GETs only ever target the preloaded keyspace, so a fresh store
preloaded with ``num_keys`` values serves every read.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class LoadOp:
    """One generated client operation."""

    kind: str  # "SET" | "GET" | "DEL"
    key: bytes
    value: bytes | None = None


def key_for(index: int) -> bytes:
    return b"k%010d" % index


def generate_ops(
    count: int,
    num_keys: int = 2000,
    value_size: int = 256,
    read_fraction: float = 0.5,
    delete_fraction: float = 0.0,
    seed: int = 0,
) -> list[LoadOp]:
    """A seeded SET/GET/DEL mix over the ``num_keys`` keyspace.

    Deletes immediately re-SET the same key later with probability 1 (the
    keyspace stays fully populated on average): a DEL is emitted, and the
    next time the key is drawn for a GET it may legitimately be missing —
    the harness counts NOT_FOUND separately from errors.
    """
    if num_keys <= 0:
        raise ValueError("num_keys must be positive")
    if not 0 <= read_fraction <= 1 or not 0 <= delete_fraction <= 1:
        raise ValueError("fractions must be within [0, 1]")
    if read_fraction + delete_fraction > 1:
        raise ValueError("read_fraction + delete_fraction must be <= 1")
    rng = random.Random(seed)
    ops: list[LoadOp] = []
    for _ in range(count):
        draw = rng.random()
        index = rng.randrange(num_keys)
        if draw < read_fraction:
            ops.append(LoadOp(kind="GET", key=key_for(index)))
        elif draw < read_fraction + delete_fraction:
            ops.append(LoadOp(kind="DEL", key=key_for(index)))
        else:
            ops.append(
                LoadOp(
                    kind="SET",
                    key=key_for(index),
                    value=rng.randbytes(value_size),
                )
            )
    return ops


def preload_values(num_keys: int, value_size: int, seed: int = 0):
    """Yield the (key, value) pairs the store is seeded with pre-test."""
    rng = random.Random(seed ^ 0x5EED)
    for index in range(num_keys):
        yield key_for(index), rng.randbytes(value_size)
