"""Arrival processes: when each request *should* hit the server.

All times are virtual microseconds relative to the session start. The
generator commits to the schedule up front (open loop) — completions
never influence arrivals, which is what makes the measured latency
distribution honest under overload.
"""

from __future__ import annotations

import random


def poisson_arrivals(rps: float, count: int, seed: int = 0) -> list[float]:
    """``count`` Poisson arrivals at mean rate ``rps`` (exp interarrivals)."""
    if rps <= 0:
        raise ValueError(f"rps must be positive, got {rps}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = random.Random(seed)
    rate_per_us = rps / 1e6
    now = 0.0
    out = []
    for _ in range(count):
        now += rng.expovariate(rate_per_us)
        out.append(now)
    return out


def onoff_arrivals(
    rps: float,
    count: int,
    seed: int = 0,
    on_us: float = 50_000.0,
    off_us: float = 50_000.0,
) -> list[float]:
    """Bursty ON/OFF arrivals with mean rate ``rps``.

    The source alternates between exponentially distributed ON and OFF
    periods (means ``on_us``/``off_us``). During ON it emits Poisson
    arrivals at the *peak* rate ``rps * (on + off) / on``, so the duty
    cycle brings the long-run average back to ``rps`` — same offered
    load as :func:`poisson_arrivals`, far nastier queueing.
    """
    if rps <= 0:
        raise ValueError(f"rps must be positive, got {rps}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if on_us <= 0 or off_us < 0:
        raise ValueError("need on_us > 0 and off_us >= 0")
    rng = random.Random(seed)
    peak_rate_per_us = (rps / 1e6) * (on_us + off_us) / on_us
    out: list[float] = []
    now = 0.0
    while len(out) < count:
        burst_end = now + rng.expovariate(1.0 / on_us)
        while len(out) < count:
            now += rng.expovariate(peak_rate_per_us)
            if now > burst_end:
                now = burst_end
                break
            out.append(now)
        now += rng.expovariate(1.0 / off_us) if off_us else 0.0
    return out


ARRIVAL_PROCESSES = {
    "poisson": poisson_arrivals,
    "onoff": onoff_arrivals,
}
