"""Loadtest orchestration: server boot, preload, run, aggregate, sweep.

The headline artefact is the offered-RPS sweep: p50/p99/p999 latency (in
virtual µs) against offered load, with the saturation knee detected from
the curve. Because both the arrival schedule and the device model are
deterministic at a fixed seed (single connection), two runs of the same
sweep produce identical tables — the curves are reviewable diffs, not
noisy measurements.

Report schema history:

* 1 — PR 8: completed/busy_rejected/errors + percentile columns.
* 2 — retry accounting: ``retries`` (re-sends after SERVER_BUSY),
  ``gave_up`` (attempts exhausted) and ``deadline_exceeded`` (retry
  would slip past the per-op deadline) columns; give-ups count as
  rejections for knee detection so retrying clients cannot mask the
  saturation knee. The batched dispatch path (``dispatch_batch`` /
  ``server_qd``) added no row fields, so the row schema stays 2; the
  latency-under-load *bench* bumped its own top-level schema to 3 when
  it grew batched sweeps (see ``benchmarks/bench_latency_under_load.py``).
"""

from __future__ import annotations

import asyncio
from dataclasses import asdict, dataclass, field

from repro.loadgen.arrivals import ARRIVAL_PROCESSES
from repro.loadgen.client import run_client
from repro.loadgen.ops import generate_ops, preload_values
from repro.loadgen.retry import RetryPolicy
from repro.serve.backend import StoreBackend
from repro.serve.server import LATENCY_EDGES, KVServer, ServerSettings
from repro.sim.stats import Histogram

#: Bump when LoadtestReport rows gain/lose/change fields.
REPORT_SCHEMA = 2

#: Response kinds that mean the device actually served the request.
_COMPLETED_KINDS = frozenset({"STORED", "VALUE", "DELETED", "NOT_FOUND"})


@dataclass
class LoadtestReport:
    """Aggregated outcome of one open-loop run at one offered rate."""

    preset: str
    process: str
    offered_rps: float
    requests: int
    conns: int
    seed: int
    completed: int = 0
    busy_rejected: int = 0
    not_found: int = 0
    errors: int = 0
    protocol_errors: int = 0
    #: Total SERVER_BUSY re-sends across all ops (0 without a policy).
    retries: int = 0
    #: Ops that exhausted ``RetryPolicy.max_attempts``.
    gave_up: int = 0
    #: Ops whose next retry would have slipped past the per-op deadline.
    deadline_exceeded: int = 0
    achieved_rps: float = 0.0
    span_us: float = 0.0
    p50_us: float = 0.0
    p99_us: float = 0.0
    p999_us: float = 0.0
    max_us: float = 0.0
    server_stats: dict = field(default_factory=dict)

    @property
    def rejected(self) -> int:
        """Terminal rejections: busy bounces plus retry give-ups."""
        return self.busy_rejected + self.gave_up + self.deadline_exceeded

    def to_dict(self) -> dict:
        return asdict(self)


def _aggregate(
    report: LoadtestReport, outcomes, parse_errors: int
) -> LoadtestReport:
    hist = Histogram("loadgen.latency_us", LATENCY_EDGES)
    span_us = 0.0
    for outcome in outcomes:
        report.retries += outcome.retries
        if outcome.kind == "SERVER_BUSY":
            report.busy_rejected += 1
            continue
        if outcome.kind == "GAVE_UP":
            report.gave_up += 1
            continue
        if outcome.kind == "DEADLINE_EXCEEDED":
            report.deadline_exceeded += 1
            continue
        if outcome.kind == "ERR":
            report.errors += 1
            if outcome.detail.startswith("PROTO"):
                report.protocol_errors += 1
            continue
        if outcome.kind not in _COMPLETED_KINDS:
            report.errors += 1
            continue
        if outcome.kind == "NOT_FOUND":
            report.not_found += 1
        report.completed += 1
        hist.record(outcome.latency_us)
        finish = outcome.arrival_us + outcome.latency_us
        if finish > span_us:
            span_us = finish
    report.protocol_errors += parse_errors
    report.span_us = round(span_us, 3)
    if hist.count:
        report.p50_us = round(hist.percentile(50.0), 3)
        report.p99_us = round(hist.percentile(99.0), 3)
        report.p999_us = round(hist.percentile(99.9), 3)
        report.max_us = round(hist.max, 3)
    if span_us > 0:
        report.achieved_rps = round(report.completed / (span_us / 1e6), 3)
    return report


def run_loadtest(
    preset: str = "backfill",
    *,
    rps: float = 5000.0,
    requests: int = 2000,
    conns: int = 1,
    process: str = "poisson",
    seed: int = 0,
    num_keys: int = 500,
    value_size: int = 256,
    read_fraction: float = 0.5,
    delete_fraction: float = 0.0,
    window: int = 64,
    array_shards: int = 1,
    settings: ServerSettings | None = None,
    retry: RetryPolicy | None = None,
    include_server_stats: bool = False,
    profile: dict | None = None,
) -> LoadtestReport:
    """Boot an in-process server, preload, run one open-loop burst.

    When ``settings`` enables batched dispatch (``dispatch_batch > 1``),
    the client rings the server's doorbell every
    ``min(dispatch_batch, window)`` ops, so server-side batch boundaries
    track the configured batch size without ever deadlocking the send
    window. ``profile`` (a dict) turns on cProfile around the run and is
    filled with the hottest functions (see :func:`_profile_top`).
    """
    try:
        arrival_fn = ARRIVAL_PROCESSES[process]
    except KeyError:
        raise ValueError(
            f"unknown arrival process {process!r}; "
            f"choose from {sorted(ARRIVAL_PROCESSES)}"
        ) from None
    ops = generate_ops(
        requests,
        num_keys=num_keys,
        value_size=value_size,
        read_fraction=read_fraction,
        delete_fraction=delete_fraction,
        seed=seed,
    )
    arrivals = arrival_fn(rps, requests, seed=seed + 1)
    server_settings = settings or ServerSettings()
    if server_settings.dispatch_batch > 1:
        dispatch_every = min(server_settings.dispatch_batch, window)
    else:
        dispatch_every = 0
    report = LoadtestReport(
        preset=preset,
        process=process,
        offered_rps=rps,
        requests=requests,
        conns=conns,
        seed=seed,
    )

    async def _run() -> None:
        backend = StoreBackend.build(preset, array_shards=array_shards)
        for key, value in preload_values(num_keys, value_size, seed=seed):
            backend.store.put(key, value)
        server = KVServer(backend, server_settings)
        host, port = await server.start()
        try:
            result = await run_client(
                host, port, ops, arrivals, conns=conns, window=window,
                retry=retry, seed=seed + 2, dispatch_every=dispatch_every,
            )
        finally:
            await server.stop()
        _aggregate(report, result.outcomes, result.parse_errors)
        if include_server_stats:
            report.server_stats = {
                name: value
                for name, value in server.stats().items()
                if name.startswith("serve.")
            }

    if profile is None:
        asyncio.run(_run())
    else:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            asyncio.run(_run())
        finally:
            profiler.disable()
        profile.update(_profile_top(profiler))
    return report


def _profile_top(profiler, limit: int = 20) -> dict:
    """The hottest functions of a cProfile run, as plain JSON rows.

    Sorted by cumulative time; wall-clock numbers, so only meaningful
    with profiling explicitly requested (never part of deterministic
    artefacts).
    """
    import pstats

    stats = pstats.Stats(profiler)
    total = round(getattr(stats, "total_tt", 0.0), 6)
    rows = []
    entries = sorted(
        stats.stats.items(), key=lambda item: item[1][3], reverse=True
    )
    for (filename, lineno, name), info in entries[:limit]:
        _, ncalls, tottime, cumtime, _ = info
        rows.append(
            {
                "function": f"{filename}:{lineno}({name})",
                "ncalls": ncalls,
                "tottime_s": round(tottime, 6),
                "cumtime_s": round(cumtime, 6),
            }
        )
    return {"total_time_s": total, "top": rows}


def detect_knee(
    rows: list[LoadtestReport],
    *,
    p99_factor: float = 5.0,
    busy_fraction: float = 0.05,
    achieved_ratio: float = 0.9,
) -> float | None:
    """First offered RPS where the service visibly saturates.

    Saturation = any of: p99 blows past ``p99_factor`` x the lowest-rate
    p99, more than ``busy_fraction`` of requests terminally rejected —
    ``SERVER_BUSY`` bounces *plus* retry give-ups and deadline misses,
    so a retrying client cannot mask the knee — or achieved throughput
    fell below ``achieved_ratio`` of offered.
    """
    if not rows:
        return None
    ordered = sorted(rows, key=lambda row: row.offered_rps)
    base_p99 = next(
        (row.p99_us for row in ordered if row.p99_us > 0), 0.0
    )
    for row in ordered:
        if base_p99 and row.p99_us > p99_factor * base_p99:
            return row.offered_rps
        if row.requests and row.rejected / row.requests > busy_fraction:
            return row.offered_rps
        if row.achieved_rps < achieved_ratio * row.offered_rps:
            return row.offered_rps
    return None


def run_rps_sweep(
    rps_points: list[float],
    preset: str = "backfill",
    **loadtest_kwargs,
) -> dict:
    """Run :func:`run_loadtest` at each offered rate; detect the knee."""
    rows = [
        run_loadtest(preset, rps=rps, **loadtest_kwargs)
        for rps in sorted(rps_points)
    ]
    return {
        "schema": REPORT_SCHEMA,
        "preset": preset,
        "rows": [row.to_dict() for row in rows],
        "knee_rps": detect_knee(rows),
    }
