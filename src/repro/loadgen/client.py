"""Pipelined asyncio client for the KV service.

Operations are assigned round-robin across ``conns`` connections; each
connection pipelines its share with a bounded send window (sent but
unanswered requests). The window only shapes *real-time* flow control —
every request carries its virtual arrival stamp from the open-loop
schedule, so the measured latency distribution is independent of how
fast the client machine happens to push bytes.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field

from repro.loadgen.ops import LoadOp
from repro.serve import protocol


@dataclass
class OpOutcome:
    """One completed request, in the coordinate system of the schedule."""

    kind: str  # response kind: STORED/VALUE/DELETED/NOT_FOUND/SERVER_BUSY/ERR
    arrival_us: float
    latency_us: float
    detail: str = ""


@dataclass
class ClientRunResult:
    """Everything the load run observed, before aggregation."""

    outcomes: list[OpOutcome] = field(default_factory=list)
    #: Client-side framing failures (should always be zero).
    parse_errors: int = 0


def _encode(op: LoadOp, arrival_us: float) -> bytes:
    if op.kind == "SET":
        return protocol.encode_set_request(op.key, op.value, arrival_us)
    if op.kind == "GET":
        return protocol.encode_get_request(op.key, arrival_us)
    if op.kind == "DEL":
        return protocol.encode_del_request(op.key, arrival_us)
    raise ValueError(f"unsupported op kind {op.kind!r}")


async def _run_connection(
    host: str,
    port: int,
    schedule: list[tuple[LoadOp, float]],
    window: int,
    result: ClientRunResult,
) -> None:
    """Drive one connection through its slice of the schedule."""
    reader, writer = await asyncio.open_connection(host, port)
    parser = protocol.ResponseParser()
    pending: deque[float] = deque()  # arrival stamps, send order
    slots = asyncio.Semaphore(window)
    received = 0
    expected = len(schedule)

    async def read_loop() -> None:
        nonlocal received
        while received < expected:
            data = await reader.read(1 << 16)
            if not data:
                raise ConnectionResetError("server closed mid-run")
            try:
                responses = parser.feed(data)
            except ValueError:
                result.parse_errors += 1
                raise
            for response in responses:
                arrival = pending.popleft()
                result.outcomes.append(
                    OpOutcome(
                        kind=response.kind,
                        arrival_us=arrival,
                        latency_us=response.latency_us,
                        detail=response.detail,
                    )
                )
                received += 1
                slots.release()

    read_task = asyncio.get_running_loop().create_task(read_loop())
    try:
        for op, arrival in schedule:
            await slots.acquire()
            pending.append(arrival)
            writer.write(_encode(op, arrival))
            await writer.drain()
        await read_task
    finally:
        if not read_task.done():
            read_task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def run_client(
    host: str,
    port: int,
    ops: list[LoadOp],
    arrivals: list[float],
    conns: int = 1,
    window: int = 64,
) -> ClientRunResult:
    """Send ``ops`` on the ``arrivals`` schedule over ``conns`` connections."""
    if len(ops) != len(arrivals):
        raise ValueError("ops and arrivals must be the same length")
    if conns <= 0 or window <= 0:
        raise ValueError("conns and window must be positive")
    schedules: list[list[tuple[LoadOp, float]]] = [[] for _ in range(conns)]
    for index, (op, arrival) in enumerate(zip(ops, arrivals)):
        schedules[index % conns].append((op, arrival))
    result = ClientRunResult()
    await asyncio.gather(
        *(
            _run_connection(host, port, schedule, window, result)
            for schedule in schedules
            if schedule
        )
    )
    return result
