"""Pipelined asyncio client for the KV service.

Operations are assigned round-robin across ``conns`` connections; each
connection pipelines its share with a bounded send window (sent but
unanswered requests). The window only shapes *real-time* flow control —
every request carries its virtual arrival stamp from the open-loop
schedule, so the measured latency distribution is independent of how
fast the client machine happens to push bytes.

With a :class:`~repro.loadgen.retry.RetryPolicy`, ``SERVER_BUSY``
rejections are retried with capped exponential backoff: the retry is
re-sent immediately on the wire but stamped ``arrival_us = previous
arrival + backoff`` so the wait is charged in *virtual* time, and the
terminal outcome's latency includes the full retry slip (measured from
the op's original scheduled arrival). An op that exhausts its attempts
is recorded as ``GAVE_UP``; one whose next retry would slip past the
per-op deadline as ``DEADLINE_EXCEEDED``.
"""

from __future__ import annotations

import asyncio
import random
from collections import deque
from dataclasses import dataclass, field

from repro.loadgen.ops import LoadOp
from repro.loadgen.retry import RetryPolicy
from repro.serve import protocol


@dataclass
class OpOutcome:
    """One completed request, in the coordinate system of the schedule.

    ``kind`` is the terminal response kind (STORED/VALUE/DELETED/
    NOT_FOUND/SERVER_BUSY/ERR) or a client-side terminal verdict when a
    retry policy is active: ``GAVE_UP`` (attempts exhausted) or
    ``DEADLINE_EXCEEDED`` (next retry would slip past the deadline).
    ``latency_us`` is measured from the op's *original* scheduled
    arrival, so backoff waits are charged in full.
    """

    kind: str
    arrival_us: float
    latency_us: float
    detail: str = ""
    #: Schedule index of the op (global, pre round-robin split).
    op_index: int = -1
    #: How many times this op was re-sent after SERVER_BUSY.
    retries: int = 0


@dataclass
class ClientRunResult:
    """Everything the load run observed, before aggregation."""

    outcomes: list[OpOutcome] = field(default_factory=list)
    #: Client-side framing failures (should always be zero).
    parse_errors: int = 0


@dataclass
class _Pending:
    """One in-flight request awaiting its response."""

    op: LoadOp
    op_index: int
    #: Arrival stamp of the *current* attempt.
    arrival_us: float
    #: Arrival stamp of the first attempt (latency is measured from here).
    first_arrival_us: float
    #: Attempts made so far (1 = the original send).
    attempt: int = 1


def _encode(op: LoadOp, arrival_us: float) -> bytes:
    if op.kind == "SET":
        return protocol.encode_set_request(op.key, op.value, arrival_us)
    if op.kind == "GET":
        return protocol.encode_get_request(op.key, arrival_us)
    if op.kind == "DEL":
        return protocol.encode_del_request(op.key, arrival_us)
    raise ValueError(f"unsupported op kind {op.kind!r}")


def _busy_hint_us(detail: str) -> float:
    try:
        hint = float(detail)
    except ValueError:
        return 0.0
    return hint if hint > 0 else 0.0


async def _run_connection(
    host: str,
    port: int,
    schedule: list[tuple[LoadOp, int, float]],
    window: int,
    result: ClientRunResult,
    retry: RetryPolicy | None,
    rng: random.Random,
    dispatch_every: int = 0,
) -> None:
    """Drive one connection through its slice of the schedule.

    ``dispatch_every > 0`` rings the server's ``DISPATCH`` doorbell after
    every that-many ops, after the last scheduled op, and after every
    retry re-send — so a batching server never sits on buffered ops the
    client is waiting out. Callers clamp it to the send window: at most
    ``dispatch_every - 1`` ops can be buffered server-side, so a full
    window always has at least one flushed (answerable) request.
    """
    reader, writer = await asyncio.open_connection(host, port)
    parser = protocol.ResponseParser()
    pending: deque[_Pending] = deque()  # send order == response order
    slots = asyncio.Semaphore(window)
    finished = 0
    expected = len(schedule)
    since_doorbell = 0

    def _doorbell() -> None:
        nonlocal since_doorbell
        writer.write(protocol.DISPATCH_REQUEST)
        since_doorbell = 0

    def _terminal(pend: _Pending, kind: str, latency_us: float,
                  detail: str = "") -> None:
        nonlocal finished
        result.outcomes.append(
            OpOutcome(
                kind=kind,
                arrival_us=pend.first_arrival_us,
                latency_us=latency_us,
                detail=detail,
                op_index=pend.op_index,
                retries=pend.attempt - 1,
            )
        )
        finished += 1
        slots.release()

    def _handle(pend: _Pending, response: protocol.Response) -> None:
        #: Virtual time already burned waiting between attempts.
        slip = pend.arrival_us - pend.first_arrival_us
        if response.kind != "SERVER_BUSY" or retry is None:
            _terminal(pend, response.kind, slip + response.latency_us,
                      response.detail)
            return
        if pend.attempt >= retry.max_attempts:
            _terminal(pend, "GAVE_UP", slip, response.detail)
            return
        wait = retry.backoff_us(
            pend.attempt, _busy_hint_us(response.detail), rng
        )
        next_arrival = pend.arrival_us + wait
        if (retry.deadline_us > 0
                and next_arrival - pend.first_arrival_us > retry.deadline_us):
            _terminal(pend, "DEADLINE_EXCEEDED", slip, response.detail)
            return
        pend.arrival_us = next_arrival
        pend.attempt += 1
        # Re-send at the back of the pipeline (no await between append
        # and write: pending order must match bytes-on-the-wire order).
        pending.append(pend)
        writer.write(_encode(pend.op, pend.arrival_us))
        if dispatch_every > 0:
            # A retried op must never sit buffered: by now it may be the
            # only op left, with no later sends to ring the doorbell.
            _doorbell()

    async def read_loop() -> None:
        while finished < expected:
            data = await reader.read(1 << 16)
            if not data:
                raise ConnectionResetError("server closed mid-run")
            try:
                responses = parser.feed(data)
            except ValueError:
                result.parse_errors += 1
                raise
            for response in responses:
                _handle(pending.popleft(), response)

    read_task = asyncio.get_running_loop().create_task(read_loop())
    try:
        for op, op_index, arrival in schedule:
            await slots.acquire()
            pend = _Pending(
                op=op, op_index=op_index,
                arrival_us=arrival, first_arrival_us=arrival,
            )
            pending.append(pend)
            writer.write(_encode(op, arrival))
            if dispatch_every > 0:
                since_doorbell += 1
                if since_doorbell >= dispatch_every:
                    _doorbell()
            await writer.drain()
        if dispatch_every > 0 and since_doorbell > 0:
            _doorbell()
            await writer.drain()
        await read_task
    finally:
        if not read_task.done():
            read_task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def run_client(
    host: str,
    port: int,
    ops: list[LoadOp],
    arrivals: list[float],
    conns: int = 1,
    window: int = 64,
    retry: RetryPolicy | None = None,
    seed: int = 0,
    dispatch_every: int = 0,
) -> ClientRunResult:
    """Send ``ops`` on the ``arrivals`` schedule over ``conns`` connections.

    ``retry`` enables SERVER_BUSY retry with backoff; ``seed`` feeds the
    per-connection jitter RNGs (ignored without a policy).
    ``dispatch_every > 0`` rings the batching server's doorbell every
    that-many ops per connection (clamped to ``window`` to keep the
    pipeline deadlock-free); 0 sends no doorbells (serial servers).
    """
    if len(ops) != len(arrivals):
        raise ValueError("ops and arrivals must be the same length")
    if conns <= 0 or window <= 0:
        raise ValueError("conns and window must be positive")
    if dispatch_every < 0:
        raise ValueError("dispatch_every must be >= 0")
    dispatch_every = min(dispatch_every, window)
    schedules: list[list[tuple[LoadOp, int, float]]] = [[] for _ in range(conns)]
    for index, (op, arrival) in enumerate(zip(ops, arrivals)):
        schedules[index % conns].append((op, index, arrival))
    result = ClientRunResult()
    await asyncio.gather(
        *(
            _run_connection(
                host, port, schedule, window, result, retry,
                random.Random(seed + offset), dispatch_every,
            )
            for offset, schedule in enumerate(schedules)
            if schedule
        )
    )
    return result
