"""Replica value envelope: the op-seq header read-repair compares.

Every value the array stores on a device is wrapped in a small header
carrying the array-wide operation sequence number that wrote it plus a
flag byte. The header is what makes replica divergence *decidable*: two
replicas returning different bytes for one key are ordered by ``seq``,
the larger one wins, and read-repair rewrites the loser — no vector
clocks needed because the array router is a single writer.

Deletes are stored as *tombstones* (header with the tombstone flag and an
empty payload) rather than device-level deletes, so a replica that missed
a delete can still lose the comparison against it.

Layout: ``<u64 seq, u8 flags>`` little-endian, then the raw payload.
"""

from __future__ import annotations

import struct

from repro.errors import ArrayError

_HEADER = struct.Struct("<QB")

#: Bytes the envelope adds to every stored value.
HEADER_BYTES = _HEADER.size

#: Flag bit: this entry is a delete marker, not a value.
FLAG_TOMBSTONE = 0x01


def encode_value(seq: int, payload: bytes, tombstone: bool = False) -> bytes:
    """Wrap ``payload`` with its op-seq header (tombstones carry none)."""
    if seq < 0:
        raise ArrayError(f"op seq must be >= 0, got {seq}")
    flags = FLAG_TOMBSTONE if tombstone else 0
    return _HEADER.pack(seq, flags) + (b"" if tombstone else payload)


def decode_value(blob: bytes) -> tuple[int, bool, bytes]:
    """``(seq, tombstone, payload)`` of one stored replica blob."""
    if len(blob) < HEADER_BYTES:
        raise ArrayError(
            f"replica blob of {len(blob)} bytes is shorter than the "
            f"{HEADER_BYTES}-byte envelope header"
        )
    seq, flags = _HEADER.unpack_from(blob)
    return seq, bool(flags & FLAG_TOMBSTONE), blob[HEADER_BYTES:]
