"""Deterministic array fault scenarios + the array durability oracle.

:func:`run_device_loss` is the PR's acceptance scenario: seeded mixed
traffic against an R-way replicated array, one device dies mid-burst
(scripted power cut or fail-stop), traffic continues degraded, a
replacement is rebuilt under live load, and at the end a crashcheck-style
oracle verifies:

* **No acked write lost** — every acknowledged PUT/DELETE is readable
  (reflecting its value or its deletion) from the array.
* **Reads succeed throughout** — no read ever failed outright while
  degraded (replication covered the dead device).
* **Acked ⇒ durable on ≥ quorum replicas** — after rebuild + scrub, every
  key's surviving version sits identically on all of its healthy ring
  replicas (no stale replica survives read-repair) and on at least
  ``write_quorum`` of them, and that version is one the oracle allows:
  the last acked write, or a *newer* quorum-failed residue (a write that
  raised :class:`~repro.errors.QuorumError` may legitimately survive on a
  minority and spread — Dynamo semantics, "not acked" ≠ "guaranteed
  absent").

Determinism: traffic comes from one ``random.Random(seed)``; device
placement from the SHA-1 ring; power cuts from a scripted timestamp
learned by dry-running an identical plan-free array (same config, same
traffic) and reading the victim's clock at the kill op. Two runs with the
same arguments produce identical reports.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.array.codec import decode_value
from repro.array.store import ArrayStore, iter_device_keys
from repro.core.config import BandSlimConfig
from repro.errors import (
    ArrayError,
    ConfigError,
    KeyNotFoundError,
    QuorumError,
)
from repro.faults.plan import FaultPlan

#: Value-size mix for scenario traffic: the paper's small-value-heavy
#: shape (§4.1 uses 8 B – 4 KiB) so packing and piggybacking both engage.
_SIZE_BUCKETS = (16, 64, 91, 256, 1024, 3072)

_TOMBSTONE = object()  # oracle marker: last acked op deleted the key


@dataclass
class ScenarioReport:
    """Everything a scenario run measured plus its oracle verdict."""

    name: str
    ops: int
    shards: int
    replication: int
    write_quorum: int
    seed: int
    kill_mode: str
    victim: int
    kill_at: int
    rebuild_at: int
    remount: bool
    acked_puts: int = 0
    acked_deletes: int = 0
    quorum_failures: int = 0
    reads: int = 0
    failovers: int = 0
    read_repairs: int = 0
    repaired_replicas: int = 0
    scrub_repairs: int = 0
    rebuild_copied: int = 0
    rebuild_skipped: int = 0
    rebuild_unrecoverable: int = 0
    put_p50_us: float = 0.0
    put_p99_us: float = 0.0
    get_p50_us: float = 0.0
    get_p99_us: float = 0.0
    now_us: float = 0.0
    keys_checked: int = 0
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json_obj(self) -> dict:
        out = asdict(self)
        out["ok"] = self.ok
        return out


class _Oracle:
    """Tracks what the array *promised* so the end state can be judged."""

    def __init__(self) -> None:
        #: key -> payload of the last *acked* write (_TOMBSTONE for deletes).
        self.acked: dict[bytes, object] = {}
        self.acked_seq: dict[bytes, int] = {}
        #: key -> {seq: payload} of quorum-failed writes newer than the
        #: last ack — versions that may legitimately surface later.
        self.residue: dict[bytes, dict[int, object]] = {}

    def ack(self, key: bytes, seq: int, payload) -> None:
        self.acked[key] = payload
        self.acked_seq[key] = seq
        # Older residues can never win a seq comparison again.
        residues = self.residue.get(key)
        if residues:
            for old in [s for s in residues if s <= seq]:
                del residues[old]
            if not residues:
                del self.residue[key]

    def fail(self, key: bytes, seq: int, payload) -> None:
        self.residue.setdefault(key, {})[seq] = payload

    def allowed(self, key: bytes) -> dict:
        """{seq: payload_or_TOMBSTONE} the key may legitimately hold."""
        out = dict(self.residue.get(key, ()))
        if key in self.acked:
            out[self.acked_seq[key]] = self.acked[key]
        return out

    def check_read(self, key: bytes, found: bool, payload) -> str | None:
        """Judge one live read; returns a violation string or None."""
        allowed = self.allowed(key)
        if not allowed:
            # Never acked, no residue: must be absent.
            return (
                f"read of never-written key {key!r} returned a value"
                if found else None
            )
        ok_values = set()
        for version in allowed.values():
            if version is _TOMBSTONE:
                ok_values.add(None)
            else:
                ok_values.add(version)
        got = payload if found else None
        if got in ok_values:
            return None
        return (
            f"read of key {key!r} returned "
            f"{'absent' if got is None else got[:16]!r} which matches no "
            f"acked or residual version"
        )


def _mixed_op(rng, keys: list[bytes]) -> tuple[str, bytes, bytes]:
    """One seeded traffic op: (kind, key, payload)."""
    key = keys[rng.randrange(len(keys))]
    roll = rng.random()
    if roll < 0.60:
        size = _SIZE_BUCKETS[rng.randrange(len(_SIZE_BUCKETS))]
        return ("put", key, rng.getrandbits(8 * size).to_bytes(size, "little"))
    if roll < 0.90:
        return ("get", key, b"")
    return ("delete", key, b"")


def _drive_op(store: ArrayStore, oracle: _Oracle, report, op) -> None:
    kind, key, payload = op
    if kind == "put":
        try:
            store.put(key, payload)
        except QuorumError:
            oracle.fail(key, store.last_seq, payload)
            report.quorum_failures += 1
        else:
            oracle.ack(key, store.last_seq, payload)
            report.acked_puts += 1
    elif kind == "delete":
        try:
            store.delete(key)
        except QuorumError:
            oracle.fail(key, store.last_seq, _TOMBSTONE)
            report.quorum_failures += 1
        else:
            oracle.ack(key, store.last_seq, _TOMBSTONE)
            report.acked_deletes += 1
    else:
        report.reads += 1
        try:
            value = store.get(key)
            found = True
        except KeyNotFoundError:
            value, found = None, False
        except ArrayError as exc:
            report.violations.append(
                f"read of key {key!r} failed outright while degraded: {exc}"
            )
            return
        violation = oracle.check_read(key, found, value)
        if violation:
            report.violations.append(violation)


def _verify_final(store: ArrayStore, oracle: _Oracle, report) -> None:
    """The end-state oracle: acked ⇒ durable on ≥ quorum, no stale replica."""
    # 1. Every acked write is readable through the array.
    for key in sorted(oracle.acked):
        try:
            value = store.get(key)
            found = True
        except KeyNotFoundError:
            value, found = None, False
        except ArrayError as exc:
            report.violations.append(f"final read of {key!r} failed: {exc}")
            continue
        violation = oracle.check_read(key, found, value)
        if violation:
            report.violations.append("final state: " + violation)

    # 2. Replica-level durability + convergence.
    keys: set[bytes] = set(oracle.acked)
    for shard in store.devices:
        if shard.up:
            keys.update(iter_device_keys(shard.driver))
    for key in sorted(keys):
        replicas = store.replicas_of(key)
        up_replicas = [i for i in replicas if store.devices[i].up]
        versions: dict[int, tuple] = {}
        for index in up_replicas:
            try:
                result = store.devices[index].driver.get(key)
            except KeyNotFoundError:
                continue
            if result.ok and result.value is not None:
                versions[index] = decode_value(result.value)
        report.keys_checked += 1
        allowed = oracle.allowed(key)
        if not versions:
            if any(v is not _TOMBSTONE for v in allowed.values()):
                report.violations.append(
                    f"acked key {key!r} is absent from every healthy replica"
                )
            continue
        distinct = {(v[0], v[1], v[2]) for v in versions.values()}
        if len(distinct) > 1:
            report.violations.append(
                f"stale replica survived scrub for key {key!r}: "
                f"seqs {sorted(v[0] for v in versions.values())}"
            )
            continue
        seq, tombstone, payload = next(iter(distinct))
        if allowed:
            want = allowed.get(seq)
            matches = (want is _TOMBSTONE and tombstone) or (
                want is not _TOMBSTONE and want is not None and want == payload
            )
            if not matches:
                report.violations.append(
                    f"replicas of key {key!r} hold seq {seq} which matches "
                    f"no acked or residual version"
                )
                continue
        quorum_need = min(report.write_quorum, len(up_replicas))
        if key in oracle.acked and len(versions) < quorum_need:
            report.violations.append(
                f"acked key {key!r} durable on only {len(versions)} of "
                f"{quorum_need} required replicas"
            )


def _base_config(config: BandSlimConfig | None, shards, replication, quorum,
                 rebuild_throttle, crash_consistency) -> BandSlimConfig:
    config = config or BandSlimConfig(
        # Small media + fast flushes keep scenario runs quick while still
        # exercising real flush/journal traffic (same trick as crashcheck).
        nand_capacity_bytes=64 * 1024 * 1024,
        buffer_entries=32,
        memtable_flush_bytes=16 * 1024,
        dlt_capacity=64,
    )
    return config.with_overrides(
        array_shards=shards,
        replication_factor=replication,
        write_quorum=quorum,
        rebuild_throttle=rebuild_throttle,
        crash_consistency=crash_consistency or config.crash_consistency,
    )


def _find_cut_us(config, ops, seed, keys_count, victim, kill_at) -> float:
    """Dry-run an identical plan-free array to learn the victim's clock."""
    import random

    rng = random.Random(seed)
    keys = [b"ak%06d" % i for i in range(keys_count)]
    store = ArrayStore.build(config=config)
    probe = ScenarioReport(
        name="dry-run", ops=ops, shards=config.array_shards,
        replication=config.replication_factor,
        write_quorum=config.write_quorum, seed=seed, kill_mode="none",
        victim=victim, kill_at=kill_at, rebuild_at=-1, remount=False,
    )
    oracle = _Oracle()
    for _ in range(kill_at):
        _drive_op(store, oracle, probe, _mixed_op(rng, keys))
    return store.devices[victim].device.clock.now_us


def run_device_loss(
    ops: int = 600,
    shards: int = 3,
    replication: int = 2,
    write_quorum: int = 1,
    seed: int = 0xA11A,
    victim: int = 0,
    kill_at: int | None = None,
    rebuild_at: int | None = None,
    kill_mode: str = "power",
    remount: bool = False,
    rebuild_throttle: float = 4.0,
    config: BandSlimConfig | None = None,
) -> ScenarioReport:
    """Kill one device mid-burst, rebuild it live, judge the end state."""
    if kill_mode not in ("power", "failstop"):
        raise ConfigError(f"unknown kill_mode {kill_mode!r}")
    if remount and kill_mode != "power":
        # Fail-stop remounts are exercised by run_rolling_remounts with
        # crash_consistency=True; here remount implies a real power cut.
        raise ConfigError("remount rebuild needs kill_mode='power'")
    kill_at = ops // 3 if kill_at is None else kill_at
    rebuild_at = (2 * ops) // 3 if rebuild_at is None else rebuild_at
    if not 0 <= kill_at <= rebuild_at <= ops:
        raise ConfigError("need 0 <= kill_at <= rebuild_at <= ops")
    config = _base_config(
        config, shards, replication, write_quorum, rebuild_throttle,
        crash_consistency=(kill_mode == "power"),
    )
    keys_count = max(16, ops // 8)

    device_plans = [None] * shards
    if kill_mode == "power":
        cut_us = _find_cut_us(config, ops, seed, keys_count, victim, kill_at)
        device_plans[victim] = FaultPlan(
            seed=seed & 0xFFFF, power_loss_at_us=(cut_us,)
        )

    import random

    rng = random.Random(seed)
    keys = [b"ak%06d" % i for i in range(keys_count)]
    store = ArrayStore.build(config=config, device_plans=device_plans)
    report = ScenarioReport(
        name="device-loss", ops=ops, shards=shards, replication=replication,
        write_quorum=write_quorum, seed=seed, kill_mode=kill_mode,
        victim=victim, kill_at=kill_at, rebuild_at=rebuild_at,
        remount=remount,
    )
    oracle = _Oracle()
    for op_index in range(ops):
        if op_index == kill_at and kill_mode == "failstop":
            store.kill_device(victim)
        if op_index == rebuild_at:
            # A scripted power cut only fires on device activity; make the
            # death detectable before asking for a rebuild.
            if store.probe_device(victim):
                report.violations.append(
                    f"device {victim} still up at rebuild op {rebuild_at} "
                    f"(kill never landed)"
                )
            else:
                store.start_rebuild(victim, remount=remount)
        _drive_op(store, oracle, report, _mixed_op(rng, keys))
    store.drain_rebuild()
    report.scrub_repairs = store.scrub()
    _verify_final(store, oracle, report)
    _fill_stats(store, report)
    return report


def run_rolling_remounts(
    ops_per_phase: int = 150,
    shards: int = 3,
    replication: int = 2,
    write_quorum: int = 1,
    seed: int = 0xB0BB,
    rebuild_throttle: float = 8.0,
    config: BandSlimConfig | None = None,
) -> ScenarioReport:
    """Take every device down in turn (fail-stop + remount rebuild).

    Models a rolling maintenance pass: each device is pulled, loses its
    un-flushed state, and is remounted from its own media then topped up
    from the survivors — the array must never lose an acked write.
    """
    config = _base_config(
        config, shards, replication, write_quorum, rebuild_throttle,
        crash_consistency=True,
    )
    import random

    rng = random.Random(seed)
    keys = [b"rk%05d" % i for i in range(max(16, ops_per_phase // 4))]
    store = ArrayStore.build(config=config)
    total_ops = ops_per_phase * (2 * shards + 1)
    report = ScenarioReport(
        name="rolling-remounts", ops=total_ops, shards=shards,
        replication=replication, write_quorum=write_quorum, seed=seed,
        kill_mode="failstop", victim=-1, kill_at=-1, rebuild_at=-1,
        remount=True,
    )
    oracle = _Oracle()

    def burst() -> None:
        for _ in range(ops_per_phase):
            _drive_op(store, oracle, report, _mixed_op(rng, keys))

    burst()
    for victim in range(shards):
        store.kill_device(victim)
        burst()  # degraded traffic against the survivors
        store.start_rebuild(victim, remount=True)
        burst()  # rebuild under live load
        store.drain_rebuild()
    report.scrub_repairs = store.scrub()
    _verify_final(store, oracle, report)
    _fill_stats(store, report)
    return report


def _fill_stats(store: ArrayStore, report: ScenarioReport) -> None:
    snap = store.snapshot()
    report.failovers = int(snap.get("array.failovers", 0))
    report.read_repairs = int(snap.get("array.read_repairs", 0))
    report.repaired_replicas = int(snap.get("array.repaired_replicas", 0))
    report.rebuild_copied = int(snap.get("array.rebuild_keys_copied", 0))
    report.rebuild_skipped = int(snap.get("array.rebuild_keys_skipped", 0))
    report.rebuild_unrecoverable = int(
        snap.get("array.rebuild_keys_unrecoverable", 0)
    )
    report.put_p50_us = snap.get("array.put_latency_us.p50", 0.0)
    report.put_p99_us = snap.get("array.put_latency_us.p99", 0.0)
    report.get_p50_us = snap.get("array.get_latency_us.p50", 0.0)
    report.get_p99_us = snap.get("array.get_latency_us.p99", 0.0)
    report.now_us = store.now_us
    if store.rebuild is not None:
        report.violations.append("rebuild never completed")
    for shard in store.devices:
        if not shard.up:
            report.violations.append(
                f"device {shard.index} still down at scenario end"
            )
