"""Host-side multi-device array: sharding, replication, rebuild.

See :mod:`repro.array.store` for the router, :mod:`repro.array.ring` for
placement, :mod:`repro.array.rebuild` for live device rebuild and
:mod:`repro.array.scenario` for the deterministic fault scenarios +
durability oracle. ``docs/array.md`` is the narrative walkthrough.
"""

from repro.array.codec import (
    FLAG_TOMBSTONE,
    HEADER_BYTES,
    decode_value,
    encode_value,
)
from repro.array.rebuild import RebuildJob
from repro.array.ring import HashRing
from repro.array.scenario import (
    ScenarioReport,
    run_device_loss,
    run_rolling_remounts,
)
from repro.array.store import ArrayStore, DeviceState, ShardDevice

__all__ = [
    "ArrayStore",
    "DeviceState",
    "FLAG_TOMBSTONE",
    "HEADER_BYTES",
    "HashRing",
    "RebuildJob",
    "ScenarioReport",
    "ShardDevice",
    "decode_value",
    "encode_value",
    "run_device_loss",
    "run_rolling_remounts",
]
