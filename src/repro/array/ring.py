"""Consistent-hash ring: deterministic key → replica-set placement.

The router shards keys across N independent devices with a classic
virtual-node consistent-hash ring (the Dynamo/Cassandra placement shape).
Each device owns ``vnodes`` points on a 64-bit ring; a key hashes to a
point and its R replicas are the next R *distinct* devices walking
clockwise. Properties the array layer relies on:

* **Determinism across processes.** Points come from SHA-1 of stable
  labels (never Python's salted ``hash``), so the same key maps to the
  same replica set in every run — the scenario oracle and the golden
  reports depend on it.
* **Replica sets are stable under device death.** Placement is a pure
  function of (key, device count); a dead device keeps its slots and is
  simply skipped by the router, so rebuild streams exactly the slice the
  ring assigns to it.
* **Smooth load.** With the default 64 vnodes per device the per-device
  keyspace share stays within a few percent of uniform (asserted by
  ``tests/array/test_ring.py``).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

from repro.errors import ConfigError


def _point(data: bytes) -> int:
    """64-bit ring position of ``data`` (stable across runs/platforms)."""
    return int.from_bytes(hashlib.sha1(data).digest()[:8], "big")


class HashRing:
    """Virtual-node consistent-hash ring over ``devices`` device indices."""

    __slots__ = ("devices", "vnodes", "_points", "_hashes")

    def __init__(self, devices: int, vnodes: int = 64) -> None:
        if devices < 1:
            raise ConfigError(f"ring needs at least one device, got {devices}")
        if vnodes < 1:
            raise ConfigError(f"ring needs at least one vnode, got {vnodes}")
        self.devices = devices
        self.vnodes = vnodes
        points = [
            (_point(b"device%d:vnode%d" % (dev, vn)), dev)
            for dev in range(devices)
            for vn in range(vnodes)
        ]
        points.sort()
        self._points = points
        self._hashes = [p for p, _ in points]

    def replicas(self, key: bytes, r: int) -> tuple[int, ...]:
        """The ``r`` distinct devices holding ``key``, preference-ordered.

        The first entry is the key's *primary* (the device reads prefer);
        the rest are its successors on the ring.
        """
        if not 1 <= r <= self.devices:
            raise ConfigError(
                f"replication {r} impossible with {self.devices} device(s)"
            )
        index = bisect_right(self._hashes, _point(key)) % len(self._points)
        out: list[int] = []
        seen: set[int] = set()
        while len(out) < r:
            dev = self._points[index][1]
            if dev not in seen:
                seen.add(dev)
                out.append(dev)
            index = (index + 1) % len(self._points)
        return tuple(out)

    def primary(self, key: bytes) -> int:
        """The key's first-preference device."""
        return self.replicas(key, 1)[0]

    def owns(self, key: bytes, device: int, r: int) -> bool:
        """True if ``device`` is one of the key's ``r`` replicas."""
        return device in self.replicas(key, r)
