"""ArrayStore: host-side router over N independent KV-SSD stacks.

One :class:`~repro.device.kvssd.KVSSD` is a single device; the array turns
the existing driver/device boundary into a fault-tolerant scale-out tier:

* **Sharding** — keys are placed by a consistent-hash ring
  (:class:`~repro.array.ring.HashRing`) across ``config.array_shards``
  fully independent device stacks, each with its own clock, NAND array,
  FTL and driver.
* **Replication** — writes go to all ``config.replication_factor``
  replicas and are acknowledged once ``config.write_quorum`` replicas
  acked; the array-level write latency is the quorum-th fastest replica
  (the replicas run in parallel on their own simulated clocks).
  Per-replica timeout/backoff is the device driver's existing retry
  machinery (``op_retry_limit``, ``retry_backoff_us``,
  ``command_timeout_us``).
* **Failover reads + read-repair** — a read is served by the first
  healthy replica in preference order; whenever the preferred replica is
  unavailable (device down, known-missed write, replica error) the read
  fans to every healthy replica, the newest version wins by op-seq
  (:mod:`repro.array.codec`), and stale replicas are rewritten in place.
* **Device loss + rebuild** — a replica operation that dies with
  :class:`~repro.errors.PowerLossError` (or an explicit
  :meth:`ArrayStore.kill_device`) marks the device DOWN; traffic continues
  against the degraded set. :meth:`ArrayStore.start_rebuild` streams the
  dead device's keyspace slice from the surviving replicas onto a
  replacement (fresh device or ``KVSSD.remount()``) while live traffic
  continues, throttled by ``config.rebuild_throttle`` (see
  :mod:`repro.array.rebuild`).

Host-side time: each device advances its own simulated clock; the array
keeps a host virtual clock that advances by each operation's array-level
latency (plus any rebuild-copy stall the host thread incurred between
ops). Tracing: pass a dedicated ``Tracer`` to get ``array/route``,
``array/repair`` and ``array/rebuild`` spans on the host timeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.array.codec import HEADER_BYTES, decode_value, encode_value
from repro.array.ring import HashRing
from repro.core.config import BandSlimConfig
from repro.device.kvssd import KVSSD
from repro.errors import (
    ArrayError,
    CommandTimeoutError,
    ConfigError,
    KeyNotFoundError,
    NVMeError,
    PowerLossError,
    QuorumError,
)
from repro.faults.plan import FaultPlan
from repro.nvme.command import MAX_KEY_BYTES
from repro.nvme.opcodes import StatusCode
from repro.sim.stats import MetricSet

#: Snapshot keys that must not be summed across shards in the global rollup.
_NON_SUMMABLE_SUFFIXES = (".mean", ".min", ".max", ".stdev", ".p50", ".p99")


class DeviceState(enum.Enum):
    """Lifecycle of one device behind the router."""

    #: Serving reads and writes; counts toward write quorums.
    UP = "up"
    #: Dead (power loss or fail-stop); skipped by the router.
    DOWN = "down"
    #: Replacement attached and receiving live writes + rebuild copies,
    #: but not yet caught up: excluded from reads and quorum counting.
    REBUILDING = "rebuilding"


class _HostClock:
    """The array layer's virtual clock (host thread time, in µs).

    Device clocks advance independently; this one orders array-level
    events (op completions, rebuild progress, trace spans).
    """

    __slots__ = ("now_us",)

    def __init__(self) -> None:
        self.now_us = 0.0

    def advance(self, dur_us: float) -> None:
        self.now_us += dur_us


@dataclass
class ShardDevice:
    """One device slot of the array: the stack plus its router state."""

    index: int
    device: KVSSD
    plan: FaultPlan | None = None
    state: DeviceState = DeviceState.UP
    #: Keys this replica is known to have missed (written while it was
    #: down/rebuilding, or whose replica write failed). Reads skip the
    #: replica for these keys; read-repair and rebuild clear them.
    missed: set = field(default_factory=set)

    @property
    def driver(self):
        return self.device.driver

    @property
    def up(self) -> bool:
        return self.state is DeviceState.UP


def iter_device_keys(driver, batch: int = 64):
    """Yield every key on one device in order (LIST-command pagination)."""
    resume = b"\x00"
    last = None
    while True:
        keys = driver.list_keys(resume, max_keys=batch)
        if keys and keys[0] == last:
            keys = keys[1:]
        if not keys:
            return
        yield from keys
        last = keys[-1]
        resume = keys[-1]
        if len(keys) < batch - 1:
            return


class ArrayStore:
    """Consistent-hash sharded, R-way replicated KV store over KV-SSDs."""

    def __init__(
        self,
        devices,
        config: BandSlimConfig,
        vnodes: int = 64,
        tracer=None,
        latency=None,
        queue_depth: int = 64,
    ) -> None:
        self.devices: list[ShardDevice] = list(devices)
        if not self.devices:
            raise ConfigError("an array needs at least one device")
        if config.replication_factor > len(self.devices):
            raise ConfigError(
                f"replication_factor {config.replication_factor} exceeds "
                f"{len(self.devices)} device(s)"
            )
        self.config = config
        self.replication = config.replication_factor
        self.write_quorum = config.write_quorum
        self.ring = HashRing(len(self.devices), vnodes=vnodes)
        self._latency = latency
        self._queue_depth = queue_depth
        self._clock = _HostClock()
        self._tracer = tracer
        if tracer is not None:
            # The tracer is dedicated to the array layer and records on
            # the host timeline (device tracers would record device time).
            tracer.bind(self._clock)
        self._op_seq = 0
        self._rebuild = None
        self._rebuild_credit = 0.0
        self._pending_stall_us = 0.0
        self.metrics = MetricSet("array")
        self._c_puts = self.metrics.counter("puts")
        self._c_gets = self.metrics.counter("gets")
        self._c_deletes = self.metrics.counter("deletes")
        self._c_failovers = self.metrics.counter("failovers")
        self._c_read_repairs = self.metrics.counter("read_repairs")
        self._c_repaired_replicas = self.metrics.counter("repaired_replicas")
        self._c_replica_write_failures = self.metrics.counter(
            "replica_write_failures"
        )
        self._c_quorum_failures = self.metrics.counter("quorum_failures")
        self._c_degraded_events = self.metrics.counter("degraded_events")
        self._c_rebuilds = self.metrics.counter("rebuilds_completed")
        self._c_rebuild_copied = self.metrics.counter("rebuild_keys_copied")
        self._c_rebuild_skipped = self.metrics.counter("rebuild_keys_skipped")
        self._c_rebuild_unrecoverable = self.metrics.counter(
            "rebuild_keys_unrecoverable"
        )
        self._h_put = self.metrics.histogram("put_latency_us")
        self._h_get = self.metrics.histogram("get_latency_us")
        self._s_put = self.metrics.stat("put_latency_us")
        self._s_get = self.metrics.stat("get_latency_us")

    # --- factory -----------------------------------------------------------

    @classmethod
    def build(
        cls,
        config: BandSlimConfig | None = None,
        device_plans=None,
        latency=None,
        vnodes: int = 64,
        tracer=None,
        queue_depth: int = 64,
    ) -> "ArrayStore":
        """Build ``config.array_shards`` independent stacks and route them.

        ``device_plans`` is an optional per-device list of
        :class:`~repro.faults.plan.FaultPlan` (None entries = perfect
        device) — the failure driver for device-loss scenarios.
        """
        config = config or BandSlimConfig()
        shards = config.array_shards
        plans = list(device_plans or [])
        if len(plans) > shards:
            raise ConfigError(
                f"{len(plans)} device plans for {shards} shard(s)"
            )
        plans += [None] * (shards - len(plans))
        devices = [
            ShardDevice(
                index=i,
                device=KVSSD.build(
                    config=config,
                    latency=latency,
                    fault_plan=plans[i],
                    queue_depth=queue_depth,
                ),
                plan=plans[i],
            )
            for i in range(shards)
        ]
        return cls(
            devices,
            config,
            vnodes=vnodes,
            tracer=tracer,
            latency=latency,
            queue_depth=queue_depth,
        )

    # --- introspection -----------------------------------------------------

    @property
    def now_us(self) -> float:
        """Host-side virtual time (µs)."""
        return self._clock.now_us

    @property
    def last_seq(self) -> int:
        """Op-seq of the most recently attempted write (acked or not)."""
        return self._op_seq

    @property
    def rebuild(self):
        """The in-flight :class:`~repro.array.rebuild.RebuildJob`, if any."""
        return self._rebuild

    @property
    def devices_up(self) -> int:
        return sum(1 for shard in self.devices if shard.up)

    def replicas_of(self, key: bytes) -> tuple[int, ...]:
        """The device indices holding ``key`` (preference-ordered)."""
        return self.ring.replicas(key, self.replication)

    # --- point operations --------------------------------------------------

    @staticmethod
    def _check_key(key: bytes) -> None:
        if not isinstance(key, bytes):
            raise NVMeError(f"keys must be bytes, got {type(key).__name__}")
        if not 0 < len(key) <= MAX_KEY_BYTES:
            raise NVMeError(
                f"key length must be 1..{MAX_KEY_BYTES} bytes, got {len(key)}"
            )

    def put(self, key: bytes, value: bytes) -> float:
        """Replicated PUT; returns the array-level latency (µs).

        Raises :class:`~repro.errors.QuorumError` when fewer than
        ``write_quorum`` healthy replicas acknowledged — the write is then
        *not acked* (though surviving partial copies may later spread via
        read-repair, which is legitimate quorum-system behavior).
        """
        if not isinstance(value, bytes):
            raise NVMeError(
                f"values must be bytes, got {type(value).__name__}"
            )
        latency = self._write(key, value, tombstone=False)
        self._c_puts.add(1)
        return latency

    def delete(self, key: bytes) -> float:
        """Replicated DELETE (stored as a tombstone so replicas converge)."""
        latency = self._write(key, b"", tombstone=True)
        self._c_deletes.add(1)
        return latency

    def get(self, key: bytes) -> bytes:
        """Read ``key`` from one replica, failing over and repairing.

        Raises :class:`~repro.errors.KeyNotFoundError` when absent (or
        deleted), :class:`~repro.errors.ArrayError` when no replica of the
        key is reachable at all.
        """
        found, payload = self._read(key)
        if not found:
            raise KeyNotFoundError(f"key {key!r} not found in the array")
        return payload

    def exists(self, key: bytes) -> bool:
        found, _ = self._read(key)
        return found

    # --- batched operations -------------------------------------------------

    def put_many(self, pairs, queue_depth: int | None = None) -> list:
        """Replicated PUT of many pairs via per-device pipelined batches.

        Each device's share of the batch runs through the driver's
        :meth:`~repro.core.driver.BandSlimDriver.put_many` (up to
        ``queue_depth`` commands in flight), so devices overlap internally
        *and* run in parallel with each other. Returns per-op outcomes
        aligned with ``pairs``: the array-level latency (µs, quorum-th
        fastest replica ack) for acked writes, or the
        :class:`~repro.errors.QuorumError` for ops that missed quorum (the
        batch never aborts on one failed op).

        The host clock advances once, by the slowest device's batch
        elapsed plus any pending rebuild stall — the parallel-schedule
        analog of :meth:`put`'s per-op advance. A device batch that dies
        with :class:`~repro.errors.PowerLossError` (device marked DOWN) or
        :class:`~repro.errors.CommandTimeoutError` conservatively marks
        *every* key of that device's share missed; read-repair and rebuild
        heal any copies that actually landed.
        """
        qd = self._queue_depth if queue_depth is None else queue_depth
        pairs = list(pairs)
        outcomes: list = [None] * len(pairs)
        ack_lats: list[list[float]] = [[] for _ in pairs]
        per_device: dict[int, list[tuple[int, bytes, bytes]]] = {}
        for pos, (key, value) in enumerate(pairs):
            self._check_key(key)
            if not isinstance(value, bytes):
                raise NVMeError(
                    f"values must be bytes, got {type(value).__name__}"
                )
            if len(value) > self.config.max_value_bytes - HEADER_BYTES:
                raise NVMeError(
                    f"value of {len(value)} bytes exceeds the array maximum "
                    f"of {self.config.max_value_bytes - HEADER_BYTES}"
                )
            self._op_seq += 1
            blob = encode_value(self._op_seq, value, tombstone=False)
            for index in self.ring.replicas(key, self.replication):
                shard = self.devices[index]
                if shard.state is DeviceState.DOWN:
                    shard.missed.add(key)
                    continue
                per_device.setdefault(index, []).append((pos, key, blob))
        elapsed = 0.0
        for index in sorted(per_device):
            shard = self.devices[index]
            items = per_device[index]
            t0 = shard.device.clock.now_us
            try:
                results = shard.driver.put_many(
                    [(key, blob) for _, key, blob in items], queue_depth=qd,
                )
            except PowerLossError:
                self._mark_down(shard)
                for _, key, _ in items:
                    shard.missed.add(key)
                    self._c_replica_write_failures.add(1)
                continue
            except CommandTimeoutError:
                for _, key, _ in items:
                    shard.missed.add(key)
                    self._c_replica_write_failures.add(1)
                continue
            elapsed = max(elapsed, shard.device.clock.now_us - t0)
            for (pos, key, _), result in zip(items, results):
                if result is None or not result.ok:
                    shard.missed.add(key)
                    self._c_replica_write_failures.add(1)
                    continue
                shard.missed.discard(key)
                if shard.up:
                    # REBUILDING replicas take the write to stay warm but
                    # do not count toward the quorum until caught up.
                    ack_lats[pos].append(result.latency_us)
        stall = self._pending_stall_us
        self._pending_stall_us = 0.0
        self._clock.advance(elapsed + stall)
        for pos, (key, _) in enumerate(pairs):
            lats = sorted(ack_lats[pos])
            if len(lats) < self.write_quorum:
                self._c_quorum_failures.add(1)
                outcomes[pos] = QuorumError(
                    f"put of key {key!r} reached {len(lats)} of "
                    f"{self.write_quorum} required replica ack(s)"
                )
                continue
            latency = lats[self.write_quorum - 1]
            self._h_put.record(latency)
            self._s_put.record(latency)
            self._c_puts.add(1)
            outcomes[pos] = latency
        self._pump_rebuild()
        return outcomes

    def get_many(self, keys, queue_depth: int | None = None) -> list:
        """Failover-aware batched read of many keys.

        Keys whose first-preference replica is healthy (and not known to
        have missed the key) are grouped per device and read through the
        driver's pipelined :meth:`~repro.core.driver.BandSlimDriver.get_many`;
        everything else — downed or lagging primaries, replica errors mid-
        batch — falls back to the serial failover + read-repair path one
        key at a time, exactly as :meth:`get` would.

        Returns per-key outcomes aligned with ``keys``: a
        ``(found, payload, latency_us)`` tuple (``found`` False for absent
        or tombstoned keys, with ``payload`` empty), or the
        :class:`~repro.errors.ArrayError` when no healthy replica of the
        key was reachable at all.
        """
        qd = self._queue_depth if queue_depth is None else queue_depth
        keys = list(keys)
        entries: list = [None] * len(keys)
        targets_of: list[tuple[int, ...]] = []
        per_device: dict[int, list[tuple[int, bytes]]] = {}
        fallback: list[int] = []
        for pos, key in enumerate(keys):
            self._check_key(key)
            targets = self.ring.replicas(key, self.replication)
            targets_of.append(targets)
            primary = self.devices[targets[0]]
            if primary.up and key not in primary.missed:
                per_device.setdefault(targets[0], []).append((pos, key))
            else:
                fallback.append(pos)
        elapsed = 0.0
        batched_any = False
        for index in sorted(per_device):
            shard = self.devices[index]
            items = per_device[index]
            t0 = shard.device.clock.now_us
            try:
                results = shard.driver.get_many(
                    [key for _, key in items], queue_depth=qd,
                )
            except PowerLossError:
                self._mark_down(shard)
                fallback.extend(pos for pos, _ in items)
                continue
            except CommandTimeoutError:
                fallback.extend(pos for pos, _ in items)
                continue
            elapsed = max(elapsed, shard.device.clock.now_us - t0)
            batched_any = True
            for (pos, _), result in zip(items, results):
                if result.ok and result.value is not None:
                    _, tombstone, payload = decode_value(result.value)
                    self._h_get.record(result.latency_us)
                    self._s_get.record(result.latency_us)
                    self._c_gets.add(1)
                    entries[pos] = (
                        not tombstone,
                        payload if not tombstone else b"",
                        result.latency_us,
                    )
                elif result.status is StatusCode.KEY_NOT_FOUND:
                    # Authoritative: the primary took every write for it.
                    self._c_gets.add(1)
                    entries[pos] = (False, b"", result.latency_us)
                else:
                    fallback.append(pos)
        if batched_any:
            stall = self._pending_stall_us
            self._pending_stall_us = 0.0
            self._clock.advance(elapsed + stall)
        for pos in sorted(fallback):
            key = keys[pos]
            self._c_failovers.add(1)
            try:
                newest, fan_latency = self._read_repair(key, targets_of[pos])
            except ArrayError as exc:
                entries[pos] = exc
                continue
            latency = self._finish_op(fan_latency, self._h_get, self._s_get)
            self._c_gets.add(1)
            if newest is None:
                entries[pos] = (False, b"", latency)
            else:
                _, tombstone, payload = newest
                entries[pos] = (
                    not tombstone,
                    payload if not tombstone else b"",
                    latency,
                )
        self._pump_rebuild()
        return entries

    # --- write path --------------------------------------------------------

    def _write(self, key: bytes, payload: bytes, tombstone: bool) -> float:
        self._check_key(key)
        if len(payload) > self.config.max_value_bytes - HEADER_BYTES:
            raise NVMeError(
                f"value of {len(payload)} bytes exceeds the array maximum "
                f"of {self.config.max_value_bytes - HEADER_BYTES}"
            )
        self._op_seq += 1
        blob = encode_value(self._op_seq, payload, tombstone=tombstone)
        targets = self.ring.replicas(key, self.replication)
        kind = "delete" if tombstone else "put"
        t0 = self.now_us
        ack_lats: list[float] = []
        for index in targets:
            shard = self.devices[index]
            if shard.state is DeviceState.DOWN:
                shard.missed.add(key)
                continue
            result = self._replica_put(shard, key, blob)
            if result is None or not result.ok:
                shard.missed.add(key)
                self._c_replica_write_failures.add(1)
                continue
            shard.missed.discard(key)
            if shard.up:
                # A REBUILDING replica takes the write to stay warm but
                # does not count toward the quorum until caught up.
                ack_lats.append(result.latency_us)
        if len(ack_lats) < self.write_quorum:
            self._c_quorum_failures.add(1)
            self._trace_route(kind, targets, t0, self.now_us, acked=False)
            raise QuorumError(
                f"{kind} of key {key!r} reached {len(ack_lats)} of "
                f"{self.write_quorum} required replica ack(s)"
            )
        ack_lats.sort()
        latency = self._finish_op(
            ack_lats[self.write_quorum - 1], self._h_put, self._s_put
        )
        self._trace_route(kind, targets, t0, self.now_us, acked=True)
        self._pump_rebuild()
        return latency

    def _replica_put(self, shard: ShardDevice, key: bytes, blob: bytes):
        try:
            return shard.driver.put(key, blob)
        except PowerLossError:
            self._mark_down(shard)
            return None
        except CommandTimeoutError:
            return None

    # --- read path ---------------------------------------------------------

    def _read(self, key: bytes) -> tuple[bool, bytes]:
        """``(found, payload)`` with failover and read-repair."""
        self._check_key(key)
        targets = self.ring.replicas(key, self.replication)
        t0 = self.now_us
        preferred = None
        failover = False
        for index in targets:
            shard = self.devices[index]
            if not shard.up or key in shard.missed:
                failover = True
                continue
            preferred = shard
            break
        if preferred is not None and not failover:
            status, result = self._replica_get(preferred, key)
            if status == "ok":
                seq, tombstone, payload = decode_value(result.value)
                latency = self._finish_op(
                    result.latency_us, self._h_get, self._s_get
                )
                self._c_gets.add(1)
                self._trace_route(
                    "get", targets, t0, self.now_us, device=preferred.index
                )
                self._pump_rebuild()
                return (not tombstone, payload if not tombstone else b"")
            if status == "missing":
                # Authoritative: the primary took every write for this key.
                latency = self._finish_op(
                    result, self._h_get, self._s_get
                )
                self._c_gets.add(1)
                self._trace_route(
                    "get", targets, t0, self.now_us, device=preferred.index
                )
                self._pump_rebuild()
                return (False, b"")
            failover = True  # replica error: fall through to the repair fan
        # Failover: fan to every healthy replica, repair stragglers.
        self._c_failovers.add(1)
        newest, fan_latency = self._read_repair(key, targets)
        latency = self._finish_op(fan_latency, self._h_get, self._s_get)
        self._c_gets.add(1)
        self._trace_route(
            "get", targets, t0, self.now_us, failover=True
        )
        self._pump_rebuild()
        if newest is None:
            return (False, b"")
        seq, tombstone, payload = newest
        return (not tombstone, payload if not tombstone else b"")

    def _replica_get(self, shard: ShardDevice, key: bytes):
        """``("ok", OpResult)`` | ``("missing", latency_us)`` | ``("error", 0)``."""
        start = shard.device.clock.now_us
        try:
            result = shard.driver.get(key)
        except KeyNotFoundError:
            return ("missing", shard.device.clock.now_us - start)
        except PowerLossError:
            self._mark_down(shard)
            return ("error", 0.0)
        except CommandTimeoutError:
            return ("error", 0.0)
        if not result.ok or result.value is None:
            return ("error", 0.0)
        return ("ok", result)

    def _read_repair(self, key: bytes, targets) -> tuple[tuple | None, float]:
        """Fan-read every healthy replica; rewrite stale ones in place.

        Returns ``(newest, latency_us)`` where ``newest`` is the winning
        ``(seq, tombstone, payload)`` (None when no healthy replica holds
        the key) and latency models the parallel fan: max replica read
        plus, when repairs happened, the max repair write.
        """
        t0 = self.now_us
        holders: list[tuple[ShardDevice, tuple | None, bytes | None]] = []
        read_lats = [0.0]
        reached = 0
        for index in targets:
            shard = self.devices[index]
            if not shard.up:
                continue
            status, result = self._replica_get(shard, key)
            if status == "error":
                continue
            reached += 1
            if status == "missing":
                holders.append((shard, None, None))
                read_lats.append(result)
                continue
            version = decode_value(result.value)
            holders.append((shard, version, result.value))
            read_lats.append(result.latency_us)
        if reached == 0:
            raise ArrayError(
                f"no healthy replica of key {key!r} is reachable "
                f"(replica set {list(targets)})"
            )
        newest = None
        newest_blob = None
        for _, version, blob in holders:
            if version is not None and (newest is None or version[0] > newest[0]):
                newest = version
                newest_blob = blob
        repair_lats = [0.0]
        repaired = 0
        if newest is not None:
            for shard, version, _ in holders:
                if version is not None and version[0] >= newest[0]:
                    # Already current — a stale missed marker (e.g. from a
                    # conservative write-failure mark) is now disproved.
                    shard.missed.discard(key)
                    continue
                result = self._replica_put(shard, key, newest_blob)
                if result is not None and result.ok:
                    shard.missed.discard(key)
                    repaired += 1
                    repair_lats.append(result.latency_us)
        if repaired:
            self._c_read_repairs.add(1)
            self._c_repaired_replicas.add(repaired)
        latency = max(read_lats) + max(repair_lats)
        if self._tracer is not None:
            self._tracer.span(
                "array", "repair", t0, t0 + latency,
                replicas=[s.index for s, _, _ in holders],
                repaired=repaired,
                newest_seq=newest[0] if newest else None,
            )
        return newest, latency

    def scrub(self) -> int:
        """Sweep every key on every healthy device through read-repair.

        Returns the number of replica rewrites. Used after a rebuild (and
        by the scenario oracle) to guarantee no stale replica survives.
        """
        before = self._c_repaired_replicas.value
        keys: set[bytes] = set()
        for shard in self.devices:
            if shard.up:
                keys.update(iter_device_keys(shard.driver))
        for key in sorted(keys):
            targets = self.ring.replicas(key, self.replication)
            _, latency = self._read_repair(key, targets)
            self._clock.advance(latency)
        return self._c_repaired_replicas.value - before

    # --- device lifecycle --------------------------------------------------

    def kill_device(self, index: int) -> None:
        """Fail-stop ``index``: mark it DOWN without touching its media."""
        shard = self.devices[index]
        if shard.state is DeviceState.DOWN:
            return
        if shard.state is DeviceState.REBUILDING:
            raise ArrayError(f"device {index} is mid-rebuild; cannot kill")
        self._mark_down(shard)

    def probe_device(self, index: int) -> bool:
        """Touch a device so a pending power cut fires; True if still up."""
        shard = self.devices[index]
        if not shard.up:
            return False
        try:
            shard.driver.exists(b"\x00array-probe")
        except PowerLossError:
            self._mark_down(shard)
        return shard.up

    def _mark_down(self, shard: ShardDevice) -> None:
        if shard.state is DeviceState.DOWN:
            return
        shard.state = DeviceState.DOWN
        self._c_degraded_events.add(1)
        if self._tracer is not None:
            self._tracer.instant("array", "device_down", device=shard.index)

    # --- rebuild -----------------------------------------------------------

    def start_rebuild(self, index: int, remount: bool = False):
        """Attach a replacement for DOWN device ``index`` and start syncing.

        ``remount=False`` builds a factory-fresh stack (new hardware);
        ``remount=True`` recovers the dead device's own media via
        :meth:`~repro.device.kvssd.KVSSD.remount` (crash-consistency mode
        required) — surviving replicas then only re-stream what the crash
        lost. Either way the replacement serves live writes immediately
        (state REBUILDING) and is promoted to UP when the keyspace slice
        has been copied. Returns the :class:`RebuildJob`.
        """
        from repro.array.rebuild import RebuildJob

        shard = self.devices[index]
        if self._rebuild is not None:
            raise ArrayError("a rebuild is already in progress")
        if shard.state is not DeviceState.DOWN:
            raise ArrayError(f"device {index} is {shard.state.value}, not down")
        if remount:
            replacement = shard.device.remount()
        else:
            replacement = KVSSD.build(
                config=self.config,
                latency=self._latency,
                queue_depth=self._queue_depth,
            )
        shard.device = replacement
        shard.state = DeviceState.REBUILDING
        self._rebuild = RebuildJob(self, shard)
        self._rebuild_credit = 0.0
        if self._rebuild.finished:
            # Nothing to copy (empty keyspace slice): promote immediately.
            self._complete_rebuild(self._rebuild)
        return self._rebuild

    def pump_rebuild(self, budget: int) -> int:
        """Run up to ``budget`` rebuild copies now; returns copies made."""
        if self._rebuild is None:
            return 0
        job = self._rebuild
        before = job.copied + job.skipped
        stall = job.step(budget)
        self._clock.advance(stall)
        return job.copied + job.skipped - before

    def drain_rebuild(self) -> None:
        """Run the rebuild to completion, ignoring the throttle."""
        while self._rebuild is not None:
            stall = self._rebuild.step(256)
            self._clock.advance(stall)

    def _pump_rebuild(self) -> None:
        """Post-op throttled rebuild progress (host thread interleaving).

        The copies run *between* foreground ops, so their cost lands on
        the next op's latency as ``_pending_stall_us`` — that is the
        foreground-p99 vs rebuild-rate tradeoff ``rebuild_throttle``
        controls.
        """
        if self._rebuild is None:
            return
        throttle = self.config.rebuild_throttle
        if throttle <= 0:
            return
        self._rebuild_credit += throttle
        budget = int(self._rebuild_credit)
        if budget <= 0:
            return
        self._rebuild_credit -= budget
        self._pending_stall_us += self._rebuild.step(budget)

    def _complete_rebuild(self, job) -> None:
        shard = job.shard
        shard.state = DeviceState.UP
        shard.missed.clear()
        self._rebuild = None
        self._c_rebuilds.add(1)
        self._c_rebuild_copied.add(job.copied)
        self._c_rebuild_skipped.add(job.skipped)
        self._c_rebuild_unrecoverable.add(job.unrecoverable)
        if self._tracer is not None:
            self._tracer.span(
                "array", "rebuild", job.started_us, self.now_us,
                device=shard.index, copied=job.copied,
                skipped=job.skipped, unrecoverable=job.unrecoverable,
            )

    # --- latency / trace plumbing ------------------------------------------

    def _finish_op(self, base_latency_us: float, hist, stat) -> float:
        """Charge an op: base latency plus any pending rebuild stall."""
        total = base_latency_us + self._pending_stall_us
        self._pending_stall_us = 0.0
        self._clock.advance(total)
        hist.record(total)
        stat.record(total)
        return total

    def _trace_route(self, kind, targets, t0, t1, **args) -> None:
        if self._tracer is not None:
            self._tracer.span(
                "array", "route", t0, t1, op=kind,
                replicas=list(targets), **args,
            )

    # --- metric roll-up ----------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Per-shard (``shardN.``-prefixed) plus global rolled-up metrics.

        Counter-like device keys are summed across shards into their bare
        name; per-shard means/percentiles are exported prefixed only (a
        sum of means is meaningless). ``clock.now_us`` rolls up as the max
        across devices. Array-layer counters live under ``array.``.
        """
        out: dict[str, float] = {}
        totals: dict[str, float] = {}
        for shard in self.devices:
            prefix = f"shard{shard.index}."
            for key, value in shard.device.snapshot().items():
                out[prefix + key] = value
                if key == "clock.now_us":
                    totals[key] = max(totals.get(key, 0.0), value)
                elif not key.endswith(_NON_SUMMABLE_SUFFIXES):
                    totals[key] = totals.get(key, 0.0) + value
            out[prefix + "up"] = 1.0 if shard.up else 0.0
        out.update(totals)
        out.update(self.metrics.snapshot())
        out["array.devices"] = float(len(self.devices))
        out["array.devices_up"] = float(self.devices_up)
        out["array.rebuild_active"] = 1.0 if self._rebuild is not None else 0.0
        out["array.now_us"] = self.now_us
        return out

    def flush(self) -> None:
        """Drain every healthy device's buffers (clean shutdown)."""
        for shard in self.devices:
            if shard.up:
                shard.driver.flush()
