"""Live device rebuild: re-stream a dead device's keyspace slice.

When :meth:`~repro.array.store.ArrayStore.start_rebuild` attaches a
replacement device for a DOWN shard, a :class:`RebuildJob` copies the
shard's slice of the keyspace from the surviving replicas onto it while
foreground traffic keeps flowing:

* The **pending set** is computed once at start: every key on any healthy
  replica that the ring assigns to the rebuilding device, in sorted order
  (deterministic given deterministic traffic).
* Each :meth:`step` copy reads the newest surviving version (by op-seq,
  see :mod:`repro.array.codec`) and writes the raw replica blob to the
  target — **unless the target already holds an equal-or-newer version**,
  which happens precisely when a live foreground write raced ahead of the
  copy (REBUILDING replicas take live writes). The seq comparison makes
  copy-vs-live-write ordering a non-issue: newest always wins.
* The copy cost (survivor read + target program, summed — the host
  rebuild thread is serial) is returned as a *stall* that the store
  charges to foreground latency, so ``rebuild_throttle`` trades rebuild
  speed against foreground p99 in a measurable way.

A key whose every surviving replica is unreachable is counted
``unrecoverable`` (with R healthy survivors this cannot happen; it needs a
second failure mid-rebuild).
"""

from __future__ import annotations

from repro.array.codec import decode_value
from repro.errors import (
    CommandTimeoutError,
    KeyNotFoundError,
    PowerLossError,
)


class RebuildJob:
    """One in-flight rebuild of ``shard`` from its surviving replicas."""

    def __init__(self, store, shard) -> None:
        from repro.array.store import iter_device_keys

        self.store = store
        self.shard = shard
        self.started_us = store.now_us
        self.copied = 0
        self.skipped = 0
        self.unrecoverable = 0
        pending: set[bytes] = set()
        for other in store.devices:
            if other is shard or not other.up:
                continue
            for key in iter_device_keys(other.driver):
                if store.ring.owns(key, shard.index, store.replication):
                    pending.add(key)
        self._pending = sorted(pending, reverse=True)  # pop() from the front
        self._retried: set[bytes] = set()

    @property
    def finished(self) -> bool:
        return not self._pending

    @property
    def remaining(self) -> int:
        return len(self._pending)

    def step(self, budget: int) -> float:
        """Copy up to ``budget`` keys; returns the host-thread stall (µs)."""
        stall = 0.0
        while budget > 0 and self._pending:
            key = self._pending.pop()
            budget -= 1
            stall += self._copy_one(key)
        if not self._pending and self.store.rebuild is self:
            self.store._complete_rebuild(self)
        return stall

    def _copy_one(self, key: bytes) -> float:
        store, target = self.store, self.shard
        cost = 0.0
        newest_seq = -1
        newest_blob = None
        for other in store.devices:
            if other is target or not other.up:
                continue
            blob, latency = self._replica_read(other, key)
            cost += latency
            if blob is None:
                continue
            seq, _, _ = decode_value(blob)
            if seq > newest_seq:
                newest_seq = seq
                newest_blob = blob
        if newest_blob is None:
            self.unrecoverable += 1
            return cost
        have, latency = self._replica_read(target, key)
        cost += latency
        if have is not None and decode_value(have)[0] >= newest_seq:
            # A live foreground write already landed a newer (or this very)
            # version on the replacement — the copy would be a rollback.
            self.skipped += 1
            return cost
        try:
            result = target.driver.put(key, newest_blob)
        except PowerLossError:
            # The replacement died too: abandon the job, device stays DOWN.
            store._mark_down(target)
            store._rebuild = None
            self._pending.clear()
            return cost
        except CommandTimeoutError:
            result = None
        if result is not None and result.ok:
            cost += result.latency_us
            target.missed.discard(key)
            self.copied += 1
        elif key not in self._retried:
            self._retried.add(key)
            self._pending.insert(0, key)  # one retry, at the tail
        else:
            # Persistent target failure: give up on this key — a later
            # read-repair or scrub() pass will converge it.
            self.unrecoverable += 1
        return cost

    def _replica_read(self, shard, key: bytes):
        """``(blob_or_None, latency_us)`` from one replica, fault-tolerant."""
        start = shard.device.clock.now_us
        try:
            result = shard.driver.get(key)
        except KeyNotFoundError:
            return None, shard.device.clock.now_us - start
        except PowerLossError:
            self.store._mark_down(shard)
            return None, 0.0
        except CommandTimeoutError:
            return None, 0.0
        if not result.ok or result.value is None:
            return None, 0.0
        return result.value, result.latency_us
