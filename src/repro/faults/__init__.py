"""Deterministic fault injection for the simulated device stack.

:class:`FaultPlan` declares *what* can fail (per-site probabilities, a wear
model for read bit flips, and scripted "fail the Nth op of block B"
entries); :class:`FaultInjector` is the seeded runtime that every substrate
consults at its injection site. With no plan configured the injector is
simply absent and every fault hook is a single ``is None`` check — the
fault layer costs nothing when off.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSite, ScriptedFault

__all__ = ["FaultInjector", "FaultPlan", "FaultSite", "ScriptedFault"]
