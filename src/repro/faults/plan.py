"""Fault plans: the declarative description of what is allowed to break.

A :class:`FaultPlan` is pure data — probabilities, wear-model rates and
scripted one-shot faults — so a plan can be logged, diffed, and replayed.
The same plan plus the same seed plus the same workload reproduces the
same fault sequence bit-for-bit (the determinism the bench harness and the
fault tests rely on).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigError


class FaultSite(str, enum.Enum):
    """Injection sites understood by the :class:`FaultInjector`."""

    #: NAND page program (transient failure, or permanent = grown bad block).
    PROGRAM = "program"
    #: NAND block erase (failure retires the block).
    ERASE = "erase"
    #: NAND page read (bit flips; magnitude set by ``ScriptedFault.bitflips``).
    READ = "read"
    #: PCIe payload DMA in either direction (transient, retryable).
    TRANSFER = "transfer"


@dataclass(frozen=True)
class ScriptedFault:
    """Fail the ``nth`` operation at ``site`` (optionally of one block).

    ``nth`` is 1-based and counted per ``(site, block)`` — with
    ``block=None`` the counter spans every block, so ``nth=50`` means "the
    fiftieth program anywhere in the module". ``permanent`` applies to
    :attr:`FaultSite.PROGRAM` (grown bad block); ``bitflips`` applies to
    :attr:`FaultSite.READ` (how many bits the read returns flipped).
    """

    site: FaultSite
    nth: int = 1
    block: int | None = None
    permanent: bool = False
    bitflips: int = 0

    def __post_init__(self) -> None:
        if self.nth < 1:
            raise ConfigError(f"scripted fault nth must be >= 1, got {self.nth}")
        if self.block is not None and self.block < 0:
            raise ConfigError(f"scripted fault block must be >= 0, got {self.block}")
        if self.bitflips < 0:
            raise ConfigError(f"bitflips must be >= 0, got {self.bitflips}")
        if self.site is FaultSite.READ and self.bitflips == 0:
            raise ConfigError("a scripted READ fault needs bitflips >= 1")
        if self.site is not FaultSite.READ and self.bitflips:
            raise ConfigError(f"bitflips only applies to READ faults, not {self.site}")
        if self.permanent and self.site is not FaultSite.PROGRAM:
            raise ConfigError("permanent only applies to PROGRAM faults")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, declarative fault configuration for one device build.

    All probabilities default to zero and all schedules to empty, so
    ``FaultPlan()`` describes a perfect device (and the builder skips the
    injector entirely — see :attr:`enabled`).
    """

    #: Seed for the injector's private RNG. Two devices built with equal
    #: plans and driven with equal workloads produce identical snapshots.
    seed: int = 0xB5

    # --- probabilistic faults (per operation) ------------------------------
    #: Probability a NAND page program fails.
    program_fail_p: float = 0.0
    #: Of the failed programs, the fraction that are *permanent* — the
    #: block has grown bad and must be retired (0 = all transient).
    program_fail_permanent_ratio: float = 0.0
    #: Probability a NAND block erase fails (always retires the block).
    erase_fail_p: float = 0.0
    #: Probability one payload DMA transfer suffers a transient PCIe fault.
    transfer_fault_p: float = 0.0

    # --- wear model: read bit flips ----------------------------------------
    #: Expected bit flips per page read, independent of wear.
    read_bitflip_base: float = 0.0
    #: Additional expected bit flips per page read *per erase* of the
    #: block — reads of worn blocks degrade first, like real NAND.
    read_bitflip_per_erase: float = 0.0

    # --- power loss ---------------------------------------------------------
    #: Scripted power cuts: absolute simulated timestamps (µs) at which the
    #: device loses power. The cut fires at the first device activity at or
    #: after the timestamp; a cut landing inside a NAND program window tears
    #: that page. Each timestamp fires at most once (remount re-arms none).
    power_loss_at_us: tuple[float, ...] = field(default_factory=tuple)
    #: Probability any one NAND page program is interrupted by a power cut
    #: (drawn from a *separate* RNG stream so enabling this never perturbs
    #: the media-fault sequence of an otherwise identical plan).
    power_loss_per_program_p: float = 0.0

    # --- scripted one-shot faults ------------------------------------------
    scripted: tuple[ScriptedFault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in (
            "program_fail_p",
            "program_fail_permanent_ratio",
            "erase_fail_p",
            "transfer_fault_p",
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"FaultPlan.{name} must be in [0, 1], got {p}")
        for name in ("read_bitflip_base", "read_bitflip_per_erase"):
            rate = getattr(self, name)
            if rate < 0:
                raise ConfigError(f"FaultPlan.{name} must be >= 0, got {rate}")
        if not 0.0 <= self.power_loss_per_program_p <= 1.0:
            raise ConfigError(
                "FaultPlan.power_loss_per_program_p must be in [0, 1], "
                f"got {self.power_loss_per_program_p}"
            )
        if not isinstance(self.power_loss_at_us, tuple):
            object.__setattr__(
                self, "power_loss_at_us", tuple(self.power_loss_at_us)
            )
        for cut in self.power_loss_at_us:
            if cut < 0:
                raise ConfigError(f"power_loss_at_us must be >= 0, got {cut}")
        # Accept any iterable of scripted faults but store a tuple so the
        # plan stays hashable/frozen.
        if not isinstance(self.scripted, tuple):
            object.__setattr__(self, "scripted", tuple(self.scripted))

    @property
    def power_enabled(self) -> bool:
        """True if this plan can ever cut power."""
        return bool(self.power_loss_at_us) or self.power_loss_per_program_p > 0

    @property
    def enabled(self) -> bool:
        """True if this plan can ever inject anything."""
        return bool(self.scripted) or self.power_enabled or any(
            getattr(self, name) > 0
            for name in (
                "program_fail_p",
                "erase_fail_p",
                "transfer_fault_p",
                "read_bitflip_base",
                "read_bitflip_per_erase",
            )
        )
