"""The fault injector: one seeded RNG, consulted at every injection site.

Determinism contract: the injector draws from a single private
``random.Random(plan.seed)`` in call order, and every site draws only when
its knob is non-zero. Given the same plan and the same operation sequence,
the injected faults — and therefore every downstream recovery action and
metric — are identical across runs.

The injector only *decides*; it never mutates device state. Each substrate
owns its own failure semantics (what a failed program does to the page
pointer, what ECC can correct, ...) and its own metrics; the injector's
``faults.*`` metric set records what was injected so benches can report
injected-vs-recovered side by side.
"""

from __future__ import annotations

import math
import random

from repro.faults.plan import FaultPlan, FaultSite, ScriptedFault
from repro.sim.stats import MetricSet


class FaultInjector:
    """Runtime fault oracle for one device instance."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        #: Ops seen per (site, block) — block None counts across all blocks.
        self._site_counts: dict[tuple[FaultSite, int | None], int] = {}
        self.metrics = MetricSet("faults")
        # Pre-create so fault-enabled snapshots always carry the full set.
        self.metrics.counter("program_faults")
        self.metrics.counter("erase_faults")
        self.metrics.counter("read_bitflip_events")
        self.metrics.counter("bitflips_injected")
        self.metrics.counter("transfer_faults")
        #: True while the simulated module is without power.
        self.power_lost = False
        #: Timestamp of the most recent cut (for reports), -1 if none yet.
        self.last_cut_us = -1.0
        # Power loss draws from its own stream: adding power knobs to a plan
        # must never perturb the media-fault sequence above.
        self.power_enabled = plan.power_enabled
        self._power_rng = random.Random(plan.seed ^ 0x9E3779B1)
        self._cuts = sorted(plan.power_loss_at_us)
        self._next_cut = 0
        if self.power_enabled:
            self.metrics.counter("power_cuts")
            self.metrics.counter("torn_pages")

    @property
    def enabled(self) -> bool:
        return self.plan.enabled

    # --- scripted schedule --------------------------------------------------

    def _scripted_hit(self, site: FaultSite, block: int | None) -> ScriptedFault | None:
        """Advance the op counters for ``site`` and return a matching fault.

        Both the per-block and the any-block counter advance on every op,
        so "the Nth program of block B" and "the Nth program anywhere"
        schedules compose without interfering.
        """
        # Short-circuit when nothing is scripted: bookkeeping for a schedule
        # that cannot match is wasted work, and keeping this path inert
        # guarantees new fault kinds never shift existing seeded streams.
        if not self.plan.scripted:
            return None
        keys = [(site, None)]
        if block is not None:
            keys.append((site, block))
        for key in keys:
            self._site_counts[key] = self._site_counts.get(key, 0) + 1
        for fault in self.plan.scripted:
            if fault.site is not site:
                continue
            if fault.block is not None and fault.block != block:
                continue
            if self._site_counts[(site, fault.block)] == fault.nth:
                return fault
        return None

    # --- site hooks ---------------------------------------------------------

    def program_fault(self, block: int) -> str | None:
        """``None`` for success, else ``"transient"`` or ``"permanent"``."""
        scripted = self._scripted_hit(FaultSite.PROGRAM, block)
        if scripted is not None:
            self.metrics.counter("program_faults").add(1)
            return "permanent" if scripted.permanent else "transient"
        p = self.plan.program_fail_p
        if p > 0 and self._rng.random() < p:
            self.metrics.counter("program_faults").add(1)
            ratio = self.plan.program_fail_permanent_ratio
            if ratio > 0 and self._rng.random() < ratio:
                return "permanent"
            return "transient"
        return None

    def erase_fault(self, block: int) -> bool:
        if self._scripted_hit(FaultSite.ERASE, block) is not None:
            self.metrics.counter("erase_faults").add(1)
            return True
        p = self.plan.erase_fail_p
        if p > 0 and self._rng.random() < p:
            self.metrics.counter("erase_faults").add(1)
            return True
        return False

    def read_bitflips(self, block: int, erase_count: int) -> int:
        """Bit flips this read returns, Poisson around the wear model mean."""
        scripted = self._scripted_hit(FaultSite.READ, block)
        if scripted is not None:
            flips = scripted.bitflips
        else:
            mean = (
                self.plan.read_bitflip_base
                + self.plan.read_bitflip_per_erase * erase_count
            )
            flips = self._poisson(mean) if mean > 0 else 0
        if flips:
            self.metrics.counter("read_bitflip_events").add(1)
            self.metrics.counter("bitflips_injected").add(flips)
        return flips

    def transfer_fault(self) -> bool:
        if self._scripted_hit(FaultSite.TRANSFER, None) is not None:
            self.metrics.counter("transfer_faults").add(1)
            return True
        p = self.plan.transfer_fault_p
        if p > 0 and self._rng.random() < p:
            self.metrics.counter("transfer_faults").add(1)
            return True
        return False

    # --- power loss ---------------------------------------------------------

    def power_down(self, now_us: float) -> bool:
        """True if the module is (or just went) without power at ``now_us``.

        Consumes any scheduled cut whose timestamp has passed; the cut fires
        at the first device activity at or after its timestamp.
        """
        if self.power_lost:
            return True
        if self._next_cut < len(self._cuts) and self._cuts[self._next_cut] <= now_us:
            self._record_cut(self._cuts[self._next_cut])
            self._next_cut += 1
            return True
        return False

    def power_cut_during(self, start_us: float, end_us: float) -> float | None:
        """Cut timestamp if power dies inside ``(start_us, end_us]``.

        Checks the scheduled cut list first, then the per-program
        probability; the probabilistic draw doubles as the (uniform) cut
        position inside the window. Marks the module as down on a hit.
        """
        if self._next_cut < len(self._cuts):
            cut = self._cuts[self._next_cut]
            if cut <= end_us:
                self._next_cut += 1
                self._record_cut(max(cut, start_us))
                return self.last_cut_us
        p = self.plan.power_loss_per_program_p
        if p > 0:
            u = self._power_rng.random()
            if u < p:
                self._record_cut(start_us + (u / p) * (end_us - start_us))
                return self.last_cut_us
        return None

    def force_power_cut(self, now_us: float) -> None:
        """Operator/chaos-initiated cut: down the module at ``now_us``.

        Unlike the scheduled cuts this is not part of the plan — the
        chaos harness uses it to pull the plug at a *device-op index*
        instead of a pre-computed timestamp.
        """
        if not self.power_lost:
            self._record_cut(now_us)

    def power_restore(self) -> None:
        """Bring the module back up (called by remount)."""
        self.power_lost = False

    def _record_cut(self, cut_us: float) -> None:
        self.power_lost = True
        self.last_cut_us = cut_us
        self.metrics.counter("power_cuts").add(1)

    # --- internals ----------------------------------------------------------

    def _poisson(self, mean: float) -> int:
        """Knuth's Poisson sampler — fine for the small means of wear noise."""
        threshold = math.exp(-mean)
        k = 0
        p = 1.0
        while True:
            p *= self._rng.random()
            if p <= threshold:
                return k
            k += 1
