"""Device assembly: the complete simulated KV-SSD."""

from repro.device.kvssd import KVSSD

__all__ = ["KVSSD"]
