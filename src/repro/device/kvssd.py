"""KVSSD: wires every substrate into one simulated device + host stack.

Construction order mirrors the hardware: clock and latency model, PCIe
link, host memory, device DRAM (NAND page buffer region + scratch), NAND
flash + FTL + GC, vLog + LSM-tree, packing policy, controller, driver.
``KVSSD.build(config)`` is the one-call factory every example, test and
bench uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import BandSlimConfig
from repro.core.controller import BandSlimController
from repro.core.driver import BandSlimDriver
from repro.core.packing import NandPageBuffer, PackingPolicy, make_policy
from repro.errors import ConfigError
from repro.faults import FaultInjector, FaultPlan
from repro.lsm.space import PageSpace
from repro.lsm.tree import LSMConfig, LSMTree
from repro.lsm.vlog import VLog
from repro.memory.device import DeviceDRAM
from repro.memory.dma import DMAEngine
from repro.memory.host import HostMemory
from repro.nand.flash import NandFlash
from repro.nand.ftl import PageMappedFTL
from repro.nand.gc import GreedyGarbageCollector
from repro.nand.geometry import NandGeometry, default_geometry
from repro.nvme.queue import CompletionQueue, SubmissionQueue
from repro.pcie.link import PCIeLink, PCIeLinkConfig
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel


@dataclass
class KVSSD:
    """A fully wired simulated KV-SSD plus its host-side driver."""

    config: BandSlimConfig
    clock: SimClock
    latency: LatencyModel
    link: PCIeLink
    host_mem: HostMemory
    dram: DeviceDRAM
    flash: NandFlash
    ftl: PageMappedFTL
    gc: GreedyGarbageCollector
    vlog: VLog
    lsm: LSMTree
    buffer: NandPageBuffer
    policy: PackingPolicy
    controller: BandSlimController
    driver: BandSlimDriver
    #: Fault injector, present only when built with an enabled fault plan.
    injector: FaultInjector | None = None
    #: Event tracer, present only when built with ``tracer=``.
    tracer: object | None = None
    #: Durability journal, present only in crash-consistency mode (the
    #: ``crash_consistency`` config knob, or a power-loss fault plan).
    journal: object | None = None
    #: RecoveryReport of the remount that produced this device, if any.
    recovery: object | None = None
    geometry: NandGeometry = field(init=False)

    def __post_init__(self) -> None:
        self.geometry = self.flash.geometry

    # --- factory -----------------------------------------------------------

    @classmethod
    def build(
        cls,
        config: BandSlimConfig | None = None,
        latency: LatencyModel | None = None,
        geometry: NandGeometry | None = None,
        link_config: PCIeLinkConfig | None = None,
        queue_depth: int = 64,
        fault_plan: FaultPlan | None = None,
        tracer=None,
    ) -> "KVSSD":
        config = config or BandSlimConfig()
        latency = latency or LatencyModel()
        geometry = geometry or default_geometry(
            config.nand_capacity_bytes, config.nand_channels, config.nand_ways
        )
        clock = SimClock()
        if tracer is not None:
            # The tracer is built clock-less (the clock exists only from
            # here on); bind it before any component can emit an instant.
            tracer.bind(clock)
        # A plan that cannot inject anything builds a byte-identical device:
        # no injector, no fault counters, no extra checks on the data paths.
        injector = (
            FaultInjector(fault_plan)
            if fault_plan is not None and fault_plan.enabled
            else None
        )
        link = PCIeLink(clock, latency, link_config, injector=injector, tracer=tracer)
        host_mem = HostMemory()

        # Device DRAM: NAND page buffer pool + DMA/GET scratch.
        buffer_bytes = config.buffer_entries * geometry.page_size
        dram = DeviceDRAM(buffer_bytes + config.scratch_bytes)
        buffer_region = dram.carve_region("nand_page_buffer", buffer_bytes)
        scratch_region = dram.carve_region("scratch", config.scratch_bytes)

        flash = NandFlash(geometry, clock, latency, injector=injector, tracer=tracer)
        ftl = PageMappedFTL(
            flash,
            ecc_correctable_bits=config.ecc_correctable_bits,
            read_retry_limit=config.read_retry_limit,
            program_retry_limit=config.program_retry_limit,
            tracer=tracer,
        )
        gc = GreedyGarbageCollector(ftl)
        ftl.set_gc(gc)
        if config.read_cache_pages > 0:
            from repro.memory.cache import PageCache

            ftl.attach_read_cache(
                PageCache(config.read_cache_pages),
                hit_cost_us=config.read_cache_hit_us,
            )
        dma = DMAEngine(link, dram, host_mem)

        # Logical page space: vLog head, SSTable region tail. The logical
        # space is slightly under-provisioned vs physical so the FTL always
        # has GC headroom.
        usable_pages = geometry.total_pages - ftl.gc_reserve_blocks * (
            geometry.pages_per_block
        )
        if usable_pages < 16:
            raise ConfigError("NAND module too small for vLog + SSTables")
        vlog_pages = int(usable_pages * config.vlog_fraction)
        vlog = VLog(ftl, base_lpn=0, capacity_pages=vlog_pages)
        sst_space = PageSpace(
            base_lpn=vlog_pages, capacity_pages=usable_pages - vlog_pages
        )

        # Durability mode: requested explicitly, or implied by a fault plan
        # that can cut power (recovery is pointless without OOB metadata).
        # Without it the journal stays None and every OOB/flush hook on the
        # data path short-circuits — the seed goldens are byte-identical.
        journal = None
        if config.crash_consistency or (
            injector is not None and injector.power_enabled
        ):
            from repro.recovery.journal import DurabilityJournal

            # Manifest checkpoints live in logical pages above the
            # vLog + SSTable space (they are found by scan, not mapped in
            # advance, so the region only needs to not collide).
            journal = DurabilityJournal(usable_pages, geometry.page_size)
            ftl.attach_journal(journal)

        # §4.2 runs disable NAND I/O to isolate transfer effects: the
        # buffer discards flushes and the MemTable never spills.
        memtable_bytes = (
            config.memtable_flush_bytes
            if config.nand_io_enabled
            else 2**62
        )
        lsm = LSMTree(
            ftl,
            vlog,
            sst_space,
            clock,
            latency,
            LSMConfig(memtable_flush_bytes=memtable_bytes),
            journal=journal,
        )
        buffer = NandPageBuffer(
            buffer_region,
            vlog,
            ftl,
            pool_entries=config.buffer_entries,
            nand_io_enabled=config.nand_io_enabled,
        )
        policy = make_policy(config, buffer, vlog_pages)
        # Ring depth must cover the driver's pipelined in-flight window.
        ring_depth = max(queue_depth, config.queue_depth)
        sq = SubmissionQueue(depth=ring_depth)
        cq = CompletionQueue(depth=ring_depth)
        if tracer is not None:
            sq.attach_tracer(tracer)
            cq.attach_tracer(tracer)
        controller = BandSlimController(
            config,
            link,
            host_mem,
            dma,
            buffer,
            policy,
            lsm,
            scratch_region,
            sq,
            cq,
            injector=injector,
            tracer=tracer,
            journal=journal,
        )
        admin_sq = SubmissionQueue(depth=queue_depth, qid=0)
        admin_cq = CompletionQueue(depth=queue_depth, qid=0)
        if tracer is not None:
            admin_sq.attach_tracer(tracer)
            admin_cq.attach_tracer(tracer)
        controller.attach_admin_queues(admin_sq, admin_cq)
        driver = BandSlimDriver(
            config, link, host_mem, controller, sq, cq,
            injector=injector, tracer=tracer,
        )
        return cls(
            config=config,
            clock=clock,
            latency=latency,
            link=link,
            host_mem=host_mem,
            dram=dram,
            flash=flash,
            ftl=ftl,
            gc=gc,
            vlog=vlog,
            lsm=lsm,
            buffer=buffer,
            policy=policy,
            controller=controller,
            driver=driver,
            injector=injector,
            tracer=tracer,
            journal=journal,
        )

    # --- mount-time recovery ---------------------------------------------------

    def remount(self) -> "KVSSD":
        """Recover after a power cut: scan OOB, rebuild, replay.

        Returns a fresh, usable :class:`KVSSD` sharing this device's flash
        array, clock, link and injector; the recovery accounting is on
        ``new_device.recovery``. Requires crash-consistency mode (see
        ``config.crash_consistency``). This device must not be used after.
        """
        from repro.recovery.remount import remount

        return remount(self)

    # --- metric roll-up -------------------------------------------------------

    def snapshot(self, seed_schema: bool = False) -> dict[str, float]:
        """Flat metric snapshot across every component.

        ``seed_schema=True`` reproduces the seed's exact key set for the
        frozen golden captures (see ``MetricSet.snapshot``).
        """
        out: dict[str, float] = {}
        out.update(self.link.meter.snapshot(seed_schema=seed_schema))
        out.update(self.flash.metrics.snapshot(seed_schema=seed_schema))
        out.update(self.ftl.metrics.snapshot(seed_schema=seed_schema))
        out.update(self.gc.metrics.snapshot(seed_schema=seed_schema))
        out.update(self.vlog.metrics.snapshot(seed_schema=seed_schema))
        out.update(self.buffer.metrics.snapshot(seed_schema=seed_schema))
        out.update(self.policy.metrics.snapshot(seed_schema=seed_schema))
        out.update(self.controller.metrics.snapshot(seed_schema=seed_schema))
        out.update(self.driver.metrics.snapshot(seed_schema=seed_schema))
        out.update(self.lsm.store.metrics.snapshot(seed_schema=seed_schema))
        if self.injector is not None:
            out.update(self.injector.metrics.snapshot(seed_schema=seed_schema))
        if not seed_schema:
            # Device-health gauges (not MetricSet counters, so exported
            # here): the crashcheck harness asserts the free pool never
            # silently bottoms out. Gated off the seed schema, whose key
            # set is frozen by the golden captures.
            out["ftl.bad_blocks"] = float(self.ftl.bad_block_count)
            out["ftl.free_blocks"] = float(self.ftl.free_block_count)
            out["ftl.free_block_low_water"] = float(self.ftl.free_block_low_water)
        out["clock.now_us"] = self.clock.now_us
        return out
