"""Network chaos: misbehaving clients and accept-path faults.

The client coroutines here connect to a live :class:`~repro.serve.server
.KVServer` and break the protocol contract in one specific, seeded way —
stall forever mid-command, spray garbage, declare a payload and hang up
halfway through it, or reset with responses still in flight. None of
them issue *device* ops, so they never advance the simulated clock: a
load run sharing the server keeps its virtual-time latency accounting
bit-identical whether or not the chaos clients are present. (Abrupt
disconnects with device ops queued are exercised deterministically in
the unit tests instead — see ``tests/serve/test_disconnect.py``.)
"""

from __future__ import annotations

import asyncio


class ServerChaos:
    """Deterministic accept-path fault plan for ``ServerSettings.chaos``.

    ``reset_every=N`` resets every Nth accepted connection on arrival
    (the client sees an immediate close — a listener-side RST). Counting
    accepts keeps the plan deterministic across runs.
    """

    def __init__(self, reset_every: int = 0) -> None:
        self.reset_every = reset_every
        self.accepts = 0
        self.resets = 0

    def allow_accept(self) -> bool:
        self.accepts += 1
        if self.reset_every > 0 and self.accepts % self.reset_every == 0:
            self.resets += 1
            return False
        return True


async def _close_quietly(writer) -> None:
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass


async def stalled_client(
    host: str, port: int, *,
    partial: bytes = b"GET stalled-ke",
    hold_s: float = 30.0,
) -> bool:
    """Dribble a partial command line, then go silent.

    Holds the connection until the server reaps it (idle timeout) or
    ``hold_s`` elapses. Returns True if the server hung up on us — the
    signal the slow-clients scenario asserts on.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(partial)  # no CRLF: never completes a request
        await writer.drain()
        try:
            data = await asyncio.wait_for(reader.read(1), hold_s)
        except asyncio.TimeoutError:
            return False
        return data == b""  # EOF: the server closed us
    except (ConnectionResetError, BrokenPipeError):
        return True
    finally:
        await _close_quietly(writer)


async def garbage_client(
    host: str, port: int, *, blob: bytes, read_timeout_s: float = 5.0,
) -> bytes:
    """Send ``blob`` verbatim; return every reply byte until the server
    closes the connection (or ``read_timeout_s`` of silence)."""
    reader, writer = await asyncio.open_connection(host, port)
    replies = bytearray()
    try:
        writer.write(blob)
        await writer.drain()
        writer.write_eof()
        while True:
            try:
                data = await asyncio.wait_for(
                    reader.read(1 << 16), read_timeout_s
                )
            except asyncio.TimeoutError:
                break
            if not data:
                break
            replies.extend(data)
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        await _close_quietly(writer)
    return bytes(replies)


async def truncated_set_client(
    host: str, port: int, *,
    key: bytes = b"trunc", declared: int = 64, sent: int = 10,
) -> None:
    """Declare a ``declared``-byte SET payload, send ``sent`` bytes,
    then vanish mid-frame (transport abort = RST, not FIN)."""
    _reader, writer = await asyncio.open_connection(host, port)
    writer.write(b"SET %s %d\r\n" % (key, declared) + b"x" * sent)
    await writer.drain()
    writer.transport.abort()


async def reset_client(
    host: str, port: int, *, pings: int = 4,
) -> None:
    """Pipeline ``pings`` inline requests and reset without reading any
    response — the writer task hits a dead socket mid-flush."""
    _reader, writer = await asyncio.open_connection(host, port)
    writer.write(b"PING\r\n" * pings)
    await writer.drain()
    writer.transport.abort()
