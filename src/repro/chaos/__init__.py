"""Chaos harness for the networked KV service.

Seeded, deterministic fault injection at three layers — the wire
(garbage frames, truncated payloads, resets, stalled clients), the
accept path (listener resets), and the backing store (shard loss,
rebuilds, power cuts, remounts) — plus a scenario runner that drives
open-loop load through the faults and judges the run with durability,
error-budget and latency-recovery oracles. See ``docs/chaos.md``.
"""

from repro.chaos.backend import ACTION_KINDS, BackendAction, ChaosBackend
from repro.chaos.net import (
    ServerChaos,
    garbage_client,
    reset_client,
    stalled_client,
    truncated_set_client,
)
from repro.chaos.scenario import (
    CHAOS_SCENARIOS,
    CHAOS_SCHEMA,
    ChaosScenario,
    ChaosScenarioReport,
    run_all,
    run_scenario,
)

__all__ = [
    "ACTION_KINDS",
    "BackendAction",
    "CHAOS_SCENARIOS",
    "CHAOS_SCHEMA",
    "ChaosBackend",
    "ChaosScenario",
    "ChaosScenarioReport",
    "ServerChaos",
    "garbage_client",
    "reset_client",
    "run_all",
    "run_scenario",
    "stalled_client",
    "truncated_set_client",
]
