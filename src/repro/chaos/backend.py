"""Backend chaos: scripted store faults fired at device-op indices.

:class:`ChaosBackend` wraps a :class:`~repro.serve.backend.StoreBackend`
and fires :class:`BackendAction`\\ s — kill a shard, rebuild it, scrub,
cut power, remount — immediately before the Nth *executed* device op.
Counting executed ops (instead of wall or virtual time) is what makes a
chaos run replayable: the same seed produces the same op stream, so the
fault lands between the same two ops every time, and the virtual-time
latency accounting downstream of it is bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.serve.backend import ExecResult, StoreBackend
from repro.serve.protocol import Request

#: Everything a BackendAction knows how to break (or heal).
ACTION_KINDS = frozenset(
    {"kill_shard", "rebuild_shard", "scrub", "power_cut", "remount"}
)


@dataclass(frozen=True)
class BackendAction:
    """Fire one store-level event just before executed device op ``at_op``.

    * ``kill_shard``    — fail-stop array device ``shard`` (media intact).
    * ``rebuild_shard`` — attach a replacement for ``shard`` and run the
      rebuild to completion; ``remount=True`` recovers the dead device's
      own media (crash-consistency mode), ``False`` streams a fresh copy
      from the surviving replicas.
    * ``scrub``         — full-array anti-entropy pass.
    * ``power_cut``     — cut power to a single-device store (requires a
      fault-plan-built device, so the injector exists).
    * ``remount``       — recover a power-cut single-device store via
      :meth:`~repro.serve.backend.StoreBackend.remount_store`.
    """

    at_op: int
    kind: str
    shard: int = 0
    remount: bool = True

    def __post_init__(self) -> None:
        if self.at_op < 0:
            raise ConfigError(f"at_op must be >= 0, got {self.at_op}")
        if self.kind not in ACTION_KINDS:
            raise ConfigError(
                f"unknown chaos action {self.kind!r}; "
                f"choose from {sorted(ACTION_KINDS)}"
            )


class ChaosBackend:
    """A StoreBackend proxy that injects scripted faults between ops.

    Everything the server touches (``execute``, ``health``, ``snapshot``,
    ``max_value_bytes``...) delegates to the wrapped backend; only
    ``execute`` is instrumented. Fired actions are recorded on
    :attr:`fired` (with the op index and virtual timestamp) for the
    scenario report.
    """

    def __init__(self, inner: StoreBackend, actions=()) -> None:
        self.inner = inner
        self.actions = sorted(actions, key=lambda a: a.at_op)
        self._next_action = 0
        #: Device ops executed so far (rejected requests never count).
        self.ops_seen = 0
        #: Chronological log of fired actions: dicts for the report.
        self.fired: list[dict] = []

    # --- delegation -------------------------------------------------------

    @property
    def store(self):
        return self.inner.store

    @property
    def now_us(self) -> float:
        return self.inner.now_us

    @property
    def max_value_bytes(self) -> int:
        return self.inner.max_value_bytes

    @property
    def supports_scan(self) -> bool:
        return self.inner.supports_scan

    @property
    def shards(self) -> int:
        return self.inner.shards

    def shard_of(self, key) -> int:
        return self.inner.shard_of(key)

    def health(self) -> dict:
        return self.inner.health()

    def snapshot(self) -> dict[str, float]:
        return self.inner.snapshot()

    def flush(self) -> None:
        self.inner.flush()

    # --- the instrumented path --------------------------------------------

    def execute(self, request: Request) -> ExecResult:
        actions = self.actions
        while (self._next_action < len(actions)
               and actions[self._next_action].at_op <= self.ops_seen):
            self._fire(actions[self._next_action])
            self._next_action += 1
        self.ops_seen += 1
        return self.inner.execute(request)

    def execute_batch(self, requests, queue_depth: int = 1) -> list:
        """Batched execution with faults still landing at exact op indices.

        A batch is split at every pending action's ``at_op`` boundary:
        the sub-slice up to the boundary executes through the inner
        backend's pipelined ``execute_batch``, the due action fires, and
        the remainder continues. A fault scripted for executed-op index N
        therefore fires between op N-1 and op N regardless of how the
        dispatcher grouped the stream — same placement, byte-identical
        virtual time, as the serial worker would give it.
        """
        results: list = []
        start = 0
        actions = self.actions
        while start < len(requests):
            while (self._next_action < len(actions)
                   and actions[self._next_action].at_op <= self.ops_seen):
                self._fire(actions[self._next_action])
                self._next_action += 1
            count = len(requests) - start
            if self._next_action < len(actions):
                gap = actions[self._next_action].at_op - self.ops_seen
                count = max(1, min(count, gap))
            sub = requests[start:start + count]
            results.extend(self.inner.execute_batch(sub, queue_depth))
            self.ops_seen += count
            start += count
        return results

    def _fire(self, action: BackendAction) -> None:
        store = self.inner.store
        if action.kind == "kill_shard":
            store.kill_device(action.shard)
        elif action.kind == "rebuild_shard":
            store.start_rebuild(action.shard, remount=action.remount)
            store.drain_rebuild()
        elif action.kind == "scrub":
            store.scrub()
        elif action.kind == "power_cut":
            injector = store.device.injector
            if injector is None:
                raise ConfigError(
                    "power_cut needs a device built with a FaultPlan "
                    "(the injector carries the power state)"
                )
            injector.force_power_cut(store.device.clock.now_us)
        elif action.kind == "remount":
            self.inner.remount_store()
        self.fired.append(
            {
                "at_op": self.ops_seen,
                "kind": action.kind,
                "shard": action.shard,
                "now_us": round(self.inner.now_us, 3),
            }
        )
