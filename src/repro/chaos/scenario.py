"""Deterministic chaos scenarios over the networked KV service.

Each :class:`ChaosScenario` boots an in-process server over a simulated
store, runs a seeded open-loop load (one connection — the determinism
anchor), injects faults, and judges the run with oracles:

* **Write durability** — every acknowledged SET/DEL must read back from
  the store afterwards. ``write_oracle="strict"`` requires the *last*
  acked state exactly (right for replicated arrays, where a fail-stop
  device never loses acked data). ``"no-corruption"`` is the honest
  bound after a real power cut: acked-but-unflushed writes may be lost
  (crashcheck invariant 2), so a key may read back as any of its
  previously acked states — but never as bytes that were *never* acked
  of it, and a flushed preload value is the durable floor (the runner
  issues one FLUSH after preloading).
* **Bounded errors** — terminal errors (ERR + retry give-ups + deadline
  misses) stay under ``max_error_fraction`` of all requests.
* **Latency recovery** — the recovery-phase p99 returns to within
  ``recovery_p99_factor`` x the steady-phase p99.
* **Expected counters** — scenario-specific floors on server metrics
  (e.g. the slow-clients run must actually reap its stalled clients).

Determinism: faults fire at *executed device-op indices*
(:class:`~repro.chaos.backend.BackendAction`), the load schedule is
seeded, and chaos clients never issue device ops — so two runs of the
same scenario and seed produce byte-identical JSON reports.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field

from repro.chaos.backend import BackendAction, ChaosBackend
from repro.chaos.net import (
    ServerChaos,
    garbage_client,
    reset_client,
    stalled_client,
    truncated_set_client,
)
from repro.core.config import preset as config_preset
from repro.errors import ConfigError, KeyNotFoundError, ReproError
from repro.faults.plan import FaultPlan
from repro.loadgen.arrivals import poisson_arrivals
from repro.loadgen.client import run_client
from repro.loadgen.ops import generate_ops, preload_values
from repro.loadgen.retry import RetryPolicy
from repro.serve.backend import StoreBackend
from repro.serve.server import KVServer, ServerSettings

#: Bump when the chaos report JSON shape changes.
CHAOS_SCHEMA = 1

_TOMBSTONE = object()  # oracle marker: the key's acked state is "absent"

#: Response kinds that mean the device actually served the request.
_COMPLETED_KINDS = frozenset({"STORED", "VALUE", "DELETED", "NOT_FOUND"})
#: Terminal kinds that never reached the device (state unchanged).
_NEVER_EXECUTED = frozenset({"SERVER_BUSY", "GAVE_UP", "DEADLINE_EXCEEDED"})

#: Server counters worth reporting (when present in the snapshot).
_REPORTED_COUNTERS = (
    "serve.requests",
    "serve.connections",
    "serve.busy_rejects",
    "serve.protocol_errors",
    "serve.not_found",
    "serve.backend_errors",
    "serve.disconnects.abrupt",
    "serve.dropped_requests",
    "serve.conns_idle_reaped",
    "serve.shutdown_rejects",
    "serve.breaker.opened",
    "serve.breaker.closed",
    "serve.breaker.rejected",
    "serve.breaker.probes",
    "serve.chaos.accept_resets",
)


@dataclass
class ChaosScenario:
    """One named, seeded fault-injection experiment."""

    name: str
    description: str
    preset: str = "backfill"
    array_shards: int = 1
    replication: int = 1
    write_quorum: int = 1
    crash_consistency: bool = False
    fault_plan: FaultPlan | None = None
    requests: int = 300
    rps: float = 4000.0
    num_keys: int = 120
    value_size: int = 128
    read_fraction: float = 0.5
    delete_fraction: float = 0.0
    window: int = 64
    retry: RetryPolicy | None = None
    #: ServerSettings overrides (idle_timeout_s, breaker knobs...).
    settings: dict = field(default_factory=dict)
    #: Accept-path fault plan: reset every Nth accepted connection.
    accept_reset_every: int = 0
    #: Scripted store faults at executed device-op indices.
    actions: tuple = ()
    #: Misbehaving clients run *before* the load phase (sequential).
    prelude: str = ""  # "" | "reset-storm" | "garbage-frames"
    #: Stalled clients held open *during* the load phase.
    stalled_clients: int = 0
    #: "strict" (last acked state) or "no-corruption" (any acked state).
    write_oracle: str = "strict"
    max_error_fraction: float = 0.0
    #: Recovery-phase p99 bound, as a multiple of steady p99; 0 disables.
    recovery_p99_factor: float = 5.0
    #: Counter-name -> required minimum value at the end of the run.
    expect_counters: dict = field(default_factory=dict)


@dataclass
class ChaosScenarioReport:
    """Everything one scenario run measured, plus the oracle verdict."""

    name: str
    seed: int
    requests: int
    preset: str
    array_shards: int
    replication: int
    write_oracle: str
    retries: int = 0
    phases: list = field(default_factory=list)
    chaos_events: list = field(default_factory=list)
    server_counters: dict = field(default_factory=dict)
    acked_writes: int = 0
    keys_checked: int = 0
    keys_uncertain: int = 0
    stalled_reaped: int = 0
    error_fraction: float = 0.0
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json_obj(self) -> dict:
        return {
            "schema": CHAOS_SCHEMA,
            "name": self.name,
            "seed": self.seed,
            "requests": self.requests,
            "preset": self.preset,
            "array_shards": self.array_shards,
            "replication": self.replication,
            "write_oracle": self.write_oracle,
            "retries": self.retries,
            "phases": self.phases,
            "chaos_events": self.chaos_events,
            "server_counters": self.server_counters,
            "acked_writes": self.acked_writes,
            "keys_checked": self.keys_checked,
            "keys_uncertain": self.keys_uncertain,
            "stalled_reaped": self.stalled_reaped,
            "error_fraction": self.error_fraction,
            "violations": list(self.violations),
            "ok": self.ok,
        }


# --- oracle helpers ---------------------------------------------------------


def _pctl(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = max(0, math.ceil(q / 100.0 * len(sorted_vals)) - 1)
    return sorted_vals[min(idx, len(sorted_vals) - 1)]


def _phase_rows(outcomes, requests: int) -> list[dict]:
    """Split outcomes into steady/chaos/recovery thirds by op index."""
    bounds = (
        ("steady", 0, requests // 3),
        ("chaos", requests // 3, 2 * requests // 3),
        ("recovery", 2 * requests // 3, requests),
    )
    rows = []
    for name, lo, hi in bounds:
        row = {
            "name": name, "requests": hi - lo, "completed": 0,
            "errors": 0, "busy_rejected": 0, "gave_up": 0,
            "deadline_exceeded": 0, "not_found": 0,
            "p50_us": 0.0, "p99_us": 0.0, "max_us": 0.0,
        }
        latencies = []
        for outcome in outcomes:
            if not lo <= outcome.op_index < hi:
                continue
            if outcome.kind == "SERVER_BUSY":
                row["busy_rejected"] += 1
            elif outcome.kind == "GAVE_UP":
                row["gave_up"] += 1
            elif outcome.kind == "DEADLINE_EXCEEDED":
                row["deadline_exceeded"] += 1
            elif outcome.kind in _COMPLETED_KINDS:
                if outcome.kind == "NOT_FOUND":
                    row["not_found"] += 1
                row["completed"] += 1
                latencies.append(outcome.latency_us)
            else:
                row["errors"] += 1
        latencies.sort()
        row["p50_us"] = round(_pctl(latencies, 50.0), 3)
        row["p99_us"] = round(_pctl(latencies, 99.0), 3)
        row["max_us"] = round(latencies[-1], 3) if latencies else 0.0
        rows.append(row)
    return rows


class _WriteOracle:
    """What the service *promised* about each key, from acked responses."""

    def __init__(self) -> None:
        #: key -> chronological acked states (bytes or _TOMBSTONE).
        self.history: dict[bytes, list] = {}
        #: Keys with a failed write whose device-side effect is unknown.
        self.uncertain: set[bytes] = set()
        self.acked_writes = 0

    def seed(self, key: bytes, value: bytes) -> None:
        self.history[key] = [value]

    def observe(self, op, outcome) -> None:
        if op.kind not in ("SET", "DEL"):
            return
        if outcome.kind in _NEVER_EXECUTED:
            return  # rejected before the device: state unchanged
        if op.kind == "SET" and outcome.kind == "STORED":
            self.history.setdefault(op.key, []).append(op.value)
            self.uncertain.discard(op.key)
            self.acked_writes += 1
        elif op.kind == "DEL" and outcome.kind in ("DELETED", "NOT_FOUND"):
            self.history.setdefault(op.key, []).append(_TOMBSTONE)
            self.uncertain.discard(op.key)
            self.acked_writes += 1
        else:  # ERR: the write may or may not have landed
            self.uncertain.add(op.key)

    def check(self, store, report, mode: str) -> None:
        """Read every tracked key back and judge it under ``mode``."""
        for key in sorted(self.history):
            if key in self.uncertain:
                report.keys_uncertain += 1
                continue
            report.keys_checked += 1
            try:
                got = store.get(key)
            except KeyNotFoundError:
                got = _TOMBSTONE
            except ReproError as exc:
                report.violations.append(
                    f"acked key {key.decode()} unreadable: {exc}"
                )
                continue
            states = self.history[key]
            if mode == "strict":
                want = states[-1]
                if got is not want and got != want:
                    report.violations.append(
                        f"acked write lost: key {key.decode()} read "
                        f"{_describe(got)}, expected {_describe(want)}"
                    )
            else:  # no-corruption
                if got is _TOMBSTONE:
                    if not any(s is _TOMBSTONE for s in states):
                        report.violations.append(
                            f"key {key.decode()} absent but never deleted "
                            f"(flushed preload is the durable floor)"
                        )
                elif not any(s is not _TOMBSTONE and s == got for s in states):
                    report.violations.append(
                        f"corruption: key {key.decode()} read bytes that "
                        f"were never an acked value of it"
                    )


def _describe(state) -> str:
    if state is _TOMBSTONE:
        return "<absent>"
    return f"{len(state)}B value"


# --- the runner -------------------------------------------------------------


async def _run_prelude(scenario: ChaosScenario, host: str, port: int) -> None:
    """Misbehaving clients, run sequentially so accept order is scripted."""
    if scenario.prelude == "reset-storm":
        clients = [
            reset_client(host, port, pings=4),
            truncated_set_client(host, port),
            reset_client(host, port, pings=2),
            garbage_client(host, port, blob=b"\x00\xffBLORP\r\n"),
            reset_client(host, port, pings=3),
            truncated_set_client(host, port, declared=256, sent=1),
        ]
    elif scenario.prelude == "garbage-frames":
        clients = [
            garbage_client(host, port, blob=b"\x00\xffBLORP\r\n"),
            garbage_client(host, port, blob=b"SET k 999999999\r\n"),
            garbage_client(host, port, blob=b"GET " + b"x" * 50 + b"\r\n"),
            garbage_client(host, port, blob=b"y" * 8192),
            truncated_set_client(host, port),
        ]
    else:
        return
    for client in clients:
        try:
            await client
        except (ConnectionResetError, BrokenPipeError, ConnectionError):
            pass  # the server (or the chaos plan) hung up on us — expected
        await asyncio.sleep(0)  # let server-side cleanup settle


def _build_backend(scenario: ChaosScenario) -> StoreBackend:
    config = config_preset(scenario.preset)
    if scenario.crash_consistency:
        config = config.with_overrides(crash_consistency=True)
    kwargs = {}
    if scenario.fault_plan is not None:
        if scenario.array_shards > 1:
            raise ConfigError("fault_plan applies to single-device scenarios")
        kwargs["fault_plan"] = scenario.fault_plan
    return StoreBackend.build(
        config,
        array_shards=scenario.array_shards,
        replication=scenario.replication,
        write_quorum=scenario.write_quorum,
        **kwargs,
    )


def run_scenario(
    name: str, *, seed: int = 0, requests: int | None = None,
) -> ChaosScenarioReport:
    """Run one catalog scenario; the report's ``ok`` is the verdict."""
    try:
        scenario = CHAOS_SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown chaos scenario {name!r}; "
            f"choose from {sorted(CHAOS_SCENARIOS)}"
        ) from None
    total = requests if requests is not None else scenario.requests
    report = ChaosScenarioReport(
        name=scenario.name,
        seed=seed,
        requests=total,
        preset=scenario.preset,
        array_shards=scenario.array_shards,
        replication=scenario.replication,
        write_oracle=scenario.write_oracle,
    )
    oracle = _WriteOracle()
    ops = generate_ops(
        total,
        num_keys=scenario.num_keys,
        value_size=scenario.value_size,
        read_fraction=scenario.read_fraction,
        delete_fraction=scenario.delete_fraction,
        seed=seed,
    )
    arrivals = poisson_arrivals(scenario.rps, total, seed=seed + 1)

    async def _run() -> None:
        backend = ChaosBackend(_build_backend(scenario), scenario.actions)
        for key, value in preload_values(
            scenario.num_keys, scenario.value_size, seed=seed
        ):
            backend.store.put(key, value)
            oracle.seed(key, value)
        # One FLUSH barrier: the preload is the durable floor even for
        # the power-cut scenarios (crashcheck invariant 1).
        backend.flush()
        settings = ServerSettings(**scenario.settings)
        if scenario.accept_reset_every > 0:
            settings.chaos = ServerChaos(scenario.accept_reset_every)
        server = KVServer(backend, settings)
        host, port = await server.start()
        try:
            await _run_prelude(scenario, host, port)
            stalled = [
                asyncio.ensure_future(stalled_client(host, port))
                for _ in range(scenario.stalled_clients)
            ]
            result = await run_client(
                host, port, ops, arrivals,
                conns=1, window=scenario.window,
                retry=scenario.retry, seed=seed + 2,
            )
            if stalled:
                reaped = await asyncio.wait_for(
                    asyncio.gather(*stalled), timeout=30.0
                )
                report.stalled_reaped = sum(1 for r in reaped if r)
            # Judge state *before* verification reads disturb anything.
            report.chaos_events = list(backend.fired)
            stats = server.stats()
            report.server_counters = {
                key: stats[key] for key in _REPORTED_COUNTERS if key in stats
            }
            for outcome in result.outcomes:
                report.retries += outcome.retries
                oracle.observe(ops[outcome.op_index], outcome)
            report.phases = _phase_rows(result.outcomes, total)
            report.acked_writes = oracle.acked_writes
            oracle.check(backend.store, report, scenario.write_oracle)
            if result.parse_errors:
                report.violations.append(
                    f"client-side parse errors: {result.parse_errors}"
                )
        finally:
            await server.stop()

    asyncio.run(_run())
    _judge(scenario, report)
    return report


def _judge(scenario: ChaosScenario, report: ChaosScenarioReport) -> None:
    errors = sum(
        row["errors"] + row["gave_up"] + row["deadline_exceeded"]
        for row in report.phases
    )
    report.error_fraction = round(errors / max(1, report.requests), 6)
    if report.error_fraction > scenario.max_error_fraction:
        report.violations.append(
            f"error fraction {report.error_fraction} exceeds bound "
            f"{scenario.max_error_fraction}"
        )
    if scenario.recovery_p99_factor > 0 and report.phases:
        steady = report.phases[0]["p99_us"]
        recovery = report.phases[-1]["p99_us"]
        if steady > 0 and recovery > scenario.recovery_p99_factor * steady:
            report.violations.append(
                f"recovery p99 {recovery}us did not return within "
                f"{scenario.recovery_p99_factor}x of steady p99 {steady}us"
            )
    if scenario.stalled_clients and (
        report.stalled_reaped < scenario.stalled_clients
    ):
        report.violations.append(
            f"only {report.stalled_reaped}/{scenario.stalled_clients} "
            f"stalled clients were reaped"
        )
    for counter, minimum in scenario.expect_counters.items():
        got = report.server_counters.get(counter, 0.0)
        if got < minimum:
            report.violations.append(
                f"counter {counter} = {got}, expected >= {minimum}"
            )


def run_all(*, seed: int = 0) -> list[ChaosScenarioReport]:
    """Every catalog scenario at one seed (slow: boots a store per run)."""
    return [run_scenario(name, seed=seed) for name in sorted(CHAOS_SCENARIOS)]


# --- the catalog ------------------------------------------------------------

CHAOS_SCENARIOS: dict[str, ChaosScenario] = {}


def _register(scenario: ChaosScenario) -> None:
    CHAOS_SCENARIOS[scenario.name] = scenario


_register(ChaosScenario(
    name="slow-clients",
    description=(
        "Stalled clients dribble partial commands and go silent while a "
        "clean open-loop load runs; the idle reaper must evict every one "
        "of them without perturbing the load's virtual-time latencies."
    ),
    stalled_clients=4,
    settings={"idle_timeout_s": 0.2},
    expect_counters={"serve.conns_idle_reaped": 4},
))

_register(ChaosScenario(
    name="reset-storm",
    description=(
        "Connections reset on accept (listener chaos), reset with "
        "responses in flight, and vanish mid-frame; the service must "
        "shrug and serve a clean load afterwards."
    ),
    accept_reset_every=2,
    prelude="reset-storm",
    expect_counters={
        "serve.chaos.accept_resets": 2,
        "serve.disconnects.abrupt": 1,
    },
))

_register(ChaosScenario(
    name="garbage-frames",
    description=(
        "Binary garbage, absurd length headers, oversized lines and "
        "truncated SET payloads; every parser must answer in-order ERRs "
        "or close cleanly — never crash, never desync a later client."
    ),
    prelude="garbage-frames",
    expect_counters={"serve.protocol_errors": 4},
))

_register(ChaosScenario(
    name="shard-loss-under-load",
    description=(
        "A 3-shard, 2-replica array loses a device mid-burst, serves "
        "degraded, rebuilds a fresh replacement from the survivors, and "
        "must end with zero acked-write loss and p99 back in band. The "
        "acceptance scenario: byte-deterministic at a fixed seed."
    ),
    array_shards=3,
    replication=2,
    write_quorum=1,
    requests=450,
    retry=RetryPolicy(),
    actions=(
        BackendAction(at_op=180, kind="kill_shard", shard=1),
        BackendAction(at_op=320, kind="rebuild_shard", shard=1, remount=False),
        BackendAction(at_op=420, kind="scrub"),
    ),
    max_error_fraction=0.02,
    recovery_p99_factor=5.0,
))

_register(ChaosScenario(
    name="breaker-degraded",
    description=(
        "An unreplicated 2-shard array loses a device, so half the "
        "keyspace errors until a remount rebuild heals it; the circuit "
        "breaker must open on the error run and close after recovery."
    ),
    array_shards=2,
    replication=1,
    write_quorum=1,
    crash_consistency=True,
    requests=600,
    settings={"breaker_error_threshold": 3, "breaker_probe_every": 4},
    actions=(
        BackendAction(at_op=210, kind="kill_shard", shard=0),
        BackendAction(at_op=330, kind="rebuild_shard", shard=0, remount=True),
    ),
    write_oracle="no-corruption",
    max_error_fraction=0.5,
    recovery_p99_factor=0.0,
    expect_counters={
        "serve.breaker.opened": 1,
        "serve.breaker.closed": 1,
        "serve.breaker.rejected": 1,
    },
))

_register(ChaosScenario(
    name="power-cut-remount",
    description=(
        "A single crash-consistent device loses power mid-burst and is "
        "remounted under the live server; acked state must never read "
        "back as bytes that were never acknowledged (torn pages stay "
        "invisible), and the flushed preload is the durable floor."
    ),
    crash_consistency=True,
    fault_plan=FaultPlan(power_loss_at_us=(1e15,)),
    requests=450,
    actions=(
        BackendAction(at_op=180, kind="power_cut"),
        BackendAction(at_op=300, kind="remount"),
    ),
    write_oracle="no-corruption",
    max_error_fraction=0.35,
    recovery_p99_factor=5.0,
))
