"""Crash-consistency checker: cut power at sampled points, verify invariants.

The harness runs a seeded KV workload with periodic NVMe FLUSH barriers,
then replays it against fresh devices that lose power at timestamps
sampled across the run, remounting after each cut and checking the three
durability invariants:

1. **flushed-and-acked ⇒ durable** — an operation acknowledged before a
   completed FLUSH must survive the crash exactly.
2. **acked-but-unflushed ⇒ absent-or-durable** — an operation
   acknowledged after the last FLUSH may be lost or may survive, but
   nothing else: the key must read back as one of its legitimately
   acknowledged states.
3. **no corruption** — a GET never returns bytes that were never an
   acknowledged value of that key (torn pages must be detected by the
   OOB CRC and excluded, never surfaced).

Everything is deterministic for a fixed seed: the workload stream, the
sampled cut timestamps (the dry run's end time seeds the sample space)
and the simulated device itself.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.config import BandSlimConfig
from repro.device.kvssd import KVSSD
from repro.errors import KeyNotFoundError, PowerLossError
from repro.faults.plan import FaultPlan
from repro.units import MIB

#: One FLUSH barrier per this many operations.
FLUSH_INTERVAL = 64

#: Value-size mix: sub-piggyback, sub-page, multi-page.
_SIZE_BUCKETS = (24, 56, 300, 2000, 9000)

#: Sentinel for "key absent" in oracle state sets.
_ABSENT = None


@dataclass
class CrashCheckReport:
    """Aggregate outcome of one crashcheck run."""

    ops: int
    crash_points: int
    seed: int
    #: Simulated end time of the dry (cut-free) run, in µs.
    dry_run_us: float
    #: Cuts that actually fired (a sampled point past the last device
    #: activity never triggers; the run then ends as a clean shutdown).
    cuts_fired: int
    #: Torn pages detected (and retired) across all remounts.
    torn_pages: int
    #: vLog directory entries replayed across all remounts.
    entries_replayed: int
    #: Human-readable invariant violations; empty means the device passed.
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json_obj(self) -> dict:
        """JSON-serializable view (the CLI's ``--json`` report shape)."""
        from dataclasses import asdict

        out = asdict(self)
        out["ok"] = self.ok
        return out


def _workload(ops: int, seed: int):
    """The deterministic op stream: ('put', k, v) | ('delete', k) | ('flush',).

    Deletes target keys that are live at that point of the stream, so the
    generated sequence is identical however the consumer executes it.
    """
    rng = random.Random(seed)
    keyspace = max(8, ops // 4)
    live: set[bytes] = set()
    out = []
    for i in range(ops):
        key = f"k{rng.randrange(keyspace):08d}".encode()
        if rng.random() < 0.12 and key in live:
            out.append(("delete", key, b""))
            live.discard(key)
        else:
            base = rng.choice(_SIZE_BUCKETS)
            size = max(1, base + rng.randrange(-8, 9))
            value = bytes(rng.randrange(256) for _ in range(16)) * (
                (size + 15) // 16
            )
            out.append(("put", key, value[:size]))
            live.add(key)
        if (i + 1) % FLUSH_INTERVAL == 0:
            out.append(("flush", b"", b""))
    return out


def _build_config(config: BandSlimConfig | None) -> BandSlimConfig:
    base = config or BandSlimConfig()
    # Small module + small buffer pool: programs (and therefore torn-page
    # windows and replayable vLog tails) happen within a short workload.
    return base.with_overrides(
        crash_consistency=True,
        nand_capacity_bytes=min(base.nand_capacity_bytes, 64 * MIB),
        buffer_entries=min(base.buffer_entries, 16),
    )


def _run_until_cut(device: KVSSD, ops):
    """Execute the op stream, maintaining the durability oracle.

    Returns ``(durable, since_flush, inflight)``: the per-key state at the
    last completed FLUSH, the acked states since it, and the op that was
    in flight when power died (acked by neither side — the spec allows it
    to surface or not).
    """
    driver = device.driver
    current: dict[bytes, bytes | None] = {}
    durable: dict[bytes, bytes | None] = {}
    since_flush: dict[bytes, list] = {}
    inflight = None
    for kind, key, value in ops:
        try:
            if kind == "put":
                inflight = (key, value)
                driver.put(key, value)
            elif kind == "delete":
                inflight = (key, _ABSENT)
                driver.delete(key)
            else:
                inflight = None
                driver.nvme_flush()
        except PowerLossError:
            return durable, since_flush, inflight
        # Acked: fold into the oracle.
        if kind == "put":
            current[key] = value
            since_flush.setdefault(key, []).append(value)
        elif kind == "delete":
            current[key] = _ABSENT
            since_flush.setdefault(key, []).append(_ABSENT)
        else:
            durable = dict(current)
            since_flush = {}
        inflight = None
    return durable, since_flush, None


def _verify(device: KVSSD, durable, since_flush, inflight, label, violations):
    """Check every touched key's post-remount state against the oracle."""
    keys = set(durable) | set(since_flush)
    maybe_inflight = dict([inflight]) if inflight else {}
    keys |= set(maybe_inflight)
    for key in sorted(keys):
        allowed = {None if v is _ABSENT else v for v in (
            [durable.get(key, _ABSENT)]
            + since_flush.get(key, [])
            + ([maybe_inflight[key]] if key in maybe_inflight else [])
        )}
        try:
            got = device.driver.get(key).value
        except KeyNotFoundError:
            got = None
        if got not in allowed:
            if key not in since_flush and key not in maybe_inflight:
                kind = "flushed-and-acked op lost or altered"
            elif got is not None:
                kind = "corrupt or never-acked value surfaced"
            else:
                kind = "illegal state after crash"
            violations.append(
                f"{label}: key {key.decode()}: {kind} "
                f"(got {'absent' if got is None else f'{len(got)}B'}, "
                f"allowed {sorted('absent' if v is None else f'{len(v)}B' for v in allowed)})"
            )


def run_crashcheck(
    ops: int = 2000,
    crash_points: int = 25,
    seed: int = 7,
    config: BandSlimConfig | None = None,
    progress=None,
) -> CrashCheckReport:
    """Run the checker; see the module docstring for the invariants."""
    cfg = _build_config(config)
    stream = _workload(ops, seed)

    # Dry run (same durability config, no injector): learn the workload's
    # end time so cut samples cover the whole execution.
    dry = KVSSD.build(cfg)
    for kind, key, value in stream:
        if kind == "put":
            dry.driver.put(key, value)
        elif kind == "delete":
            dry.driver.delete(key)
        else:
            dry.driver.nvme_flush()
    t_end = dry.clock.now_us

    cut_rng = random.Random((seed << 1) ^ 0x5BD1E995)
    cuts = sorted(cut_rng.uniform(0.0, t_end) for _ in range(crash_points))

    violations: list[str] = []
    cuts_fired = 0
    torn_total = 0
    replayed_total = 0
    for index, cut_us in enumerate(cuts):
        plan = FaultPlan(seed=seed, power_loss_at_us=(cut_us,))
        device = KVSSD.build(cfg, fault_plan=plan)
        durable, since_flush, inflight = _run_until_cut(device, stream)
        if device.injector.power_lost:
            cuts_fired += 1
        label = f"cut#{index}@{cut_us:.0f}us"
        recovered = device.remount()
        report = recovered.recovery
        torn_total += report.torn_pages
        replayed_total += report.entries_replayed
        _verify(recovered, durable, since_flush, inflight, label, violations)
        # The recovered device must still be writable (spare headroom
        # survived the crash) and its health gauges sane.
        probe = b"crashcheck:probe"
        try:
            recovered.driver.put(probe, b"post-remount")
            if recovered.driver.get(probe).value != b"post-remount":
                violations.append(f"{label}: post-remount probe read mismatch")
        except Exception as exc:  # noqa: BLE001 - any failure is a finding
            violations.append(f"{label}: post-remount write failed: {exc!r}")
        snap = recovered.snapshot()
        if snap["ftl.bad_blocks"] > recovered.ftl.spare_blocks:
            violations.append(f"{label}: bad blocks exceed the spare pool")
        if progress is not None:
            progress(index + 1, len(cuts), report, len(violations))
    return CrashCheckReport(
        ops=ops,
        crash_points=crash_points,
        seed=seed,
        dry_run_us=t_end,
        cuts_fired=cuts_fired,
        torn_pages=torn_total,
        entries_replayed=replayed_total,
        violations=violations,
    )
