"""The durability journal: what the device persists beyond raw pages.

Crash-consistency mode changes nothing about *where* data goes — values
still pack into vLog pages, index entries into SSTable pages. What it adds
is enough *metadata* for a cold remount to rebuild every volatile
structure from media alone:

* **OOB stamping** — every FTL program carries (LPN, device-wide sequence
  number, payload CRC) in the page's spare area; the journal itself only
  holds the *vLog value directory* entries waiting to ride along.
* **vLog value directory** — each committed value records
  ``(key, lpn, offset, size, op_seq)`` keyed by the *last* logical page of
  its span; when that page is programmed, the entries embed in its OOB.
  At remount, entries newer than the manifest checkpoint replay into the
  LSM-tree — the WAL substitute that makes acked-and-flushed writes
  durable without a separate log device.
* **manifest checkpoint** — written only by the NVMe FLUSH command: the
  SSTable level layout, the logical allocator states and the
  index-operation sequence number up to which the tree is durable. Pages
  live in a logical region above the vLog/SSTable space and are found by
  the remount scan like any other page.
* **deferred releases** — dead SSTables (compaction inputs) keep their
  pages mapped until the *next* manifest is durable, so a crash between a
  compaction and its checkpoint can still recover the previous layout.
"""

from __future__ import annotations

import json
import struct

from repro.errors import ReproError

#: Manifest page header: magic, generation, part index, part count,
#: payload bytes in this part.
_HEADER = struct.Struct("<4sIIII")
_MAGIC = b"BSMF"


class RecoveryError(ReproError):
    """Mount-time recovery could not reconstruct a consistent device."""


class DurabilityJournal:
    """Crash-consistency bookkeeping shared by FTL, LSM and controller."""

    def __init__(self, manifest_base_lpn: int, page_size: int) -> None:
        if manifest_base_lpn <= 0 or page_size <= _HEADER.size:
            raise RecoveryError(
                f"bad journal shape: base {manifest_base_lpn}, "
                f"page {page_size}"
            )
        self.manifest_base_lpn = manifest_base_lpn
        self.page_size = page_size
        #: Last-LPN of a value span -> directory entries waiting to embed
        #: in that page's OOB when it programs.
        self._pending: dict[int, list[tuple]] = {}
        #: Dead SSTables whose pages stay mapped until the next manifest.
        self._deferred: list = []
        #: vLog pages the compactor reclaimed, trimmed only once the next
        #: manifest is durable (the durable index may still reference them).
        self._deferred_trims: list[int] = []
        #: vLog compaction frontier as of the last durable manifest: every
        #: logical page below it was durably trimmed, so the remount scan
        #: must never map it again ("no resurrection").
        self.vlog_trimmed_through = 0
        #: op_seq up to which the manifest has the tree durable.
        self.checkpoint_op_seq = 0
        #: Monotonic manifest generation (0 = never written).
        self.manifest_gen = 0
        #: Next free logical page in the manifest region.
        self._manifest_next = manifest_base_lpn
        #: Logical pages of the currently durable manifest generation.
        self.prev_manifest_lpns: list[int] = []

    # --- vLog value directory ------------------------------------------------

    def record_value(self, key: bytes, addr, op_seq: int) -> None:
        """Register a committed value for OOB embedding.

        The entry rides the *last* page of the value's span: replay needs
        the whole value durable, and pages program in span order, so the
        last page's arrival implies the others made it too (remount still
        verifies every spanned LPN is mapped).
        """
        last_lpn = addr.lpn + (addr.offset + addr.size - 1) // self.page_size
        entry = (bytes(key), addr.lpn, addr.offset, addr.size, op_seq)
        self._pending.setdefault(last_lpn, []).append(entry)

    def pop_meta(self, lpn: int) -> tuple:
        """Directory entries to embed in ``lpn``'s OOB (consumed once)."""
        entries = self._pending.pop(lpn, None)
        return tuple(entries) if entries else ()

    # --- deferred SSTable release ---------------------------------------------

    def defer_release(self, table) -> None:
        """Park a dead table until the next manifest is durable."""
        self._deferred.append(table)

    def defer_vlog_trim(self, lpn: int) -> None:
        """Park a compacted vLog page until the next manifest is durable.

        Trimming immediately would let GC erase a page the *durable* index
        (last manifest + replayable directory entries) still references; a
        crash before the next checkpoint would then read into the void.
        """
        self._deferred_trims.append(lpn)

    # --- manifest checkpoint ----------------------------------------------------

    def write_manifest(self, lsm) -> list[int]:
        """Persist a new manifest generation; returns its logical pages.

        Called with the device drained (buffer + MemTable flushed): the
        serialized layout references only pages already on NAND. The
        logical-space free list is serialized *as if* the deferred tables
        were already released — they are, right after the new generation
        is durable — so a crash on either side of the release restores a
        consistent allocator.
        """
        space = lsm.store.space
        deferred_lpns = [
            lpn for table in self._deferred for lpn in table.lpns
        ]
        self.manifest_gen += 1
        payload = json.dumps(
            {
                "gen": self.manifest_gen,
                "op_seq": lsm.last_op_seq,
                "vlog_next": lsm.vlog._next_lpn,
                "vlog_trimmed_through": self.vlog_trimmed_through,
                "space_next": space._next,
                "space_free": sorted(space._free + deferred_lpns),
                "levels": [
                    [
                        {
                            "id": t.table_id,
                            "entries": t.entry_count,
                            "pages": t.lpns,
                        }
                        for t in level
                    ]
                    for level in lsm.store.levels
                ],
            },
            separators=(",", ":"),
        ).encode("ascii")
        chunk_size = self.page_size - _HEADER.size
        chunks = [
            payload[i : i + chunk_size]
            for i in range(0, len(payload), chunk_size)
        ] or [b""]
        lpns: list[int] = []
        for part, chunk in enumerate(chunks):
            lpn = self._manifest_next
            self._manifest_next += 1
            header = _HEADER.pack(
                _MAGIC, self.manifest_gen, part, len(chunks), len(chunk)
            )
            lsm.ftl.write(lpn, header + chunk)
            lpns.append(lpn)
        # The new generation is durable: the previous one and the deferred
        # tables' pages may now really go away.
        for lpn in self.prev_manifest_lpns:
            if lsm.ftl.is_mapped(lpn):
                lsm.ftl.trim(lpn)
        self.prev_manifest_lpns = lpns
        self.checkpoint_op_seq = lsm.last_op_seq
        for table in self._deferred:
            table.release(lsm.ftl, space)
        self._deferred.clear()
        for trim_lpn in self._deferred_trims:
            if lsm.ftl.is_mapped(trim_lpn):
                lsm.ftl.trim(trim_lpn)
        self._deferred_trims.clear()
        return lpns


def parse_manifest_page(data: bytes):
    """Decode one manifest page: (gen, part, total, chunk) or None."""
    if len(data) < _HEADER.size:
        return None
    magic, gen, part, total, length = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC or total < 1 or part >= total:
        return None
    if _HEADER.size + length > len(data):
        return None
    return gen, part, total, data[_HEADER.size : _HEADER.size + length]


def assemble_manifest(parts: dict[int, tuple[int, bytes]]):
    """Reassemble a generation's payload from its per-part chunks.

    ``parts`` maps part index -> (declared part count, chunk). Returns the
    parsed payload dict, or None if the generation is incomplete (a crash
    landed mid-write) or corrupt.
    """
    if 0 not in parts:
        return None
    total = parts[0][0]
    if sorted(parts) != list(range(total)):
        return None
    if any(declared != total for declared, _ in parts.values()):
        return None
    try:
        return json.loads(b"".join(parts[i][1] for i in range(total)))
    except (ValueError, UnicodeDecodeError):
        return None
