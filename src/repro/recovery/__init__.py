"""Crash consistency: durability journal, mount-time recovery, checker.

The pieces (see docs/crash-consistency.md):

* :class:`~repro.recovery.journal.DurabilityJournal` — device-side state
  that makes volatile structures reconstructible: per-page OOB stamping
  (via the FTL), the vLog value directory, and the manifest checkpoint
  written at NVMe FLUSH.
* :func:`~repro.recovery.remount.remount` — full-device OOB scan that
  rebuilds the FTL mapping, restores the manifest's LSM level layout and
  replays the durable vLog tail, returning a fresh :class:`KVSSD` plus a
  :class:`~repro.recovery.remount.RecoveryReport`.
* :func:`~repro.recovery.crashcheck.run_crashcheck` — the harness that
  cuts power at sampled points of a seeded workload and verifies the
  durability invariants after every remount.
"""

from repro.recovery.crashcheck import CrashCheckReport, run_crashcheck
from repro.recovery.journal import DurabilityJournal
from repro.recovery.remount import RecoveryReport, remount

__all__ = [
    "CrashCheckReport",
    "DurabilityJournal",
    "RecoveryReport",
    "remount",
    "run_crashcheck",
]
