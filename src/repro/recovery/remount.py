"""Mount-time recovery: rebuild a KV-SSD's volatile state from media.

After a power cut every in-RAM structure is gone — the FTL mapping, the
MemTable, the write buffer and the packing pointers. What survives is the
NAND array itself plus the per-page OOB metadata stamped in
crash-consistency mode. :func:`remount` performs the classic three-phase
KV-SSD mount:

1. **OOB scan** — read every programmed physical page (booked on the NAND
   timeline: mount time is simulated time), discard torn pages (stored CRC
   cannot match a partially programmed payload), and pick the
   highest-sequence-number copy per logical page.
2. **Manifest restore** — reassemble the newest complete manifest
   generation; it fixes the SSTable level layout, the logical allocators
   and the checkpointed operation sequence number. SSTable-region pages
   *not* referenced by the restored manifest stay unmapped (dead tables,
   trimmed checkpoints — GC reclaims them), which is what keeps
   trimmed-then-crashed pages from resurrecting.
3. **vLog tail replay** — value-directory entries riding vLog OOB that are
   newer than the checkpoint re-enter the LSM-tree in operation order,
   provided every page of the value's span survived.

The result is a fresh :class:`~repro.device.kvssd.KVSSD` sharing the old
device's flash array, clock, link and injector, plus a
:class:`RecoveryReport` accounting for what was found, kept and lost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.packing import NandPageBuffer, make_policy
from repro.lsm.addressing import ValueAddress
from repro.lsm.space import PageSpace
from repro.lsm.sstable import SSTable, _PageMeta, decode_entries
from repro.lsm.tree import LSMConfig, LSMTree
from repro.lsm.vlog import VLog
from repro.memory.device import DeviceDRAM
from repro.memory.dma import DMAEngine
from repro.nand.flash import page_crc
from repro.nand.ftl import PageMappedFTL
from repro.nand.gc import GreedyGarbageCollector
from repro.nvme.queue import CompletionQueue, SubmissionQueue
from repro.recovery.journal import (
    DurabilityJournal,
    RecoveryError,
    assemble_manifest,
    parse_manifest_page,
)


@dataclass(frozen=True)
class RecoveryReport:
    """What one remount scan found and what it did about it."""

    #: Physical pages read during the OOB scan.
    pages_scanned: int
    #: Pages whose program a power cut tore (OOB CRC mismatch); retired.
    torn_pages: int
    #: Intact pages superseded by a newer copy or unreferenced (GC fodder).
    stale_pages: int
    #: Logical pages in the rebuilt FTL mapping.
    mapped_lpns: int
    #: Manifest generation restored (0 = none found; cold layout).
    manifest_gen: int
    #: SSTables reattached from the manifest's level layout.
    tables_restored: int
    #: vLog directory entries replayed into the LSM-tree.
    entries_replayed: int
    #: Post-checkpoint entries discarded (value span not fully durable).
    entries_discarded: int
    #: Simulated time the whole remount took (scan + restore + replay).
    recovery_us: float
    #: Bad blocks carried across the crash.
    bad_blocks: int


def remount(device):
    """Recover ``device`` after a power cut; returns a fresh KVSSD.

    The new device shares the old one's flash array, clock, PCIe link,
    host memory, injector and tracer; everything volatile is rebuilt from
    the media scan. The old device object must not be used afterwards.
    The report is attached as ``new_device.recovery``.
    """
    from repro.device.kvssd import KVSSD

    old_journal = device.journal
    if old_journal is None:
        raise RecoveryError(
            "device was not built in crash-consistency mode: enable "
            "config.crash_consistency or a power-loss fault plan"
        )
    clock = device.clock
    flash = device.flash
    tracer = device.tracer
    config = device.config
    geo = flash.geometry
    page_size = geo.page_size
    vlog_end = device.vlog.end_lpn
    manifest_base = old_journal.manifest_base_lpn
    if device.injector is not None:
        device.injector.power_restore()
    t_start = clock.now_us

    # --- phase 1: OOB scan ---------------------------------------------------
    torn = 0
    max_seq = 0
    pages_scanned = 0
    #: lpn -> (seq, ppn, meta) winners, per region.
    vlog_best: dict[int, tuple[int, int, tuple]] = {}
    sst_best: dict[int, tuple[int, int]] = {}
    #: gen -> part -> (seq, total, chunk, lpn, ppn).
    gens: dict[int, dict[int, tuple[int, int, bytes, int, int]]] = {}
    manifest_next = manifest_base
    for ppn in flash.programmed_ppns():
        data, oob = flash.scan_read(ppn)
        pages_scanned += 1
        if oob is None:
            continue  # programmed without OOB: unrecoverable by design
        if oob.seq > max_seq:
            max_seq = oob.seq
        if oob.torn or page_crc(data) != oob.crc:
            torn += 1
            continue
        lpn = oob.lpn
        if lpn < vlog_end:
            cur = vlog_best.get(lpn)
            if cur is None or oob.seq > cur[0]:
                vlog_best[lpn] = (oob.seq, ppn, oob.meta)
        elif lpn < manifest_base:
            cur_s = sst_best.get(lpn)
            if cur_s is None or oob.seq > cur_s[0]:
                sst_best[lpn] = (oob.seq, ppn)
        else:
            if lpn >= manifest_next:
                manifest_next = lpn + 1
            parsed = parse_manifest_page(data)
            if parsed is None:
                continue
            gen, part, total, chunk = parsed
            slot = gens.setdefault(gen, {})
            cur_m = slot.get(part)
            if cur_m is None or oob.seq > cur_m[0]:
                slot[part] = (oob.seq, total, chunk, lpn, ppn)
    t_scan = clock.now_us
    if tracer is not None:
        tracer.span(
            "recovery", "oob_scan", t_start, t_scan, phase="other",
            phase_us=t_scan - t_start, pages=pages_scanned, torn=torn,
        )

    # --- phase 2: manifest restore ---------------------------------------------
    manifest = None
    manifest_parts: dict[int, tuple[int, int, bytes, int, int]] = {}
    for gen in sorted(gens, reverse=True):
        slot = gens[gen]
        payload = assemble_manifest(
            {part: (rec[1], rec[2]) for part, rec in slot.items()}
        )
        if payload is not None and payload.get("gen") == gen:
            manifest = payload
            manifest_parts = slot
            break
    restored_gen = manifest["gen"] if manifest else 0
    checkpoint_op_seq = manifest["op_seq"] if manifest else 0
    trimmed_through = manifest.get("vlog_trimmed_through", 0) if manifest else 0

    # The rebuilt mapping: every intact vLog winner the durable compaction
    # frontier has not reclaimed (trimmed-then-crashed pages must not
    # resurrect); SSTable pages only if the restored manifest references
    # them; the restored manifest's own pages (so the next checkpoint can
    # trim them).
    mapping: dict[int, int] = {
        lpn: ppn
        for lpn, (_, ppn, _) in vlog_best.items()
        if lpn >= trimmed_through
    }
    table_specs: list[tuple[int, dict]] = []
    if manifest:
        for level_index, level in enumerate(manifest["levels"]):
            for spec in level:
                table_specs.append((level_index, spec))
                for lpn in spec["pages"]:
                    if lpn not in sst_best:
                        raise RecoveryError(
                            f"manifest gen {restored_gen} references SSTable "
                            f"page {lpn} with no intact copy on media"
                        )
                    mapping[lpn] = sst_best[lpn][1]
    manifest_lpns = [
        rec[3] for _, rec in sorted(manifest_parts.items())
    ]
    for _, rec in manifest_parts.items():
        mapping[rec[3]] = rec[4]
    stale = pages_scanned - torn - len(mapping)

    # --- rebuild the device around the surviving flash array --------------------
    journal = DurabilityJournal(manifest_base, page_size)
    journal.checkpoint_op_seq = checkpoint_op_seq
    # Future generations must outnumber every stale one on media, even the
    # incomplete casualty of a mid-checkpoint crash.
    journal.manifest_gen = max([restored_gen, *gens]) if gens else restored_gen
    journal._manifest_next = manifest_next
    journal.prev_manifest_lpns = manifest_lpns
    journal.vlog_trimmed_through = trimmed_through

    ftl = PageMappedFTL(
        flash,
        ecc_correctable_bits=config.ecc_correctable_bits,
        read_retry_limit=config.read_retry_limit,
        program_retry_limit=config.program_retry_limit,
        tracer=tracer,
        journal=journal,
    )
    gc = GreedyGarbageCollector(ftl)
    ftl.set_gc(gc)
    if config.read_cache_pages > 0:
        from repro.memory.cache import PageCache

        # A fresh (empty) cache: torn pages retired during the scan and
        # any pre-cut contents are gone with the power cut — nothing
        # stale can survive the remount.
        ftl.attach_read_cache(
            PageCache(config.read_cache_pages),
            hit_cost_us=config.read_cache_hit_us,
        )
    ftl.adopt_mapping(
        mapping, bad_blocks=device.ftl._bad_blocks, next_seq=max_seq
    )

    vlog = VLog(ftl, base_lpn=0, capacity_pages=device.vlog.capacity_pages)
    vlog_mapped = [lpn for lpn in vlog_best if lpn in mapping]
    # The write pointer resumes past everything ever allocated: surviving
    # pages, the checkpointed allocator, and the reclaimed (trimmed)
    # region — the vLog's logical space is append-only and never wraps.
    vlog_next = max(
        (max(vlog_mapped) + 1) if vlog_mapped else vlog.base_lpn,
        manifest["vlog_next"] if manifest else vlog.base_lpn,
        trimmed_through,
    )
    vlog.resume(vlog_next)

    old_space = device.lsm.store.space
    space = PageSpace(
        base_lpn=old_space.base_lpn, capacity_pages=old_space.capacity_pages
    )
    if manifest:
        space._next = manifest["space_next"]
        space._free = list(manifest["space_free"])

    buffer_bytes = config.buffer_entries * page_size
    dram = DeviceDRAM(buffer_bytes + config.scratch_bytes)
    buffer_region = dram.carve_region("nand_page_buffer", buffer_bytes)
    scratch_region = dram.carve_region("scratch", config.scratch_bytes)
    dma = DMAEngine(device.link, dram, device.host_mem)

    memtable_bytes = (
        config.memtable_flush_bytes if config.nand_io_enabled else 2**62
    )
    lsm = LSMTree(
        ftl,
        vlog,
        space,
        clock,
        device.latency,
        LSMConfig(memtable_flush_bytes=memtable_bytes),
        journal=journal,
    )
    lsm.last_op_seq = checkpoint_op_seq

    # Reattach the manifest's SSTables; fence keys come from re-reading
    # each index page (more mount-time NAND reads, honestly charged).
    scheme = lsm.config.scheme
    tables_restored = 0
    max_table_id = SSTable._next_id
    for level_index, spec in table_specs:
        metas = []
        for lpn in spec["pages"]:
            entries = decode_entries(ftl.read(lpn), scheme, page_size)
            if not entries:
                raise RecoveryError(f"restored SSTable page {lpn} is empty")
            metas.append(
                _PageMeta(
                    lpn=lpn,
                    first_key=entries[0][0],
                    last_key=entries[-1][0],
                )
            )
        table = SSTable(
            spec["id"], metas, spec["entries"], scheme, page_size
        )
        lsm.store.levels[level_index].append(table)
        tables_restored += 1
        if spec["id"] > max_table_id:
            max_table_id = spec["id"]
    SSTable._next_id = max_table_id
    for level in lsm.store.levels[1:]:
        level.sort(key=lambda t: t.min_key)
    t_manifest = clock.now_us
    if tracer is not None:
        tracer.span(
            "recovery", "manifest_restore", t_scan, t_manifest,
            phase="other", phase_us=t_manifest - t_scan,
            gen=restored_gen, tables=tables_restored,
        )

    buffer = NandPageBuffer(
        buffer_region,
        vlog,
        ftl,
        pool_entries=config.buffer_entries,
        nand_io_enabled=config.nand_io_enabled,
    )
    buffer.resume(vlog_next - vlog.base_lpn)
    policy = make_policy(config, buffer, vlog.capacity_pages)
    policy.resume_at((vlog_next - vlog.base_lpn) * page_size)

    # --- phase 3: vLog tail replay ---------------------------------------------
    directory: list[tuple] = []
    for lpn, (_, _, meta) in vlog_best.items():
        if lpn in mapping:
            directory.extend(meta)
    newer = [e for e in directory if e[4] > checkpoint_op_seq]
    newer.sort(key=lambda e: e[4])
    replayed = 0
    discarded = 0
    max_replayed_seq = checkpoint_op_seq
    for key, lpn, offset, size, op_seq in newer:
        span_last = lpn + (offset + size - 1) // page_size
        if all(ftl.is_mapped(p) for p in range(lpn, span_last + 1)):
            lsm.put(bytes(key), ValueAddress(lpn=lpn, offset=offset, size=size))
            replayed += 1
            if op_seq > max_replayed_seq:
                max_replayed_seq = op_seq
        else:
            discarded += 1
    lsm.last_op_seq = max_replayed_seq
    t_replay = clock.now_us
    if tracer is not None:
        tracer.span(
            "recovery", "replay", t_manifest, t_replay, phase="other",
            phase_us=t_replay - t_manifest,
            replayed=replayed, discarded=discarded,
        )

    # --- reassemble the host stack ----------------------------------------------
    ring_depth = max(device.controller.sq.depth, config.queue_depth)
    sq = SubmissionQueue(depth=ring_depth)
    cq = CompletionQueue(depth=ring_depth)
    if tracer is not None:
        sq.attach_tracer(tracer)
        cq.attach_tracer(tracer)
    from repro.core.controller import BandSlimController
    from repro.core.driver import BandSlimDriver

    controller = BandSlimController(
        config,
        device.link,
        device.host_mem,
        dma,
        buffer,
        policy,
        lsm,
        scratch_region,
        sq,
        cq,
        injector=device.injector,
        tracer=tracer,
        journal=journal,
    )
    admin_sq = SubmissionQueue(depth=ring_depth, qid=0)
    admin_cq = CompletionQueue(depth=ring_depth, qid=0)
    if tracer is not None:
        admin_sq.attach_tracer(tracer)
        admin_cq.attach_tracer(tracer)
    controller.attach_admin_queues(admin_sq, admin_cq)
    driver = BandSlimDriver(
        config, device.link, device.host_mem, controller, sq, cq,
        injector=device.injector, tracer=tracer,
    )
    report = RecoveryReport(
        pages_scanned=pages_scanned,
        torn_pages=torn,
        stale_pages=stale,
        mapped_lpns=len(mapping),
        manifest_gen=restored_gen,
        tables_restored=tables_restored,
        entries_replayed=replayed,
        entries_discarded=discarded,
        recovery_us=clock.now_us - t_start,
        bad_blocks=ftl.bad_block_count,
    )
    new_device = KVSSD(
        config=config,
        clock=clock,
        latency=device.latency,
        link=device.link,
        host_mem=device.host_mem,
        dram=dram,
        flash=flash,
        ftl=ftl,
        gc=gc,
        vlog=vlog,
        lsm=lsm,
        buffer=buffer,
        policy=policy,
        controller=controller,
        driver=driver,
        injector=device.injector,
        tracer=tracer,
        journal=journal,
        recovery=report,
    )
    return new_device
