"""Host-side write batching — the approach the paper argues against (§1).

"A fundamental issue with buffering the key-value entries on the host side
is the risk of data loss on power failure." This wrapper makes that risk a
number: it accumulates PUTs in volatile host memory and ships them as bulk
commands when the batch fills, tracking the *durability exposure* — how
many acknowledged-to-the-application writes would vanish if the host died
right now, and the worst such exposure seen.

``simulate_power_failure()`` drops the pending batch on the floor, exactly
as a crash would, so tests can demonstrate the loss the paper warns about.
"""

from __future__ import annotations

from repro.errors import NVMeError
from repro.host.api import KVStore


class HostBatcher:
    """Accumulate PUTs host-side; flush as BULK_PUT commands."""

    def __init__(self, store: KVStore, batch_pairs: int = 32) -> None:
        if batch_pairs < 1:
            raise NVMeError(f"batch_pairs must be >= 1, got {batch_pairs}")
        self.store = store
        self.batch_pairs = batch_pairs
        self._pending: list[tuple[bytes, bytes]] = []
        #: Writes acknowledged to the caller but not yet on the device.
        self.max_exposure = 0
        self.batches_sent = 0
        self.pairs_sent = 0
        self.pairs_lost = 0

    @property
    def exposure(self) -> int:
        """Acknowledged writes currently at risk (volatile host memory)."""
        return len(self._pending)

    def put(self, key: bytes, value: bytes) -> None:
        """Buffer a write; "acknowledged" immediately, durable only later."""
        KVStore._check_key(key)
        if not value:
            raise NVMeError("empty values are not supported")
        self._pending.append((key, value))
        self.max_exposure = max(self.max_exposure, len(self._pending))
        if len(self._pending) >= self.batch_pairs:
            self.flush()

    def flush(self) -> None:
        """Ship the pending batch as one BULK_PUT command."""
        if not self._pending:
            return
        result = self.store.driver.bulk_put(self._pending)
        if not result.ok:
            raise NVMeError(f"bulk PUT failed: {result.status.name}")
        self.batches_sent += 1
        self.pairs_sent += len(self._pending)
        self._pending.clear()

    def simulate_power_failure(self) -> int:
        """Host crash: the volatile batch is gone. Returns pairs lost."""
        lost = len(self._pending)
        self.pairs_lost += lost
        self._pending.clear()
        return lost
