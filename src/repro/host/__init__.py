"""Host-side user API: the key-value store facade over the driver."""

from repro.host.api import KVIterator, KVStore
from repro.host.batcher import HostBatcher

__all__ = ["KVStore", "KVIterator", "HostBatcher"]
